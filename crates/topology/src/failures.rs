//! Link-failure injection (section 5.4 / Figure 14 of the paper).
//!
//! Failures are applied to *fabric* (switch-to-switch) cables: a failed cable
//! takes both directed links down. Host attachment links are left intact —
//! the paper's resiliency argument is about losing paths in the core, while a
//! failed host uplink would simply disconnect that host from one plane (also
//! expressible here via [`fail_cable`]).

use crate::graph::Network;
use crate::ids::{LinkId, PlaneId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Fail the duplex cable containing `link` (both directions go down).
pub fn fail_cable(net: &mut Network, link: LinkId) {
    net.link_mut(link).up = false;
    net.link_mut(link.reverse()).up = false;
}

/// Restore the duplex cable containing `link`.
pub fn restore_cable(net: &mut Network, link: LinkId) {
    net.link_mut(link).up = true;
    net.link_mut(link.reverse()).up = true;
}

/// Restore every link in the network.
pub fn restore_all(net: &mut Network) {
    let n = net.n_links() as u32;
    for i in 0..n {
        net.link_mut(LinkId(i)).up = true;
    }
}

/// All fabric cables (one representative `LinkId` per duplex pair, the even
/// direction), optionally restricted to one plane.
pub fn fabric_cables(net: &Network, plane: Option<PlaneId>) -> Vec<LinkId> {
    net.links()
        .filter(|(id, l)| {
            id.0 % 2 == 0
                && net.node(l.src).kind.is_switch()
                && net.node(l.dst).kind.is_switch()
                && plane.is_none_or(|p| l.plane == p)
        })
        .map(|(id, _)| id)
        .collect()
}

/// Integer-exact count for "fail `fraction` of `len` cables": round-half-up
/// of `len * fraction`, computed in integer arithmetic on a parts-per-billion
/// quantization of the fraction. The former `(len as f64 * fraction).round()
/// as usize` left the count hostage to float noise around `.5` products
/// (e.g. a 450-cable fabric at 1% could fail 4 or 5 depending on how the
/// product rounded); here every (len, fraction) pair maps to exactly one
/// count, and any fraction specified to at most 9 decimal places is
/// represented exactly.
pub fn fraction_count(len: usize, fraction: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let ppb = (fraction * 1e9).round() as u64;
    let count = (len as u128 * u128::from(ppb) + 500_000_000) / 1_000_000_000;
    usize::try_from(count).expect("invariant: a fraction of len cables never exceeds len")
}

/// Fail a fraction of fabric cables, chosen uniformly at random across the
/// whole network ("link failures are random across the network", section
/// 5.4). Returns the failed cables. Deterministic in `seed`; the failed
/// count is the integer-exact [`fraction_count`].
pub fn fail_random_fraction(net: &mut Network, fraction: f64, seed: u64) -> Vec<LinkId> {
    let mut cables = fabric_cables(net, None);
    let mut rng = StdRng::seed_from_u64(seed);
    cables.shuffle(&mut rng);
    let n_fail = fraction_count(cables.len(), fraction);
    let failed: Vec<LinkId> = cables.into_iter().take(n_fail).collect();
    for &c in &failed {
        fail_cable(net, c);
    }
    failed
}

/// Fail an entire switch: every link touching `node` goes down (both
/// directions). Models a switch/ToR death — the paper's "rack-level network
/// redundancy removes a major single point of failure" (section 5.4): in a
/// P-Net the rack's hosts keep connectivity through the other planes' ToRs,
/// while in a serial network a dead ToR strands the whole rack.
pub fn fail_switch(net: &mut Network, node: crate::ids::NodeId) {
    assert!(
        net.node(node).kind.is_switch(),
        "fail_switch on a host node"
    );
    let links: Vec<LinkId> = net.out_links(node).to_vec();
    for l in links {
        fail_cable(net, l);
    }
}

/// Fraction of fabric cables currently down.
pub fn failed_fraction(net: &Network) -> f64 {
    let cables = fabric_cables(net, None);
    if cables.is_empty() {
        return 0.0;
    }
    let down = cables.iter().filter(|&&c| !net.link(c).up).count();
    down as f64 / cables.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::assemble_homogeneous;
    use crate::fattree::FatTree;
    use crate::profile::LinkProfile;

    fn net() -> Network {
        assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default())
    }

    #[test]
    fn fail_and_restore_roundtrip() {
        let mut n = net();
        let cables = fabric_cables(&n, None);
        fail_cable(&mut n, cables[0]);
        assert!(!n.link(cables[0]).up);
        assert!(!n.link(cables[0].reverse()).up);
        restore_cable(&mut n, cables[0]);
        assert!(n.link(cables[0]).up);
    }

    #[test]
    fn fraction_failure_counts() {
        let mut n = net();
        let total = fabric_cables(&n, None).len();
        let failed = fail_random_fraction(&mut n, 0.25, 42);
        assert_eq!(failed.len(), fraction_count(total, 0.25));
        assert_eq!(failed.len(), total / 4);
        assert!((failed_fraction(&n) - 0.25).abs() < 0.02);
    }

    #[test]
    fn fraction_count_is_integer_exact() {
        // Round-half-up at exact .5 products, independent of float noise:
        // 450 * 0.01 = 4.5 -> 5, 448 * 0.01 = 4.48 -> 4.
        assert_eq!(fraction_count(450, 0.01), 5);
        assert_eq!(fraction_count(448, 0.01), 4);
        assert_eq!(fraction_count(50, 0.01), 1); // 0.5 rounds up
        assert_eq!(fraction_count(49, 0.01), 0); // 0.49 rounds down
                                                 // Boundary fractions are exact.
        assert_eq!(fraction_count(1000, 0.0), 0);
        assert_eq!(fraction_count(1000, 1.0), 1000);
        // Monotone in len for a fixed fraction (no float plateau glitches).
        let mut prev = 0;
        for len in 0..10_000 {
            let c = fraction_count(len, 0.04);
            assert!(c >= prev, "count regressed at len {len}");
            assert!(c <= len);
            prev = c;
        }
    }

    #[test]
    fn failure_is_deterministic_in_seed() {
        let mut a = net();
        let mut b = net();
        let fa = fail_random_fraction(&mut a, 0.3, 7);
        let fb = fail_random_fraction(&mut b, 0.3, 7);
        assert_eq!(fa, fb);
    }

    #[test]
    fn different_seeds_fail_different_cables() {
        let mut a = net();
        let mut b = net();
        let fa = fail_random_fraction(&mut a, 0.3, 7);
        let fb = fail_random_fraction(&mut b, 0.3, 8);
        assert_ne!(fa, fb);
    }

    #[test]
    fn host_links_never_fail_randomly() {
        let mut n = net();
        fail_random_fraction(&mut n, 1.0, 1);
        for (_, l) in n.links() {
            if n.node(l.src).kind.is_host() || n.node(l.dst).kind.is_host() {
                assert!(l.up, "host link failed by fabric failure injection");
            }
        }
    }

    #[test]
    fn restore_all_clears_failures() {
        let mut n = net();
        fail_random_fraction(&mut n, 0.5, 3);
        restore_all(&mut n);
        assert_eq!(failed_fraction(&n), 0.0);
    }

    #[test]
    fn tor_death_strands_rack_in_serial_but_not_pnet() {
        use crate::ids::{HostId, PlaneId, RackId};
        // Serial (1 plane): killing rack 0's ToR disconnects host 0.
        let mut serial =
            assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let tor = serial.tor_of_rack(RackId(0), PlaneId(0)).unwrap();
        fail_switch(&mut serial, tor);
        assert!(serial.host_uplink(HostId(0), PlaneId(0)).is_none());
        assert!(!serial.plane_connects_all_hosts(PlaneId(0)));

        // 2-plane P-Net: same failure leaves plane 1 fully working.
        let mut pn =
            assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let tor = pn.tor_of_rack(RackId(0), PlaneId(0)).unwrap();
        fail_switch(&mut pn, tor);
        assert!(pn.host_uplink(HostId(0), PlaneId(0)).is_none());
        assert!(pn.host_uplink(HostId(0), PlaneId(1)).is_some());
        assert!(pn.plane_connects_all_hosts(PlaneId(1)));
    }

    #[test]
    #[should_panic(expected = "host node")]
    fn fail_switch_rejects_hosts() {
        let mut n = net();
        let host = n.host_node(crate::ids::HostId(0));
        fail_switch(&mut n, host);
    }

    #[test]
    fn plane_filter_restricts_cables() {
        let n = net();
        let all = fabric_cables(&n, None).len();
        let p0 = fabric_cables(&n, Some(PlaneId(0))).len();
        let p1 = fabric_cables(&n, Some(PlaneId(1))).len();
        assert_eq!(p0 + p1, all);
        assert_eq!(p0, p1);
    }
}
