//! The plane-builder abstraction and P-Net assembly.
//!
//! A [`PlaneBuilder`] knows how to lay one dataplane's switches and fabric
//! links into a [`Network`]. [`assemble`] stitches N plane builders together
//! into a single multi-plane network: hosts are created once and wired to the
//! ToR of their rack in *every* plane — exactly the paper's topology where
//! "each host is connected to N different disjoint network planes".

use crate::graph::{Network, NodeKind};
use crate::ids::{NodeId, PlaneId, RackId};
use crate::profile::LinkProfile;

/// Builds the switch fabric of a single dataplane.
pub trait PlaneBuilder {
    /// Number of racks (== ToR switches) this plane serves.
    fn n_racks(&self) -> usize;

    /// Hosts attached to each rack's ToR.
    fn hosts_per_rack(&self) -> usize;

    /// Create this plane's switches and switch-to-switch links inside `net`,
    /// returning the ToR node of each rack, indexed by rack id.
    ///
    /// Implementations must tag every switch and link with `plane` and must
    /// not touch hosts — host attachment is done by [`assemble`].
    fn build_plane(&self, net: &mut Network, plane: PlaneId, profile: &LinkProfile) -> Vec<NodeId>;

    /// A short human-readable description (used in experiment output).
    fn describe(&self) -> String;
}

/// Assemble a (possibly multi-plane) network from one builder per plane.
///
/// All builders must agree on rack count and hosts per rack; the hosts are
/// shared across planes while each plane gets its own disjoint set of
/// switches and links.
///
/// # Panics
/// If `planes` is empty or the builders disagree on rack/host counts.
pub fn assemble(planes: &[&dyn PlaneBuilder], profile: &LinkProfile) -> Network {
    let profiles = vec![*profile; planes.len()];
    assemble_with_profiles(planes, &profiles)
}

/// Like [`assemble`] but with a per-plane [`LinkProfile`], allowing
/// mixed-speed P-Nets — e.g. one 400G fat-tree plane for bulk next to three
/// 100G expander planes, or the paper's §6.3 multi-channel-NIC splits where
/// a 400G host port becomes 4 x 100G channels into different planes.
///
/// # Panics
/// If the lengths differ, `planes` is empty, or the builders disagree on
/// rack/host counts.
pub fn assemble_with_profiles(planes: &[&dyn PlaneBuilder], profiles: &[LinkProfile]) -> Network {
    assert!(!planes.is_empty(), "need at least one plane");
    assert_eq!(
        planes.len(),
        profiles.len(),
        "one link profile per plane required"
    );
    let n_racks = planes[0].n_racks();
    let hosts_per_rack = planes[0].hosts_per_rack();
    for p in planes {
        assert_eq!(p.n_racks(), n_racks, "plane rack counts must match");
        assert_eq!(
            p.hosts_per_rack(),
            hosts_per_rack,
            "plane host counts must match"
        );
    }

    let mut net = Network::new(planes.len() as u16);

    // Hosts first, densely by rack.
    let mut host_nodes = Vec::with_capacity(n_racks * hosts_per_rack);
    for rack in 0..n_racks {
        for _ in 0..hosts_per_rack {
            host_nodes.push(net.add_host(RackId(rack as u32)));
        }
    }

    // Each plane's fabric, then host attachment links into that plane.
    for (i, (builder, profile)) in planes.iter().zip(profiles).enumerate() {
        let plane = PlaneId(i as u16);
        let tors = builder.build_plane(&mut net, plane, profile);
        assert_eq!(tors.len(), n_racks, "builder returned wrong ToR count");
        for (rack, &tor) in tors.iter().enumerate() {
            debug_assert!(matches!(
                net.node(tor).kind,
                NodeKind::Tor { rack: r } if r == RackId(rack as u32)
            ));
            for h in 0..hosts_per_rack {
                let host = host_nodes[rack * hosts_per_rack + h];
                net.add_duplex_link(
                    host,
                    tor,
                    profile.link_speed_bps,
                    profile.host_delay_ps,
                    plane,
                );
            }
        }
    }

    debug_assert_eq!(net.validate(), Ok(()));
    net
}

/// Assemble a homogeneous P-Net: `n` identical copies of one plane design.
pub fn assemble_homogeneous(
    builder: &dyn PlaneBuilder,
    n: usize,
    profile: &LinkProfile,
) -> Network {
    let planes: Vec<&dyn PlaneBuilder> = (0..n).map(|_| builder).collect();
    assemble(&planes, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::FatTree;
    use crate::ids::HostId;

    #[test]
    fn homogeneous_assembly_shares_hosts() {
        let ft = FatTree::three_tier(4);
        let net = assemble_homogeneous(&ft, 2, &LinkProfile::paper_default());
        assert_eq!(net.n_planes(), 2);
        assert_eq!(net.n_hosts(), 16);
        // Every host has exactly one uplink per plane.
        for h in 0..net.n_hosts() {
            for p in net.planes() {
                assert!(net.host_uplink(HostId(h as u32), p).is_some());
            }
        }
        net.validate().unwrap();
    }

    #[test]
    fn planes_are_switch_disjoint() {
        let ft = FatTree::three_tier(4);
        let net = assemble_homogeneous(&ft, 3, &LinkProfile::paper_default());
        // Each switch belongs to exactly one plane; counts are equal.
        let per_plane: Vec<usize> = net.planes().map(|p| net.switches_in_plane(p)).collect();
        assert!(per_plane.iter().all(|&c| c == per_plane[0]));
        let total: usize = per_plane.iter().sum();
        let switches = net.nodes().filter(|(_, n)| n.kind.is_switch()).count();
        assert_eq!(total, switches);
    }

    #[test]
    #[should_panic(expected = "at least one plane")]
    fn empty_assembly_rejected() {
        assemble(&[], &LinkProfile::paper_default());
    }

    #[test]
    fn mixed_speed_planes() {
        // A 400G plane next to a 100G plane (the multi-channel NIC split of
        // section 6.3).
        let ft = FatTree::three_tier(4);
        let planes: Vec<&dyn PlaneBuilder> = vec![&ft, &ft];
        let profiles = vec![LinkProfile::speed_gbps(400), LinkProfile::speed_gbps(100)];
        let net = assemble_with_profiles(&planes, &profiles);
        net.validate().unwrap();
        let h0 = HostId(0);
        let fast = net.host_uplink(h0, crate::ids::PlaneId(0)).unwrap();
        let slow = net.host_uplink(h0, crate::ids::PlaneId(1)).unwrap();
        assert_eq!(net.link(fast).capacity_bps, 400_000_000_000);
        assert_eq!(net.link(slow).capacity_bps, 100_000_000_000);
    }

    #[test]
    #[should_panic(expected = "one link profile per plane")]
    fn profile_count_mismatch_rejected() {
        let ft = FatTree::three_tier(4);
        let planes: Vec<&dyn PlaneBuilder> = vec![&ft, &ft];
        assemble_with_profiles(&planes, &[LinkProfile::paper_default()]);
    }
}
