//! Strongly-typed identifiers for network entities.
//!
//! All graph storage is arena-based: nodes and links live in `Vec`s inside
//! [`crate::Network`] and are referred to by these index newtypes. Using
//! distinct types (instead of bare `usize`) prevents the classic
//! index-confusion bugs when code juggles hosts, nodes, links, and planes at
//! the same time.

use serde::{Deserialize, Serialize};

/// Index of a node (host or switch) within a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of a *directed* link within a [`crate::Network`].
///
/// Physical cables are represented as two directed links created together;
/// [`LinkId::reverse`] maps one direction to the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Index of a dataplane (forwarding plane). Serial networks have exactly one
/// plane (`PlaneId(0)`); an N-way P-Net has planes `0..N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlaneId(pub u16);

/// Dense index of a host (end system). `HostId(i)` is the i-th host; the
/// mapping to its [`NodeId`] is held by the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

/// Dense index of a rack. Every host belongs to one rack; each plane has one
/// ToR switch per rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RackId(pub u32);

impl NodeId {
    /// Convert to a plain index for arena access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Convert to a plain index for arena access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The directed link going the opposite way over the same cable.
    ///
    /// Duplex links are always allocated in adjacent pairs `(2k, 2k+1)`, so
    /// the reverse is computed by flipping the low bit.
    #[inline]
    pub fn reverse(self) -> LinkId {
        LinkId(self.0 ^ 1)
    }
}

impl PlaneId {
    /// Convert to a plain index for arena access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl HostId {
    /// Convert to a plain index for arena access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RackId {
    /// Convert to a plain index for arena access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl std::fmt::Display for PlaneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl std::fmt::Display for RackId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// mcf.rs and router.rs sort `Vec<RackId>` / `Vec<LinkId>` with plain
    /// `sort_unstable()` (the Q1-clean form). That is only equivalent to the
    /// old `sort_unstable_by_key(|x| x.0)` because the derived `Ord` on these
    /// newtypes IS the inner-u32 order and duplicates are indistinguishable
    /// whole elements. Pin the equivalence so a future field addition (which
    /// would make the unstable sort reorder-prone again) fails loudly here.
    #[test]
    fn newtype_sort_unstable_matches_inner_key_sort() {
        let raw = [7u32, 3, 7, 0, 3, 9, 1, 7, 0];
        let mut by_whole: Vec<RackId> = raw.iter().map(|&x| RackId(x)).collect();
        let mut by_key: Vec<RackId> = by_whole.clone();
        by_whole.sort_unstable();
        by_key.sort_unstable_by_key(|r| r.0);
        assert_eq!(by_whole, by_key);
        let mut lw: Vec<LinkId> = raw.iter().map(|&x| LinkId(x)).collect();
        let mut lk: Vec<LinkId> = lw.clone();
        lw.sort_unstable();
        lk.sort_unstable_by_key(|l| l.0);
        assert_eq!(lw, lk);
        // dedup after the whole-element sort leaves exactly the distinct keys
        lw.dedup();
        assert_eq!(lw, [0, 1, 3, 7, 9].map(LinkId).to_vec());
    }

    #[test]
    fn reverse_flips_low_bit() {
        assert_eq!(LinkId(0).reverse(), LinkId(1));
        assert_eq!(LinkId(1).reverse(), LinkId(0));
        assert_eq!(LinkId(6).reverse(), LinkId(7));
        assert_eq!(LinkId(7).reverse(), LinkId(6));
    }

    #[test]
    fn reverse_is_involution() {
        for i in 0..100 {
            let l = LinkId(i);
            assert_eq!(l.reverse().reverse(), l);
            assert_ne!(l.reverse(), l);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(4).to_string(), "l4");
        assert_eq!(PlaneId(1).to_string(), "p1");
        assert_eq!(HostId(9).to_string(), "h9");
        assert_eq!(RackId(2).to_string(), "r2");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(HostId(0) < HostId(10));
    }
}
