//! Xpander-style deterministic-construction expanders (Valadarsky et al.,
//! CoNEXT'16 \[42\]).
//!
//! Xpander builds a d-regular expander by repeatedly applying random 2-lifts
//! to the complete graph K_{d+1}. A 2-lift duplicates every vertex and, for
//! every original edge {u, v}, either keeps the parallel pair
//! {(u,0),(v,0)},{(u,1),(v,1)} or crosses it {(u,0),(v,1)},{(u,1),(v,0)} — a
//! fair coin per edge. Lifting preserves d-regularity and (w.h.p.) expansion.
//!
//! The paper cites Xpander as the *pseudorandom* expander candidate for
//! heterogeneous P-Nets: different lift coin-flips per plane produce distinct
//! planes with identical structural parameters.

use crate::builder::PlaneBuilder;
use crate::graph::{Network, NodeKind};
use crate::ids::{NodeId, PlaneId, RackId};
use crate::profile::LinkProfile;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// An Xpander plane builder.
#[derive(Debug, Clone, Copy)]
pub struct Xpander {
    /// Network degree d; the base graph is K_{d+1}.
    pub degree: usize,
    /// Number of 2-lifts applied; the plane has (d+1) * 2^lifts ToRs.
    pub lifts: u32,
    /// Hosts attached to each ToR.
    pub hosts_per_tor: usize,
    /// Seed for the lift coin flips (the per-plane heterogeneity knob).
    pub seed: u64,
}

impl Xpander {
    /// Create a builder with `degree >= 3` (expansion requires d >= 3).
    pub fn new(degree: usize, lifts: u32, hosts_per_tor: usize, seed: u64) -> Self {
        assert!(degree >= 3, "expanders need degree >= 3");
        assert!(lifts <= 16, "2^lifts nodes would be enormous");
        Xpander {
            degree,
            lifts,
            hosts_per_tor,
            seed,
        }
    }

    /// Number of ToRs: (d+1) * 2^lifts.
    pub fn n_tors(&self) -> usize {
        (self.degree + 1) << self.lifts
    }

    /// Total hosts of one plane.
    pub fn n_hosts(&self) -> usize {
        self.n_tors() * self.hosts_per_tor
    }

    /// Generate the lifted edge list (pairs of ToR indices). Deterministic
    /// in `seed`.
    pub fn generate_edges(&self) -> Vec<(usize, usize)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Base: K_{d+1}.
        let mut n = self.degree + 1;
        let mut edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .collect();
        for _ in 0..self.lifts {
            let mut lifted = Vec::with_capacity(edges.len() * 2);
            for &(u, v) in &edges {
                // Copies: (x, 0) -> x, (x, 1) -> x + n.
                if rng.random::<bool>() {
                    // parallel
                    lifted.push((u, v));
                    lifted.push((u + n, v + n));
                } else {
                    // crossed
                    lifted.push((u, v + n));
                    lifted.push((u + n, v));
                }
            }
            edges = lifted;
            n *= 2;
        }
        edges
    }
}

impl PlaneBuilder for Xpander {
    fn n_racks(&self) -> usize {
        self.n_tors()
    }

    fn hosts_per_rack(&self) -> usize {
        self.hosts_per_tor
    }

    fn build_plane(&self, net: &mut Network, plane: PlaneId, profile: &LinkProfile) -> Vec<NodeId> {
        let tors: Vec<NodeId> = (0..self.n_tors())
            .map(|r| {
                net.add_switch(
                    NodeKind::Tor {
                        rack: RackId(r as u32),
                    },
                    plane,
                )
            })
            .collect();
        for (a, b) in self.generate_edges() {
            net.add_duplex_link(
                tors[a],
                tors[b],
                profile.link_speed_bps,
                profile.fabric_delay_ps,
                plane,
            );
        }
        tors
    }

    fn describe(&self) -> String {
        format!(
            "xpander(d={}, tors={}, h={}, seed={})",
            self.degree,
            self.n_tors(),
            self.hosts_per_tor,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::assemble_homogeneous;
    use std::collections::HashSet;

    fn degrees(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
        let mut deg = vec![0usize; n];
        for &(a, b) in edges {
            deg[a] += 1;
            deg[b] += 1;
        }
        deg
    }

    #[test]
    fn base_graph_is_complete() {
        let x = Xpander::new(3, 0, 1, 0);
        let edges = x.generate_edges();
        assert_eq!(edges.len(), 6); // K4
        assert!(degrees(4, &edges).iter().all(|&d| d == 3));
    }

    #[test]
    fn lifts_preserve_regularity() {
        for lifts in 1..5 {
            let x = Xpander::new(4, lifts, 1, 11);
            let edges = x.generate_edges();
            let n = x.n_tors();
            assert_eq!(n, 5 << lifts);
            assert_eq!(edges.len(), n * 4 / 2);
            assert!(degrees(n, &edges).iter().all(|&d| d == 4));
        }
    }

    #[test]
    fn lifted_graph_is_simple() {
        let x = Xpander::new(5, 3, 1, 3);
        let edges = x.generate_edges();
        let mut seen = HashSet::new();
        for &(a, b) in &edges {
            assert_ne!(a, b);
            let k = if a < b { (a, b) } else { (b, a) };
            assert!(seen.insert(k), "duplicate edge {k:?}");
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = Xpander::new(4, 3, 1, 7).generate_edges();
        let b = Xpander::new(4, 3, 1, 7).generate_edges();
        let c = Xpander::new(4, 3, 1, 8).generate_edges();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn builds_connected_network() {
        let x = Xpander::new(4, 2, 2, 21);
        let net = assemble_homogeneous(&x, 1, &LinkProfile::paper_default());
        net.validate().unwrap();
        assert!(net.plane_connects_all_hosts(PlaneId(0)));
        assert_eq!(net.n_hosts(), 20 * 2);
    }
}
