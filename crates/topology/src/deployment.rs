//! Deployment accounting: transceivers, fibers, patch panels, and power
//! (section 6.1 of the paper).
//!
//! The paper argues that P-Nets' "more boxes and cables" concern is solved
//! by modern deployment techniques: cable bundles collapse the N per-plane
//! fibers between the same endpoints into one trunk, patch panels (and
//! optical circuit switches) centralize the wiring so heterogeneity lives
//! in one room, and all-optical cores eliminate in-fabric transceivers —
//! "a key scaling mechanism into Terabit ethernet, as high-speed packet
//! switches and transceivers consume extremely high power".
//!
//! This module provides a first-order cost/power model over the
//! [`crate::components::ComponentCount`] accounting. The absolute numbers
//! are representative catalog values (documented on [`PowerModel`]); the
//! point — as in the paper — is the *relative* comparison across designs.

use crate::components::ComponentCount;

/// How the fabric-side wiring is realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentStyle {
    /// Every inter-switch cable is a discrete fiber with a transceiver on
    /// each end (the traditional scale-out deployment).
    DiscreteFibers,
    /// Long-run fibers terminate on central patch panels; wiring changes
    /// are patch-panel operations. Same transceiver count, far fewer
    /// distinct cable runs (trunks), and heterogeneity is confined to the
    /// panel room (section 6.2).
    PatchPanel,
    /// The core tier is an optical circuit switch (Calient-style) or
    /// pre-etched grating: core *chips* and their transceivers disappear;
    /// light goes ToR -> OCS -> ToR. Only applicable to 2-tier parallel
    /// planes (the paper's P-Net deployment).
    OpticalCircuitSwitch,
}

/// First-order power/cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    /// Watts per switch chip (merchant silicon, ~12.8 Tb/s class).
    pub chip_w: f64,
    /// Watts per optical transceiver (100G DR/FR class).
    pub transceiver_w: f64,
    /// Watts of ancillary hardware (CPU, fans, PSU losses) per switch box.
    pub box_overhead_w: f64,
    /// Watts per OCS port (micro-mirror drive electronics; near-zero
    /// compared to packet switching).
    pub ocs_port_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            chip_w: 350.0,
            transceiver_w: 4.5,
            box_overhead_w: 150.0,
            ocs_port_w: 0.25,
        }
    }
}

/// Deployment summary for one architecture row.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentSummary {
    pub style: DeploymentStyle,
    /// Optical transceivers on fabric links.
    pub transceivers: usize,
    /// Distinct physical cable runs an installer must pull (trunks count
    /// once).
    pub cable_runs: usize,
    /// Patch-panel (or OCS) ports, if a central panel is used.
    pub panel_ports: usize,
    /// Switch chips actually deployed (OCS removes the spine tier).
    pub chips: usize,
    /// Total power in kilowatts.
    pub power_kw: f64,
}

/// Compute the deployment summary of an architecture under a wiring style.
///
/// `spine_fraction` is the fraction of chips that form the top tier (the
/// candidates an OCS replaces); for the Table 1 parallel design it is
/// 64/192 = 1/3, for serial designs the OCS style is not applicable and the
/// fraction is ignored.
pub fn deployment(
    row: &ComponentCount,
    style: DeploymentStyle,
    spine_fraction: f64,
    model: &PowerModel,
) -> DeploymentSummary {
    assert!((0.0..=1.0).contains(&spine_fraction));
    let base_transceivers = row.links * 2;
    match style {
        DeploymentStyle::DiscreteFibers => DeploymentSummary {
            style,
            transceivers: base_transceivers,
            cable_runs: row.links,
            panel_ports: 0,
            chips: row.chips,
            power_kw: (row.chips as f64 * model.chip_w
                + base_transceivers as f64 * model.transceiver_w
                + row.boxes as f64 * model.box_overhead_w)
                / 1e3,
        },
        DeploymentStyle::PatchPanel => {
            // Each cable passes through the panel: one run per side of the
            // panel collapses into trunks (we credit a 4:1 trunking factor,
            // conservative versus the paper's per-plane bundling), and the
            // panel needs one port per cable end.
            let cable_runs = row.links.div_ceil(4) * 2;
            DeploymentSummary {
                style,
                transceivers: base_transceivers,
                cable_runs,
                panel_ports: row.links * 2,
                chips: row.chips,
                power_kw: (row.chips as f64 * model.chip_w
                    + base_transceivers as f64 * model.transceiver_w
                    + row.boxes as f64 * model.box_overhead_w)
                    / 1e3,
            }
        }
        DeploymentStyle::OpticalCircuitSwitch => {
            // The spine tier becomes OCS ports: its chips, boxes and the
            // transceivers on the spine side of every uplink disappear.
            let spine_chips = (row.chips as f64 * spine_fraction).round() as usize;
            let chips = row.chips - spine_chips;
            let transceivers = row.links; // ToR-side only
            let ocs_ports = row.links;
            let boxes = (row.boxes as f64 * (1.0 - spine_fraction)).round() as usize;
            DeploymentSummary {
                style,
                transceivers,
                cable_runs: row.links.div_ceil(4) * 2,
                panel_ports: ocs_ports,
                chips,
                power_kw: (chips as f64 * model.chip_w
                    + transceivers as f64 * model.transceiver_w
                    + boxes as f64 * model.box_overhead_w
                    + ocs_ports as f64 * model.ocs_port_w)
                    / 1e3,
            }
        }
    }
}

/// Rewiring cost of swapping one Jellyfish plane instantiation for another:
/// the number of patch-panel operations (edges removed + added). With patch
/// panels this is the *entire* cost of re-instantiating a heterogeneous
/// plane — no floor cabling changes (section 6.2, "hiding heterogeneity").
pub fn rewiring_ops(old_edges: &[(usize, usize)], new_edges: &[(usize, usize)]) -> usize {
    use std::collections::BTreeSet;
    let norm = |e: &(usize, usize)| if e.0 < e.1 { (e.0, e.1) } else { (e.1, e.0) };
    let old: BTreeSet<_> = old_edges.iter().map(norm).collect();
    let new: BTreeSet<_> = new_edges.iter().map(norm).collect();
    old.difference(&new).count() + new.difference(&old).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{parallel_pnet, serial_chassis, serial_scale_out, ChipSpec};
    use crate::jellyfish::Jellyfish;

    #[test]
    fn ocs_saves_chips_and_transceivers() {
        let row = parallel_pnet(8192, 8, ChipSpec::table1());
        let m = PowerModel::default();
        let fibers = deployment(&row, DeploymentStyle::DiscreteFibers, 1.0 / 3.0, &m);
        let ocs = deployment(&row, DeploymentStyle::OpticalCircuitSwitch, 1.0 / 3.0, &m);
        assert!(ocs.chips < fibers.chips);
        assert_eq!(ocs.transceivers, fibers.transceivers / 2);
        assert!(ocs.power_kw < fibers.power_kw);
    }

    #[test]
    fn parallel_with_ocs_beats_serial_designs_on_power() {
        let chip = ChipSpec::table1();
        let m = PowerModel::default();
        let scale_out = deployment(
            &serial_scale_out(8192, chip),
            DeploymentStyle::DiscreteFibers,
            0.0,
            &m,
        );
        let chassis = deployment(
            &serial_chassis(8192, chip),
            DeploymentStyle::DiscreteFibers,
            0.0,
            &m,
        );
        let pnet = deployment(
            &parallel_pnet(8192, 8, chip),
            DeploymentStyle::OpticalCircuitSwitch,
            1.0 / 3.0,
            &m,
        );
        assert!(pnet.power_kw < chassis.power_kw);
        assert!(pnet.power_kw < scale_out.power_kw);
    }

    #[test]
    fn patch_panel_reduces_cable_runs_only() {
        let row = serial_chassis(8192, ChipSpec::table1());
        let m = PowerModel::default();
        let fibers = deployment(&row, DeploymentStyle::DiscreteFibers, 0.0, &m);
        let panel = deployment(&row, DeploymentStyle::PatchPanel, 0.0, &m);
        assert!(panel.cable_runs < fibers.cable_runs);
        assert_eq!(panel.transceivers, fibers.transceivers);
        assert_eq!(panel.power_kw, fibers.power_kw);
        assert!(panel.panel_ports > 0);
    }

    #[test]
    fn rewiring_counts_symmetric_difference() {
        let a = vec![(0, 1), (1, 2), (2, 3)];
        let b = vec![(1, 0), (2, 1), (3, 0)];
        // (2,3) removed, (0,3) added.
        assert_eq!(rewiring_ops(&a, &b), 2);
        assert_eq!(rewiring_ops(&a, &a), 0);
    }

    #[test]
    fn swapping_jellyfish_planes_is_bounded_panel_work() {
        // Re-instantiating a plane touches at most 2x its edge count of
        // panel ports — independent of datacenter floor wiring.
        let a = Jellyfish::new(32, 6, 1, 1).generate_edges();
        let b = Jellyfish::new(32, 6, 1, 2).generate_edges();
        let ops = rewiring_ops(&a, &b);
        assert!(ops > 0);
        assert!(ops <= a.len() + b.len());
    }
}
