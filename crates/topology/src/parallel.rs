//! Convenience constructors for the four network classes compared throughout
//! the paper's evaluation (section 5):
//!
//! 1. **Serial low-bandwidth** — one plane at the base link speed.
//! 2. **Parallel homogeneous** — N identical planes at the base speed.
//! 3. **Parallel heterogeneous** — N differently-seeded expander planes.
//! 4. **Serial high-bandwidth** — one plane with links at N x the base speed.

use crate::builder::{assemble, assemble_homogeneous, PlaneBuilder};
use crate::fattree::FatTree;
use crate::graph::Network;
use crate::jellyfish::Jellyfish;
use crate::profile::LinkProfile;
use crate::xpander::Xpander;

/// The four network classes of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkClass {
    /// Single plane at base speed (the normalization baseline).
    SerialLow,
    /// N identical planes at base speed.
    ParallelHomogeneous,
    /// N differently-seeded planes at base speed (expander topologies only).
    ParallelHeterogeneous,
    /// Single plane at N x base speed (the ideal but cost-prohibitive
    /// comparison point).
    SerialHigh,
}

impl NetworkClass {
    /// All four classes in the paper's presentation order.
    pub fn all() -> [NetworkClass; 4] {
        [
            NetworkClass::SerialLow,
            NetworkClass::ParallelHomogeneous,
            NetworkClass::ParallelHeterogeneous,
            NetworkClass::SerialHigh,
        ]
    }

    /// Label used in experiment output (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            NetworkClass::SerialLow => "serial low-bw",
            NetworkClass::ParallelHomogeneous => "parallel homogeneous",
            NetworkClass::ParallelHeterogeneous => "parallel heterogeneous",
            NetworkClass::SerialHigh => "serial high-bw",
        }
    }
}

/// Build a fat-tree network of the given class.
///
/// Fat trees have no heterogeneous variant (every k-ary fat tree of the same
/// k is isomorphic, as the paper notes: "there are no parallel heterogeneous
/// fat trees"); requesting one panics.
pub fn fattree_network(
    class: NetworkClass,
    k: usize,
    n_planes: usize,
    base: &LinkProfile,
) -> Network {
    let ft = FatTree::three_tier(k);
    match class {
        NetworkClass::SerialLow => assemble_homogeneous(&ft, 1, base),
        NetworkClass::ParallelHomogeneous => assemble_homogeneous(&ft, n_planes, base),
        NetworkClass::ParallelHeterogeneous => {
            // pnet-tidy: allow(C1, P1) -- unsupported NetworkClass combination is a programming error at experiment-construction time; the paper notes fat trees have no heterogeneous variant
            panic!("fat trees have no heterogeneous parallel variant")
        }
        NetworkClass::SerialHigh => assemble_homogeneous(&ft, 1, &base.scaled(n_planes as u64)),
    }
}

/// Build a Jellyfish network of the given class. `seed` controls the random
/// graph(s); heterogeneous planes use `seed`, `seed + 1`, ... .
pub fn jellyfish_network(
    class: NetworkClass,
    proto: Jellyfish,
    n_planes: usize,
    seed: u64,
    base: &LinkProfile,
) -> Network {
    let with_seed = |s: u64| Jellyfish { seed: s, ..proto };
    match class {
        NetworkClass::SerialLow => assemble_homogeneous(&with_seed(seed), 1, base),
        NetworkClass::ParallelHomogeneous => assemble_homogeneous(&with_seed(seed), n_planes, base),
        NetworkClass::ParallelHeterogeneous => {
            let builders: Vec<Jellyfish> =
                (0..n_planes).map(|i| with_seed(seed + i as u64)).collect();
            let refs: Vec<&dyn PlaneBuilder> =
                builders.iter().map(|b| b as &dyn PlaneBuilder).collect();
            assemble(&refs, base)
        }
        NetworkClass::SerialHigh => {
            assemble_homogeneous(&with_seed(seed), 1, &base.scaled(n_planes as u64))
        }
    }
}

/// Build an Xpander network of the given class (same seeding convention as
/// [`jellyfish_network`]).
pub fn xpander_network(
    class: NetworkClass,
    proto: Xpander,
    n_planes: usize,
    seed: u64,
    base: &LinkProfile,
) -> Network {
    let with_seed = |s: u64| Xpander { seed: s, ..proto };
    match class {
        NetworkClass::SerialLow => assemble_homogeneous(&with_seed(seed), 1, base),
        NetworkClass::ParallelHomogeneous => assemble_homogeneous(&with_seed(seed), n_planes, base),
        NetworkClass::ParallelHeterogeneous => {
            let builders: Vec<Xpander> =
                (0..n_planes).map(|i| with_seed(seed + i as u64)).collect();
            let refs: Vec<&dyn PlaneBuilder> =
                builders.iter().map(|b| b as &dyn PlaneBuilder).collect();
            assemble(&refs, base)
        }
        NetworkClass::SerialHigh => {
            assemble_homogeneous(&with_seed(seed), 1, &base.scaled(n_planes as u64))
        }
    }
}

/// A *mixed-type* P-Net (section 7, "P-Net with different topology types"):
/// one fat-tree plane plus `n_expander` differently-seeded Jellyfish planes
/// over the same racks and hosts. Operators get the fat tree's predictable
/// bisection for data-intensive traffic and the expanders' short paths for
/// latency-sensitive traffic.
///
/// The Jellyfish planes reuse the fat tree's rack shape (k²/2 racks, k/2
/// hosts per rack) with ToR degree `expander_degree` (defaults to k when 0,
/// matching the fat-tree ToR's uplink count).
pub fn mixed_fattree_expander(
    k: usize,
    n_expander: usize,
    expander_degree: usize,
    seed: u64,
    base: &LinkProfile,
) -> Network {
    let ft = FatTree::three_tier(k);
    let n_tors = ft.n_racks();
    let degree = if expander_degree == 0 {
        k.min(n_tors - 1)
    } else {
        expander_degree
    };
    let jellies: Vec<Jellyfish> = (0..n_expander)
        .map(|i| Jellyfish::new(n_tors, degree, k / 2, seed + i as u64))
        .collect();
    let mut builders: Vec<&dyn PlaneBuilder> = vec![&ft];
    builders.extend(jellies.iter().map(|j| j as &dyn PlaneBuilder));
    assemble(&builders, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PlaneId;

    #[test]
    fn four_classes_fat_tree() {
        let base = LinkProfile::paper_default();
        let low = fattree_network(NetworkClass::SerialLow, 4, 4, &base);
        let homo = fattree_network(NetworkClass::ParallelHomogeneous, 4, 4, &base);
        let high = fattree_network(NetworkClass::SerialHigh, 4, 4, &base);
        assert_eq!(low.n_planes(), 1);
        assert_eq!(homo.n_planes(), 4);
        assert_eq!(high.n_planes(), 1);
        assert_eq!(low.n_hosts(), homo.n_hosts());
        assert_eq!(low.n_hosts(), high.n_hosts());
        // Serial high runs 4x faster links.
        let l = low.link(low.out_links(low.host_node(crate::ids::HostId(0)))[0]);
        let h = high.link(high.out_links(high.host_node(crate::ids::HostId(0)))[0]);
        assert_eq!(h.capacity_bps, 4 * l.capacity_bps);
    }

    #[test]
    #[should_panic(expected = "no heterogeneous")]
    fn heterogeneous_fat_tree_rejected() {
        fattree_network(
            NetworkClass::ParallelHeterogeneous,
            4,
            4,
            &LinkProfile::paper_default(),
        );
    }

    #[test]
    fn heterogeneous_jellyfish_planes_differ() {
        let base = LinkProfile::paper_default();
        let proto = Jellyfish::new(16, 4, 2, 0);
        let net = jellyfish_network(NetworkClass::ParallelHeterogeneous, proto, 3, 10, &base);
        assert_eq!(net.n_planes(), 3);
        net.validate().unwrap();
        for p in net.planes() {
            assert!(net.plane_connects_all_hosts(p));
        }
        // Planes should not be identical: compare fabric edge sets by
        // (rack, rack) pairs.
        let edge_set = |plane: PlaneId| {
            let mut edges: Vec<(u32, u32)> = net
                .links()
                .filter(|(id, l)| {
                    id.0 % 2 == 0
                        && l.plane == plane
                        && net.node(l.src).kind.is_switch()
                        && net.node(l.dst).kind.is_switch()
                })
                .map(|(_, l)| {
                    let ra = match net.node(l.src).kind {
                        crate::graph::NodeKind::Tor { rack } => rack.0,
                        _ => u32::MAX,
                    };
                    let rb = match net.node(l.dst).kind {
                        crate::graph::NodeKind::Tor { rack } => rack.0,
                        _ => u32::MAX,
                    };
                    (ra.min(rb), ra.max(rb))
                })
                .collect();
            edges.sort_unstable();
            edges
        };
        assert_ne!(edge_set(PlaneId(0)), edge_set(PlaneId(1)));
    }

    #[test]
    fn homogeneous_jellyfish_planes_identical() {
        let base = LinkProfile::paper_default();
        let proto = Jellyfish::new(16, 4, 2, 0);
        let net = jellyfish_network(NetworkClass::ParallelHomogeneous, proto, 2, 10, &base);
        // Both planes built from the same seed: same switch counts and same
        // cable counts (full isomorphism by construction).
        assert_eq!(
            net.fabric_cables_in_plane(PlaneId(0)),
            net.fabric_cables_in_plane(PlaneId(1))
        );
    }

    #[test]
    fn xpander_classes_build() {
        let base = LinkProfile::paper_default();
        let proto = Xpander::new(3, 2, 2, 0);
        for class in [
            NetworkClass::SerialLow,
            NetworkClass::ParallelHomogeneous,
            NetworkClass::ParallelHeterogeneous,
            NetworkClass::SerialHigh,
        ] {
            let net = xpander_network(class, proto, 2, 5, &base);
            net.validate().unwrap();
            assert!(net.plane_connects_all_hosts(PlaneId(0)));
        }
    }

    #[test]
    fn mixed_topology_pnet_builds() {
        let base = LinkProfile::paper_default();
        let net = mixed_fattree_expander(4, 3, 3, 7, &base);
        net.validate().unwrap();
        assert_eq!(net.n_planes(), 4);
        assert_eq!(net.n_hosts(), 16);
        for p in net.planes() {
            assert!(net.plane_connects_all_hosts(p), "plane {p} disconnected");
        }
        // Plane 0 is the fat tree (has Agg/Core switches); planes 1.. are
        // ToR-only expanders.
        let agg_in = |plane: PlaneId| {
            net.nodes()
                .filter(|(_, n)| {
                    n.plane == Some(plane)
                        && matches!(
                            n.kind,
                            crate::graph::NodeKind::Agg { .. } | crate::graph::NodeKind::Core
                        )
                })
                .count()
        };
        assert!(agg_in(PlaneId(0)) > 0);
        assert_eq!(agg_in(PlaneId(1)), 0);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(NetworkClass::SerialLow.label(), "serial low-bw");
        assert_eq!(
            NetworkClass::ParallelHeterogeneous.label(),
            "parallel heterogeneous"
        );
    }
}
