//! # pnet-topology
//!
//! Datacenter network topologies for the P-Net reproduction ("Scaling beyond
//! packet switch limits with multiple dataplanes", CoNEXT 2022).
//!
//! The crate provides:
//!
//! * an arena [`Network`] graph shared by the routing, flow-level, and
//!   packet-level layers of the workspace;
//! * plane builders: [`FatTree`] (3-tier k-ary and 2-tier leaf-spine),
//!   [`Jellyfish`] random regular graphs, and [`Xpander`] 2-lift expanders;
//! * P-Net assembly ([`assemble`], [`assemble_homogeneous`]) wiring hosts to
//!   N disjoint dataplanes, plus the four evaluation network classes of the
//!   paper ([`parallel::NetworkClass`]);
//! * Table 1 component accounting ([`components`]);
//! * link-failure injection ([`failures`]).
//!
//! ## Example
//!
//! ```
//! use pnet_topology::{assemble, Jellyfish, LinkProfile, PlaneBuilder};
//!
//! // A 4-plane heterogeneous P-Net: four differently-seeded Jellyfish planes.
//! let planes: Vec<Jellyfish> = (0..4).map(|s| Jellyfish::new(16, 4, 2, s)).collect();
//! let refs: Vec<&dyn PlaneBuilder> = planes.iter().map(|p| p as &dyn PlaneBuilder).collect();
//! let net = assemble(&refs, &LinkProfile::paper_default());
//! assert_eq!(net.n_planes(), 4);
//! assert_eq!(net.n_hosts(), 32);
//! for p in net.planes() {
//!     assert!(net.plane_connects_all_hosts(p));
//! }
//! ```

pub mod builder;
pub mod churn;
pub mod components;
pub mod deployment;
pub mod failures;
pub mod fattree;
pub mod graph;
pub mod ids;
pub mod jellyfish;
pub mod parallel;
pub mod profile;
pub mod xpander;

pub use builder::{assemble, assemble_homogeneous, assemble_with_profiles, PlaneBuilder};
pub use churn::{ChurnEvent, ChurnSchedule, LinkDelta};
pub use fattree::{FatTree, FatTreeShape};
pub use graph::{gbps, micros_ps, nanos_ps, Link, Network, Node, NodeKind};
pub use ids::{HostId, LinkId, NodeId, PlaneId, RackId};
pub use jellyfish::{expand_rack, Jellyfish};
pub use parallel::NetworkClass;
pub use profile::LinkProfile;
pub use xpander::Xpander;
