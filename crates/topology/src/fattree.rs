//! Fat-tree (folded-Clos) plane builders.
//!
//! Two shapes are provided:
//!
//! * [`FatTree::three_tier`] — the classic k-ary fat tree of Al-Fares et
//!   al. \[5\]: k pods, k/2 edge (ToR) and k/2 aggregation switches per pod,
//!   (k/2)^2 core switches, k^3/4 hosts. This is the paper's simulation
//!   topology (k = 16 gives the 1024-host network of Figure 6).
//! * [`FatTree::two_tier`] — a leaf-spine folded Clos built from full-radix
//!   chips, the per-plane topology of the parallel designs in Table 1
//!   (radix 128 gives 8192 hosts per plane with 3 switch hops).
//!
//! Both are non-blocking: every tier boundary carries as many links as there
//! are hosts below it.

use crate::builder::PlaneBuilder;
use crate::graph::{Network, NodeKind};
use crate::ids::{NodeId, PlaneId, RackId};
use crate::profile::LinkProfile;

/// Shape of one fat-tree plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FatTreeShape {
    /// k-ary three-tier fat tree (edge/agg/core).
    ThreeTier { k: usize },
    /// Leaf-spine two-tier folded Clos from radix-r chips.
    TwoTier { radix: usize },
}

/// A fat-tree plane builder.
#[derive(Debug, Clone, Copy)]
pub struct FatTree {
    shape: FatTreeShape,
}

impl FatTree {
    /// k-ary three-tier fat tree. `k` must be even and >= 4.
    ///
    /// Hosts: k^3/4. Racks: k^2/2 (one per edge switch). Switch hops between
    /// hosts in different pods: 5 (edge-agg-core-agg-edge).
    pub fn three_tier(k: usize) -> Self {
        assert!(k >= 4 && k.is_multiple_of(2), "k must be even and >= 4");
        FatTree {
            shape: FatTreeShape::ThreeTier { k },
        }
    }

    /// Two-tier leaf-spine from radix-`r` chips. `r` must be even and >= 4.
    ///
    /// Leaves: r (each with r/2 hosts and r/2 uplinks). Spines: r/2 (each
    /// with r downlinks, one per leaf). Hosts: r^2/2. Switch hops between
    /// racks: 3 (leaf-spine-leaf).
    pub fn two_tier(radix: usize) -> Self {
        assert!(
            radix >= 4 && radix.is_multiple_of(2),
            "radix must be even and >= 4"
        );
        FatTree {
            shape: FatTreeShape::TwoTier { radix },
        }
    }

    /// The shape of this builder.
    pub fn shape(&self) -> FatTreeShape {
        self.shape
    }

    /// Total hosts supported by one plane.
    pub fn n_hosts(&self) -> usize {
        self.n_racks() * self.hosts_per_rack()
    }
}

impl PlaneBuilder for FatTree {
    fn n_racks(&self) -> usize {
        match self.shape {
            FatTreeShape::ThreeTier { k } => k * k / 2,
            FatTreeShape::TwoTier { radix } => radix,
        }
    }

    fn hosts_per_rack(&self) -> usize {
        match self.shape {
            FatTreeShape::ThreeTier { k } => k / 2,
            FatTreeShape::TwoTier { radix } => radix / 2,
        }
    }

    fn build_plane(&self, net: &mut Network, plane: PlaneId, profile: &LinkProfile) -> Vec<NodeId> {
        match self.shape {
            FatTreeShape::ThreeTier { k } => build_three_tier(net, plane, profile, k),
            FatTreeShape::TwoTier { radix } => build_two_tier(net, plane, profile, radix),
        }
    }

    fn describe(&self) -> String {
        match self.shape {
            FatTreeShape::ThreeTier { k } => {
                format!("fat-tree(k={k}, hosts={})", k * k * k / 4)
            }
            FatTreeShape::TwoTier { radix } => {
                format!("leaf-spine(r={radix}, hosts={})", radix * radix / 2)
            }
        }
    }
}

fn build_three_tier(
    net: &mut Network,
    plane: PlaneId,
    profile: &LinkProfile,
    k: usize,
) -> Vec<NodeId> {
    let half = k / 2;
    let cap = profile.link_speed_bps;
    let delay = profile.fabric_delay_ps;

    // Core switches: (k/2)^2, grouped in k/2 groups of k/2. Group j serves
    // the j-th aggregation switch of every pod.
    let cores: Vec<NodeId> = (0..half * half)
        .map(|_| net.add_switch(NodeKind::Core, plane))
        .collect();

    let mut tors = Vec::with_capacity(half * k);
    for pod in 0..k {
        let aggs: Vec<NodeId> = (0..half)
            .map(|_| net.add_switch(NodeKind::Agg { pod: pod as u32 }, plane))
            .collect();
        // Agg j of each pod connects to cores j*half .. (j+1)*half.
        for (j, &agg) in aggs.iter().enumerate() {
            for c in 0..half {
                net.add_duplex_link(agg, cores[j * half + c], cap, delay, plane);
            }
        }
        for e in 0..half {
            let rack = RackId((pod * half + e) as u32);
            let tor = net.add_switch(NodeKind::Tor { rack }, plane);
            for &agg in &aggs {
                net.add_duplex_link(tor, agg, cap, delay, plane);
            }
            tors.push(tor);
        }
    }
    tors
}

fn build_two_tier(
    net: &mut Network,
    plane: PlaneId,
    profile: &LinkProfile,
    radix: usize,
) -> Vec<NodeId> {
    let half = radix / 2;
    let cap = profile.link_speed_bps;
    let delay = profile.fabric_delay_ps;

    let spines: Vec<NodeId> = (0..half)
        .map(|_| net.add_switch(NodeKind::Core, plane))
        .collect();
    let mut tors = Vec::with_capacity(radix);
    for rack in 0..radix {
        let tor = net.add_switch(
            NodeKind::Tor {
                rack: RackId(rack as u32),
            },
            plane,
        );
        for &spine in &spines {
            net.add_duplex_link(tor, spine, cap, delay, plane);
        }
        tors.push(tor);
    }
    tors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::assemble_homogeneous;
    use crate::ids::HostId;

    #[test]
    fn three_tier_counts() {
        let ft = FatTree::three_tier(4);
        assert_eq!(ft.n_racks(), 8);
        assert_eq!(ft.hosts_per_rack(), 2);
        assert_eq!(ft.n_hosts(), 16);
        let net = assemble_homogeneous(&ft, 1, &LinkProfile::paper_default());
        // Switches: 8 edge + 8 agg + 4 core = 20.
        assert_eq!(net.switches_in_plane(PlaneId(0)), 20);
        // Fabric cables: edge-agg 8*2=16, agg-core 8*2=16 -> 32.
        assert_eq!(net.fabric_cables_in_plane(PlaneId(0)), 32);
        net.validate().unwrap();
        assert!(net.plane_connects_all_hosts(PlaneId(0)));
    }

    #[test]
    fn three_tier_k8() {
        let ft = FatTree::three_tier(8);
        assert_eq!(ft.n_hosts(), 128);
        let net = assemble_homogeneous(&ft, 1, &LinkProfile::paper_default());
        // 32 edge + 32 agg + 16 core = 80 switches (5/4 * k^2).
        assert_eq!(net.switches_in_plane(PlaneId(0)), 80);
        assert!(net.plane_connects_all_hosts(PlaneId(0)));
    }

    #[test]
    fn paper_scale_k16_has_1024_hosts() {
        let ft = FatTree::three_tier(16);
        assert_eq!(ft.n_hosts(), 1024);
        assert_eq!(ft.n_racks(), 128);
    }

    #[test]
    fn two_tier_counts() {
        let ft = FatTree::two_tier(8);
        assert_eq!(ft.n_racks(), 8);
        assert_eq!(ft.hosts_per_rack(), 4);
        assert_eq!(ft.n_hosts(), 32);
        let net = assemble_homogeneous(&ft, 1, &LinkProfile::paper_default());
        // 8 leaves + 4 spines.
        assert_eq!(net.switches_in_plane(PlaneId(0)), 12);
        // Fabric cables: 8 leaves x 4 spines = 32.
        assert_eq!(net.fabric_cables_in_plane(PlaneId(0)), 32);
        assert!(net.plane_connects_all_hosts(PlaneId(0)));
    }

    #[test]
    fn table1_plane_shape() {
        // The 8x parallel design of Table 1: radix-128 chips, 8192 hosts,
        // 128 + 64 = 192 chips per plane.
        let ft = FatTree::two_tier(128);
        assert_eq!(ft.n_hosts(), 8192);
        assert_eq!(ft.n_racks(), 128);
    }

    #[test]
    fn every_tor_degree_matches_k() {
        let ft = FatTree::three_tier(4);
        let net = assemble_homogeneous(&ft, 1, &LinkProfile::paper_default());
        // Each ToR: k/2 hosts + k/2 aggs = k out-links.
        for (id, n) in net.nodes() {
            if matches!(n.kind, NodeKind::Tor { .. }) {
                assert_eq!(net.out_links(id).len(), 4);
            }
        }
    }

    #[test]
    fn multi_plane_fat_tree_keeps_hosts_shared() {
        let ft = FatTree::three_tier(4);
        let net = assemble_homogeneous(&ft, 4, &LinkProfile::paper_default());
        assert_eq!(net.n_hosts(), 16);
        for h in 0..16 {
            // One uplink per plane: 4 out-links per host.
            assert_eq!(net.out_links(net.host_node(HostId(h))).len(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn odd_k_rejected() {
        FatTree::three_tier(5);
    }
}
