//! Deterministic link-churn schedules: ordered sequences of cable down/up
//! events for reconvergence experiments.
//!
//! A production expander fabric sees continuous link churn (optics dying,
//! cables being re-seated, maintenance drains); the paper's failure results
//! (section 5.4) sample static failure fractions, but an incremental routing
//! layer must be exercised with *sequences* of both directions. A
//! [`ChurnSchedule`] is a fixed, seeded, replayable event list — no
//! interarrival times, no Poisson clock: event ordering is the only thing
//! the consumers (router delta repair, warm GK re-solves) care about, and a
//! fixed sequence keeps every experiment bit-reproducible.

use crate::failures::{self, fabric_cables};
use crate::graph::Network;
use crate::ids::LinkId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// One link-state transition of a duplex fabric cable. The carried `LinkId`
/// is the cable's even-direction representative (see
/// [`crate::failures::fabric_cables`]); both directions transition together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The cable goes down (both directions).
    Down(LinkId),
    /// The cable comes back up (both directions).
    Up(LinkId),
}

impl ChurnEvent {
    /// The cable this event touches (even-direction representative).
    pub fn cable(self) -> LinkId {
        match self {
            ChurnEvent::Down(l) | ChurnEvent::Up(l) => LinkId(l.0 & !1),
        }
    }

    /// Apply the transition to the network's link state.
    pub fn apply(self, net: &mut Network) {
        match self {
            ChurnEvent::Down(l) => failures::fail_cable(net, l),
            ChurnEvent::Up(l) => failures::restore_cable(net, l),
        }
    }
}

/// The net effect of one or more churn events on the link set: which cables
/// went down and which came up, as even-direction representatives. This is
/// the unit of work handed to incremental consumers (e.g. the routing
/// layer's delta repair).
#[derive(Debug, Clone, Default)]
pub struct LinkDelta {
    /// Cables that transitioned up -> down.
    pub down: Vec<LinkId>,
    /// Cables that transitioned down -> up.
    pub up: Vec<LinkId>,
}

impl LinkDelta {
    /// Delta of a single event.
    pub fn single(ev: ChurnEvent) -> LinkDelta {
        match ev {
            ChurnEvent::Down(_) => LinkDelta {
                down: vec![ev.cable()],
                up: Vec::new(),
            },
            ChurnEvent::Up(_) => LinkDelta {
                down: Vec::new(),
                up: vec![ev.cable()],
            },
        }
    }

    /// Net delta of an event sequence: the *last* transition per cable wins
    /// (a cable that goes down and comes back within the sequence nets out
    /// to its final state). Cables are deduplicated and sorted.
    pub fn from_events(events: &[ChurnEvent]) -> LinkDelta {
        let mut last: std::collections::BTreeMap<u32, ChurnEvent> =
            std::collections::BTreeMap::new();
        for &ev in events {
            last.insert(ev.cable().0, ev);
        }
        let mut delta = LinkDelta::default();
        for (_, ev) in last {
            match ev {
                ChurnEvent::Down(_) => delta.down.push(ev.cable()),
                ChurnEvent::Up(_) => delta.up.push(ev.cable()),
            }
        }
        delta
    }

    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.down.is_empty() && self.up.is_empty()
    }
}

/// A fixed, ordered sequence of churn events, built deterministically from a
/// seed. Replaying the same schedule against the same network always yields
/// the same link-state trajectory.
#[derive(Debug, Clone)]
pub struct ChurnSchedule {
    /// The events, in application order.
    pub events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// `n_cables` independent single-cable outages: each picked cable goes
    /// down and comes back up before the next is touched — the canonical
    /// "one optic flaps" reconvergence scenario. Cables are sampled without
    /// replacement from the currently-up fabric cables.
    pub fn single_cable_cycles(net: &Network, n_cables: usize, seed: u64) -> ChurnSchedule {
        let mut cables: Vec<LinkId> = fabric_cables(net, None)
            .into_iter()
            .filter(|&c| net.link(c).up)
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        cables.shuffle(&mut rng);
        cables.truncate(n_cables);
        let mut events = Vec::with_capacity(2 * cables.len());
        for c in cables {
            events.push(ChurnEvent::Down(c));
            events.push(ChurnEvent::Up(c));
        }
        ChurnSchedule { events }
    }

    /// A burst failing `fraction` of fabric cables one event at a time, then
    /// restoring them in the same order — the "maintenance drain and
    /// un-drain" scenario. The failed count follows the integer-exact
    /// rounding of [`crate::failures::fraction_count`].
    pub fn burst_then_restore(net: &Network, fraction: f64, seed: u64) -> ChurnSchedule {
        let mut cables: Vec<LinkId> = fabric_cables(net, None)
            .into_iter()
            .filter(|&c| net.link(c).up)
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        cables.shuffle(&mut rng);
        cables.truncate(failures::fraction_count(cables.len(), fraction));
        let mut events: Vec<ChurnEvent> = cables.iter().map(|&c| ChurnEvent::Down(c)).collect();
        events.extend(cables.iter().map(|&c| ChurnEvent::Up(c)));
        ChurnSchedule { events }
    }

    /// A seeded random walk over link states: each step flips a coin between
    /// failing a random up cable and restoring a random currently-failed
    /// one, keeping the concurrent failure count at or below
    /// `fraction_count(total, max_down_fraction)` (min 1). Starts from the
    /// network's current link state, so it composes with prior injections.
    pub fn random_walk(
        net: &Network,
        n_events: usize,
        max_down_fraction: f64,
        seed: u64,
    ) -> ChurnSchedule {
        let all = fabric_cables(net, None);
        let max_down = failures::fraction_count(all.len(), max_down_fraction).max(1);
        let (mut up, mut down): (Vec<LinkId>, Vec<LinkId>) =
            all.into_iter().partition(|&c| net.link(c).up);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let can_fail = !up.is_empty() && down.len() < max_down;
            let can_restore = !down.is_empty();
            let fail = match (can_fail, can_restore) {
                (true, false) => true,
                (false, true) => false,
                (false, false) => break,
                (true, true) => rng.random_bool(0.5),
            };
            if fail {
                let c = up.swap_remove(rng.random_range(0..up.len()));
                events.push(ChurnEvent::Down(c));
                down.push(c);
            } else {
                let c = down.swap_remove(rng.random_range(0..down.len()));
                events.push(ChurnEvent::Up(c));
                up.push(c);
            }
        }
        ChurnSchedule { events }
    }

    /// Apply every event in order, leaving `net` in the post-schedule state.
    pub fn apply_all(&self, net: &mut Network) {
        for &ev in &self.events {
            ev.apply(net);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::assemble_homogeneous;
    use crate::fattree::FatTree;
    use crate::profile::LinkProfile;

    fn net() -> Network {
        assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default())
    }

    #[test]
    fn schedules_are_deterministic_in_seed() {
        let n = net();
        assert_eq!(
            ChurnSchedule::single_cable_cycles(&n, 4, 9).events,
            ChurnSchedule::single_cable_cycles(&n, 4, 9).events
        );
        assert_eq!(
            ChurnSchedule::random_walk(&n, 20, 0.25, 9).events,
            ChurnSchedule::random_walk(&n, 20, 0.25, 9).events
        );
        assert_ne!(
            ChurnSchedule::random_walk(&n, 20, 0.25, 9).events,
            ChurnSchedule::random_walk(&n, 20, 0.25, 10).events
        );
    }

    #[test]
    fn single_cable_cycles_return_to_healthy() {
        let mut n = net();
        let sched = ChurnSchedule::single_cable_cycles(&n, 5, 3);
        assert_eq!(sched.events.len(), 10);
        sched.apply_all(&mut n);
        assert_eq!(failures::failed_fraction(&n), 0.0);
    }

    #[test]
    fn burst_then_restore_nets_to_empty_delta() {
        let mut n = net();
        let sched = ChurnSchedule::burst_then_restore(&n, 0.1, 7);
        assert!(!sched.events.is_empty());
        let delta = LinkDelta::from_events(&sched.events);
        assert!(delta.down.is_empty(), "every failed cable is restored");
        assert!(!delta.up.is_empty());
        sched.apply_all(&mut n);
        assert_eq!(failures::failed_fraction(&n), 0.0);
    }

    #[test]
    fn random_walk_respects_down_bound() {
        let mut n = net();
        let total = fabric_cables(&n, None).len();
        let max_down = failures::fraction_count(total, 0.1).max(1);
        let sched = ChurnSchedule::random_walk(&n, 64, 0.1, 11);
        let mut down = 0usize;
        for &ev in &sched.events {
            match ev {
                ChurnEvent::Down(_) => down += 1,
                ChurnEvent::Up(_) => down -= 1,
            }
            assert!(down <= max_down);
            ev.apply(&mut n);
        }
        let frac = failures::failed_fraction(&n);
        assert!(frac <= max_down as f64 / total as f64 + 1e-12);
    }

    #[test]
    fn delta_last_transition_wins() {
        let c = LinkId(4);
        let events = [ChurnEvent::Down(c), ChurnEvent::Up(c), ChurnEvent::Down(c)];
        let d = LinkDelta::from_events(&events);
        assert_eq!(d.down, vec![c]);
        assert!(d.up.is_empty());
    }

    #[test]
    fn event_cable_canonicalizes_direction() {
        assert_eq!(ChurnEvent::Down(LinkId(5)).cable(), LinkId(4));
        assert_eq!(ChurnEvent::Up(LinkId(4)).cable(), LinkId(4));
    }
}
