//! Component-count accounting for Table 1 of the paper.
//!
//! The table compares three ways to build an 8,192-host network with equal
//! bisection bandwidth out of the same switch silicon:
//!
//! | Architecture      | Tiers | Hops | Chips | Boxes | Links  |
//! |-------------------|-------|------|-------|-------|--------|
//! | Serial (scale-out)| 4     | 7    | 3,584 | 3,584 | 24.6 k |
//! | Serial chassis    | 2     | 7    | 3,584 | 192   | 8.2 k  |
//! | Parallel 8x       | 2     | 3    | 1,536 | 192   | 8.2 k  |
//!
//! The underlying chip has a native radix of 128 low-speed lanes. Serial
//! designs gang g = 8 lanes per high-speed port, yielding a 16-port
//! high-speed switch; the parallel design uses the chip at its native radix.
//! Link counts exclude host attachment links (identical across designs) and
//! the parallel row counts cable *bundles* (the 8 per-plane fibers between
//! the same endpoints share one trunk, section 6.1 of the paper).

/// The switch silicon every design is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipSpec {
    /// Native number of low-speed lanes on the chip.
    pub native_radix: usize,
    /// Lanes ganged per high-speed port in serial designs.
    pub gearbox: usize,
}

impl ChipSpec {
    /// The Table 1 chip: 128 lanes, ganged 8:1 into 16 high-speed ports.
    pub fn table1() -> Self {
        ChipSpec {
            native_radix: 128,
            gearbox: 8,
        }
    }

    /// High-speed port count in serial configurations.
    pub fn serial_radix(&self) -> usize {
        self.native_radix / self.gearbox
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentCount {
    /// Architecture label.
    pub architecture: String,
    /// Tiers of switch *boxes* between host and the top of the fabric.
    pub tiers: usize,
    /// Worst-case switch-chip hops between two hosts.
    pub hops: usize,
    /// Total switch chips.
    pub chips: usize,
    /// Total switch boxes (enclosures).
    pub boxes: usize,
    /// Inter-switch links (cables/bundles); host links excluded.
    pub links: usize,
}

impl ComponentCount {
    /// Format as a Table 1 row.
    pub fn row(&self) -> String {
        format!(
            "{:<20} {:>5} {:>5} {:>6} {:>6} {:>8}",
            self.architecture, self.tiers, self.hops, self.chips, self.boxes, self.links
        )
    }
}

/// Number of folded-Clos levels of radix-r switches needed for `hosts`
/// (2 * (r/2)^L >= hosts).
pub fn clos_levels(hosts: usize, radix: usize) -> usize {
    let half = radix / 2;
    assert!(half >= 2, "radix too small");
    let mut level = 1;
    let mut capacity = 2 * half;
    while capacity < hosts {
        level += 1;
        capacity *= half;
    }
    level
}

/// Serial scale-out fat tree: L tiers of discrete high-speed switches.
///
/// With an exact fit `hosts = 2 (r/2)^L`, an L-level folded Clos uses
/// `(2L - 1) * hosts / r` switches, `(L - 1) * hosts` inter-switch links, and
/// packets traverse `2L - 1` chips end-to-end.
pub fn serial_scale_out(hosts: usize, chip: ChipSpec) -> ComponentCount {
    let r = chip.serial_radix();
    let levels = clos_levels(hosts, r);
    let chips = (2 * levels - 1) * hosts / r;
    ComponentCount {
        architecture: "Serial (scale-out)".into(),
        tiers: levels,
        hops: 2 * levels - 1,
        chips,
        boxes: chips, // one chip per box
        links: (levels - 1) * hosts,
    }
}

/// Serial chassis fat tree: 128-port chassis built internally from the same
/// chips (aggregation chassis: 2-stage, 16 chips; spine chassis: 3-stage
/// non-blocking Clos, 24 chips), as described in section 2.2 of the paper.
pub fn serial_chassis(hosts: usize, chip: ChipSpec) -> ComponentCount {
    let chassis_radix = chip.native_radix; // 128-port chassis
    let half = chassis_radix / 2;
    let agg_boxes = hosts / half; // hosts/64
    let spine_boxes = hosts / chassis_radix; // hosts/128
                                             // Aggregation chassis: 2-stage (blocking) from 16-port chips — 2 stages
                                             // of (R / r) = 8 chips each -> 16 chips.
    let agg_chips_per_box = 2 * (chassis_radix / chip.serial_radix());
    // Spine chassis: 3-stage non-blocking 128-port folded Clos — 3 stages of
    // (R / r) = 8 chips each -> 24 chips.
    let spine_chips_per_box = 3 * (chassis_radix / chip.serial_radix());
    ComponentCount {
        architecture: "Serial chassis".into(),
        tiers: 2,
        // host -> agg (2 chips) -> spine (3 chips) -> agg (2 chips) -> host
        hops: 7,
        chips: agg_boxes * agg_chips_per_box + spine_boxes * spine_chips_per_box,
        boxes: agg_boxes + spine_boxes,
        links: hosts, // one boundary between agg and spine tiers
    }
}

/// Parallel N-way P-Net: each plane is a 2-tier leaf-spine at the chip's
/// native radix; chips of the N planes are co-packaged (N chips per box) and
/// the N per-plane fibers between the same endpoints are bundled into one
/// trunk cable (section 6.1).
pub fn parallel_pnet(hosts: usize, n_planes: usize, chip: ChipSpec) -> ComponentCount {
    let r = chip.native_radix;
    let half = r / 2;
    assert!(
        hosts <= r * half,
        "one 2-tier plane at radix {r} supports at most {} hosts",
        r * half
    );
    let leaves = hosts.div_ceil(half);
    let spines = leaves * half / r; // uplinks / spine radix
    let chips_per_plane = leaves + spines;
    ComponentCount {
        architecture: format!("Parallel {n_planes}x"),
        tiers: 2,
        hops: 3, // leaf -> spine -> leaf
        chips: n_planes * chips_per_plane,
        boxes: chips_per_plane, // N chips co-packaged per box position
        links: leaves * half,   // bundled trunks, one per (leaf, uplink)
    }
}

/// All three Table 1 rows for the paper's 8,192-host exemplar.
pub fn table1() -> Vec<ComponentCount> {
    let chip = ChipSpec::table1();
    vec![
        serial_scale_out(8192, chip),
        serial_chassis(8192, chip),
        parallel_pnet(8192, 8, chip),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clos_levels_examples() {
        assert_eq!(clos_levels(16, 4), 3); // 2*2^3 = 16
        assert_eq!(clos_levels(8192, 16), 4); // 2*8^4 = 8192
        assert_eq!(clos_levels(8192, 128), 2); // 2*64^2 = 8192
        assert_eq!(clos_levels(2, 4), 1);
    }

    #[test]
    fn table1_scale_out_row() {
        let row = serial_scale_out(8192, ChipSpec::table1());
        assert_eq!(row.tiers, 4);
        assert_eq!(row.hops, 7);
        assert_eq!(row.chips, 3584);
        assert_eq!(row.boxes, 3584);
        assert_eq!(row.links, 24_576); // "24.6 k"
    }

    #[test]
    fn table1_chassis_row() {
        let row = serial_chassis(8192, ChipSpec::table1());
        assert_eq!(row.tiers, 2);
        assert_eq!(row.hops, 7);
        assert_eq!(row.chips, 3584); // 128*16 + 64*24
        assert_eq!(row.boxes, 192); // 128 agg + 64 spine
        assert_eq!(row.links, 8192); // "8.2 k"
    }

    #[test]
    fn table1_parallel_row() {
        let row = parallel_pnet(8192, 8, ChipSpec::table1());
        assert_eq!(row.tiers, 2);
        assert_eq!(row.hops, 3);
        assert_eq!(row.chips, 1536); // 8 * (128 + 64)
        assert_eq!(row.boxes, 192);
        assert_eq!(row.links, 8192); // "8.2 k" bundled
    }

    #[test]
    fn chips_saved_by_parallelism() {
        // The paper's headline: parallel needs fewer chips than either serial
        // design at equal bisection bandwidth.
        let rows = table1();
        assert!(rows[2].chips < rows[0].chips);
        assert!(rows[2].chips < rows[1].chips);
        assert!(rows[2].hops < rows[0].hops);
    }

    #[test]
    fn chassis_chip_structure() {
        let chip = ChipSpec::table1();
        assert_eq!(chip.serial_radix(), 16);
        // 128 agg boxes of 16 chips and 64 spine boxes of 24 chips.
        let row = serial_chassis(8192, chip);
        assert_eq!(row.chips, 128 * 16 + 64 * 24);
    }

    #[test]
    fn smaller_parallel_counts_scale_linearly() {
        let chip = ChipSpec::table1();
        let p2 = parallel_pnet(8192, 2, chip);
        let p4 = parallel_pnet(8192, 4, chip);
        assert_eq!(p4.chips, 2 * p2.chips);
        assert_eq!(p4.boxes, p2.boxes); // co-packaging keeps box count fixed
        assert_eq!(p4.links, p2.links); // bundles keep cable count fixed
    }

    #[test]
    fn row_formatting_is_stable() {
        let row = parallel_pnet(8192, 8, ChipSpec::table1());
        let s = row.row();
        assert!(s.contains("Parallel 8x"));
        assert!(s.contains("1536"));
    }
}
