//! Jellyfish: random-regular-graph topologies (Singla et al., NSDI'12 \[38\]).
//!
//! A Jellyfish plane is a random d-regular graph among the ToR switches, with
//! h hosts per ToR. The paper's heterogeneous P-Nets instantiate a
//! *differently seeded* Jellyfish per plane; the homogeneous variant reuses
//! the same seed so every plane is an identical copy.
//!
//! Construction follows the Jellyfish paper: repeatedly join random pairs of
//! switches with free ports; when blocked (remaining free ports only between
//! already-adjacent or identical switches), break a random existing edge and
//! reconnect. We additionally verify connectivity and re-seed in the (rare)
//! event of a disconnected result.

use crate::builder::PlaneBuilder;
use crate::graph::{Network, NodeKind};
use crate::ids::{NodeId, PlaneId, RackId};
use crate::profile::LinkProfile;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

/// A Jellyfish plane builder.
#[derive(Debug, Clone, Copy)]
pub struct Jellyfish {
    /// Number of ToR switches.
    pub n_tors: usize,
    /// Network degree of each ToR (ports used for switch-to-switch links).
    pub degree: usize,
    /// Hosts attached to each ToR.
    pub hosts_per_tor: usize,
    /// RNG seed. Different seeds yield different random graphs — this is the
    /// heterogeneity knob of the paper's heterogeneous P-Nets.
    pub seed: u64,
}

impl Jellyfish {
    /// Create a builder; `n_tors * degree` must be even (handshake lemma) and
    /// `degree < n_tors` (simple graph).
    pub fn new(n_tors: usize, degree: usize, hosts_per_tor: usize, seed: u64) -> Self {
        assert!(n_tors >= 2, "need at least two ToRs");
        assert!(degree >= 1, "degree must be positive");
        assert!(
            degree < n_tors,
            "degree must be < n_tors for a simple graph"
        );
        assert!(
            (n_tors * degree).is_multiple_of(2),
            "n_tors * degree must be even (handshake lemma)"
        );
        Jellyfish {
            n_tors,
            degree,
            hosts_per_tor,
            seed,
        }
    }

    /// The paper's packet-simulation scale: 686 hosts as 98 ToRs x 7 hosts
    /// with 7 network ports each (14-port switches, as in the k=14 fat tree
    /// equivalence of the Jellyfish paper).
    pub fn paper_686(seed: u64) -> Self {
        Jellyfish::new(98, 7, 7, seed)
    }

    /// The paper's LP scale: "1024-host equivalent" Jellyfish built from the
    /// same equipment as a k=16 fat tree — 128 ToRs, 8 hosts and 8 network
    /// ports per ToR.
    pub fn paper_1024(seed: u64) -> Self {
        Jellyfish::new(128, 8, 8, seed)
    }

    /// Rack-level variant of [`Jellyfish::paper_1024`] used for Figure 7's
    /// 128-rack ideal-throughput experiment.
    pub fn paper_128_racks(seed: u64) -> Self {
        Jellyfish::new(128, 8, 1, seed)
    }

    /// Total hosts of one plane.
    pub fn n_hosts(&self) -> usize {
        self.n_tors * self.hosts_per_tor
    }

    /// Generate the random regular adjacency (pairs of ToR indices).
    /// Deterministic in `self.seed`.
    pub fn generate_edges(&self) -> Vec<(usize, usize)> {
        // Retry with derived seeds until connected (virtually always the
        // first attempt: random regular graphs with d >= 3 are connected
        // w.h.p., so 64 reseeded attempts make failure astronomically
        // unlikely).
        (0..64u64)
            .find_map(|attempt| {
                let seed = self
                    .seed
                    .wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let edges = random_regular_graph(self.n_tors, self.degree, seed);
                let regular = edges.len() == self.n_tors * self.degree / 2;
                (regular && is_connected(self.n_tors, &edges)).then_some(edges)
            })
            .expect("invariant: 64 reseeded attempts always yield a connected regular graph")
    }
}

/// Random d-regular simple graph via the Jellyfish incremental procedure.
fn random_regular_graph(n: usize, d: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut free: Vec<usize> = vec![d; n];
    let mut adj: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * d / 2);

    let key = |a: usize, b: usize| if a < b { (a, b) } else { (b, a) };

    loop {
        // Candidate switches with free ports.
        let mut open: Vec<usize> = (0..n).filter(|&v| free[v] > 0).collect();
        if open.is_empty() {
            break;
        }
        // Try to find a random valid pair among open switches.
        open.shuffle(&mut rng);
        let mut paired = false;
        'outer: for i in 0..open.len() {
            for j in (i + 1)..open.len() {
                let (a, b) = (open[i], open[j]);
                if !adj.contains(&key(a, b)) {
                    adj.insert(key(a, b));
                    edges.push(key(a, b));
                    free[a] -= 1;
                    free[b] -= 1;
                    paired = true;
                    break 'outer;
                }
            }
        }
        if paired {
            continue;
        }
        // Blocked: every pair of switches with free ports is already
        // adjacent. Repair with the Jellyfish edge swap. Two sub-cases:
        //
        // (a) some switch x holds >= 2 free ports: break a random edge
        //     (u, v) not incident nor adjacent to x and add (x,u), (x,v);
        // (b) the leftovers are single free ports on >= 2 mutually adjacent
        //     switches x, y: break an edge (u, v) with x !~ u and y !~ v and
        //     add (x,u), (y,v).
        //
        // (Total free-port count is even by the handshake lemma, so a lone
        // single free port cannot occur.)
        if let Some(&x) = open.iter().find(|&&v| free[v] >= 2) {
            let candidates: Vec<usize> = (0..edges.len())
                .filter(|&e| {
                    let (u, v) = edges[e];
                    u != x && v != x && !adj.contains(&key(x, u)) && !adj.contains(&key(x, v))
                })
                .collect();
            if candidates.is_empty() {
                break; // let the connectivity retry pick a fresh seed
            }
            let e = candidates[rng.random_range(0..candidates.len())];
            let (u, v) = edges.swap_remove(e);
            adj.remove(&key(u, v));
            adj.insert(key(x, u));
            adj.insert(key(x, v));
            edges.push(key(x, u));
            edges.push(key(x, v));
            free[x] -= 2;
        } else {
            debug_assert!(open.len() >= 2, "odd total free-port count");
            let (x, y) = (open[0], open[1]);
            // Find (u, v) with both orientations considered.
            let mut found = None;
            let mut order: Vec<usize> = (0..edges.len()).collect();
            order.shuffle(&mut rng);
            for e in order {
                let (u, v) = edges[e];
                if u == x || u == y || v == x || v == y {
                    continue;
                }
                if !adj.contains(&key(x, u)) && !adj.contains(&key(y, v)) {
                    found = Some((e, u, v));
                    break;
                }
                if !adj.contains(&key(x, v)) && !adj.contains(&key(y, u)) {
                    found = Some((e, v, u));
                    break;
                }
            }
            let Some((e, u, v)) = found else {
                break; // let the connectivity retry pick a fresh seed
            };
            let removed = edges.swap_remove(e);
            adj.remove(&removed);
            adj.insert(key(x, u));
            adj.insert(key(y, v));
            edges.push(key(x, u));
            edges.push(key(y, v));
            free[x] -= 1;
            free[y] -= 1;
        }
    }
    edges
}

fn is_connected(n: usize, edges: &[(usize, usize)]) -> bool {
    if n == 0 {
        return true;
    }
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count == n
}

impl PlaneBuilder for Jellyfish {
    fn n_racks(&self) -> usize {
        self.n_tors
    }

    fn hosts_per_rack(&self) -> usize {
        self.hosts_per_tor
    }

    fn build_plane(&self, net: &mut Network, plane: PlaneId, profile: &LinkProfile) -> Vec<NodeId> {
        let tors: Vec<NodeId> = (0..self.n_tors)
            .map(|r| {
                net.add_switch(
                    NodeKind::Tor {
                        rack: RackId(r as u32),
                    },
                    plane,
                )
            })
            .collect();
        for (a, b) in self.generate_edges() {
            net.add_duplex_link(
                tors[a],
                tors[b],
                profile.link_speed_bps,
                profile.fabric_delay_ps,
                plane,
            );
        }
        tors
    }

    fn describe(&self) -> String {
        format!(
            "jellyfish(tors={}, d={}, h={}, seed={})",
            self.n_tors, self.degree, self.hosts_per_tor, self.seed
        )
    }
}

/// Incrementally expand a (possibly multi-plane) Jellyfish P-Net with one
/// new rack (section 6.1: "the incremental expansion support of
/// expander-based networks means operators can more easily scale up their
/// network").
///
/// The classic Jellyfish expansion, applied per plane: create the rack's
/// hosts once and, in *every* plane, a new ToR; then for each pair of the
/// new ToR's ports, pick a random existing fabric cable of that plane,
/// unplug it, and connect both freed ends to the new ToR. Unplugged cables
/// are modelled as failed links (the arena keeps them for id stability);
/// new cables are appended.
///
/// Returns the new rack id. `degree` must be even (ports are spliced in
/// pairs) and each plane must contain `degree/2` vertex-disjoint cables.
pub fn expand_rack(
    net: &mut crate::graph::Network,
    degree: usize,
    hosts: usize,
    profile: &crate::profile::LinkProfile,
    seed: u64,
) -> crate::ids::RackId {
    use crate::failures;
    use crate::graph::NodeKind;
    use rand::seq::SliceRandom;

    assert!(
        degree >= 2 && degree.is_multiple_of(2),
        "degree must be even, >= 2"
    );
    let rack = crate::ids::RackId(net.n_racks() as u32);
    let host_nodes: Vec<crate::ids::NodeId> = (0..hosts).map(|_| net.add_host(rack)).collect();

    for plane in net.planes().collect::<Vec<_>>() {
        let tor = net.add_switch(NodeKind::Tor { rack }, plane);
        for &h in &host_nodes {
            net.add_duplex_link(h, tor, profile.link_speed_bps, profile.host_delay_ps, plane);
        }

        // Candidate cables: up fabric cables of this plane, not touching tor.
        let mut cables = failures::fabric_cables(net, Some(plane));
        cables.retain(|&c| {
            let l = net.link(c);
            l.up && l.src != tor && l.dst != tor
        });
        let need = degree / 2;
        assert!(
            cables.len() >= need,
            "plane {plane} has only {} cables; need {need}",
            cables.len()
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (plane.0 as u64) << 32);
        cables.shuffle(&mut rng);
        // Disjoint cables so the new ToR gets `degree` distinct neighbors.
        let mut used: BTreeSet<crate::ids::NodeId> = BTreeSet::new();
        let mut picked = Vec::with_capacity(need);
        for c in cables {
            let l = *net.link(c);
            if used.contains(&l.src) || used.contains(&l.dst) {
                continue;
            }
            used.insert(l.src);
            used.insert(l.dst);
            picked.push(c);
            if picked.len() == need {
                break;
            }
        }
        assert!(
            picked.len() == need,
            "could not find {need} disjoint cables to splice in {plane}"
        );
        for c in picked {
            let l = *net.link(c);
            failures::fail_cable(net, c); // unplug
            net.add_duplex_link(
                l.src,
                tor,
                profile.link_speed_bps,
                profile.fabric_delay_ps,
                plane,
            );
            net.add_duplex_link(
                l.dst,
                tor,
                profile.link_speed_bps,
                profile.fabric_delay_ps,
                plane,
            );
        }
    }
    rack
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::assemble_homogeneous;

    #[test]
    fn regular_and_connected() {
        let jf = Jellyfish::new(20, 4, 2, 7);
        let edges = jf.generate_edges();
        assert_eq!(edges.len(), 20 * 4 / 2);
        let mut deg = vec![0usize; 20];
        for &(a, b) in &edges {
            assert_ne!(a, b, "self loop");
            deg[a] += 1;
            deg[b] += 1;
        }
        assert!(deg.iter().all(|&d| d == 4), "not 4-regular: {deg:?}");
        assert!(is_connected(20, &edges));
    }

    #[test]
    fn no_duplicate_edges() {
        let jf = Jellyfish::new(30, 5, 1, 42);
        let edges = jf.generate_edges();
        let set: BTreeSet<_> = edges.iter().collect();
        assert_eq!(set.len(), edges.len());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Jellyfish::new(24, 4, 1, 5).generate_edges();
        let b = Jellyfish::new(24, 4, 1, 5).generate_edges();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Jellyfish::new(24, 4, 1, 5).generate_edges();
        let b = Jellyfish::new(24, 4, 1, 6).generate_edges();
        assert_ne!(a, b);
    }

    #[test]
    fn builds_valid_network() {
        let jf = Jellyfish::new(12, 3, 2, 99);
        let net = assemble_homogeneous(&jf, 1, &LinkProfile::paper_default());
        assert_eq!(net.n_hosts(), 24);
        assert_eq!(net.switches_in_plane(PlaneId(0)), 12);
        assert_eq!(net.fabric_cables_in_plane(PlaneId(0)), 12 * 3 / 2);
        net.validate().unwrap();
        assert!(net.plane_connects_all_hosts(PlaneId(0)));
    }

    #[test]
    fn paper_686_shape() {
        let jf = Jellyfish::paper_686(1);
        assert_eq!(jf.n_hosts(), 686);
        assert_eq!(jf.n_tors, 98);
    }

    #[test]
    fn paper_1024_shape() {
        let jf = Jellyfish::paper_1024(1);
        assert_eq!(jf.n_hosts(), 1024);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_stub_count_rejected() {
        Jellyfish::new(5, 3, 1, 0);
    }

    #[test]
    fn incremental_expansion_keeps_connectivity_and_degree() {
        use crate::ids::{HostId, PlaneId};
        let profile = LinkProfile::paper_default();
        let mut net = assemble_homogeneous(&Jellyfish::new(12, 4, 2, 3), 2, &profile);
        let before_hosts = net.n_hosts();
        let rack = expand_rack(&mut net, 4, 2, &profile, 99);
        assert_eq!(net.n_hosts(), before_hosts + 2);
        assert_eq!(net.n_racks(), 13);
        net.validate().unwrap();
        for p in net.planes() {
            assert!(net.plane_connects_all_hosts(p), "plane {p} broke");
            // New ToR has `degree` live fabric neighbors + 2 host links.
            let tor = net.tor_of_rack(rack, p).unwrap();
            let live_fabric = net
                .out_links_in_plane(tor, p)
                .filter(|&l| net.node(net.link(l).dst).kind.is_switch())
                .count();
            assert_eq!(live_fabric, 4);
        }
        // New hosts have one uplink per plane.
        let new_host = HostId((before_hosts) as u32);
        assert!(net.host_uplink(new_host, PlaneId(0)).is_some());
        assert!(net.host_uplink(new_host, PlaneId(1)).is_some());
        // Existing ToRs keep their degree: splice removes one cable per two
        // new ports, so every touched ToR lost one neighbor and gained the
        // new ToR.
        for r in 0..12u32 {
            for p in net.planes() {
                let tor = net.tor_of_rack(crate::ids::RackId(r), p).unwrap();
                let live = net
                    .out_links_in_plane(tor, p)
                    .filter(|&l| net.node(net.link(l).dst).kind.is_switch())
                    .count();
                assert_eq!(live, 4, "rack {r} degree changed in {p}");
            }
        }
    }

    #[test]
    fn repeated_expansion_grows_the_fabric() {
        let profile = LinkProfile::paper_default();
        let mut net = assemble_homogeneous(&Jellyfish::new(10, 4, 1, 1), 1, &profile);
        for i in 0..5 {
            expand_rack(&mut net, 4, 1, &profile, 100 + i);
        }
        assert_eq!(net.n_racks(), 15);
        assert_eq!(net.n_hosts(), 15);
        assert!(net.plane_connects_all_hosts(crate::ids::PlaneId(0)));
        net.validate().unwrap();
    }

    #[test]
    fn paper_scale_generation_is_regular() {
        // The real experiment scale must come out exactly d-regular too.
        let jf = Jellyfish::paper_686(3);
        let edges = jf.generate_edges();
        let mut deg = vec![0usize; jf.n_tors];
        for &(a, b) in &edges {
            deg[a] += 1;
            deg[b] += 1;
        }
        assert!(deg.iter().all(|&d| d == jf.degree));
    }
}
