//! The arena network graph shared by every topology, router, and simulator in
//! this workspace.
//!
//! A [`Network`] stores nodes (hosts and switches) and *directed* links in
//! flat vectors. Physical cables are added with [`Network::add_duplex_link`],
//! which allocates the two directions as an adjacent pair so that
//! [`LinkId::reverse`] is a constant-time bit flip.
//!
//! Multi-plane networks (P-Nets) are represented in a single `Network`:
//! switches and links carry the [`PlaneId`] they belong to, while hosts are
//! shared by all planes. Routing code that must stay within one plane simply
//! filters links by plane — which is exactly the paper's forwarding
//! constraint ("once a packet leaves an end host and enters a particular
//! dataplane, it stays within the dataplane until reaching the destination
//! host").

use crate::ids::{HostId, LinkId, NodeId, PlaneId, RackId};
use serde::{Deserialize, Serialize};

/// What role a node plays in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An end system. Hosts belong to every plane (they are where planes meet).
    Host { host: HostId, rack: RackId },
    /// Top-of-rack switch: the first switch hop of a plane.
    Tor { rack: RackId },
    /// Aggregation-tier switch (fat-tree pods).
    Agg { pod: u32 },
    /// Core/spine-tier switch.
    Core,
}

impl NodeKind {
    /// True if this node is an end host.
    #[inline]
    pub fn is_host(self) -> bool {
        matches!(self, NodeKind::Host { .. })
    }

    /// True if this node is any kind of switch.
    #[inline]
    pub fn is_switch(self) -> bool {
        !self.is_host()
    }
}

/// A node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Role of the node.
    pub kind: NodeKind,
    /// The plane a switch belongs to. `None` for hosts, which are members of
    /// all planes.
    pub plane: Option<PlaneId>,
}

/// A directed link. Capacities are in bits per second and delays in
/// picoseconds, matching the simulator's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Transmitting endpoint.
    pub src: NodeId,
    /// Receiving endpoint.
    pub dst: NodeId,
    /// Line rate in bits per second.
    pub capacity_bps: u64,
    /// Propagation delay in picoseconds.
    pub delay_ps: u64,
    /// The plane this link belongs to. Host uplinks/downlinks belong to the
    /// plane of the switch they attach to.
    pub plane: PlaneId,
    /// False if the link has been failed (see [`crate::failures`]).
    pub up: bool,
}

/// Convert gigabits per second to bits per second.
#[inline]
pub const fn gbps(g: u64) -> u64 {
    g * 1_000_000_000
}

/// Convert microseconds to picoseconds.
#[inline]
pub const fn micros_ps(us: u64) -> u64 {
    us * 1_000_000
}

/// Convert nanoseconds to picoseconds.
#[inline]
pub const fn nanos_ps(ns: u64) -> u64 {
    ns * 1_000
}

/// The arena graph.
///
/// Invariants (checked by [`Network::validate`]):
/// * links come in reverse pairs `(2k, 2k+1)` with mirrored endpoints,
/// * link endpoints are valid node ids,
/// * hosts are connected only to ToR switches,
/// * a switch's links all carry the switch's own plane id.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Outgoing links per node.
    out_adj: Vec<Vec<LinkId>>,
    /// host index -> node id
    hosts: Vec<NodeId>,
    /// number of planes in the network (>= 1 once built)
    n_planes: u16,
    /// rack count (max rack id + 1)
    n_racks: u32,
}

impl Network {
    /// Create an empty network expecting `n_planes` planes.
    pub fn new(n_planes: u16) -> Self {
        assert!(n_planes >= 1, "a network needs at least one plane");
        Network {
            n_planes,
            ..Default::default()
        }
    }

    /// Number of planes.
    #[inline]
    pub fn n_planes(&self) -> u16 {
        self.n_planes
    }

    /// All plane ids.
    pub fn planes(&self) -> impl Iterator<Item = PlaneId> {
        (0..self.n_planes).map(PlaneId)
    }

    /// Number of nodes (hosts + switches).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    #[inline]
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Number of hosts.
    #[inline]
    pub fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of racks.
    #[inline]
    pub fn n_racks(&self) -> usize {
        self.n_racks as usize
    }

    /// Add a host in `rack`; returns its node id. Host ids are assigned
    /// densely in insertion order.
    pub fn add_host(&mut self, rack: RackId) -> NodeId {
        let host = HostId(self.hosts.len() as u32);
        let id = self.push_node(Node {
            kind: NodeKind::Host { host, rack },
            plane: None,
        });
        self.hosts.push(id);
        self.n_racks = self.n_racks.max(rack.0 + 1);
        id
    }

    /// Add a switch belonging to `plane`.
    pub fn add_switch(&mut self, kind: NodeKind, plane: PlaneId) -> NodeId {
        assert!(kind.is_switch(), "add_switch called with a host kind");
        assert!(plane.0 < self.n_planes, "plane out of range");
        if let NodeKind::Tor { rack } = kind {
            self.n_racks = self.n_racks.max(rack.0 + 1);
        }
        self.push_node(Node {
            kind,
            plane: Some(plane),
        })
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.out_adj.push(Vec::new());
        id
    }

    /// Add a duplex (bidirectional) link between `a` and `b`. Returns the
    /// pair of directed links `(a->b, b->a)`.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_bps: u64,
        delay_ps: u64,
        plane: PlaneId,
    ) -> (LinkId, LinkId) {
        assert!(a != b, "self-loops are not allowed");
        assert!(plane.0 < self.n_planes, "plane out of range");
        assert!(capacity_bps > 0, "links need positive capacity");
        let fwd = LinkId(self.links.len() as u32);
        debug_assert_eq!(fwd.0 % 2, 0, "duplex links must start on even ids");
        self.links.push(Link {
            src: a,
            dst: b,
            capacity_bps,
            delay_ps,
            plane,
            up: true,
        });
        let rev = LinkId(self.links.len() as u32);
        self.links.push(Link {
            src: b,
            dst: a,
            capacity_bps,
            delay_ps,
            plane,
            up: true,
        });
        self.out_adj[a.index()].push(fwd);
        self.out_adj[b.index()].push(rev);
        (fwd, rev)
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Link accessor.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Mutable link accessor (used by failure injection).
    #[inline]
    pub(crate) fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.index()]
    }

    /// All nodes with ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// All links with ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Outgoing links of a node (including failed links; callers filter with
    /// [`Link::up`] as appropriate).
    #[inline]
    pub fn out_links(&self, id: NodeId) -> &[LinkId] {
        &self.out_adj[id.index()]
    }

    /// Outgoing links of `node` that are up and belong to `plane`.
    pub fn out_links_in_plane<'a>(
        &'a self,
        node: NodeId,
        plane: PlaneId,
    ) -> impl Iterator<Item = LinkId> + 'a {
        self.out_adj[node.index()]
            .iter()
            .copied()
            .filter(move |&l| {
                let link = self.link(l);
                link.up && link.plane == plane
            })
    }

    /// The node id of host `h`.
    #[inline]
    pub fn host_node(&self, h: HostId) -> NodeId {
        self.hosts[h.index()]
    }

    /// All host node ids, in host-id order.
    #[inline]
    pub fn host_nodes(&self) -> &[NodeId] {
        &self.hosts
    }

    /// The host id of a node, if it is a host.
    pub fn host_of_node(&self, n: NodeId) -> Option<HostId> {
        match self.node(n).kind {
            NodeKind::Host { host, .. } => Some(host),
            _ => None,
        }
    }

    /// The rack of a host.
    pub fn rack_of_host(&self, h: HostId) -> RackId {
        match self.node(self.host_node(h)).kind {
            NodeKind::Host { rack, .. } => rack,
            _ => unreachable!("host table points at a non-host node"),
        }
    }

    /// The host's uplink into `plane` (host -> ToR direction), if the host
    /// has one and it is up.
    pub fn host_uplink(&self, h: HostId, plane: PlaneId) -> Option<LinkId> {
        let node = self.host_node(h);
        self.out_links_in_plane(node, plane).next()
    }

    /// Hosts grouped by rack, in rack order.
    pub fn hosts_by_rack(&self) -> Vec<Vec<HostId>> {
        let mut racks = vec![Vec::new(); self.n_racks()];
        for (i, _) in self.hosts.iter().enumerate() {
            let h = HostId(i as u32);
            racks[self.rack_of_host(h).index()].push(h);
        }
        racks
    }

    /// The ToR switch of `rack` in `plane`, if present.
    pub fn tor_of_rack(&self, rack: RackId, plane: PlaneId) -> Option<NodeId> {
        // Linear scan is fine: used in construction and tests, not hot paths.
        self.nodes().find_map(|(id, n)| match n.kind {
            NodeKind::Tor { rack: r } if r == rack && n.plane == Some(plane) => Some(id),
            _ => None,
        })
    }

    /// Total one-directional fabric capacity of a plane (sum over up links).
    pub fn plane_capacity_bps(&self, plane: PlaneId) -> u128 {
        self.links
            .iter()
            .filter(|l| l.plane == plane && l.up)
            .map(|l| l.capacity_bps as u128)
            .sum()
    }

    /// Count duplex cables (directed links / 2) in a plane, excluding host
    /// attachment links.
    pub fn fabric_cables_in_plane(&self, plane: PlaneId) -> usize {
        self.links
            .iter()
            .filter(|l| {
                l.plane == plane
                    && self.node(l.src).kind.is_switch()
                    && self.node(l.dst).kind.is_switch()
            })
            .count()
            / 2
    }

    /// Check structural invariants; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (i, l) in self.links.iter().enumerate() {
            let id = LinkId(i as u32);
            let rev = self.link(id.reverse());
            if rev.src != l.dst || rev.dst != l.src {
                return Err(format!("{id}: reverse pair endpoints not mirrored"));
            }
            if l.src.index() >= self.nodes.len() || l.dst.index() >= self.nodes.len() {
                return Err(format!("{id}: dangling endpoint"));
            }
            if l.plane.0 >= self.n_planes {
                return Err(format!("{id}: plane out of range"));
            }
            let sk = self.node(l.src);
            let dk = self.node(l.dst);
            if sk.kind.is_host() && dk.kind.is_host() {
                return Err(format!("{id}: host-to-host link"));
            }
            if sk.kind.is_host() && !matches!(dk.kind, NodeKind::Tor { .. }) {
                return Err(format!("{id}: host attached to non-ToR switch"));
            }
            for end in [sk, dk] {
                if let Some(p) = end.plane {
                    if p != l.plane {
                        return Err(format!("{id}: crosses planes ({p} vs {})", l.plane));
                    }
                }
            }
        }
        for (n, adj) in self.out_adj.iter().enumerate() {
            for &l in adj {
                if self.link(l).src != NodeId(n as u32) {
                    return Err(format!("adjacency of n{n} lists foreign link {l}"));
                }
            }
        }
        for (i, &n) in self.hosts.iter().enumerate() {
            match self.node(n).kind {
                NodeKind::Host { host, .. } if host == HostId(i as u32) => {}
                _ => return Err(format!("host table slot {i} does not match node")),
            }
        }
        Ok(())
    }

    /// Switch count per plane, for structural assertions.
    pub fn switches_in_plane(&self, plane: PlaneId) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_switch() && n.plane == Some(plane))
            .count()
    }

    /// Whether every host can reach every other host inside `plane`
    /// (traversing only up links of that plane). Runs one BFS from the first
    /// host; sufficient because the host set is symmetric under the builders.
    pub fn plane_connects_all_hosts(&self, plane: PlaneId) -> bool {
        let Some(&start) = self.hosts.first() else {
            return true;
        };
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for l in self.out_links_in_plane(u, plane) {
                let v = self.link(l).dst;
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        self.hosts.iter().all(|h| seen[h.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        // 2 hosts, 2 racks, 1 ToR per rack, a cable between the ToRs.
        let mut net = Network::new(1);
        let h0 = net.add_host(RackId(0));
        let h1 = net.add_host(RackId(1));
        let t0 = net.add_switch(NodeKind::Tor { rack: RackId(0) }, PlaneId(0));
        let t1 = net.add_switch(NodeKind::Tor { rack: RackId(1) }, PlaneId(0));
        net.add_duplex_link(h0, t0, gbps(100), nanos_ps(100), PlaneId(0));
        net.add_duplex_link(h1, t1, gbps(100), nanos_ps(100), PlaneId(0));
        net.add_duplex_link(t0, t1, gbps(100), micros_ps(1), PlaneId(0));
        net
    }

    #[test]
    fn build_and_validate_tiny() {
        let net = tiny();
        assert_eq!(net.n_hosts(), 2);
        assert_eq!(net.n_racks(), 2);
        assert_eq!(net.n_links(), 6);
        net.validate().unwrap();
        assert!(net.plane_connects_all_hosts(PlaneId(0)));
    }

    #[test]
    fn duplex_pairs_mirror() {
        let net = tiny();
        for (id, l) in net.links() {
            let r = net.link(id.reverse());
            assert_eq!(r.src, l.dst);
            assert_eq!(r.dst, l.src);
            assert_eq!(r.capacity_bps, l.capacity_bps);
        }
    }

    #[test]
    fn host_uplink_found() {
        let net = tiny();
        let l = net.host_uplink(HostId(0), PlaneId(0)).unwrap();
        assert_eq!(net.link(l).src, net.host_node(HostId(0)));
        assert!(net.node(net.link(l).dst).kind.is_switch());
    }

    #[test]
    fn hosts_by_rack_partitions() {
        let net = tiny();
        let racks = net.hosts_by_rack();
        assert_eq!(racks.len(), 2);
        assert_eq!(racks[0], vec![HostId(0)]);
        assert_eq!(racks[1], vec![HostId(1)]);
    }

    #[test]
    fn tor_lookup() {
        let net = tiny();
        let t = net.tor_of_rack(RackId(1), PlaneId(0)).unwrap();
        assert!(matches!(net.node(t).kind, NodeKind::Tor { rack } if rack == RackId(1)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut net = Network::new(1);
        let h = net.add_host(RackId(0));
        net.add_duplex_link(h, h, gbps(1), 0, PlaneId(0));
    }

    #[test]
    #[should_panic(expected = "plane out of range")]
    fn plane_bounds_checked() {
        let mut net = Network::new(1);
        net.add_switch(NodeKind::Core, PlaneId(1));
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(gbps(100), 100_000_000_000);
        assert_eq!(micros_ps(1), 1_000_000);
        assert_eq!(nanos_ps(120), 120_000);
    }

    #[test]
    fn disconnected_plane_detected() {
        let mut net = Network::new(1);
        let h0 = net.add_host(RackId(0));
        let h1 = net.add_host(RackId(1));
        let t0 = net.add_switch(NodeKind::Tor { rack: RackId(0) }, PlaneId(0));
        let t1 = net.add_switch(NodeKind::Tor { rack: RackId(1) }, PlaneId(0));
        net.add_duplex_link(h0, t0, gbps(1), 0, PlaneId(0));
        net.add_duplex_link(h1, t1, gbps(1), 0, PlaneId(0));
        // No ToR-ToR cable: hosts cannot reach each other.
        assert!(!net.plane_connects_all_hosts(PlaneId(0)));
    }

    #[test]
    fn plane_capacity_sums_up_links() {
        let net = tiny();
        // 6 directed links at 100G each.
        assert_eq!(net.plane_capacity_bps(PlaneId(0)), 6 * gbps(100) as u128);
    }

    #[test]
    fn fabric_cables_exclude_host_links() {
        let net = tiny();
        assert_eq!(net.fabric_cables_in_plane(PlaneId(0)), 1);
    }
}
