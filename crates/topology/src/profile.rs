//! Physical link parameters shared by all plane builders.

use crate::graph::{gbps, micros_ps, nanos_ps};

/// Speeds and delays applied to the links of one plane.
///
/// The paper's defaults: each plane runs 100 Gb/s links; serialization of an
/// MTU packet at 100G is 120 ns while propagation is ~1 µs per switch hop
/// (200 m of fiber), so propagation dominates. Host attachment links are
/// short intra-rack cables (100 ns here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkProfile {
    /// Line rate of every link in the plane (host uplinks and fabric links),
    /// in bits per second.
    pub link_speed_bps: u64,
    /// Propagation delay of host-to-ToR links, picoseconds.
    pub host_delay_ps: u64,
    /// Propagation delay of switch-to-switch links, picoseconds.
    pub fabric_delay_ps: u64,
}

impl LinkProfile {
    /// Paper-default delays with the given line rate in Gb/s.
    pub fn speed_gbps(g: u64) -> Self {
        LinkProfile {
            link_speed_bps: gbps(g),
            host_delay_ps: nanos_ps(100),
            fabric_delay_ps: micros_ps(1),
        }
    }

    /// The paper's baseline plane speed: 100 Gb/s.
    pub fn paper_default() -> Self {
        Self::speed_gbps(100)
    }

    /// Scale the line rate by `factor` (used for "serial high-bandwidth"
    /// comparison networks running at N x 100G).
    pub fn scaled(self, factor: u64) -> Self {
        LinkProfile {
            link_speed_bps: self.link_speed_bps * factor,
            ..self
        }
    }
}

impl Default for LinkProfile {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_100g() {
        let p = LinkProfile::paper_default();
        assert_eq!(p.link_speed_bps, 100_000_000_000);
        assert_eq!(p.fabric_delay_ps, 1_000_000);
    }

    #[test]
    fn scaling_multiplies_rate_only() {
        let p = LinkProfile::paper_default().scaled(4);
        assert_eq!(p.link_speed_bps, 400_000_000_000);
        assert_eq!(p.host_delay_ps, LinkProfile::paper_default().host_delay_ps);
    }
}
