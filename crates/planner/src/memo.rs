//! Solver memo: `(topology fp, commodity fp, query tag) → solution`.
//!
//! The cache key is built entirely from golden fingerprints, so a hit is a
//! claim of bitwise identity with the cold solve it replaces — and the
//! insert-race path asserts exactly that: when two threads solve the same
//! key concurrently, the first insert wins and the loser's result must
//! carry the identical solution fingerprint (the solvers' determinism
//! contract, enforced at the cache boundary).

use crate::fingerprint::solution_fingerprint;
use crate::PlanError;
use pnet_flowsim::McfSolution;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: the topology and commodity-set fingerprints plus a query tag
/// folding everything else that can change solver output (query kind, K,
/// the exact bits of ε, host-links-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MemoKey {
    /// [`crate::fingerprint::topology_fingerprint`] of the queried network.
    pub topology: u64,
    /// [`crate::fingerprint::commodity_fingerprint`] of the traffic matrix.
    pub commodities: u64,
    /// FNV-1a fold of the query shape (kind tag, K, ε bits, options).
    pub query: u64,
}

/// Cumulative memo counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that ran a cold solve.
    pub misses: u64,
    /// Distinct solutions currently cached.
    pub entries: usize,
}

/// Concurrent solution cache. Solves run *outside* the lock, so queries
/// for different keys never serialize on each other; the lock only guards
/// the map itself.
pub struct Memo {
    map: Mutex<BTreeMap<MemoKey, Arc<McfSolution>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for Memo {
    fn default() -> Memo {
        Memo::new()
    }
}

impl Memo {
    /// An empty cache.
    pub fn new() -> Memo {
        Memo {
            map: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look `key` up, or run `solve` and publish the result. Errors are
    /// returned to the caller and never cached. Two racing solves for the
    /// same key both complete; the first insert wins and the results are
    /// asserted bit-identical.
    pub fn get_or_solve(
        &self,
        key: MemoKey,
        solve: impl FnOnce() -> Result<McfSolution, PlanError>,
    ) -> Result<Arc<McfSolution>, PlanError> {
        if let Some(hit) = self.lookup(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let solved = Arc::new(solve()?);
        let mut map = self
            .map
            .lock()
            .expect("invariant: memo lock is never poisoned");
        if let Some(first) = map.get(&key) {
            assert_eq!(
                solution_fingerprint(first),
                solution_fingerprint(&solved),
                "memoized solution diverged from a concurrent cold solve"
            );
            return Ok(Arc::clone(first));
        }
        map.insert(key, Arc::clone(&solved));
        Ok(solved)
    }

    /// The cached solution for `key`, without counting a hit or miss.
    /// (Named `lookup`, not `peek`: the workspace lint's effect inference
    /// resolves calls by method name, and `peek` would alias the heap
    /// peeks inside the solver's parallel closures.)
    pub fn lookup(&self, key: MemoKey) -> Option<Arc<McfSolution>> {
        self.map
            .lock()
            .expect("invariant: memo lock is never poisoned")
            .get(&key)
            .map(Arc::clone)
    }

    /// Current counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .map
                .lock()
                .expect("invariant: memo lock is never poisoned")
                .len(),
        }
    }
}
