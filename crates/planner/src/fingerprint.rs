//! FNV-1a golden fingerprints over topologies, commodity sets, and solver
//! output — the planner's cache keys and byte-identity assertions. All
//! three reuse the router's [`Fnv`] hasher so every fingerprint in the
//! workspace is the same deterministic function.

use pnet_flowsim::{Commodity, McfSolution};
use pnet_routing::Fnv;
use pnet_topology::Network;

/// Fingerprint of everything a solver run can observe in the topology:
/// the shape counts plus every directed link's endpoints, capacity, plane,
/// and up/down state. Two networks with equal fingerprints answer every
/// planner query identically.
pub fn topology_fingerprint(net: &Network) -> u64 {
    let mut h = Fnv::new();
    h.u64(u64::from(net.n_planes()));
    h.u64(net.n_hosts() as u64);
    h.u64(net.n_racks() as u64);
    h.u64(net.n_links() as u64);
    for (id, link) in net.links() {
        h.u64(u64::from(id.0));
        h.u64(u64::from(link.src.0));
        h.u64(u64::from(link.dst.0));
        h.u64(link.capacity_bps);
        h.u64(u64::from(link.plane.0));
        h.u64(u64::from(link.up));
    }
    h.0
}

/// Fingerprint of a traffic matrix, order-sensitive over
/// `(src, dst, demand)` with demands folded at full bit precision.
pub fn commodity_fingerprint(commodities: &[Commodity]) -> u64 {
    let mut h = Fnv::new();
    h.u64(commodities.len() as u64);
    for c in commodities {
        h.u64(u64::from(c.src.0));
        h.u64(u64::from(c.dst.0));
        h.u64(c.demand.to_bits());
    }
    h.0
}

/// Byte-identity fingerprint of a solution: λ, the phase count, and every
/// float of the primal/dual vectors folded at full bit precision. Two
/// solutions agree on this iff they are bitwise identical — the property
/// the memo layer asserts between cache hits and cold solves.
pub fn solution_fingerprint(sol: &McfSolution) -> u64 {
    let mut h = Fnv::new();
    h.u64(sol.lambda.to_bits());
    h.u64(sol.phases as u64);
    for v in [&sol.link_flow, &sol.rates, &sol.length] {
        h.u64(v.len() as u64);
        for x in v.iter() {
            h.u64(x.to_bits());
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_topology::{assemble_homogeneous, failures, FatTree, LinkProfile};

    #[test]
    fn topology_fingerprint_tracks_link_state() {
        let mut net =
            assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let healthy = topology_fingerprint(&net);
        assert_eq!(healthy, topology_fingerprint(&net), "not deterministic");
        let cable = failures::fabric_cables(&net, None)[0];
        failures::fail_cable(&mut net, cable);
        let degraded = topology_fingerprint(&net);
        assert_ne!(
            healthy, degraded,
            "a failed cable must move the fingerprint"
        );
        failures::restore_cable(&mut net, cable);
        assert_eq!(
            healthy,
            topology_fingerprint(&net),
            "restore must round-trip"
        );
    }

    #[test]
    fn commodity_fingerprint_is_demand_sensitive() {
        use pnet_flowsim::commodity;
        let a = commodity::all_to_all(4);
        let mut b = commodity::all_to_all(4);
        assert_eq!(commodity_fingerprint(&a), commodity_fingerprint(&b));
        b[0].demand *= 2.0;
        assert_ne!(commodity_fingerprint(&a), commodity_fingerprint(&b));
    }
}
