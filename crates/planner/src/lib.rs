//! # pnet-planner
//!
//! Throughput-planner-as-a-service: concurrent what-if queries over
//! epoch-snapshotted fabric state — the serving surface for the paper's
//! planner study (§5.1.1) and its headline what-if questions
//! (heterogeneous-plane speedups, failure resilience).
//!
//! ## Architecture
//!
//! * **Generations** ([`Generation`]) — immutable snapshots of the fabric:
//!   a [`Network`] clone, a [`Router`] whose tables are pinned to it, and
//!   the topology's golden FNV-1a fingerprint. Generations live in a
//!   [`Published`] store: an append-only, ArcSwap-style sequence whose
//!   read path takes **no lock** — queries pin a generation with one
//!   atomic load and keep answering from it even while the writer
//!   publishes its successor.
//! * **Publication** — [`Planner::publish_delta`] applies a [`LinkDelta`]
//!   (cable churn) and appends generation N+1. With
//!   [`PlannerConfig::track_repair`] the planner also maintains a master
//!   router incrementally repaired via `Router::apply_delta` and asserts
//!   its table fingerprint equals the freshly built generation router —
//!   the delta-equivalence discipline enforced as a service invariant.
//! * **Memo** ([`Memo`]) — solver results keyed by
//!   `(topology fingerprint, commodity fingerprint, query tag)`. A hit is
//!   bitwise identical to the cold solve it replaces; insert races assert
//!   it.
//!
//! ## Example
//!
//! ```
//! use pnet_planner::Planner;
//! use pnet_flowsim::commodity;
//! use pnet_topology::{assemble_homogeneous, FatTree, LinkProfile};
//!
//! let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
//! let planner = Planner::new(net);
//! let adm = planner.admit(&commodity::all_to_all(8)).unwrap();
//! assert!(adm.lambda > 0.0);
//! ```

pub mod fingerprint;
pub mod memo;
pub mod publish;

pub use fingerprint::{commodity_fingerprint, solution_fingerprint, topology_fingerprint};
pub use memo::{Memo, MemoKey, MemoStats};
pub use publish::Published;

use pnet_flowsim::mcf::{McfError, McfOptions};
use pnet_flowsim::{throughput, Commodity, McfSolution};
use pnet_routing::{DeltaStats, Fnv, Parallelism, RouteAlgo, Router};
use pnet_topology::{failures, LinkDelta, LinkId, Network, PlaneId};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Planner service configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Subflow fan-out K for admission queries (the paper's MPTCP + KSP
    /// configuration). Generation routers are built `(2K).max(8)` wide so
    /// `best_k` candidates up to that width share the same tables.
    pub k: usize,
    /// Garg–Könemann approximation ε, in the open interval (0, 0.5).
    pub eps: f64,
    /// Execution strategy for router builds and solver phases.
    pub parallelism: Parallelism,
    /// Maintain a master router incrementally repaired with
    /// `Router::apply_delta` on every publish, cross-checked against the
    /// fresh generation router by table fingerprint. Costs an all-pairs
    /// precompute per publish; intended for tests and smoke runs.
    pub track_repair: bool,
}

impl Default for PlannerConfig {
    fn default() -> PlannerConfig {
        PlannerConfig {
            k: 8,
            eps: 0.1,
            parallelism: Parallelism::default(),
            track_repair: false,
        }
    }
}

/// Everything that can go wrong answering a planner query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanError {
    /// The underlying solver rejected the inputs (bad ε, empty or
    /// unroutable matrix, infeasible flow).
    Solver(McfError),
    /// A pinned generation sequence number that was never published.
    UnknownGeneration {
        /// The requested sequence number.
        seq: u64,
    },
    /// `best_k` was called with an empty candidate list.
    NoCandidates,
    /// A delta or what-if failure names a link outside the topology.
    UnknownLink {
        /// The offending raw link id.
        link: u32,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Solver(e) => write!(f, "solver: {e}"),
            PlanError::UnknownGeneration { seq } => {
                write!(f, "generation {seq} was never published")
            }
            PlanError::NoCandidates => write!(f, "best_k needs at least one candidate K"),
            PlanError::UnknownLink { link } => {
                write!(f, "link {link} is outside the topology")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl From<McfError> for PlanError {
    fn from(e: McfError) -> PlanError {
        PlanError::Solver(e)
    }
}

/// One immutable topology generation: a network snapshot, a router pinned
/// to it, and the snapshot's golden fingerprint. Queries pinned to a
/// generation are unaffected by later publishes — the router only ever
/// sees this network, so even its lazy table fills are deterministic
/// functions of the snapshot.
pub struct Generation {
    seq: u64,
    net: Network,
    router: Router,
    topology_fp: u64,
}

impl Generation {
    fn build(seq: u64, net: Network, cfg: &PlannerConfig) -> Generation {
        let wide = (2 * cfg.k).max(8);
        let router = Router::with_parallelism(&net, RouteAlgo::Ksp { k: wide }, cfg.parallelism);
        let topology_fp = topology_fingerprint(&net);
        Generation {
            seq,
            net,
            router,
            topology_fp,
        }
    }

    /// Position in the publish sequence (0 = the seed snapshot).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The snapshot's link state.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The router pinned to this snapshot.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Golden FNV-1a fingerprint of the snapshot topology.
    pub fn topology_fingerprint(&self) -> u64 {
        self.topology_fp
    }
}

/// Outcome of an admission query: can the fabric carry the offered matrix?
#[derive(Debug, Clone, Copy)]
pub struct Admission {
    /// Generation the query was answered against.
    pub generation: u64,
    /// Achieved concurrent-flow scale: commodity `i` ships `λ · demand_i`.
    pub lambda: f64,
    /// `λ ≥ 1`: every commodity ships its full demand simultaneously.
    pub admitted: bool,
    /// Total delivered rate at the solved scale, bits per second.
    pub total_rate_bps: f64,
}

/// Outcome of a failure what-if: ideal throughput before and after.
#[derive(Debug, Clone, Copy)]
pub struct WhatIf {
    /// Generation the query was answered against.
    pub generation: u64,
    /// Ideal λ on the unmodified generation.
    pub baseline_lambda: f64,
    /// Ideal λ with the hypothesized failures applied.
    pub degraded_lambda: f64,
    /// Total delivered rate on the unmodified generation.
    pub baseline_total_bps: f64,
    /// Total delivered rate under the hypothesized failures.
    pub degraded_total_bps: f64,
}

impl WhatIf {
    /// Fraction of baseline λ retained under the failures (0 when the
    /// baseline is degenerate).
    pub fn retained(&self) -> f64 {
        if self.baseline_lambda > 0.0 {
            self.degraded_lambda / self.baseline_lambda
        } else {
            0.0
        }
    }
}

/// Outcome of a subflow fan-out sweep.
#[derive(Debug, Clone)]
pub struct BestK {
    /// Generation the query was answered against.
    pub generation: u64,
    /// The winning K (smallest on λ ties).
    pub k: usize,
    /// λ achieved at the winning K.
    pub lambda: f64,
    /// Every candidate evaluated, as `(k, λ)` in input order.
    pub evaluated: Vec<(usize, f64)>,
}

/// Structural capacity headroom of one plane.
#[derive(Debug, Clone, Copy)]
pub struct PlaneHeadroom {
    /// The plane.
    pub plane: PlaneId,
    /// Aggregate capacity of the plane's live directed links.
    pub live_capacity_bps: u128,
    /// Aggregate capacity including failed links.
    pub total_capacity_bps: u128,
    /// Directed links currently down.
    pub failed_links: usize,
    /// `live / total` capacity fraction (0 for a plane with no links).
    pub headroom: f64,
}

/// Result of one [`Planner::publish_delta`].
#[derive(Debug, Clone, Copy)]
pub struct PublishStats {
    /// Sequence number of the new generation.
    pub seq: u64,
    /// Topology fingerprint of the new generation.
    pub topology_fp: u64,
    /// Delta-repair stats of the master router (only with
    /// [`PlannerConfig::track_repair`]).
    pub repair: Option<DeltaStats>,
}

struct Writer {
    net: Network,
    master: Option<Router>,
}

/// The planner service. Cheap to share behind an `Arc`; every query method
/// takes `&self` and the read path is lock-free up to the per-generation
/// router's internal table cache.
pub struct Planner {
    cfg: PlannerConfig,
    generations: Published<Generation>,
    memo: Memo,
    writer: Mutex<Writer>,
}

const QUERY_KSP: u64 = 1;
const QUERY_IDEAL: u64 = 2;

fn query_tag(kind: u64, k: usize, eps: f64, host_links_free: bool) -> u64 {
    let mut h = Fnv::new();
    h.u64(kind);
    h.u64(k as u64);
    h.u64(eps.to_bits());
    h.u64(u64::from(host_links_free));
    h.0
}

impl Planner {
    /// A planner over `net` with the default configuration.
    pub fn new(net: Network) -> Planner {
        Planner::with_config(net, PlannerConfig::default())
    }

    /// A planner over `net`; generation 0 is published immediately.
    pub fn with_config(net: Network, cfg: PlannerConfig) -> Planner {
        let master = cfg.track_repair.then(|| {
            let wide = (2 * cfg.k).max(8);
            let r = Router::with_parallelism(&net, RouteAlgo::Ksp { k: wide }, cfg.parallelism);
            r.precompute_all_pairs_with(cfg.parallelism);
            r
        });
        let gen0 = Generation::build(0, net.clone(), &cfg);
        Planner {
            cfg,
            generations: Published::new(gen0),
            memo: Memo::new(),
            writer: Mutex::new(Writer { net, master }),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    /// Pin the newest generation. Lock-free; the returned snapshot stays
    /// valid (and bitwise stable) across any number of later publishes.
    pub fn latest(&self) -> Arc<Generation> {
        self.generations.latest()
    }

    /// Pin a specific generation by sequence number.
    pub fn generation(&self, seq: u64) -> Result<Arc<Generation>, PlanError> {
        usize::try_from(seq)
            .ok()
            .and_then(|i| self.generations.get(i))
            .ok_or(PlanError::UnknownGeneration { seq })
    }

    /// Number of published generations.
    pub fn n_generations(&self) -> usize {
        self.generations.len()
    }

    /// Cumulative memo counters.
    pub fn memo_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Apply a link delta to the fabric and publish it as a new
    /// generation. Pinned queries against older generations are
    /// unaffected; new `latest()` calls observe the successor. With
    /// [`PlannerConfig::track_repair`], the master router is repaired in
    /// place via `apply_delta` and must land on the identical table
    /// fingerprint as the fresh generation router.
    pub fn publish_delta(&self, delta: &LinkDelta) -> Result<PublishStats, PlanError> {
        let mut w = self
            .writer
            .lock()
            .expect("invariant: planner writer lock is never poisoned");
        for &c in delta.down.iter().chain(delta.up.iter()) {
            if c.index() >= w.net.n_links() {
                return Err(PlanError::UnknownLink { link: c.0 });
            }
        }
        for &c in &delta.down {
            failures::fail_cable(&mut w.net, c);
        }
        for &c in &delta.up {
            failures::restore_cable(&mut w.net, c);
        }
        let seq = self.generations.len() as u64;
        let generation = Generation::build(seq, w.net.clone(), &self.cfg);
        let repair = w.master.as_ref().map(|master| {
            let stats = master.apply_delta_with(&w.net, delta, self.cfg.parallelism);
            generation
                .router
                .precompute_all_pairs_with(self.cfg.parallelism);
            assert_eq!(
                master.table_fingerprint(),
                generation.router.table_fingerprint(),
                "delta-repaired master router diverged from a fresh rebuild"
            );
            stats
        });
        let topology_fp = generation.topology_fp;
        let idx = self.generations.publish(generation);
        assert_eq!(
            idx as u64, seq,
            "invariant: publishes are serialized by the writer lock"
        );
        Ok(PublishStats {
            seq,
            topology_fp,
            repair,
        })
    }

    /// The memoized K-subflow MCF solution for `tm` on `generation` — the
    /// primitive under [`Planner::admit_at`] and [`Planner::best_k_at`],
    /// public so callers (tests, benches) can fingerprint the full
    /// solution a cache hit returns.
    pub fn solve_ksp_at(
        &self,
        generation: &Generation,
        tm: &[Commodity],
        k: usize,
    ) -> Result<Arc<McfSolution>, PlanError> {
        let key = MemoKey {
            topology: generation.topology_fp,
            commodities: commodity_fingerprint(tm),
            query: query_tag(QUERY_KSP, k, self.cfg.eps, false),
        };
        self.memo.get_or_solve(key, || {
            throughput::try_ksp_solution(
                &generation.net,
                &generation.router,
                tm,
                k,
                self.cfg.eps,
                McfOptions {
                    parallelism: self.cfg.parallelism,
                    ..Default::default()
                },
            )
            .map_err(PlanError::Solver)
        })
    }

    /// The memoized free-routing (ideal) solution for `tm` on an explicit
    /// `(fingerprint, network)` pair — shared by the baseline and degraded
    /// sides of [`Planner::ideal_throughput_after_at`].
    pub fn solve_ideal(
        &self,
        topology_fp: u64,
        net: &Network,
        tm: &[Commodity],
    ) -> Result<Arc<McfSolution>, PlanError> {
        let key = MemoKey {
            topology: topology_fp,
            commodities: commodity_fingerprint(tm),
            query: query_tag(QUERY_IDEAL, 0, self.cfg.eps, false),
        };
        self.memo.get_or_solve(key, || {
            throughput::try_ideal_solution(
                net,
                tm,
                self.cfg.eps,
                McfOptions {
                    parallelism: self.cfg.parallelism,
                    ..Default::default()
                },
            )
            .map_err(PlanError::Solver)
        })
    }

    /// Admission on the newest generation: solve the K-subflow MCF for
    /// `tm` and report whether it ships at full demand (λ ≥ 1).
    pub fn admit(&self, tm: &[Commodity]) -> Result<Admission, PlanError> {
        self.admit_at(&self.latest(), tm)
    }

    /// [`Planner::admit`] pinned to a caller-held generation.
    pub fn admit_at(
        &self,
        generation: &Generation,
        tm: &[Commodity],
    ) -> Result<Admission, PlanError> {
        let sol = self.solve_ksp_at(generation, tm, self.cfg.k)?;
        Ok(Admission {
            generation: generation.seq,
            lambda: sol.lambda,
            admitted: sol.lambda >= 1.0,
            total_rate_bps: sol.total_rate(),
        })
    }

    /// What-if on the newest generation: ideal (free-routed) throughput of
    /// `tm` with the named cables additionally failed, against the
    /// unmodified baseline.
    pub fn ideal_throughput_after(
        &self,
        failed: &[LinkId],
        tm: &[Commodity],
    ) -> Result<WhatIf, PlanError> {
        self.ideal_throughput_after_at(&self.latest(), failed, tm)
    }

    /// [`Planner::ideal_throughput_after`] pinned to a caller-held
    /// generation. The hypothesized failures touch a private clone of the
    /// snapshot; the generation itself is never mutated.
    pub fn ideal_throughput_after_at(
        &self,
        generation: &Generation,
        failed: &[LinkId],
        tm: &[Commodity],
    ) -> Result<WhatIf, PlanError> {
        for &c in failed {
            if c.index() >= generation.net.n_links() {
                return Err(PlanError::UnknownLink { link: c.0 });
            }
        }
        let baseline = self.solve_ideal(generation.topology_fp, &generation.net, tm)?;
        let mut degraded_net = generation.net.clone();
        for &c in failed {
            failures::fail_cable(&mut degraded_net, c);
        }
        let degraded_fp = topology_fingerprint(&degraded_net);
        let degraded = self.solve_ideal(degraded_fp, &degraded_net, tm)?;
        Ok(WhatIf {
            generation: generation.seq,
            baseline_lambda: baseline.lambda,
            degraded_lambda: degraded.lambda,
            baseline_total_bps: baseline.total_rate(),
            degraded_total_bps: degraded.total_rate(),
        })
    }

    /// Sweep subflow fan-outs on the newest generation and return the K
    /// maximizing λ (smallest K on ties). Candidates beyond the generation
    /// router's width `(2·cfg.k).max(8)` per plane see no additional
    /// paths.
    pub fn best_k(&self, tm: &[Commodity], candidates: &[usize]) -> Result<BestK, PlanError> {
        self.best_k_at(&self.latest(), tm, candidates)
    }

    /// [`Planner::best_k`] pinned to a caller-held generation.
    pub fn best_k_at(
        &self,
        generation: &Generation,
        tm: &[Commodity],
        candidates: &[usize],
    ) -> Result<BestK, PlanError> {
        if candidates.is_empty() {
            return Err(PlanError::NoCandidates);
        }
        let mut evaluated = Vec::with_capacity(candidates.len());
        for &k in candidates {
            let sol = self.solve_ksp_at(generation, tm, k)?;
            evaluated.push((k, sol.lambda));
        }
        let mut best = evaluated[0];
        for &(k, lambda) in &evaluated[1..] {
            if lambda > best.1 || (lambda >= best.1 && k < best.0) {
                best = (k, lambda);
            }
        }
        Ok(BestK {
            generation: generation.seq,
            k: best.0,
            lambda: best.1,
            evaluated,
        })
    }

    /// Structural per-plane capacity headroom of the newest generation —
    /// the operator's "which plane can absorb a drain" view. Pure link
    /// arithmetic; no solver run.
    pub fn plane_headroom(&self) -> Vec<PlaneHeadroom> {
        self.plane_headroom_at(&self.latest())
    }

    /// [`Planner::plane_headroom`] pinned to a caller-held generation.
    pub fn plane_headroom_at(&self, generation: &Generation) -> Vec<PlaneHeadroom> {
        let net = &generation.net;
        net.planes()
            .map(|plane| {
                let mut live: u128 = 0;
                let mut total: u128 = 0;
                let mut failed = 0usize;
                for (_, l) in net.links().filter(|(_, l)| l.plane == plane) {
                    total += u128::from(l.capacity_bps);
                    if l.up {
                        live += u128::from(l.capacity_bps);
                    } else {
                        failed += 1;
                    }
                }
                let headroom = if total == 0 {
                    0.0
                } else {
                    live as f64 / total as f64
                };
                PlaneHeadroom {
                    plane,
                    live_capacity_bps: live,
                    total_capacity_bps: total,
                    failed_links: failed,
                    headroom,
                }
            })
            .collect()
    }

    /// Batch admission: pin one generation, answer every matrix against
    /// it, and amortize the GK work — matrices with identical fingerprints
    /// are solved exactly once and fan out to every query that asked.
    pub fn admit_batch(&self, tms: &[Vec<Commodity>]) -> Vec<Result<Admission, PlanError>> {
        let generation = self.latest();
        let mut answers: std::collections::BTreeMap<u64, Result<Admission, PlanError>> =
            std::collections::BTreeMap::new();
        tms.iter()
            .map(|tm| {
                let fp = commodity_fingerprint(tm);
                *answers
                    .entry(fp)
                    .or_insert_with(|| self.admit_at(&generation, tm))
            })
            .collect()
    }
}
