//! Lock-free, append-only snapshot store — the crate's ArcSwap stand-in.
//!
//! Readers follow an atomic length counter with **no lock on the read
//! path**; a single writer appends behind an internal mutex. Storage is a
//! linked list of fixed-size chunks of write-once slots, so a reader that
//! observed `len = n` with an `Acquire` load can walk to any slot `< n`
//! without ever synchronizing with the writer again: the writer's
//! `Release` store of the new length orders every slot and chunk-link
//! write that preceded it.
//!
//! Unlike a plain atomic pointer swap, old generations stay reachable by
//! index for as long as the store lives — exactly what a planner pinning
//! queries to generation N while N+1 is being published needs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

const CHUNK: usize = 64;

struct Chunk<T> {
    slots: [OnceLock<Arc<T>>; CHUNK],
    next: OnceLock<Box<Chunk<T>>>,
}

impl<T> Chunk<T> {
    fn boxed() -> Box<Chunk<T>> {
        Box::new(Chunk {
            slots: std::array::from_fn(|_| OnceLock::new()),
            next: OnceLock::new(),
        })
    }
}

/// Epoch-stamped snapshot sequence: append-only, lock-free to read.
pub struct Published<T> {
    head: Box<Chunk<T>>,
    len: AtomicUsize,
    writer: Mutex<()>,
}

impl<T> Published<T> {
    /// A store seeded with snapshot 0, so [`Published::latest`] is total.
    pub fn new(initial: T) -> Published<T> {
        let store = Published {
            head: Chunk::boxed(),
            len: AtomicUsize::new(0),
            writer: Mutex::new(()),
        };
        store.publish(initial);
        store
    }

    /// Number of published snapshots (at least 1 after construction).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Never true for a constructed store; present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot `i`, if published. Lock-free: slots and chunk links are
    /// write-once and ordered by the `Acquire` length load.
    pub fn get(&self, i: usize) -> Option<Arc<T>> {
        if i >= self.len() {
            return None;
        }
        let mut chunk = &*self.head;
        for _ in 0..i / CHUNK {
            chunk = chunk
                .next
                .get()
                .expect("invariant: chunks below the published length exist");
        }
        Some(Arc::clone(chunk.slots[i % CHUNK].get().expect(
            "invariant: slots below the published length are set",
        )))
    }

    /// The newest snapshot. Lock-free.
    pub fn latest(&self) -> Arc<T> {
        self.get(self.len() - 1)
            .expect("invariant: the store is seeded at construction")
    }

    /// Append a snapshot and return its index. Writers serialize on an
    /// internal mutex; readers are never blocked or delayed. (Named
    /// `publish`, not `push`: the workspace lint's effect inference
    /// resolves calls by method name, and `push` would alias `Vec::push`
    /// at every call site in scanned crates.)
    pub fn publish(&self, value: T) -> usize {
        let guard = self
            .writer
            .lock()
            .expect("invariant: publish lock is never poisoned");
        // Acquire pairs with the Release publication below: even though the
        // writer mutex already orders writer-to-writer handoff, reading the
        // frontier with Acquire keeps the protocol sound on its own terms
        // (and keeps pnet-tidy Y1 quiet without a waiver).
        let i = self.len.load(Ordering::Acquire);
        let mut chunk = &*self.head;
        for _ in 0..i / CHUNK {
            chunk = chunk.next.get_or_init(Chunk::boxed);
        }
        let clash = chunk.slots[i % CHUNK].set(Arc::new(value)).is_err();
        assert!(
            !clash,
            "invariant: the slot at the publish frontier is never set twice"
        );
        // CAS instead of a blind store: if another publisher raced past the
        // mutex (e.g. a future refactor drops the guard), the frontier would
        // have moved and this fails loudly instead of losing a generation.
        let raced = self
            .len
            .compare_exchange(i, i + 1, Ordering::Release, Ordering::Relaxed)
            .is_err();
        assert!(
            !raced,
            "invariant: the publish frontier only advances under the writer lock"
        );
        drop(guard);
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_get_across_chunk_boundaries() {
        let store = Published::new(0usize);
        for v in 1..200usize {
            assert_eq!(store.publish(v), v);
        }
        assert_eq!(store.len(), 200);
        for v in 0..200usize {
            assert_eq!(*store.get(v).expect("invariant: published"), v);
        }
        assert_eq!(*store.latest(), 199);
        assert!(store.get(200).is_none());
    }

    #[test]
    fn racing_publishers_cannot_lose_a_generation() {
        let store = Published::new(0usize);
        std::thread::scope(|s| {
            for t in 0..2usize {
                let store = &store;
                s.spawn(move || {
                    for k in 0..100usize {
                        store.publish(1 + t * 100 + k);
                    }
                });
            }
        });
        // 1 seed + 2 threads x 100 publishes, every value exactly once.
        assert_eq!(store.len(), 201);
        let mut seen: Vec<usize> = (0..201)
            .map(|i| *store.get(i).expect("published"))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..201usize).collect::<Vec<_>>());
    }

    #[test]
    fn old_snapshots_stay_reachable_after_publish() {
        let store = Published::new(String::from("gen0"));
        let pinned = store.latest();
        store.publish(String::from("gen1"));
        assert_eq!(*pinned, "gen0");
        assert_eq!(*store.latest(), "gen1");
        assert_eq!(*store.get(0).expect("invariant: published"), "gen0");
    }
}
