//! Protocol suite: the faithful models of `Published::{publish,pin}` and
//! the router epoch swap must survive the whole (preemption-bounded)
//! schedule space, every seeded-bug variant must be caught, and the
//! interleaving counts are snapshotted so a search-space regression (a
//! scheduler change that silently stops exploring) is visible in the diff.

use pnet_modelcheck::models::{check_epoch, check_published, EpochBug, PubBug};

#[test]
fn correct_publish_pin_protocol_verifies_exhaustively() {
    let stats = check_published(PubBug::None).expect("hardened publish/pin protocol must verify");
    assert!(
        stats.executions > 100,
        "search space collapsed: only {} interleavings",
        stats.executions
    );
    // Exact snapshot: 2 publishers (lock, load, slot write, CAS, unlock)
    // + 1 pinning reader under preemption bound 2.
    assert_eq!((stats.executions, stats.max_depth), (158, 13));
}

#[test]
fn relaxed_publication_store_is_caught() {
    let violation = check_published(PubBug::RelaxedPublish)
        .expect_err("Relaxed publication must lose the release edge");
    assert!(
        violation.message.contains("unsynchronized read"),
        "unexpected violation: {violation}"
    );
}

#[test]
fn relaxed_pin_load_is_caught() {
    let violation =
        check_published(PubBug::RelaxedPin).expect_err("Relaxed pin must lose the acquire edge");
    assert!(
        violation.message.contains("unsynchronized read"),
        "unexpected violation: {violation}"
    );
}

#[test]
fn racing_publishers_without_the_writer_lock_are_caught() {
    let violation = check_published(PubBug::NoWriterLock)
        .expect_err("unlocked publishers must race the frontier");
    assert!(
        violation.message.contains("race") || violation.message.contains("lost publication"),
        "unexpected violation: {violation}"
    );
}

#[test]
fn correct_epoch_swap_verifies_exhaustively() {
    let stats = check_epoch(EpochBug::None).expect("seqlock epoch swap must verify");
    assert!(
        stats.executions > 100,
        "search space collapsed: only {} interleavings",
        stats.executions
    );
    // Exact snapshot: 2 swapping writers (7 modeled ops each) + 1
    // validating reader under preemption bound 2.
    assert_eq!((stats.executions, stats.max_depth), (678, 19));
}

#[test]
fn dropped_epoch_bump_exposes_torn_generation_reads() {
    let violation = check_epoch(EpochBug::DroppedBump)
        .expect_err("an unmarked write window must be observable");
    assert!(
        violation.message.contains("torn generation read"),
        "unexpected violation: {violation}"
    );
}
