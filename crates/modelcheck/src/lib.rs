//! Mini-loom: a dependency-free, exhaustive-interleaving model checker for
//! the workspace's lock-free publication protocols.
//!
//! The real protocols (`Published::{publish,pin}` in `pnet-planner`, the
//! router's epoch swap) are small enough to model op-by-op, so instead of
//! stress tests we *enumerate schedules*: every modeled operation is a
//! scheduling point, a deterministic scheduler replays one interleaving per
//! execution, and a DFS over the per-step choice points covers the whole
//! (preemption-bounded) schedule space. Each execution also maintains
//! happens-before vector clocks, so the checker reports not just assertion
//! failures but *races*: a non-atomic read/write that is not ordered by an
//! acquire/release edge or a mutex handoff.
//!
//! Modeled primitives:
//! * [`MAtomic`] — an atomic `usize` carrying a release clock. A
//!   Release-class store publishes the writer's clock; an Acquire-class
//!   load joins it; a Relaxed store *clears* it (breaking the release
//!   chain, which is exactly the seeded-bug behaviour Y1 exists to catch);
//!   a Relaxed RMW preserves it (the release-sequence rule).
//! * [`MCell`] — a non-atomic cell with full read/write race detection.
//! * [`MMutex`] — a blocking mutex that transfers clocks on handoff.
//!
//! Scheduling: threads are real OS threads taking turns under a token
//! (one runnable thread at a time); a turn runs from one modeled op to the
//! next. The DFS backtracks over the per-step runnable sets, bounded by
//! [`Opts::preemptions`] (CHESS-style: most concurrency bugs need very few
//! preemptions, and the bound keeps the space polynomial). Within the
//! bound the search is exhaustive and deterministic, so execution counts
//! are exact and snapshot-testable. `SeqCst` is modeled as `AcqRel`
//! (conservative for these protocols, which never rely on a total store
//! order). See DESIGN.md §"Static analysis Phase 4".

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicUsize;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

pub mod models;

/// Memory orderings for modeled atomics (mirrors `std::sync::atomic`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl Ordering {
    fn acquires(self) -> bool {
        matches!(
            self,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }
    fn releases(self) -> bool {
        matches!(
            self,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }
}

// ---- vector clocks --------------------------------------------------------

type Clock = Vec<u64>;

/// `a` happens-before-or-equal `b`. The empty clock (initialization, which
/// precedes thread spawn) is ≤ everything.
fn clock_le(a: &Clock, b: &Clock) -> bool {
    a.iter().zip(b.iter()).all(|(x, y)| x <= y)
}

fn clock_join(into: &mut Clock, from: &Clock) {
    for (x, y) in into.iter_mut().zip(from.iter()) {
        *x = (*x).max(*y);
    }
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A thread that unwinds on abort while touching a primitive poisons the
    // std mutex; the model state underneath is still consistent (ops are
    // token-serialized), so recover rather than cascade.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Panic payload used to unwind model threads when an execution aborts.
struct Abort;

fn describe_panic(p: Box<dyn Any + Send>) -> Option<String> {
    if p.downcast_ref::<Abort>().is_some() {
        return None;
    }
    let msg = p
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    Some(format!("model thread panicked: {msg}"))
}

// ---- scheduler ------------------------------------------------------------

/// One scheduling decision: the runnable set offered (previously-running
/// thread first, then the rest in ascending id order) and the index taken.
#[derive(Clone)]
struct Step {
    runnable: Vec<usize>,
    chosen: usize,
}

impl Step {
    fn thread(&self) -> usize {
        self.runnable[self.chosen]
    }
}

struct SchedInner {
    /// Thread currently holding the run token, if any.
    current: Option<usize>,
    /// Threads parked at a scheduling point, eligible to run.
    waiting: Vec<bool>,
    /// Threads blocked on a modeled mutex (by mutex id) — not runnable.
    blocked_on: Vec<Option<usize>>,
    finished: Vec<bool>,
    abort: bool,
    violation: Option<String>,
}

struct Sched {
    inner: Mutex<SchedInner>,
    cv: Condvar,
}

impl Sched {
    fn new(n: usize) -> Sched {
        Sched {
            inner: Mutex::new(SchedInner {
                current: None,
                waiting: vec![false; n],
                blocked_on: vec![None; n],
                finished: vec![false; n],
                abort: false,
                violation: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedInner> {
        lock_recover(&self.inner)
    }

    /// Park at a scheduling point; returns once this thread is granted the
    /// next turn. Unwinds if the execution aborted.
    fn turn(&self, me: usize) {
        let mut g = self.lock();
        if g.current == Some(me) {
            g.current = None;
        }
        g.waiting[me] = true;
        self.cv.notify_all();
        loop {
            if g.abort {
                g.waiting[me] = false;
                drop(g);
                std::panic::panic_any(Abort);
            }
            if g.current == Some(me) {
                break;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        g.waiting[me] = false;
    }

    /// Give up the token and park as blocked on `mutex_id`; returns once
    /// re-granted a turn (after some unlock made this thread runnable).
    fn block_on(&self, me: usize, mutex_id: usize) {
        let mut g = self.lock();
        if g.current == Some(me) {
            g.current = None;
        }
        g.blocked_on[me] = Some(mutex_id);
        self.cv.notify_all();
        loop {
            if g.abort {
                g.blocked_on[me] = None;
                drop(g);
                std::panic::panic_any(Abort);
            }
            if g.current == Some(me) {
                break;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        g.waiting[me] = false;
    }

    /// Mark every thread blocked on `mutex_id` runnable again (they retry
    /// acquisition when next scheduled).
    fn wake_blocked(&self, mutex_id: usize) {
        let mut g = self.lock();
        for i in 0..g.blocked_on.len() {
            if g.blocked_on[i] == Some(mutex_id) {
                g.blocked_on[i] = None;
                g.waiting[i] = true;
            }
        }
        self.cv.notify_all();
    }

    /// Record a violation, abort the execution, and unwind the caller.
    fn raise(&self, msg: String) -> ! {
        let mut g = self.lock();
        if g.violation.is_none() {
            g.violation = Some(msg);
        }
        g.abort = true;
        self.cv.notify_all();
        drop(g);
        std::panic::panic_any(Abort)
    }

    fn done(&self, me: usize, real_panic: Option<String>) {
        let mut g = self.lock();
        g.finished[me] = true;
        g.waiting[me] = false;
        g.blocked_on[me] = None;
        if g.current == Some(me) {
            g.current = None;
        }
        if let Some(msg) = real_panic {
            if g.violation.is_none() {
                g.violation = Some(msg);
            }
            g.abort = true;
        }
        self.cv.notify_all();
    }

    fn take_violation(&self) -> Option<String> {
        self.lock().violation.take()
    }

    /// Drive one execution: wait for quiescence, pick the next thread per
    /// `prefix` (then first-choice defaults), repeat until all threads
    /// finish or the execution aborts. Returns the decision trace.
    fn drive(&self, n: usize, prefix: &[Step], max_steps: usize) -> Vec<Step> {
        let mut trace: Vec<Step> = Vec::new();
        let mut g = self.lock();
        loop {
            // Quiescence: no token holder and every live thread parked.
            loop {
                if g.abort {
                    break;
                }
                let parked =
                    (0..n).all(|i| g.waiting[i] || g.blocked_on[i].is_some() || g.finished[i]);
                if g.current.is_none() && parked {
                    break;
                }
                g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            if g.abort {
                // Unwind stragglers and wait for them to finish.
                while !(0..n).all(|i| g.finished[i]) {
                    self.cv.notify_all();
                    g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
                return trace;
            }
            if (0..n).all(|i| g.finished[i]) {
                return trace;
            }
            let mut runnable: Vec<usize> = (0..n).filter(|&i| g.waiting[i]).collect();
            if runnable.is_empty() {
                if g.violation.is_none() {
                    g.violation =
                        Some("deadlock: every live thread is blocked on a modeled mutex".into());
                }
                g.abort = true;
                self.cv.notify_all();
                continue;
            }
            // Previously-running thread first: index 0 is the
            // non-preempting continuation, so default (and bounded) search
            // prefers running a thread to completion.
            if let Some(prev) = trace.last().map(Step::thread) {
                if let Some(pos) = runnable.iter().position(|&t| t == prev) {
                    runnable.remove(pos);
                    runnable.insert(0, prev);
                }
            }
            let k = trace.len();
            let chosen = if k < prefix.len() {
                // Replay is deterministic, so the recorded choice is always
                // in range; clamp defensively anyway.
                prefix[k].chosen.min(runnable.len() - 1)
            } else {
                0
            };
            let t = runnable[chosen];
            trace.push(Step { runnable, chosen });
            if trace.len() > max_steps {
                if g.violation.is_none() {
                    g.violation = Some(format!(
                        "step budget exceeded: execution ran past {max_steps} modeled ops"
                    ));
                }
                g.abort = true;
                self.cv.notify_all();
                continue;
            }
            g.current = Some(t);
            self.cv.notify_all();
        }
    }
}

// ---- per-thread context ---------------------------------------------------

/// Per-thread handle passed to model closures: identifies the thread to
/// the scheduler and carries its vector clock.
pub struct Ctx<'s> {
    sched: &'s Sched,
    tid: usize,
    clock: RefCell<Clock>,
}

impl Ctx<'_> {
    fn turn(&self) {
        self.sched.turn(self.tid);
    }

    fn bump(&self) {
        self.clock.borrow_mut()[self.tid] += 1;
    }

    fn join_clock(&self, other: &Clock) {
        clock_join(&mut self.clock.borrow_mut(), other);
    }

    fn clock_snapshot(&self) -> Clock {
        self.clock.borrow().clone()
    }

    /// Model assertion: a false condition aborts the execution and reports
    /// the message as the violation.
    pub fn check(&self, cond: bool, msg: &str) {
        if !cond {
            self.sched.raise(format!("model assertion failed: {msg}"));
        }
    }
}

// ---- modeled primitives ---------------------------------------------------

struct AtomicState {
    value: usize,
    /// Clock published by the last Release-class store, threaded through
    /// RMWs (release sequence); `None` after a Relaxed store.
    release: Option<Clock>,
}

/// Modeled atomic `usize` recording acquire/release edges.
pub struct MAtomic {
    st: Mutex<AtomicState>,
}

impl MAtomic {
    pub fn new(v: usize) -> MAtomic {
        MAtomic {
            st: Mutex::new(AtomicState {
                value: v,
                release: None,
            }),
        }
    }

    pub fn load(&self, ctx: &Ctx, ord: Ordering) -> usize {
        ctx.turn();
        ctx.bump();
        let st = lock_recover(&self.st);
        if ord.acquires() {
            if let Some(c) = &st.release {
                ctx.join_clock(c);
            }
        }
        st.value
    }

    pub fn store(&self, ctx: &Ctx, v: usize, ord: Ordering) {
        ctx.turn();
        ctx.bump();
        let mut st = lock_recover(&self.st);
        st.value = v;
        st.release = if ord.releases() {
            Some(ctx.clock_snapshot())
        } else {
            None
        };
    }

    pub fn fetch_add(&self, ctx: &Ctx, v: usize, ord: Ordering) -> usize {
        ctx.turn();
        ctx.bump();
        let mut st = lock_recover(&self.st);
        let old = st.value;
        st.value = old + v;
        Self::rmw_clock(ctx, &mut st, ord);
        old
    }

    /// `compare_exchange(current, new, success, failure)`, like std: `Ok`
    /// carries the previous value on success, `Err` the observed one.
    pub fn compare_exchange(
        &self,
        ctx: &Ctx,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        ctx.turn();
        ctx.bump();
        let mut st = lock_recover(&self.st);
        if st.value == current {
            st.value = new;
            Self::rmw_clock(ctx, &mut st, success);
            Ok(current)
        } else {
            if failure.acquires() {
                if let Some(c) = &st.release {
                    ctx.join_clock(c);
                }
            }
            Err(st.value)
        }
    }

    fn rmw_clock(ctx: &Ctx, st: &mut AtomicState, ord: Ordering) {
        if ord.acquires() {
            if let Some(c) = &st.release {
                ctx.join_clock(c);
            }
        }
        if ord.releases() {
            // Join rather than replace: an RMW extends the existing
            // release sequence instead of starting a fresh one.
            let mut c = st.release.take().unwrap_or_default();
            if c.len() < ctx.clock.borrow().len() {
                c.resize(ctx.clock.borrow().len(), 0);
            }
            clock_join(&mut c, &ctx.clock.borrow());
            st.release = Some(c);
        }
        // Relaxed RMW: the release clock is left untouched — the chain
        // survives, but this thread publishes nothing new.
    }

    /// Final-state read for `finalize` closures (no scheduling, no clocks).
    pub fn peek(&self) -> usize {
        lock_recover(&self.st).value
    }
}

struct CellState {
    value: usize,
    write: Clock,
    /// Reads since the last write (cleared by each write).
    reads: Vec<Clock>,
}

/// Modeled *non-atomic* cell: every access is race-checked against the
/// vector clocks. This is the "shared data guarded by a publication
/// atomic" in the protocols under test.
pub struct MCell {
    st: Mutex<CellState>,
}

impl MCell {
    pub fn new(v: usize) -> MCell {
        MCell {
            st: Mutex::new(CellState {
                value: v,
                write: Clock::new(),
                reads: Vec::new(),
            }),
        }
    }

    pub fn read(&self, ctx: &Ctx) -> usize {
        ctx.turn();
        ctx.bump();
        let mut st = lock_recover(&self.st);
        let me = ctx.clock_snapshot();
        if !clock_le(&st.write, &me) {
            drop(st);
            ctx.sched.raise(
                "unsynchronized read of a non-atomic cell: the last write does not \
                 happen-before this read (torn/stale read)"
                    .to_string(),
            );
        }
        st.reads.push(me);
        st.value
    }

    pub fn write(&self, ctx: &Ctx, v: usize) {
        ctx.turn();
        ctx.bump();
        let mut st = lock_recover(&self.st);
        let me = ctx.clock_snapshot();
        if !clock_le(&st.write, &me) {
            drop(st);
            ctx.sched
                .raise("write-write race on a non-atomic cell".to_string());
        }
        if st.reads.iter().any(|r| !clock_le(r, &me)) {
            drop(st);
            ctx.sched
                .raise("read-write race on a non-atomic cell".to_string());
        }
        st.value = v;
        st.write = me;
        st.reads.clear();
    }

    pub fn peek(&self) -> usize {
        lock_recover(&self.st).value
    }
}

static NEXT_MUTEX_ID: AtomicUsize = AtomicUsize::new(0);

struct MutexState {
    holder: Option<usize>,
    /// Clock released by the last unlock; joined by the next acquirer.
    clock: Clock,
}

/// Modeled blocking mutex with clock transfer on handoff. Lock and unlock
/// are both scheduling points; a thread that finds the mutex held becomes
/// non-runnable until an unlock wakes it.
pub struct MMutex {
    id: usize,
    st: Mutex<MutexState>,
}

/// Token proving the mutex is held; release with [`MGuard::unlock`].
/// (Dropping it without unlocking leaves the modeled mutex held — a
/// deliberately loud failure mode: the checker reports a deadlock.)
pub struct MGuard<'m> {
    mutex: &'m MMutex,
}

impl MMutex {
    #[allow(clippy::new_without_default)]
    pub fn new() -> MMutex {
        MMutex {
            id: NEXT_MUTEX_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            st: Mutex::new(MutexState {
                holder: None,
                clock: Clock::new(),
            }),
        }
    }

    pub fn lock(&self, ctx: &Ctx) -> MGuard<'_> {
        ctx.turn();
        ctx.bump();
        loop {
            {
                let mut st = lock_recover(&self.st);
                if st.holder.is_none() {
                    st.holder = Some(ctx.tid);
                    ctx.join_clock(&st.clock);
                    return MGuard { mutex: self };
                }
            }
            ctx.sched.block_on(ctx.tid, self.id);
        }
    }
}

impl MGuard<'_> {
    pub fn unlock(self, ctx: &Ctx) {
        ctx.turn();
        ctx.bump();
        let mut st = lock_recover(&self.mutex.st);
        st.holder = None;
        st.clock = ctx.clock_snapshot();
        drop(st);
        ctx.sched.wake_blocked(self.mutex.id);
    }
}

// ---- exploration ----------------------------------------------------------

/// Search configuration.
pub struct Opts {
    /// Maximum preemptions per schedule (`None` = unbounded, truly
    /// exhaustive). Default 2, the classic CHESS bound: empirically most
    /// concurrency bugs need at most two, and the bound keeps the schedule
    /// count polynomial in ops-per-thread.
    pub preemptions: Option<usize>,
    /// Per-execution op budget; exceeding it is a violation (a looping
    /// model, e.g. a spinlock without a scheduler yield).
    pub max_steps: usize,
    /// Total executions budget; exceeding it is a violation (the model is
    /// too big to enumerate — shrink it or lower the preemption bound).
    pub max_executions: u64,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            preemptions: Some(2),
            max_steps: 10_000,
            max_executions: 1_000_000,
        }
    }
}

/// Exhaustive-search result: exact, deterministic counts (snapshot these
/// in tests so search-space regressions are visible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Complete interleavings explored.
    pub executions: u64,
    /// Longest decision trace seen (modeled ops across all threads).
    pub max_depth: usize,
}

/// A counterexample: the schedule search found an execution that raised a
/// violation (assertion failure, race, deadlock, or budget overrun).
#[derive(Debug)]
pub struct Violation {
    pub message: String,
    /// Executions completed before (and including) the failing one.
    pub executions: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (execution #{})", self.message, self.executions)
    }
}

/// A modeled thread body: runs against the shared state under the
/// scheduler's turn token.
pub type ThreadFn<'a, S> = &'a (dyn Fn(&Ctx, &S) + Sync);

/// Enumerate every schedule (up to `opts.preemptions`) of `threads` over
/// fresh state from `init`, race-checking all modeled ops and running
/// `finalize` on the end state of each interleaving.
pub fn explore<S: Sync>(
    opts: &Opts,
    init: &dyn Fn() -> S,
    threads: &[ThreadFn<'_, S>],
    finalize: &dyn Fn(&S) -> Result<(), String>,
) -> Result<Stats, Violation> {
    let n = threads.len();
    let mut prefix: Vec<Step> = Vec::new();
    let mut executions: u64 = 0;
    let mut max_depth = 0;
    loop {
        let state = init();
        let sched = Sched::new(n);
        let trace = std::thread::scope(|s| {
            for (tid, body) in threads.iter().enumerate() {
                let state = &state;
                let sched = &sched;
                s.spawn(move || {
                    let ctx = Ctx {
                        sched,
                        tid,
                        clock: RefCell::new(vec![0; n]),
                    };
                    let result = catch_unwind(AssertUnwindSafe(|| body(&ctx, state)));
                    let real_panic = match result {
                        Ok(()) => None,
                        Err(payload) => describe_panic(payload),
                    };
                    sched.done(tid, real_panic);
                });
            }
            sched.drive(n, &prefix, opts.max_steps)
        });
        executions += 1;
        max_depth = max_depth.max(trace.len());
        let violation = sched.take_violation().or_else(|| finalize(&state).err());
        if let Some(message) = violation {
            return Err(Violation {
                message,
                executions,
            });
        }
        if executions >= opts.max_executions {
            return Err(Violation {
                message: format!(
                    "search budget exceeded: more than {} interleavings",
                    opts.max_executions
                ),
                executions,
            });
        }
        prefix = if let Some(p) = next_prefix(&trace, opts.preemptions) {
            p
        } else {
            return Ok(Stats {
                executions,
                max_depth,
            });
        };
    }
}

/// Backtrack: find the rightmost step with an untried alternative whose
/// choice keeps the schedule within the preemption bound, and return the
/// trace up to it with that alternative taken. `None` = space exhausted.
fn next_prefix(trace: &[Step], bound: Option<usize>) -> Option<Vec<Step>> {
    // preempts[k] = preemptions among steps 0..=k. Step k preempts iff the
    // previously-running thread is still runnable (slot 0 by construction)
    // and a different slot was chosen.
    let mut preempts = vec![0usize; trace.len()];
    for k in 1..trace.len() {
        let prev = trace[k - 1].thread();
        let is_preempt = trace[k].runnable.first() == Some(&prev) && trace[k].chosen != 0;
        preempts[k] = preempts[k - 1] + usize::from(is_preempt);
    }
    for k in (0..trace.len()).rev() {
        let step = &trace[k];
        if step.chosen + 1 >= step.runnable.len() {
            continue;
        }
        let base = if k == 0 { 0 } else { preempts[k - 1] };
        // Any alternative is at index ≥ 1, so it preempts iff the previous
        // thread occupies slot 0 of this step's runnable set.
        let prev_runnable = k > 0 && step.runnable.first() == Some(&trace[k - 1].thread());
        let cost = base + usize::from(prev_runnable);
        if bound.is_some_and(|b| cost > b) {
            continue;
        }
        let mut prefix = trace[..k].to_vec();
        prefix.push(Step {
            runnable: step.runnable.clone(),
            chosen: step.chosen + 1,
        });
        return Some(prefix);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_counters() -> (MAtomic, MAtomic) {
        (MAtomic::new(0), MAtomic::new(0))
    }

    /// Two threads, two independent ops each: the unbounded schedule count
    /// is the binomial interleaving count C(4,2) = 6 — pins the DFS
    /// enumerator against over- or under-counting.
    #[test]
    fn unbounded_search_counts_binomial_interleavings() {
        let opts = Opts {
            preemptions: None,
            ..Opts::default()
        };
        let body = |ctx: &Ctx<'_>, s: &(MAtomic, MAtomic)| {
            s.0.fetch_add(ctx, 1, Ordering::Relaxed);
            s.1.fetch_add(ctx, 1, Ordering::Relaxed);
        };
        let stats = explore(&opts, &two_counters, &[&body, &body], &|s| {
            if s.0.peek() == 2 && s.1.peek() == 2 {
                Ok(())
            } else {
                Err("lost update".to_string())
            }
        })
        .expect("race-free model must verify");
        assert_eq!(
            stats,
            Stats {
                executions: 6,
                max_depth: 4
            }
        );
    }

    /// Same model under preemption bound 0: only the two run-to-completion
    /// schedules survive.
    #[test]
    fn zero_preemption_bound_serializes_threads() {
        let opts = Opts {
            preemptions: Some(0),
            ..Opts::default()
        };
        let body = |ctx: &Ctx<'_>, s: &(MAtomic, MAtomic)| {
            s.0.fetch_add(ctx, 1, Ordering::Relaxed);
            s.1.fetch_add(ctx, 1, Ordering::Relaxed);
        };
        let stats = explore(&opts, &two_counters, &[&body, &body], &|_| Ok(()))
            .expect("race-free model must verify");
        assert_eq!(stats.executions, 2);
    }

    /// An unguarded non-atomic write/write pair must be reported as a race.
    #[test]
    fn cell_write_race_is_detected() {
        let body = |ctx: &Ctx<'_>, cell: &MCell| {
            cell.write(ctx, 1);
        };
        let violation = explore(
            &Opts::default(),
            &|| MCell::new(0),
            &[&body, &body],
            &|_| Ok(()),
        )
        .expect_err("two unsynchronized writers must race");
        assert!(
            violation.message.contains("write-write race"),
            "{violation}"
        );
    }

    /// Mutex-guarded writers are properly serialized: no race, and the
    /// clock handoff makes both increments visible.
    #[test]
    fn mutex_transfers_happens_before() {
        struct S {
            lock: MMutex,
            cell: MCell,
        }
        let body = |ctx: &Ctx<'_>, s: &S| {
            let g = s.lock.lock(ctx);
            let v = s.cell.read(ctx);
            s.cell.write(ctx, v + 1);
            g.unlock(ctx);
        };
        let stats = explore(
            &Opts::default(),
            &|| S {
                lock: MMutex::new(),
                cell: MCell::new(0),
            },
            &[&body, &body],
            &|s| {
                if s.cell.peek() == 2 {
                    Ok(())
                } else {
                    Err(format!("lost increment: {}", s.cell.peek()))
                }
            },
        )
        .expect("mutex-guarded model must verify");
        assert!(stats.executions >= 2);
    }

    /// A guard dropped without unlocking leaves the mutex held — the
    /// second locker can never proceed, and the checker calls it.
    #[test]
    fn leaked_guard_reports_deadlock() {
        let body = |ctx: &Ctx<'_>, lock: &MMutex| {
            let _leaked = lock.lock(ctx);
        };
        let violation = explore(&Opts::default(), &MMutex::new, &[&body, &body], &|_| Ok(()))
            .expect_err("second locker can never acquire");
        assert!(violation.message.contains("deadlock"), "{violation}");
    }
}
