//! Hand-written models of the workspace's lock-free protocols, each with
//! seeded-bug variants the checker must catch.
//!
//! * [`check_published`] — `Published::{publish,pin}` from
//!   `crates/planner/src/publish.rs`: two publishers appending behind a
//!   writer mutex with a CAS-verified frontier bump, one lock-free reader
//!   pinning the newest slot. Seeded bugs: Relaxed publication (the CAS
//!   success ordering drops Release), Relaxed pin (the reader drops
//!   Acquire), and racing publishers (the writer mutex removed).
//! * [`check_epoch`] — the router's epoch swap as a seqlock: writers bump
//!   the epoch to odd, rewrite both plane generations, bump back to even;
//!   readers validate an even epoch around their reads. Seeded bug: the
//!   odd "write in progress" bump dropped, exposing torn generation reads.
//!
//! Models intentionally stay op-for-op close to the real code so a future
//! protocol change can be mirrored here and re-verified before it lands.

use crate::{explore, Ctx, MAtomic, MCell, MMutex, Opts, Ordering, Stats, Violation};

/// Seeded-bug selector for the `Published` publish/pin model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PubBug {
    /// Faithful model of the (hardened) protocol — must verify.
    None,
    /// Publication CAS succeeds with `Relaxed`: the reader's Acquire load
    /// has no release edge to synchronize with → stale/torn pin.
    RelaxedPublish,
    /// Reader pins with a `Relaxed` frontier load: no acquire edge even
    /// though the writer released → same race, reader-side.
    RelaxedPin,
    /// Writer mutex removed: two publishers race the frontier — the CAS
    /// turns a silently lost generation into a caught violation.
    NoWriterLock,
}

/// State of the publish/pin model: an atomic frontier guarding write-once
/// slots (modeled as race-checked non-atomic cells), plus the writer lock.
pub struct PublishModel {
    len: MAtomic,
    slots: Vec<MCell>,
    writer: MMutex,
}

/// Model-check `Published::{publish,pin}` with two publishers and one
/// pinning reader under the given seeded bug.
pub fn check_published(bug: PubBug) -> Result<Stats, Violation> {
    let publish_ord = if bug == PubBug::RelaxedPublish {
        Ordering::Relaxed
    } else {
        Ordering::Release
    };
    let pin_ord = if bug == PubBug::RelaxedPin {
        Ordering::Relaxed
    } else {
        Ordering::Acquire
    };
    let locked = bug != PubBug::NoWriterLock;

    let writer = move |ctx: &Ctx<'_>, m: &PublishModel| {
        let guard = if locked {
            Some(m.writer.lock(ctx))
        } else {
            None
        };
        let i = m.len.load(ctx, Ordering::Acquire);
        m.slots[i].write(ctx, i + 1);
        let published = m
            .len
            .compare_exchange(ctx, i, i + 1, publish_ord, Ordering::Relaxed);
        ctx.check(
            published.is_ok(),
            "lost publication: the frontier moved between the writer's load and its publish",
        );
        if let Some(g) = guard {
            g.unlock(ctx);
        }
    };
    let reader = move |ctx: &Ctx<'_>, m: &PublishModel| {
        let n = m.len.load(ctx, pin_ord);
        if n > 0 {
            let v = m.slots[n - 1].read(ctx);
            ctx.check(v == n, "stale pin: pinned slot disagrees with the frontier");
        }
    };
    explore(
        &Opts::default(),
        &|| PublishModel {
            len: MAtomic::new(0),
            slots: vec![MCell::new(0), MCell::new(0)],
            writer: MMutex::new(),
        },
        &[&writer, &writer, &reader],
        &|m| {
            if m.len.peek() != 2 {
                return Err(format!("lost generation: final len {}", m.len.peek()));
            }
            for (i, slot) in m.slots.iter().enumerate() {
                if slot.peek() != i + 1 {
                    return Err(format!(
                        "slot {i} holds {}, expected {}",
                        slot.peek(),
                        i + 1
                    ));
                }
            }
            Ok(())
        },
    )
}

/// Seeded-bug selector for the router epoch-swap model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochBug {
    /// Faithful seqlock: odd epoch marks the write window — must verify.
    None,
    /// The writer's "write in progress" bump is dropped, so a reader can
    /// validate an even epoch across a half-written generation pair.
    DroppedBump,
}

/// State of the epoch-swap model: the epoch counter plus the two per-plane
/// generation stamps a consistent read must see agree.
pub struct EpochModel {
    epoch: MAtomic,
    gen_a: MAtomic,
    gen_b: MAtomic,
    lock: MMutex,
}

/// Model-check the router epoch swap with two swapping writers and one
/// validating reader under the given seeded bug.
pub fn check_epoch(bug: EpochBug) -> Result<Stats, Violation> {
    let writer = move |ctx: &Ctx<'_>, m: &EpochModel| {
        let g = m.lock.lock(ctx);
        let e = m.epoch.load(ctx, Ordering::Acquire);
        if bug != EpochBug::DroppedBump {
            m.epoch.store(ctx, e + 1, Ordering::Release);
        }
        let gen = e / 2 + 1;
        m.gen_a.store(ctx, gen, Ordering::Release);
        m.gen_b.store(ctx, gen, Ordering::Release);
        m.epoch.store(ctx, e + 2, Ordering::Release);
        g.unlock(ctx);
    };
    let reader = |ctx: &Ctx<'_>, m: &EpochModel| {
        let e1 = m.epoch.load(ctx, Ordering::Acquire);
        if e1.is_multiple_of(2) {
            let a = m.gen_a.load(ctx, Ordering::Acquire);
            let b = m.gen_b.load(ctx, Ordering::Acquire);
            let e2 = m.epoch.load(ctx, Ordering::Acquire);
            if e1 == e2 {
                ctx.check(
                    a == b,
                    "torn generation read: plane generations diverge inside a validated epoch window",
                );
            }
        }
    };
    explore(
        &Opts::default(),
        &|| EpochModel {
            epoch: MAtomic::new(0),
            gen_a: MAtomic::new(0),
            gen_b: MAtomic::new(0),
            lock: MMutex::new(),
        },
        &[&writer, &writer, &reader],
        &|m| {
            if m.epoch.peek() % 2 != 0 {
                return Err(format!("epoch left odd: {}", m.epoch.peek()));
            }
            if m.gen_a.peek() != 2 || m.gen_b.peek() != 2 {
                return Err(format!(
                    "plane generations out of step: a={} b={}",
                    m.gen_a.peek(),
                    m.gen_b.peek()
                ));
            }
            Ok(())
        },
    )
}
