//! Max concurrent flow via the Garg–Könemann / Fleischer multiplicative-
//! weights framework — the workspace's replacement for the paper's Gurobi LP.
//!
//! Given commodities (host-to-host demands) and either explicit candidate
//! path sets (the "routes computed by ECMP or KSP" constraint of section
//! 5.1.1) or free routing within each plane (the "ideal throughput under no
//! path constraint" of Figure 7), the solver maximizes the uniform scale
//! factor λ such that every commodity i can ship λ·dᵢ simultaneously without
//! exceeding any link capacity.
//!
//! The algorithm maintains a length ℓₑ per link, starting at δ/cₑ, routes
//! each commodity along its currently-shortest allowed path, and inflates
//! lengths multiplicatively — the classic (1−ε)-approximation. We finish
//! with a congestion rescale (divide all flow by the max link utilization),
//! which guarantees a *feasible* primal solution regardless of floating-
//! point noise; λ is then exact-feasible and ≥ (1−O(ε))·OPT.

use crate::commodity::Commodity;
use pnet_routing::Parallelism;
use pnet_topology::{HostId, LinkId, Network, PlaneId, RackId};
use std::collections::BinaryHeap;

/// How commodities may be routed.
#[derive(Debug, Clone)]
pub enum PathMode {
    /// `paths[i]` are the allowed routes of commodity `i`, each a full
    /// host-to-host link sequence. A commodity may split across them.
    Explicit(Vec<Vec<Vec<LinkId>>>),
    /// Any path within any single plane (host uplink + fabric + downlink).
    AnyPath,
}

/// Result of a max-concurrent-flow run.
#[derive(Debug, Clone)]
pub struct McfSolution {
    /// The achieved uniform scale factor: commodity `i` ships `lambda *
    /// demand_i` bits per second.
    pub lambda: f64,
    /// Phases executed by the multiplicative-weights loop.
    pub phases: usize,
    /// Feasible per-link flow (bits per second), after rescaling.
    pub link_flow: Vec<f64>,
    /// Feasible per-commodity rate (bits per second), after rescaling.
    pub rates: Vec<f64>,
}

impl McfSolution {
    /// Total shipped rate over all commodities (bits per second).
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }
}

/// Capacity of every directed link, indexed by `LinkId`. Down links get
/// capacity 0 (they cannot carry flow).
pub fn link_capacities(net: &Network) -> Vec<f64> {
    net.links()
        .map(|(_, l)| if l.up { l.capacity_bps as f64 } else { 0.0 })
        .collect()
}

/// Solver options.
#[derive(Debug, Clone, Copy, Default)]
pub struct McfOptions {
    /// Treat host attachment links as uncapacitated. This turns commodities
    /// into *rack-level* demands constrained only by the switch fabric —
    /// the paper's "ideal throughput under no path constraint, representing
    /// the total capacity of the network core" (Figure 7).
    pub host_links_free: bool,
    /// Execution strategy for the batched per-source shortest-path-tree
    /// computations (AnyPath mode). The per-source Dijkstras of one phase
    /// are independent given the phase-start length vector, so they fan out
    /// across threads; length updates stay sequential, so `Serial` and
    /// `Rayon` produce bit-identical solutions.
    pub parallelism: Parallelism,
}

/// Solve max concurrent flow. `eps` trades accuracy for speed (the result is
/// ≥ (1−O(eps))·OPT; 0.05–0.15 are sensible).
///
/// # Panics
/// If a commodity has an empty or no allowed path (`Explicit` mode) — the
/// caller should filter unroutable commodities first (λ would be 0).
pub fn solve(net: &Network, commodities: &[Commodity], mode: &PathMode, eps: f64) -> McfSolution {
    solve_with_options(net, commodities, mode, eps, McfOptions::default())
}

/// [`solve`] with explicit [`McfOptions`].
pub fn solve_with_options(
    net: &Network,
    commodities: &[Commodity],
    mode: &PathMode,
    eps: f64,
    opts: McfOptions,
) -> McfSolution {
    assert!(!commodities.is_empty(), "no commodities");
    assert!(eps > 0.0 && eps < 0.5, "eps out of range");
    if let PathMode::Explicit(paths) = mode {
        assert_eq!(paths.len(), commodities.len());
        for (i, p) in paths.iter().enumerate() {
            assert!(!p.is_empty(), "commodity {i} has no allowed path");
        }
    }

    let mut caps = link_capacities(net);
    if opts.host_links_free {
        for (id, l) in net.links() {
            if l.up && (net.node(l.src).kind.is_host() || net.node(l.dst).kind.is_host()) {
                caps[id.index()] = f64::INFINITY;
            }
        }
    }
    let m = caps.iter().filter(|&&c| c > 0.0 && c.is_finite()).count() as f64;

    // --- Demand pre-scaling so that OPT λ' is Θ(1). -----------------------
    // Lower bound: route every commodity on a shortest allowed path and
    // scale by the resulting congestion.
    let seed_routes = shortest_routes_unit(net, commodities, mode, opts.parallelism);
    let mut seed_load = vec![0.0f64; caps.len()];
    for (c, route) in commodities.iter().zip(&seed_routes) {
        for &l in route {
            seed_load[l.index()] += c.demand;
        }
    }
    let seed_congestion = seed_load
        .iter()
        .zip(&caps)
        .filter(|&(_, &c)| c > 0.0)
        .map(|(&f, &c)| f / c)
        .fold(0.0f64, f64::max);
    assert!(
        seed_congestion > 0.0,
        "all commodities have empty routes; nothing to solve"
    );
    let lambda_lb = 1.0 / seed_congestion;
    let scale = lambda_lb; // demands multiplied by this => OPT' in [1, ...]

    // --- Fleischer phases. -------------------------------------------------
    let delta = (m / (1.0 - eps)).powf(-1.0 / eps);
    let mut length: Vec<f64> = caps
        .iter()
        .map(|&c| if c > 0.0 { delta / c } else { f64::INFINITY })
        .collect();
    let mut d_sum: f64 = m * delta; // Σ cₑ·ℓₑ over usable links
    let mut flow = vec![0.0f64; caps.len()];
    let mut sent = vec![0.0f64; commodities.len()];
    let mut phases = 0usize;
    // Hard cap: generous versus the theoretical bound; prevents runaway
    // loops if inputs are degenerate.
    let max_phases = 200_000;

    // Group commodities by source for shared oracle trees in AnyPath mode.
    let mut by_src: Vec<Vec<usize>> = vec![Vec::new(); net.n_hosts()];
    for (i, c) in commodities.iter().enumerate() {
        by_src[c.src.index()].push(i);
    }
    // Active sources in ascending order — the batch of independent Dijkstras
    // each phase fans out over.
    let sources: Vec<usize> = by_src
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.is_empty())
        .map(|(s, _)| s)
        .collect();

    let oracle = AnyPathOracle::new(net);

    'outer: while d_sum < 1.0 && phases < max_phases {
        phases += 1;
        // AnyPath: one shortest-path-tree bundle per active source, all
        // computed against the phase-start length vector. The per-source
        // Dijkstras are independent, so they run in parallel (Fleischer's
        // phase framework: routing on phase-start shortest paths preserves
        // the (1-O(eps)) guarantee, and the final congestion rescale keeps
        // the primal feasible regardless). Sequential consumption below
        // keeps serial and parallel runs bit-identical.
        let phase_trees: Vec<PlaneTrees> = match mode {
            PathMode::AnyPath => opts.parallelism.map_indexed(sources.len(), |i| {
                oracle.trees(net, HostId(sources[i] as u32), &length)
            }),
            PathMode::Explicit(_) => Vec::new(),
        };
        for (si, &src) in sources.iter().enumerate() {
            let group = &by_src[src];
            let trees = match mode {
                PathMode::AnyPath => Some(&phase_trees[si]),
                PathMode::Explicit(_) => None,
            };
            for &i in group {
                let mut remaining = commodities[i].demand * scale;
                while remaining > 0.0 {
                    if d_sum >= 1.0 {
                        break 'outer;
                    }
                    let route: Vec<LinkId> = match mode {
                        PathMode::Explicit(paths) => best_explicit(&paths[i], &length).to_vec(),
                        PathMode::AnyPath => oracle.best_route(
                            net,
                            commodities[i].src,
                            commodities[i].dst,
                            trees.unwrap(),
                            &length,
                        ),
                    };
                    let bottleneck = route
                        .iter()
                        .map(|&l| caps[l.index()])
                        .fold(f64::INFINITY, f64::min);
                    let push = remaining.min(bottleneck);
                    for &l in &route {
                        let e = l.index();
                        flow[e] += push;
                        if !caps[e].is_finite() {
                            continue; // uncapacitated (rack-level host link)
                        }
                        let grow = eps * push / caps[e];
                        let old = length[e];
                        length[e] = old * (1.0 + grow);
                        d_sum += caps[e] * (length[e] - old);
                    }
                    sent[i] += push;
                    remaining -= push;
                }
            }
        }
    }

    // --- Congestion rescale to a feasible primal. --------------------------
    let congestion = flow
        .iter()
        .zip(&caps)
        .filter(|&(_, &c)| c > 0.0)
        .map(|(&f, &c)| f / c)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let rates: Vec<f64> = sent
        .iter()
        .zip(commodities)
        .map(|(&s, _)| s / congestion)
        .collect();
    let lambda = rates
        .iter()
        .zip(commodities)
        .map(|(&r, c)| r / c.demand)
        .fold(f64::INFINITY, f64::min);
    let link_flow: Vec<f64> = flow.iter().map(|&f| f / congestion).collect();

    McfSolution {
        lambda,
        phases,
        link_flow,
        rates,
    }
}

/// Shortest allowed route per commodity under unit lengths (used for demand
/// pre-scaling). Explicit mode: fewest links among candidates. AnyPath:
/// BFS-shortest across planes, with one tree bundle per *unique* source
/// computed in parallel rather than one per commodity.
fn shortest_routes_unit(
    net: &Network,
    commodities: &[Commodity],
    mode: &PathMode,
    par: Parallelism,
) -> Vec<Vec<LinkId>> {
    match mode {
        PathMode::Explicit(paths) => paths
            .iter()
            .map(|cands| {
                cands
                    .iter()
                    .min_by_key(|p| p.len())
                    .expect("commodity with no candidate path")
                    .clone()
            })
            .collect(),
        PathMode::AnyPath => {
            let unit: Vec<f64> = net.links().map(|_| 1.0).collect();
            let oracle = AnyPathOracle::new(net);
            let mut sources: Vec<u32> = commodities.iter().map(|c| c.src.0).collect();
            sources.sort_unstable();
            sources.dedup();
            let trees: Vec<PlaneTrees> = par.map_indexed(sources.len(), |i| {
                oracle.trees(net, HostId(sources[i]), &unit)
            });
            commodities
                .iter()
                .map(|c| {
                    let si = sources.binary_search(&c.src.0).unwrap();
                    oracle.best_route(net, c.src, c.dst, &trees[si], &unit)
                })
                .collect()
        }
    }
}

/// Pick the minimum-length candidate.
fn best_explicit<'a>(candidates: &'a [Vec<LinkId>], length: &[f64]) -> &'a [LinkId] {
    candidates
        .iter()
        .min_by(|a, b| {
            let la: f64 = a.iter().map(|&l| length[l.index()]).sum();
            let lb: f64 = b.iter().map(|&l| length[l.index()]).sum();
            la.partial_cmp(&lb).unwrap()
        })
        .expect("no candidate path")
}

// --------------------------------------------------------------------------
// AnyPath oracle: per-plane Dijkstra over the switch graphs.
// --------------------------------------------------------------------------

use pnet_routing::PlaneGraph;

/// One plane's tree: (dist to each dense switch, parent link of each switch).
type PlaneTree = (Vec<f64>, Vec<Option<(usize, LinkId)>>);

/// Shortest-path trees from one source rack, one per plane.
pub struct PlaneTrees {
    trees: Vec<PlaneTree>,
}

struct AnyPathOracle {
    planes: Vec<PlaneGraph>,
}

#[derive(PartialEq)]
struct HeapItem(f64, usize);
impl Eq for HeapItem {}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap; weights are finite positives.
        other
            .0
            .partial_cmp(&self.0)
            .unwrap()
            .then(other.1.cmp(&self.1))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl AnyPathOracle {
    fn new(net: &Network) -> Self {
        AnyPathOracle {
            planes: PlaneGraph::build_all(net),
        }
    }

    /// Dijkstra from `src`'s ToR in every plane under `length`.
    fn trees(&self, net: &Network, src: HostId, length: &[f64]) -> PlaneTrees {
        let rack = net.rack_of_host(src);
        let trees = self
            .planes
            .iter()
            .map(|pg| {
                let s = pg.tor(rack);
                let n = pg.n_switches();
                let mut dist = vec![f64::INFINITY; n];
                let mut parent: Vec<Option<(usize, LinkId)>> = vec![None; n];
                let mut heap = BinaryHeap::new();
                dist[s] = 0.0;
                heap.push(HeapItem(0.0, s));
                while let Some(HeapItem(d, u)) = heap.pop() {
                    if d > dist[u] {
                        continue;
                    }
                    for &(v, l) in pg.neighbors(u) {
                        let nd = d + length[l.index()];
                        if nd < dist[v] {
                            dist[v] = nd;
                            parent[v] = Some((u, l));
                            heap.push(HeapItem(nd, v));
                        }
                    }
                }
                (dist, parent)
            })
            .collect();
        PlaneTrees { trees }
    }

    /// Best full route `src -> dst` across all planes given precomputed
    /// trees. Falls back across planes where a host lacks an uplink.
    fn best_route(
        &self,
        net: &Network,
        src: HostId,
        dst: HostId,
        trees: &PlaneTrees,
        length: &[f64],
    ) -> Vec<LinkId> {
        let dst_rack = net.rack_of_host(dst);
        let mut best: Option<(f64, usize)> = None;
        for (p, (dist, _)) in trees.trees.iter().enumerate() {
            let plane = PlaneId(p as u16);
            let (Some(up), Some(down)) = (
                net.host_uplink(src, plane),
                net.host_uplink(dst, plane).map(|l| l.reverse()),
            ) else {
                continue;
            };
            let t = self.planes[p].tor(dst_rack);
            if dist[t].is_infinite() {
                continue;
            }
            let total = length[up.index()] + dist[t] + length[down.index()];
            if best.is_none_or(|(b, _)| total < b) {
                best = Some((total, p));
            }
        }
        let (_, p) = best.expect("no plane connects the commodity endpoints");
        let plane = PlaneId(p as u16);
        let pg = &self.planes[p];
        let (_, parent) = &trees.trees[p];
        let mut fabric = Vec::new();
        let mut cur = pg.tor(dst_rack);
        while let Some((q, l)) = parent[cur] {
            fabric.push(l);
            cur = q;
        }
        fabric.reverse();
        let mut route = Vec::with_capacity(fabric.len() + 2);
        route.push(net.host_uplink(src, plane).unwrap());
        route.extend(fabric);
        route.push(net.host_uplink(dst, plane).unwrap().reverse());
        route
    }
}

/// Convenience: the paths of a [`pnet_routing::Path`] set expanded to full
/// host routes for one commodity.
pub fn expand_host_routes(
    net: &Network,
    src: HostId,
    dst: HostId,
    rack_paths: &[pnet_routing::Path],
) -> Vec<Vec<LinkId>> {
    rack_paths
        .iter()
        .filter_map(|p| pnet_routing::host_route(net, src, dst, p))
        .collect()
}

/// Helper bundling router + commodity list into explicit K-path mode across
/// all planes (the MPTCP + KSP configuration). Candidate-set construction
/// fans out across commodities.
pub fn ksp_mode(
    net: &Network,
    router: &pnet_routing::Router,
    commodities: &[Commodity],
    k: usize,
) -> PathMode {
    ksp_mode_with(net, router, commodities, k, Parallelism::default())
}

/// [`ksp_mode`] with an explicit execution strategy. Each commodity's
/// candidate set is a pure function of the frozen router tables and the
/// commodity index, so parallel construction is element-identical to serial.
pub fn ksp_mode_with(
    net: &Network,
    router: &pnet_routing::Router,
    commodities: &[Commodity],
    k: usize,
    par: Parallelism,
) -> PathMode {
    // Warm the route table in bulk first: precompute fans the per-pair
    // Yen/ECMP computations across threads without lock contention.
    router.precompute_with(&inter_rack_pairs(net, commodities), par);
    let paths = par.map_indexed(commodities.len(), |i| {
        let c = &commodities[i];
        let (sa, sb) = (net.rack_of_host(c.src), net.rack_of_host(c.dst));
        let rack_paths = if sa == sb {
            // Intra-rack: one host->ToR->host path per plane (MPTCP can
            // still stripe across all planes).
            net.planes().map(pnet_routing::Path::intra_rack).collect()
        } else {
            // Fetch a wide candidate set, hash-rotate each equal-length
            // tier per flow (the MPTCP path manager's spread), then keep
            // the K best for this flow.
            let wide = (2 * k).max(8);
            let mut ps = router.k_best_across_planes(sa, sb, wide);
            pnet_routing::path::rotate_ties(
                &mut ps,
                pnet_routing::flow_hash(c.src, c.dst, i as u64),
            );
            ps.truncate(k);
            ps
        };
        expand_host_routes(net, c.src, c.dst, &rack_paths)
    });
    PathMode::Explicit(paths)
}

/// Helper: single hash-selected ECMP path per commodity (plane by hash, then
/// equal-cost path by hash), the paper's naive P-Net ECMP. Candidate-set
/// construction fans out across commodities.
pub fn ecmp_mode(
    net: &Network,
    router: &pnet_routing::Router,
    commodities: &[Commodity],
) -> PathMode {
    ecmp_mode_with(net, router, commodities, Parallelism::default())
}

/// [`ecmp_mode`] with an explicit execution strategy.
pub fn ecmp_mode_with(
    net: &Network,
    router: &pnet_routing::Router,
    commodities: &[Commodity],
    par: Parallelism,
) -> PathMode {
    use pnet_routing::{flow_hash, hash_plane, hash_select};
    router.precompute_with(&inter_rack_pairs(net, commodities), par);
    let n_planes = net.n_planes();
    let paths = par.map_indexed(commodities.len(), |i| {
        let c = &commodities[i];
        let h = flow_hash(c.src, c.dst, i as u64);
        let plane = hash_plane(n_planes, h);
        let (sa, sb) = (net.rack_of_host(c.src), net.rack_of_host(c.dst));
        let rack_path = if sa == sb {
            pnet_routing::Path::intra_rack(plane)
        } else {
            let set = router.paths_in_plane(plane, sa, sb);
            assert!(!set.is_empty(), "no ECMP path in plane {plane}");
            hash_select(&set, h).clone()
        };
        expand_host_routes(net, c.src, c.dst, &[rack_path])
    });
    PathMode::Explicit(paths)
}

/// Distinct inter-rack (src, dst) rack pairs of a commodity list, in first-
/// appearance order — the precompute work-list for the helpers above.
fn inter_rack_pairs(net: &Network, commodities: &[Commodity]) -> Vec<(RackId, RackId)> {
    let mut seen = std::collections::HashSet::new();
    let mut pairs = Vec::new();
    for c in commodities {
        let (sa, sb) = (net.rack_of_host(c.src), net.rack_of_host(c.dst));
        if sa != sb && seen.insert((sa, sb)) {
            pairs.push((sa, sb));
        }
    }
    pairs
}

/// Max-min throughput of fixed single routes (see [`crate::maxmin`]) — used
/// for ECMP cases where the paper's LP would allocate on pinned paths.
pub fn single_path_maxmin(net: &Network, routes: &[Vec<LinkId>]) -> Vec<f64> {
    let caps = link_capacities(net);
    let idx: Vec<Vec<usize>> = routes
        .iter()
        .map(|r| r.iter().map(|l| l.index()).collect())
        .collect();
    crate::maxmin::maxmin_rates(&caps, &idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commodity;
    use pnet_routing::{RouteAlgo, Router};
    use pnet_topology::{assemble_homogeneous, gbps, FatTree, Jellyfish, LinkProfile};

    const EPS: f64 = 0.05;

    #[test]
    fn single_pair_gets_link_rate() {
        // Two hosts in different racks of a 1-plane fat tree; only
        // commodity. λ·d should equal one link rate (100G).
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let c = vec![Commodity::unit(HostId(0), HostId(15))];
        let sol = solve(&net, &c, &PathMode::AnyPath, EPS);
        let rate = sol.rates[0];
        assert!(
            (rate - gbps(100) as f64).abs() / (gbps(100) as f64) < 3.0 * EPS,
            "rate {rate} not ~100G"
        );
    }

    #[test]
    fn uplink_is_the_bottleneck_for_fan_out() {
        // One source sending to 4 destinations: the source's single 100G
        // uplink caps total at 100G, so λ·d = 25G each.
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let c: Vec<Commodity> = [4u32, 8, 12, 15]
            .iter()
            .map(|&d| Commodity::unit(HostId(0), HostId(d)))
            .collect();
        let sol = solve(&net, &c, &PathMode::AnyPath, EPS);
        for &r in &sol.rates {
            assert!((r - 25e9).abs() / 25e9 < 4.0 * EPS, "rates {:?}", sol.rates);
        }
    }

    #[test]
    fn two_planes_double_the_pair_rate() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let c = vec![Commodity::unit(HostId(0), HostId(15))];
        let sol = solve(&net, &c, &PathMode::AnyPath, EPS);
        assert!(
            (sol.rates[0] - 200e9).abs() / 200e9 < 3.0 * EPS,
            "rate {} not ~200G",
            sol.rates[0]
        );
    }

    #[test]
    fn explicit_single_path_restricts() {
        // Same pair, but restricted to one plane-0 route: 100G even though
        // the network has two planes.
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let router = Router::new(&net, RouteAlgo::Ksp { k: 1 });
        let c = vec![Commodity::unit(HostId(0), HostId(15))];
        let mode = ksp_mode(&net, &router, &c, 1);
        let sol = solve(&net, &c, &mode, EPS);
        assert!(
            (sol.rates[0] - 100e9).abs() / 100e9 < 3.0 * EPS,
            "rate {}",
            sol.rates[0]
        );
    }

    #[test]
    fn feasibility_always_holds() {
        let net = assemble_homogeneous(
            &Jellyfish::new(12, 3, 2, 5),
            2,
            &LinkProfile::paper_default(),
        );
        let c = commodity::all_to_all(8);
        let sol = solve(&net, &c, &PathMode::AnyPath, 0.1);
        let caps = link_capacities(&net);
        for (f, c) in sol.link_flow.iter().zip(&caps) {
            assert!(f <= &(c * 1.000001 + 1.0), "infeasible link flow");
        }
        assert!(sol.lambda > 0.0);
    }

    #[test]
    fn permutation_fat_tree_full_bisection_with_ecmp_paths() {
        // k=4 fat tree is non-blocking: a permutation routed over ALL
        // equal-cost paths (splittable) achieves the full 100G per host.
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let router = Router::new(&net, RouteAlgo::Ecmp { cap: 16 });
        // Cross-pod cyclic shift permutation: host i -> (i + 8) mod 16.
        let perm: Vec<usize> = (0..16).map(|i| (i + 8) % 16).collect();
        let c = commodity::permutation(&perm);
        let paths: Vec<Vec<Vec<LinkId>>> = c
            .iter()
            .map(|cm| {
                let (ra, rb) = (net.rack_of_host(cm.src), net.rack_of_host(cm.dst));
                let set = router.paths_in_plane(PlaneId(0), ra, rb);
                expand_host_routes(&net, cm.src, cm.dst, &set)
            })
            .collect();
        let sol = solve(&net, &c, &PathMode::Explicit(paths), EPS);
        let per_host = sol.rates[0];
        assert!(
            per_host > 0.85 * 100e9,
            "expected near-full bisection, got {per_host}"
        );
    }

    #[test]
    fn lambda_matches_min_rate_ratio() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let c = vec![
            Commodity {
                src: HostId(0),
                dst: HostId(15),
                demand: 1.0,
            },
            Commodity {
                src: HostId(1),
                dst: HostId(14),
                demand: 2.0,
            },
        ];
        let sol = solve(&net, &c, &PathMode::AnyPath, EPS);
        // λ = min_i rate_i / d_i by definition.
        let expect = (sol.rates[0] / 1.0).min(sol.rates[1] / 2.0);
        assert!((sol.lambda - expect).abs() <= expect * 1e-9);
        // Weighted fairness: commodity 1 should get ~2x commodity 0.
        let ratio = sol.rates[1] / sol.rates[0];
        assert!((ratio - 2.0).abs() < 0.5, "ratio {ratio}");
    }
}
