//! Max concurrent flow via the Garg–Könemann / Fleischer multiplicative-
//! weights framework — the workspace's replacement for the paper's Gurobi LP.
//!
//! Given commodities (host-to-host demands) and either explicit candidate
//! path sets (the "routes computed by ECMP or KSP" constraint of section
//! 5.1.1) or free routing within each plane (the "ideal throughput under no
//! path constraint" of Figure 7), the solver maximizes the uniform scale
//! factor λ such that every commodity i can ship λ·dᵢ simultaneously without
//! exceeding any link capacity.
//!
//! The algorithm maintains a length ℓₑ per link, starting at δ/cₑ, routes
//! each commodity along its currently-shortest allowed path, and inflates
//! lengths multiplicatively — the classic (1−ε)-approximation. We finish
//! with a congestion rescale (divide all flow by the max link utilization),
//! which guarantees a *feasible* primal solution regardless of floating-
//! point noise; λ is then exact-feasible and ≥ (1−O(ε))·OPT.

use crate::commodity::Commodity;
use pnet_routing::Parallelism;
use pnet_topology::{HostId, LinkId, Network, PlaneId, RackId};

/// How commodities may be routed.
#[derive(Debug, Clone)]
pub enum PathMode {
    /// `paths[i]` are the allowed routes of commodity `i`, each a full
    /// host-to-host link sequence. A commodity may split across them.
    Explicit(Vec<Vec<Vec<LinkId>>>),
    /// Any path within any single plane (host uplink + fabric + downlink).
    AnyPath,
}

/// Result of a max-concurrent-flow run.
#[derive(Debug, Clone)]
pub struct McfSolution {
    /// The achieved uniform scale factor: commodity `i` ships `lambda *
    /// demand_i` bits per second.
    pub lambda: f64,
    /// Phases executed by the multiplicative-weights loop.
    pub phases: usize,
    /// Feasible per-link flow (bits per second), after rescaling.
    pub link_flow: Vec<f64>,
    /// Feasible per-commodity rate (bits per second), after rescaling.
    pub rates: Vec<f64>,
    /// The final multiplicative-weights length vector (one entry per
    /// directed link). This is the solver's dual profile: feeding it to
    /// [`solve_warm_with_options`] after a link delta re-solves from this
    /// point instead of from the uniform δ/cₑ start.
    pub length: Vec<f64>,
}

impl McfSolution {
    /// Total shipped rate over all commodities (bits per second).
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }
}

/// Capacity of every directed link, indexed by `LinkId`. Down links get
/// capacity 0 (they cannot carry flow).
pub fn link_capacities(net: &Network) -> Vec<f64> {
    net.links()
        .map(|(_, l)| if l.up { l.capacity_bps as f64 } else { 0.0 })
        .collect()
}

/// Typed rejection for the checked (`try_`) solver entry points. Services
/// that answer queries built from untrusted or computed inputs (the planner's
/// what-if path) must receive an error value, not a panic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum McfError {
    /// `eps` outside the open interval (0, 0.5). The Fleischer start value
    /// `δ = (m/(1−ε))^(−1/ε)` degenerates outside it: ε = 0 divides by zero
    /// in the exponent, ε ≥ 1 sends the exponent through −1 where δ stops
    /// shrinking and the (1−ε) factor flips sign, and a NaN ε poisons every
    /// downstream comparison. Also raised for non-finite ε.
    InvalidEps { eps: f64 },
    /// The commodity set is empty — λ would be unconstrained.
    NoCommodities,
    /// Commodity `index` has a non-finite or non-positive demand.
    InvalidDemand { index: usize },
    /// `Explicit` mode: the path table length differs from the commodity
    /// count.
    PathTableMismatch { paths: usize, commodities: usize },
    /// Commodity `index` has no usable route: an empty `Explicit` path set,
    /// or (AnyPath) no plane connects its endpoints under the current link
    /// state.
    UnroutableCommodity { index: usize },
    /// No commodity could be seeded with positive congestion — every route
    /// is empty or uncapacitated, so there is nothing to solve.
    NoFeasibleFlow,
    /// Warm start: the previous solution's length profile belongs to a
    /// different network arena (link count mismatch).
    WarmArenaMismatch { expected: usize, got: usize },
    /// Warm start: the previous solution's λ is not positive.
    NonPositiveWarmLambda,
}

impl std::fmt::Display for McfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            McfError::InvalidEps { eps } => write!(
                f,
                "eps out of range: {eps} not in (0, 0.5); \
                 delta = (m/(1-eps))^(-1/eps) would be NaN or garbage"
            ),
            McfError::NoCommodities => write!(f, "no commodities"),
            McfError::InvalidDemand { index } => {
                write!(
                    f,
                    "commodity {index} has a non-finite or non-positive demand"
                )
            }
            McfError::PathTableMismatch { paths, commodities } => write!(
                f,
                "explicit path table has {paths} entries for {commodities} commodities"
            ),
            McfError::UnroutableCommodity { index } => {
                write!(f, "commodity {index} has no allowed path")
            }
            McfError::NoFeasibleFlow => {
                write!(f, "all commodities have empty routes; nothing to solve")
            }
            McfError::WarmArenaMismatch { expected, got } => write!(
                f,
                "warm start from a different network arena ({got} lengths for {expected} links)"
            ),
            McfError::NonPositiveWarmLambda => {
                write!(f, "warm start needs a positive previous λ")
            }
        }
    }
}

impl std::error::Error for McfError {}

/// Shared input validation of the checked entry points: everything the
/// panicking solvers assert about their arguments, as a value.
fn validate_inputs(commodities: &[Commodity], mode: &PathMode, eps: f64) -> Result<(), McfError> {
    if !(eps > 0.0 && eps < 0.5) {
        return Err(McfError::InvalidEps { eps });
    }
    if commodities.is_empty() {
        return Err(McfError::NoCommodities);
    }
    for (i, c) in commodities.iter().enumerate() {
        if !(c.demand > 0.0 && c.demand.is_finite()) {
            return Err(McfError::InvalidDemand { index: i });
        }
    }
    if let PathMode::Explicit(paths) = mode {
        if paths.len() != commodities.len() {
            return Err(McfError::PathTableMismatch {
                paths: paths.len(),
                commodities: commodities.len(),
            });
        }
        for (i, p) in paths.iter().enumerate() {
            if p.is_empty() {
                return Err(McfError::UnroutableCommodity { index: i });
            }
        }
    }
    Ok(())
}

/// Solver options.
#[derive(Debug, Clone, Copy, Default)]
pub struct McfOptions {
    /// Treat host attachment links as uncapacitated. This turns commodities
    /// into *rack-level* demands constrained only by the switch fabric —
    /// the paper's "ideal throughput under no path constraint, representing
    /// the total capacity of the network core" (Figure 7).
    pub host_links_free: bool,
    /// Execution strategy for the batched per-source shortest-path-tree
    /// computations (AnyPath mode). The per-source Dijkstras of one phase
    /// are independent given the phase-start length vector, so they fan out
    /// across threads; length updates stay sequential, so `Serial` and
    /// `Rayon` produce bit-identical solutions.
    pub parallelism: Parallelism,
}

/// Solve max concurrent flow. `eps` trades accuracy for speed (the result is
/// ≥ (1−O(eps))·OPT; 0.05–0.15 are sensible).
///
/// # Panics
/// If a commodity has an empty or no allowed path (`Explicit` mode) — the
/// caller should filter unroutable commodities first (λ would be 0).
pub fn solve(net: &Network, commodities: &[Commodity], mode: &PathMode, eps: f64) -> McfSolution {
    solve_with_options(net, commodities, mode, eps, McfOptions::default())
}

/// [`solve`] with explicit [`McfOptions`].
pub fn solve_with_options(
    net: &Network,
    commodities: &[Commodity],
    mode: &PathMode,
    eps: f64,
    opts: McfOptions,
) -> McfSolution {
    let checked = try_solve_with_options(net, commodities, mode, eps, opts);
    if let Err(e) = &checked {
        assert!(checked.is_ok(), "{e}");
    }
    checked.expect("invariant: asserted Ok above")
}

/// [`solve`] returning a typed error instead of panicking on bad inputs —
/// the entry point for services whose queries are not pre-validated.
pub fn try_solve(
    net: &Network,
    commodities: &[Commodity],
    mode: &PathMode,
    eps: f64,
) -> Result<McfSolution, McfError> {
    try_solve_with_options(net, commodities, mode, eps, McfOptions::default())
}

/// [`solve_with_options`] returning a typed [`McfError`] instead of
/// panicking on bad inputs.
pub fn try_solve_with_options(
    net: &Network,
    commodities: &[Commodity],
    mode: &PathMode,
    eps: f64,
    opts: McfOptions,
) -> Result<McfSolution, McfError> {
    validate_inputs(commodities, mode, eps)?;

    let mut caps = link_capacities(net);
    if opts.host_links_free {
        for (id, l) in net.links() {
            if l.up && (net.node(l.src).kind.is_host() || net.node(l.dst).kind.is_host()) {
                caps[id.index()] = f64::INFINITY;
            }
        }
    }
    let m = caps.iter().filter(|&&c| c > 0.0 && c.is_finite()).count() as f64;

    // One oracle for the whole solve: plane graphs and the host-uplink cache
    // are shared between demand pre-scaling and the phase loop.
    let oracle = AnyPathOracle::new(net);

    // --- Demand pre-scaling so that OPT λ' is Θ(1). -----------------------
    // Lower bound: route every commodity on a shortest allowed path and
    // scale by the resulting congestion.
    let seed_routes = shortest_routes_unit(net, commodities, mode, opts.parallelism, &oracle);
    let mut seed_load = vec![0.0f64; caps.len()];
    for (c, route) in commodities.iter().zip(&seed_routes) {
        for &l in route {
            seed_load[l.index()] += c.demand;
        }
    }
    let seed_congestion = seed_load
        .iter()
        .zip(&caps)
        .filter(|&(_, &c)| c > 0.0)
        .map(|(&f, &c)| f / c)
        .fold(0.0f64, f64::max);
    if seed_congestion.is_nan() || seed_congestion <= 0.0 {
        return Err(McfError::NoFeasibleFlow);
    }
    let lambda_lb = 1.0 / seed_congestion;
    let scale = lambda_lb; // demands multiplied by this => OPT' in [1, ...]

    // --- Fleischer phases. -------------------------------------------------
    let delta = (m / (1.0 - eps)).powf(-1.0 / eps);
    let length: Vec<f64> = caps
        .iter()
        .map(|&c| if c > 0.0 { delta / c } else { f64::INFINITY })
        .collect();
    let d_sum: f64 = m * delta; // Σ cₑ·ℓₑ over usable links
    Ok(gk_core(
        net,
        commodities,
        mode,
        eps,
        opts,
        &caps,
        &oracle,
        scale,
        length,
        d_sum,
        false,
    ))
}

/// Relative λ tolerance the warm-started solver is held to against a cold
/// re-solve of the same instance: tests and the reconvergence benchmark
/// assert `|λ_warm − λ_cold| ≤ WARM_LAMBDA_TOLERANCE · λ_cold`.
///
/// Why 0.10: GK at ε = 0.1 itself only guarantees (1−ε)³ ≈ 0.73·OPT; both
/// solvers land far closer in practice, and this bound is about their *gap*.
/// Paper-scale reconvergence scenarios (single cable / ≤4% bursts on 64–98
/// ToR fabrics) stay within ~3%. The pinned value is sized to the harshest
/// property-test envelope instead — 15% concurrent cable loss on a
/// degree-3, 12-rack fabric, where a single event can halve a rack's plane
/// capacity — whose exhaustively enumerated worst case is 8.3%. That tail
/// is not phase-limited: sweeping [`WARM_PHASE_BUDGET`] over 8–16 moves the
/// worst case non-monotonically within 6.9–8.9%, and doubling the budget
/// outright (measured with a forced 2× phase extension) bought back only
/// ~1.5 points while halving the reconvergence speedup. The tolerance is
/// the documented trade.
pub const WARM_LAMBDA_TOLERANCE: f64 = 0.10;

/// Phase-budget compression of a warm start. The warm solver's δ is the cold
/// δ raised to `1 / WARM_PHASE_BUDGET`, i.e. the length mass starts that
/// many multiplicative decades closer to the `Σ cₑ·ℓₑ ≥ 1` stopping rule, so
/// the phase count shrinks by roughly this factor. The theoretical
/// (1−O(ε)) guarantee formally degrades with the shorter homotopy; what
/// makes the shortcut safe is that the start point is not uniform but the
/// previous solve's near-optimal dual profile, and the empirical
/// [`WARM_LAMBDA_TOLERANCE`] cross-check holds the result to the cold answer.
pub const WARM_PHASE_BUDGET: f64 = 16.0;

/// [`solve`] warm-started from a previous solution's length profile.
pub fn solve_warm(
    net: &Network,
    commodities: &[Commodity],
    mode: &PathMode,
    eps: f64,
    warm: &McfSolution,
) -> McfSolution {
    solve_warm_with_options(net, commodities, mode, eps, McfOptions::default(), warm)
}

/// Re-solve max concurrent flow after a link delta, warm-started from
/// `warm` (a solution for the *same network arena* — same link ids — under
/// the previous link state; the current state is read from `net`).
///
/// Instead of the uniform δ/cₑ start, lengths begin at the previous dual
/// profile, rescaled so the carried mass is `δ_w` per link on average:
///
/// * links usable then and now carry their previous length (rescaled) — the
///   congestion structure the last solve learned survives the delta;
/// * links restored by the delta (unusable then, usable now) start fresh at
///   `δ_w/cₑ`, exactly like a cold start treats every link;
/// * links failed by the delta are pinned to ∞ (unroutable), and
///   uncapacitated links to 0, as in a cold start.
///
/// `δ_w` is compressed by [`WARM_PHASE_BUDGET`], so the phase loop runs ~16×
/// shorter than cold. Demands are pre-scaled by the same shortest-path
/// seeding pass the cold solver uses, run against the current topology (the
/// previous λ would overshoot after a capacity-reducing delta and collapse
/// the phase count). Feasibility is unconditional (the final congestion
/// rescale), and near-optimality is asserted against a cold re-solve by the
/// churn tests and the reconvergence benchmark.
pub fn solve_warm_with_options(
    net: &Network,
    commodities: &[Commodity],
    mode: &PathMode,
    eps: f64,
    opts: McfOptions,
    warm: &McfSolution,
) -> McfSolution {
    let checked = try_solve_warm_with_options(net, commodities, mode, eps, opts, warm);
    if let Err(e) = &checked {
        assert!(checked.is_ok(), "{e}");
    }
    checked.expect("invariant: asserted Ok above")
}

/// [`solve_warm`] returning a typed [`McfError`] instead of panicking on
/// bad inputs or a mismatched warm profile.
pub fn try_solve_warm(
    net: &Network,
    commodities: &[Commodity],
    mode: &PathMode,
    eps: f64,
    warm: &McfSolution,
) -> Result<McfSolution, McfError> {
    try_solve_warm_with_options(net, commodities, mode, eps, McfOptions::default(), warm)
}

/// [`solve_warm_with_options`] returning a typed [`McfError`] instead of
/// panicking.
pub fn try_solve_warm_with_options(
    net: &Network,
    commodities: &[Commodity],
    mode: &PathMode,
    eps: f64,
    opts: McfOptions,
    warm: &McfSolution,
) -> Result<McfSolution, McfError> {
    validate_inputs(commodities, mode, eps)?;
    if warm.lambda.is_nan() || warm.lambda <= 0.0 {
        return Err(McfError::NonPositiveWarmLambda);
    }

    let mut caps = link_capacities(net);
    if opts.host_links_free {
        for (id, l) in net.links() {
            if l.up && (net.node(l.src).kind.is_host() || net.node(l.dst).kind.is_host()) {
                caps[id.index()] = f64::INFINITY;
            }
        }
    }
    // pnet-tidy: allow(D3) -- usize arena-length comparison, not a float read
    if warm.length.len() != caps.len() {
        return Err(McfError::WarmArenaMismatch {
            expected: caps.len(),
            got: warm.length.len(),
        });
    }
    let m = caps.iter().filter(|&&c| c > 0.0 && c.is_finite()).count() as f64;
    let oracle = AnyPathOracle::new(net);

    // Demand pre-scale: the same shortest-path seeding as the cold solver,
    // run against the *current* topology. The previous λ is tempting but
    // wrong here — after a capacity-reducing delta it overshoots the new
    // optimum, every phase then grows lengths too aggressively, and the run
    // terminates in far fewer phases than the budget intends, too coarse to
    // hit the λ tolerance. A fresh λ lower bound keeps OPT' ≥ 1 exactly as
    // in the cold run, so the warm phase count lands near cold/B; the
    // seeding pass costs one unit-length route per commodity, noise next to
    // the phases it preserves.
    let seed_routes = shortest_routes_unit(net, commodities, mode, opts.parallelism, &oracle);
    let mut seed_load = vec![0.0f64; caps.len()];
    for (c, route) in commodities.iter().zip(&seed_routes) {
        for &l in route {
            seed_load[l.index()] += c.demand;
        }
    }
    let seed_congestion = seed_load
        .iter()
        .zip(&caps)
        .filter(|&(_, &c)| c > 0.0)
        .map(|(&f, &c)| f / c)
        .fold(0.0f64, f64::max);
    if seed_congestion.is_nan() || seed_congestion <= 0.0 {
        return Err(McfError::NoFeasibleFlow);
    }
    let scale = 1.0 / seed_congestion;

    // The cold run walks the total length mass Σ cₑ·ℓₑ from m·δ up to 1; the
    // phase count is proportional to those multiplicative decades. Start the
    // warm run at the B-th root of the cold start mass — the same decades
    // divided by WARM_PHASE_BUDGET — rather than at δ^(1/B) per link, which
    // would land within a small factor of 1 and leave almost no phases.
    let delta_cold = (m / (1.0 - eps)).powf(-1.0 / eps);
    let delta_w = (m * delta_cold).powf(1.0 / WARM_PHASE_BUDGET) / m;
    // A previous length is carried iff it is a real dual value for a link
    // that is still capacitated: finite and positive. Restored links show up
    // as ∞ (failed at warm time) or 0 (uncapacitated at warm time) in the
    // warm profile — both start fresh.
    //
    // Carried masses are compressed to the warm run's dynamic range by the
    // same B-th root as δ itself. The previous run's terminal profile spans
    // the *cold* range — a saturated link's mass cₑ·ℓₑ sits ~1/δ above an
    // idle link's. Carried raw into a run with only 1/B of those decades of
    // headroom, the hot links would start so far above everything else that
    // the mass cap is reached before they ever become competitive again:
    // their capacity goes unused, the rest congests, and λ collapses. The
    // B-th root maps [δ, 1] onto [δ^(1/B), 1], preserving the ordering and
    // relative log-structure at exactly the scale the warm run can traverse.
    let root = 1.0 / WARM_PHASE_BUDGET;
    let carried_mass: f64 = caps
        .iter()
        .zip(&warm.length)
        .filter(|&(&c, &w)| c > 0.0 && c.is_finite() && w > 0.0 && w.is_finite())
        .map(|(&c, &w)| (c * w).powf(root))
        .sum();
    let n_fresh = caps
        .iter()
        .zip(&warm.length)
        .filter(|&(&c, &w)| c > 0.0 && c.is_finite() && !(w > 0.0 && w.is_finite()))
        .count();
    let carried = m - n_fresh as f64;
    let rescale = if carried_mass > 0.0 {
        carried * delta_w / carried_mass
    } else {
        0.0
    };
    let mut d_sum = 0.0f64;
    let length: Vec<f64> = caps
        .iter()
        .zip(&warm.length)
        .map(|(&c, &w)| {
            if c <= 0.0 {
                f64::INFINITY
            } else if !c.is_finite() {
                0.0
            } else {
                let l = if w > 0.0 && w.is_finite() {
                    (c * w).powf(root) / c * rescale
                } else {
                    delta_w / c
                };
                d_sum += c * l;
                l
            }
        })
        .collect();

    Ok(gk_core(
        net,
        commodities,
        mode,
        eps,
        opts,
        &caps,
        &oracle,
        scale,
        length,
        d_sum,
        true,
    ))
}

/// The shared Fleischer phase loop + congestion rescale: everything after
/// the start point (`length`, its mass `d_sum`, and the demand pre-scale) is
/// chosen — [`solve_with_options`] passes the uniform δ/cₑ start,
/// [`solve_warm_with_options`] the rescaled previous profile.
#[allow(clippy::too_many_arguments)]
fn gk_core(
    net: &Network,
    commodities: &[Commodity],
    mode: &PathMode,
    eps: f64,
    opts: McfOptions,
    caps: &[f64],
    oracle: &AnyPathOracle,
    scale: f64,
    mut length: Vec<f64>,
    mut d_sum: f64,
    complete_last_phase: bool,
) -> McfSolution {
    let mut flow = vec![0.0f64; caps.len()];
    let mut sent = vec![0.0f64; commodities.len()];
    let mut phases = 0usize;
    // Hard cap: generous versus the theoretical bound; prevents runaway
    // loops if inputs are degenerate.
    let max_phases = 200_000;

    // Group commodities by source for shared oracle trees in AnyPath mode.
    let mut by_src: Vec<Vec<usize>> = vec![Vec::new(); net.n_hosts()];
    for (i, c) in commodities.iter().enumerate() {
        by_src[c.src.index()].push(i);
    }
    // Active sources in ascending order — the batch of independent Dijkstras
    // each phase fans out over.
    let sources: Vec<usize> = by_src
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.is_empty())
        .map(|(s, _)| s)
        .collect();
    // Destination racks each source's tree bundle will be read at — the
    // per-phase Dijkstras early-terminate once these are settled.
    let target_racks: Vec<Vec<RackId>> = sources
        .iter()
        .map(|&s| {
            let mut t: Vec<RackId> = by_src[s]
                .iter()
                .map(|&i| net.rack_of_host(commodities[i].dst))
                .collect();
            t.sort_unstable();
            t.dedup();
            t
        })
        .collect();

    // Persistent per-source tree bundles (AnyPath): refreshed in place each
    // phase instead of reallocated, and one route buffer serves every push.
    let mut phase_trees: Vec<PlaneTrees> = match mode {
        PathMode::AnyPath => (0..sources.len()).map(|_| oracle.empty_trees()).collect(),
        PathMode::Explicit(_) => Vec::new(),
    };
    // Per-plane CSR-order weight snapshot, regathered once per phase and
    // shared by every source's Dijkstra. A plane is dirty when one of its
    // fabric links grew since its last gather: pushes mark the chosen
    // plane, and clean planes skip both the gather and all their Dijkstras
    // next phase (their trees are already exactly what a recompute would
    // produce). Host attachment links never dirty a plane — they are not
    // part of the plane graphs, and `best_route_into` reads them straight
    // from `length`.
    //
    // `grown` refines the per-plane flag to a per-link bitset: a push on a
    // fabric link sets its bit alongside the plane flag, and both are
    // cleared together after the refresh. Within a dirty plane, a source
    // whose recorded shortest-path chains traverse no grown link skips its
    // Dijkstra entirely (see `refresh_trees` for why that is exact).
    let mut phase_w: Vec<Vec<f64>> = Vec::new();
    let mut plane_dirty: Vec<bool> = vec![true; oracle.planes.len()];
    let n_words = caps.len().div_ceil(64);
    let mut grown: Vec<Vec<u64>> = vec![vec![0u64; n_words]; oracle.planes.len()];
    let mut route: Vec<LinkId> = Vec::new();

    // Late-window primal scoring for warm runs. A short warm run's first
    // phases route on lengths that do not yet reflect the post-delta
    // congestion, and with only ~1/B as many phases as a cold run that
    // transient is a visible fraction of the accumulated flow — it creates
    // one over-utilized link and the congestion rescale drags λ down. Any
    // prefix-to-end window of routed flow is itself a feasible primal after
    // its own congestion rescale, so the accumulators are snapshotted on a
    // geometric phase grid (ratio 1.3) and the final λ is the best over the
    // full window and every suffix window (O(log P) snapshots, each O(m) to
    // store). Cold runs skip all of this: their λ is pinned bit-identical
    // to the historical solver.
    let mut snaps: Vec<(Vec<f64>, Vec<f64>, usize)> = Vec::new();
    let mut next_snap = 2usize;

    'outer: while d_sum < 1.0 && phases < max_phases {
        phases += 1;
        if complete_last_phase && phases == next_snap {
            snaps.push((flow.clone(), sent.clone(), phases - 1));
            next_snap = (next_snap + 1).max((next_snap as f64 * 1.3) as usize);
        }
        // AnyPath: one shortest-path-tree bundle per active source, all
        // computed against the phase-start length vector. The per-source
        // Dijkstras are independent, so they run in parallel (Fleischer's
        // phase framework: routing on phase-start shortest paths preserves
        // the (1-O(eps)) guarantee, and the final congestion rescale keeps
        // the primal feasible regardless). Sequential consumption below
        // keeps serial and parallel runs bit-identical.
        if matches!(mode, PathMode::AnyPath) {
            oracle.edge_weights(&length, &plane_dirty, &mut phase_w);
            opts.parallelism.update_indexed(&mut phase_trees, |i, t| {
                oracle.refresh_trees(
                    net,
                    HostId(sources[i] as u32),
                    &target_racks[i],
                    &phase_w,
                    &plane_dirty,
                    &grown,
                    t,
                )
            });
            for (g, &d) in grown.iter_mut().zip(&plane_dirty) {
                if d {
                    g.iter_mut().for_each(|w| *w = 0);
                }
            }
            plane_dirty.fill(false);
        }
        for (si, &src) in sources.iter().enumerate() {
            let group = &by_src[src];
            for &i in group {
                let mut remaining = commodities[i].demand * scale;
                while remaining > 0.0 {
                    // A warm run completes its final phase instead of
                    // stopping mid-commodity: with only a handful of phases,
                    // an uneven last phase would starve the not-yet-routed
                    // commodities and drag λ (= the min rate ratio) down.
                    // Cold runs keep the historical mid-phase stop — its
                    // imbalance is amortized over thousands of phases, and
                    // the pinned golden λ depends on the exact float
                    // sequence.
                    if d_sum >= 1.0 && !complete_last_phase {
                        break 'outer;
                    }
                    match mode {
                        PathMode::Explicit(paths) => {
                            route.clear();
                            route.extend_from_slice(best_explicit(&paths[i], &length));
                        }
                        PathMode::AnyPath => {
                            let p = oracle.best_route_into(
                                net,
                                commodities[i].src,
                                commodities[i].dst,
                                &phase_trees[si],
                                &length,
                                &mut route,
                            );
                            // Routes longer than uplink + downlink grow
                            // fabric lengths: plane p's trees go stale.
                            // Record exactly which fabric links grow so
                            // unaffected sources can keep their trees.
                            if route.len() > 2 {
                                plane_dirty[p] = true;
                                let g = &mut grown[p];
                                for &l in &route[1..route.len() - 1] {
                                    g[l.index() >> 6] |= 1 << (l.index() & 63);
                                }
                            }
                        }
                    };
                    let bottleneck = route
                        .iter()
                        .map(|&l| caps[l.index()])
                        .fold(f64::INFINITY, f64::min);
                    let push = remaining.min(bottleneck);
                    for &l in &route {
                        let e = l.index();
                        flow[e] += push;
                        if !caps[e].is_finite() {
                            continue; // uncapacitated (rack-level host link)
                        }
                        let grow = eps * push / caps[e];
                        let old = length[e];
                        length[e] = old * (1.0 + grow);
                        d_sum += caps[e] * (length[e] - old);
                    }
                    sent[i] += push;
                    remaining -= push;
                }
            }
        }
    }

    // --- Congestion rescale to a feasible primal. --------------------------
    let score = |flow: &[f64], sent: &[f64]| -> (f64, Vec<f64>, Vec<f64>) {
        let congestion = flow
            .iter()
            .zip(caps)
            .filter(|&(_, &c)| c > 0.0)
            .map(|(&f, &c)| f / c)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let rates: Vec<f64> = sent.iter().map(|&s| s / congestion).collect();
        let lambda = rates
            .iter()
            .zip(commodities)
            .map(|(&r, c)| r / c.demand)
            .fold(f64::INFINITY, f64::min);
        let link_flow: Vec<f64> = flow.iter().map(|&f| f / congestion).collect();
        (lambda, rates, link_flow)
    };
    let (mut lambda, mut rates, mut link_flow) = score(&flow, &sent);
    for (s_flow, s_sent, s_phases) in &snaps {
        if !(1..phases).contains(s_phases) {
            continue;
        }
        let late_flow: Vec<f64> = flow.iter().zip(s_flow).map(|(&a, &b)| a - b).collect();
        let late_sent: Vec<f64> = sent.iter().zip(s_sent).map(|(&a, &b)| a - b).collect();
        let (l2, r2, lf2) = score(&late_flow, &late_sent);
        if l2 > lambda {
            lambda = l2;
            rates = r2;
            link_flow = lf2;
        }
    }

    McfSolution {
        lambda,
        phases,
        link_flow,
        rates,
        length,
    }
}

/// Shortest allowed route per commodity under unit lengths (used for demand
/// pre-scaling). Explicit mode: fewest links among candidates. AnyPath:
/// BFS-shortest across planes, with one tree bundle per *unique* source
/// computed in parallel rather than one per commodity.
fn shortest_routes_unit(
    net: &Network,
    commodities: &[Commodity],
    mode: &PathMode,
    par: Parallelism,
    oracle: &AnyPathOracle,
) -> Vec<Vec<LinkId>> {
    match mode {
        PathMode::Explicit(paths) => paths
            .iter()
            .map(|cands| {
                cands
                    .iter()
                    .min_by_key(|p| p.len())
                    .expect("invariant: every commodity has a non-empty candidate path set")
                    .clone()
            })
            .collect(),
        PathMode::AnyPath => {
            let unit: Vec<f64> = net.links().map(|_| 1.0).collect();
            let mut sources: Vec<u32> = commodities.iter().map(|c| c.src.0).collect();
            sources.sort_unstable();
            sources.dedup();
            let targets: Vec<Vec<RackId>> = sources
                .iter()
                .map(|&s| {
                    let mut t: Vec<RackId> = commodities
                        .iter()
                        .filter(|c| c.src.0 == s)
                        .map(|c| net.rack_of_host(c.dst))
                        .collect();
                    t.sort_unstable();
                    t.dedup();
                    t
                })
                .collect();
            let trees: Vec<PlaneTrees> = par.map_indexed(sources.len(), |i| {
                oracle.trees(net, HostId(sources[i]), &targets[i], &unit)
            });
            commodities
                .iter()
                .map(|c| {
                    let si = sources
                        .binary_search(&c.src.0)
                        .expect("invariant: sources holds every commodity source host");
                    oracle.best_route(net, c.src, c.dst, &trees[si], &unit)
                })
                .collect()
        }
    }
}

/// Pick the minimum-length candidate.
fn best_explicit<'a>(candidates: &'a [Vec<LinkId>], length: &[f64]) -> &'a [LinkId] {
    candidates
        .iter()
        .min_by(|a, b| {
            let la: f64 = a.iter().map(|&l| length[l.index()]).sum();
            let lb: f64 = b.iter().map(|&l| length[l.index()]).sum();
            la.total_cmp(&lb)
        })
        .expect("invariant: every commodity has a non-empty candidate path set")
}

// --------------------------------------------------------------------------
// AnyPath oracle: per-plane Dijkstra over the switch graphs.
// --------------------------------------------------------------------------

use pnet_routing::PlaneGraph;

/// Parent sentinel: `u64::MAX` cannot encode a real (node, link) pair.
const NO_PARENT: u64 = u64::MAX;

/// One plane's tree: (dist to each dense switch, packed parent of each
/// switch). A parent packs `(dense parent node) << 32 | link id`, or
/// [`NO_PARENT`] at the tree root — one word instead of a 24-byte
/// `Option<(usize, LinkId)>`, so refreshes touch less memory.
type PlaneTree = (Vec<f64>, Vec<u64>);

/// Indexed 4-ary min-heap on `(distance bits, dense node)` with
/// decrease-key, reused across Dijkstras.
///
/// Every distance is a non-negative finite float, and for those the
/// IEEE-754 bit pattern orders identically to the value — so the heap
/// compares plain integers yet pops in the exact (dist asc, node asc) order
/// an `f64`-keyed heap would. Decrease-key (via the `pos` index) keeps one
/// entry per frontier node instead of the lazy-deletion scheme's duplicates:
/// the sequence of *valid* extract-mins — hence the settle order, the
/// relaxation order, and every float operation — is unchanged, but roughly
/// half the pops and their sift-downs disappear.
struct DijkstraHeap {
    /// `(dist bits, node)` entries in 4-ary heap order.
    items: Vec<(u64, u32)>,
    /// Heap position of each dense node, `u32::MAX` when absent.
    pos: Vec<u32>,
}

impl DijkstraHeap {
    fn with_nodes(max_n: usize) -> DijkstraHeap {
        DijkstraHeap {
            items: Vec::with_capacity(max_n),
            pos: vec![u32::MAX; max_n],
        }
    }

    /// Remove all entries, resetting their position marks.
    fn clear(&mut self) {
        for &(_, v) in &self.items {
            self.pos[v as usize] = u32::MAX;
        }
        self.items.clear();
    }

    /// Insert `node` with `key`, or lower its existing key (Dijkstra only
    /// ever improves keys, so a present node always sifts up).
    fn push_or_decrease(&mut self, key: u64, node: u32) {
        let p = self.pos[node as usize];
        if p == u32::MAX {
            self.items.push((key, node));
            self.sift_up(self.items.len() - 1);
        } else {
            self.items[p as usize].0 = key;
            self.sift_up(p as usize);
        }
    }

    /// Extract the minimum `(key, node)` entry.
    fn pop(&mut self) -> Option<(u64, u32)> {
        let top = *self.items.first()?;
        self.pos[top.1 as usize] = u32::MAX;
        let last = self
            .items
            .pop()
            .expect("invariant: items is non-empty when first() returned an entry");
        if !self.items.is_empty() {
            self.items[0] = last;
            self.sift_down(0);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize) {
        let it = self.items[i];
        while i > 0 {
            let p = (i - 1) / 4;
            if self.items[p] <= it {
                break;
            }
            self.items[i] = self.items[p];
            self.pos[self.items[i].1 as usize] = i as u32;
            i = p;
        }
        self.items[i] = it;
        self.pos[it.1 as usize] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize) {
        let it = self.items[i];
        loop {
            let c0 = 4 * i + 1;
            if c0 >= self.items.len() {
                break;
            }
            let mut m = c0;
            for c in c0 + 1..(c0 + 4).min(self.items.len()) {
                if self.items[c] < self.items[m] {
                    m = c;
                }
            }
            if it <= self.items[m] {
                break;
            }
            self.items[i] = self.items[m];
            self.pos[self.items[i].1 as usize] = i as u32;
            i = m;
        }
        self.items[i] = it;
        self.pos[it.1 as usize] = i as u32;
    }
}

/// Shortest-path trees from one source rack, one per plane. Persistent: the
/// phase loop refreshes the same trees in place every phase (dist refilled,
/// the Dijkstra heap reused) instead of reallocating — refreshing performs
/// the exact same float operations as building fresh, so solutions are
/// bit-identical.
pub struct PlaneTrees {
    trees: Vec<PlaneTree>,
    /// Reused Dijkstra frontier (cleared per plane).
    heap: DijkstraHeap,
    /// Scratch target-marks for early-terminated Dijkstra (shared across the
    /// planes of one refresh; every set bit is cleared again before reuse).
    mask: Vec<bool>,
    /// Whether each plane's tree has been computed at least once — until it
    /// has, there are no recorded chains to test against grown links and the
    /// Dijkstra must run unconditionally.
    valid: Vec<bool>,
}

struct AnyPathOracle {
    planes: Vec<PlaneGraph>,
    /// Host uplink per (host, plane), cached once: `host_uplink` scans the
    /// host's link arena slice on every call, and `best_route` asks for it
    /// several times per commodity per phase. Link state is frozen for the
    /// duration of a solve, so the cache cannot go stale mid-run.
    uplinks: Vec<Option<LinkId>>,
    n_planes: usize,
}

impl AnyPathOracle {
    fn new(net: &Network) -> Self {
        let planes = PlaneGraph::build_all(net);
        let n_planes = planes.len();
        let mut uplinks = Vec::with_capacity(net.n_hosts() * n_planes);
        for h in 0..net.n_hosts() {
            for p in 0..n_planes {
                uplinks.push(net.host_uplink(HostId(h as u32), PlaneId(p as u16)));
            }
        }
        AnyPathOracle {
            planes,
            uplinks,
            n_planes,
        }
    }

    #[inline]
    fn uplink(&self, h: HostId, p: usize) -> Option<LinkId> {
        self.uplinks[h.index() * self.n_planes + p]
    }

    /// Empty tree bundle sized for this oracle, to be filled by
    /// [`AnyPathOracle::refresh_trees`].
    fn empty_trees(&self) -> PlaneTrees {
        let max_n = self
            .planes
            .iter()
            .map(|pg| pg.n_switches())
            .max()
            .unwrap_or(0);
        PlaneTrees {
            trees: self
                .planes
                .iter()
                .map(|pg| {
                    let n = pg.n_switches();
                    (vec![f64::INFINITY; n], vec![NO_PARENT; n])
                })
                .collect(),
            heap: DijkstraHeap::with_nodes(max_n),
            mask: vec![false; max_n],
            valid: vec![false; self.planes.len()],
        }
    }

    /// Gather `length` into per-plane CSR-edge-order weight arrays. Every
    /// same-phase Dijkstra (one per source) then reads its relaxation weight
    /// at the CSR position it is already walking, instead of chasing
    /// `length[link.index()]` — one gather per plane per phase, shared by
    /// all sources. Values are copied verbatim, so sums are bit-identical.
    /// Planes whose `dirty` flag is unset kept their previous weights and
    /// are skipped.
    fn edge_weights(&self, length: &[f64], dirty: &[bool], out: &mut Vec<Vec<f64>>) {
        out.resize(self.planes.len(), Vec::new());
        for ((pg, w), _) in self
            .planes
            .iter()
            .zip(out.iter_mut())
            .zip(dirty)
            .filter(|&(_, &d)| d)
        {
            pg.gather_weights(length, w);
        }
    }

    /// Dijkstra from `src`'s ToR in every plane under per-plane CSR-order
    /// `weights` (see [`AnyPathOracle::edge_weights`]), refreshing `out` in
    /// place.
    ///
    /// `targets` are the destination racks the caller will read out of the
    /// trees (via [`AnyPathOracle::best_route_into`]): each plane's Dijkstra
    /// stops as soon as every target is settled. A target's distance and the
    /// parent pointers along its shortest path are final at settle time, so
    /// every value the caller can observe is identical to a full run — only
    /// relaxations of never-read nodes are skipped. An empty `targets` slice
    /// settles everything.
    ///
    /// Parents are *not* cleared between refreshes: every node on a
    /// backtracked path was improved (and its parent overwritten) during
    /// this refresh before its settle, except the root, whose distance 0.0
    /// no relaxation can beat — so only the root's sentinel is written.
    /// Stale parents of nodes off the returned paths are never read.
    ///
    /// Planes whose `dirty` flag is unset are skipped entirely: their
    /// weights match the previous refresh, so the (dist, parent) arrays
    /// already hold exactly what recomputing would produce.
    ///
    /// Within a dirty plane, `grown[p]` (a bitset over link ids: the links
    /// whose length grew since the plane's last gather) refines the skip to
    /// *per source*: if none of this source's recorded shortest-path chains
    /// (root → each target) traverses a grown link, the Dijkstra is skipped
    /// and the arrays are kept. This is exact, not approximate: lengths only
    /// grow within a solve, so the recorded chains — untouched by the delta
    /// — still achieve their old distances while every other path can only
    /// have gotten longer; the targets' distances are therefore unchanged.
    /// Parents are also reproduced bit-for-bit by a hypothetical re-run: a
    /// rival same-distance achiever would have to pop no later than the
    /// recorded parent to displace it, but growth can only move rivals'
    /// keys (and hence their pops) later, never earlier. Only the stale
    /// never-read remainder of the arrays differs from a re-run.
    #[allow(clippy::too_many_arguments)]
    fn refresh_trees(
        &self,
        net: &Network,
        src: HostId,
        targets: &[RackId],
        weights: &[Vec<f64>],
        dirty: &[bool],
        grown: &[Vec<u64>],
        out: &mut PlaneTrees,
    ) {
        let rack = net.rack_of_host(src);
        let PlaneTrees {
            trees,
            heap,
            mask,
            valid,
        } = out;
        for (p, ((pg, w), (dist, parent))) in self
            .planes
            .iter()
            .zip(weights)
            .zip(trees.iter_mut())
            .enumerate()
        {
            if !dirty[p] {
                continue;
            }
            if valid[p] {
                let g = &grown[p];
                let hit = targets.iter().any(|&r| {
                    let t = pg.tor(r);
                    if dist[t].is_infinite() {
                        return false; // unreachable stays unreachable: growth never severs or adds links
                    }
                    let mut cur = t;
                    loop {
                        let pv = parent[cur];
                        if pv == NO_PARENT {
                            return false;
                        }
                        let e = pv as u32 as usize;
                        if g[e >> 6] & (1u64 << (e & 63)) != 0 {
                            return true;
                        }
                        cur = (pv >> 32) as usize;
                    }
                });
                if !hit {
                    continue;
                }
            }
            valid[p] = true;
            let s = pg.tor(rack);
            let mut remaining = 0usize;
            for &r in targets {
                let t = pg.tor(r);
                if !mask[t] {
                    mask[t] = true;
                    remaining += 1;
                }
            }
            let early = !targets.is_empty();
            dist.fill(f64::INFINITY);
            dist[s] = 0.0;
            parent[s] = NO_PARENT;
            heap.clear();
            heap.push_or_decrease(0, s as u32);
            while let Some((db, u)) = heap.pop() {
                let u = u as usize;
                if early && mask[u] {
                    mask[u] = false;
                    remaining -= 1;
                    if remaining == 0 {
                        break;
                    }
                }
                let d = f64::from_bits(db);
                let row = pg.neighbors(u);
                let wrow = &w[pg.row_start(u)..pg.row_start(u) + row.len()];
                for (&(v, l), &wt) in row.iter().zip(wrow) {
                    let v = v as usize;
                    let nd = d + wt;
                    if nd < dist[v] {
                        dist[v] = nd;
                        parent[v] = ((u as u64) << 32) | l.0 as u64;
                        heap.push_or_decrease(nd.to_bits(), v as u32);
                    }
                }
            }
            // Unreachable targets never pop: clear their marks for the next
            // plane/refresh.
            if remaining > 0 {
                for &r in targets {
                    mask[pg.tor(r)] = false;
                }
            }
        }
    }

    /// One-shot tree bundle (allocating convenience over
    /// [`AnyPathOracle::refresh_trees`], gathering its own weights).
    fn trees(&self, net: &Network, src: HostId, targets: &[RackId], length: &[f64]) -> PlaneTrees {
        let all = vec![true; self.planes.len()];
        let mut w = Vec::new();
        self.edge_weights(length, &all, &mut w);
        let mut out = self.empty_trees();
        // Fresh trees are invalid in every plane, so the grown bitsets are
        // never consulted: an empty slice suffices.
        self.refresh_trees(net, src, targets, &w, &all, &[], &mut out);
        out
    }

    /// Best full route `src -> dst` across all planes given precomputed
    /// trees, written into `route` (cleared first); returns the chosen
    /// plane's index. Falls back across planes where a host lacks an uplink.
    fn best_route_into(
        &self,
        net: &Network,
        src: HostId,
        dst: HostId,
        trees: &PlaneTrees,
        length: &[f64],
        route: &mut Vec<LinkId>,
    ) -> usize {
        let dst_rack = net.rack_of_host(dst);
        let mut best: Option<(f64, usize)> = None;
        for (p, (dist, _)) in trees.trees.iter().enumerate() {
            let (Some(up), Some(down)) = (
                self.uplink(src, p),
                self.uplink(dst, p).map(|l| l.reverse()),
            ) else {
                continue;
            };
            let t = self.planes[p].tor(dst_rack);
            if dist[t].is_infinite() {
                continue;
            }
            let total = length[up.index()] + dist[t] + length[down.index()];
            if best.is_none_or(|(b, _)| total < b) {
                best = Some((total, p));
            }
        }
        let (_, p) = best.expect("invariant: some plane connects every commodity's endpoints");
        let pg = &self.planes[p];
        let (_, parent) = &trees.trees[p];
        // Backtrack the fabric portion, then reverse in place within the
        // route buffer (slot 0 holds the uplink; the downlink is appended).
        route.clear();
        route.push(
            self.uplink(src, p)
                .expect("invariant: the chosen plane has an uplink for the source host"),
        );
        let mut cur = pg.tor(dst_rack);
        loop {
            let pv = parent[cur];
            // pnet-tidy: allow(D3) -- pv is a packed u64 parent word; exact integer sentinel compare
            if pv == NO_PARENT {
                break;
            }
            route.push(LinkId(pv as u32));
            cur = (pv >> 32) as usize;
        }
        route[1..].reverse();
        route.push(
            self.uplink(dst, p)
                .expect("invariant: the chosen plane has an uplink for the destination host")
                .reverse(),
        );
        p
    }

    /// Allocating wrapper over [`AnyPathOracle::best_route_into`].
    fn best_route(
        &self,
        net: &Network,
        src: HostId,
        dst: HostId,
        trees: &PlaneTrees,
        length: &[f64],
    ) -> Vec<LinkId> {
        let mut route = Vec::new();
        self.best_route_into(net, src, dst, trees, length, &mut route);
        route
    }
}

/// Convenience: the paths of a [`pnet_routing::Path`] set expanded to full
/// host routes for one commodity.
pub fn expand_host_routes(
    net: &Network,
    src: HostId,
    dst: HostId,
    rack_paths: &[pnet_routing::Path],
) -> Vec<Vec<LinkId>> {
    rack_paths
        .iter()
        .filter_map(|p| pnet_routing::host_route(net, src, dst, p))
        .collect()
}

/// Helper bundling router + commodity list into explicit K-path mode across
/// all planes (the MPTCP + KSP configuration). Candidate-set construction
/// fans out across commodities.
pub fn ksp_mode(
    net: &Network,
    router: &pnet_routing::Router,
    commodities: &[Commodity],
    k: usize,
) -> PathMode {
    ksp_mode_with(net, router, commodities, k, Parallelism::default())
}

/// [`ksp_mode`] with an explicit execution strategy. Each commodity's
/// candidate set is a pure function of the frozen router tables and the
/// commodity index, so parallel construction is element-identical to serial.
pub fn ksp_mode_with(
    net: &Network,
    router: &pnet_routing::Router,
    commodities: &[Commodity],
    k: usize,
    par: Parallelism,
) -> PathMode {
    // Warm the route table in bulk first: precompute fans the per-pair
    // Yen/ECMP computations across threads without lock contention.
    router.precompute_with(&inter_rack_pairs(net, commodities), par);
    let paths = par.map_indexed(commodities.len(), |i| {
        let c = &commodities[i];
        let (sa, sb) = (net.rack_of_host(c.src), net.rack_of_host(c.dst));
        let rack_paths = if sa == sb {
            // Intra-rack: one host->ToR->host path per plane (MPTCP can
            // still stripe across all planes).
            net.planes().map(pnet_routing::Path::intra_rack).collect()
        } else {
            // Fetch a wide candidate set, hash-rotate each equal-length
            // tier per flow (the MPTCP path manager's spread), then keep
            // the K best for this flow.
            let wide = (2 * k).max(8);
            let mut ps = router.k_best_across_planes(sa, sb, wide);
            pnet_routing::path::rotate_ties(
                &mut ps,
                pnet_routing::flow_hash(c.src, c.dst, i as u64),
            );
            ps.truncate(k);
            ps
        };
        expand_host_routes(net, c.src, c.dst, &rack_paths)
    });
    PathMode::Explicit(paths)
}

/// Helper: single hash-selected ECMP path per commodity (plane by hash, then
/// equal-cost path by hash), the paper's naive P-Net ECMP. Candidate-set
/// construction fans out across commodities.
pub fn ecmp_mode(
    net: &Network,
    router: &pnet_routing::Router,
    commodities: &[Commodity],
) -> PathMode {
    ecmp_mode_with(net, router, commodities, Parallelism::default())
}

/// [`ecmp_mode`] with an explicit execution strategy.
pub fn ecmp_mode_with(
    net: &Network,
    router: &pnet_routing::Router,
    commodities: &[Commodity],
    par: Parallelism,
) -> PathMode {
    use pnet_routing::{flow_hash, hash_plane, hash_select};
    router.precompute_with(&inter_rack_pairs(net, commodities), par);
    let n_planes = net.n_planes();
    let paths = par.map_indexed(commodities.len(), |i| {
        let c = &commodities[i];
        let h = flow_hash(c.src, c.dst, i as u64);
        let plane = hash_plane(n_planes, h);
        let (sa, sb) = (net.rack_of_host(c.src), net.rack_of_host(c.dst));
        let rack_path = if sa == sb {
            pnet_routing::Path::intra_rack(plane)
        } else {
            let set = router.paths_in_plane(plane, sa, sb);
            assert!(!set.is_empty(), "no ECMP path in plane {plane}");
            hash_select(&set, h).clone()
        };
        expand_host_routes(net, c.src, c.dst, &[rack_path])
    });
    PathMode::Explicit(paths)
}

/// Distinct inter-rack (src, dst) rack pairs of a commodity list, in first-
/// appearance order — the precompute work-list for the helpers above.
fn inter_rack_pairs(net: &Network, commodities: &[Commodity]) -> Vec<(RackId, RackId)> {
    let mut seen = std::collections::BTreeSet::new();
    let mut pairs = Vec::new();
    for c in commodities {
        let (sa, sb) = (net.rack_of_host(c.src), net.rack_of_host(c.dst));
        if sa != sb && seen.insert((sa, sb)) {
            pairs.push((sa, sb));
        }
    }
    pairs
}

/// Max-min throughput of fixed single routes (see [`crate::maxmin`]) — used
/// for ECMP cases where the paper's LP would allocate on pinned paths.
pub fn single_path_maxmin(net: &Network, routes: &[Vec<LinkId>]) -> Vec<f64> {
    let caps = link_capacities(net);
    let idx: Vec<Vec<usize>> = routes
        .iter()
        .map(|r| r.iter().map(|l| l.index()).collect())
        .collect();
    crate::maxmin::maxmin_rates(&caps, &idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commodity;
    use pnet_routing::{RouteAlgo, Router};
    use pnet_topology::{assemble_homogeneous, gbps, FatTree, Jellyfish, LinkProfile};

    const EPS: f64 = 0.05;

    /// Regression (PR 9): `eps` outside (0, 0.5) must surface as a typed
    /// error, never as a NaN δ = (m/(1−ε))^(−1/ε) silently corrupting the
    /// phase loop. Pre-fix the only guard was an `assert!` panic and no
    /// checked entry point existed.
    #[test]
    fn bad_eps_is_a_typed_error() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let c = vec![Commodity::unit(HostId(0), HostId(15))];
        for eps in [0.0, -0.1, 0.5, 1.0, 2.0, f64::NAN, f64::INFINITY] {
            let got = try_solve(&net, &c, &PathMode::AnyPath, eps);
            assert!(
                matches!(got, Err(McfError::InvalidEps { .. })),
                "eps {eps} must be rejected, got {got:?}"
            );
            // The degenerate δ the guard exists for: outside (0, 0.5) the
            // Fleischer start value is NaN, 0, or ≥ 1 — all garbage.
            let m = 10.0f64;
            let delta = (m / (1.0 - eps)).powf(-1.0 / eps);
            assert!(
                !(delta > 0.0 && delta < 1.0) || eps >= 0.5,
                "delta {delta} for eps {eps} would have been accepted"
            );
        }
        // Warm variant enforces the same contract.
        let warm = solve(&net, &c, &PathMode::AnyPath, EPS);
        let got = try_solve_warm(&net, &c, &PathMode::AnyPath, 1.0, &warm);
        assert!(matches!(got, Err(McfError::InvalidEps { .. })));
        // In-range eps still solves.
        let ok = try_solve(&net, &c, &PathMode::AnyPath, EPS);
        assert!(ok.is_ok());
    }

    #[test]
    fn degenerate_inputs_are_typed_errors() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let c = vec![Commodity::unit(HostId(0), HostId(15))];
        assert!(matches!(
            try_solve(&net, &[], &PathMode::AnyPath, EPS),
            Err(McfError::NoCommodities)
        ));
        let mut bad = c.clone();
        bad[0].demand = f64::NAN;
        assert!(matches!(
            try_solve(&net, &bad, &PathMode::AnyPath, EPS),
            Err(McfError::InvalidDemand { index: 0 })
        ));
        assert!(matches!(
            try_solve(&net, &c, &PathMode::Explicit(vec![Vec::new()]), EPS),
            Err(McfError::UnroutableCommodity { index: 0 })
        ));
        assert!(matches!(
            try_solve(&net, &c, &PathMode::Explicit(Vec::new()), EPS),
            Err(McfError::PathTableMismatch {
                paths: 0,
                commodities: 1
            })
        ));
        let warm = solve(&net, &c, &PathMode::AnyPath, EPS);
        let mut stale = warm.clone();
        stale.length.pop();
        assert!(matches!(
            try_solve_warm(&net, &c, &PathMode::AnyPath, EPS, &stale),
            Err(McfError::WarmArenaMismatch { .. })
        ));
        let mut dead = warm.clone();
        dead.lambda = 0.0;
        assert!(matches!(
            try_solve_warm(&net, &c, &PathMode::AnyPath, EPS, &dead),
            Err(McfError::NonPositiveWarmLambda)
        ));
        // The checked and panicking paths agree on good inputs.
        let a = solve(&net, &c, &PathMode::AnyPath, EPS);
        let b = try_solve(&net, &c, &PathMode::AnyPath, EPS).expect("valid instance must solve");
        assert_eq!(a.lambda.to_bits(), b.lambda.to_bits());
    }

    #[test]
    fn single_pair_gets_link_rate() {
        // Two hosts in different racks of a 1-plane fat tree; only
        // commodity. λ·d should equal one link rate (100G).
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let c = vec![Commodity::unit(HostId(0), HostId(15))];
        let sol = solve(&net, &c, &PathMode::AnyPath, EPS);
        let rate = sol.rates[0];
        assert!(
            (rate - gbps(100) as f64).abs() / (gbps(100) as f64) < 3.0 * EPS,
            "rate {rate} not ~100G"
        );
    }

    #[test]
    fn uplink_is_the_bottleneck_for_fan_out() {
        // One source sending to 4 destinations: the source's single 100G
        // uplink caps total at 100G, so λ·d = 25G each.
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let c: Vec<Commodity> = [4u32, 8, 12, 15]
            .iter()
            .map(|&d| Commodity::unit(HostId(0), HostId(d)))
            .collect();
        let sol = solve(&net, &c, &PathMode::AnyPath, EPS);
        for &r in &sol.rates {
            assert!((r - 25e9).abs() / 25e9 < 4.0 * EPS, "rates {:?}", sol.rates);
        }
    }

    #[test]
    fn two_planes_double_the_pair_rate() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let c = vec![Commodity::unit(HostId(0), HostId(15))];
        let sol = solve(&net, &c, &PathMode::AnyPath, EPS);
        assert!(
            (sol.rates[0] - 200e9).abs() / 200e9 < 3.0 * EPS,
            "rate {} not ~200G",
            sol.rates[0]
        );
    }

    #[test]
    fn explicit_single_path_restricts() {
        // Same pair, but restricted to one plane-0 route: 100G even though
        // the network has two planes.
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let router = Router::new(&net, RouteAlgo::Ksp { k: 1 });
        let c = vec![Commodity::unit(HostId(0), HostId(15))];
        let mode = ksp_mode(&net, &router, &c, 1);
        let sol = solve(&net, &c, &mode, EPS);
        assert!(
            (sol.rates[0] - 100e9).abs() / 100e9 < 3.0 * EPS,
            "rate {}",
            sol.rates[0]
        );
    }

    #[test]
    fn feasibility_always_holds() {
        let net = assemble_homogeneous(
            &Jellyfish::new(12, 3, 2, 5),
            2,
            &LinkProfile::paper_default(),
        );
        let c = commodity::all_to_all(8);
        let sol = solve(&net, &c, &PathMode::AnyPath, 0.1);
        let caps = link_capacities(&net);
        for (f, c) in sol.link_flow.iter().zip(&caps) {
            assert!(f <= &(c * 1.000001 + 1.0), "infeasible link flow");
        }
        assert!(sol.lambda > 0.0);
    }

    #[test]
    fn permutation_fat_tree_full_bisection_with_ecmp_paths() {
        // k=4 fat tree is non-blocking: a permutation routed over ALL
        // equal-cost paths (splittable) achieves the full 100G per host.
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let router = Router::new(&net, RouteAlgo::Ecmp { cap: 16 });
        // Cross-pod cyclic shift permutation: host i -> (i + 8) mod 16.
        let perm: Vec<usize> = (0..16).map(|i| (i + 8) % 16).collect();
        let c = commodity::permutation(&perm);
        let paths: Vec<Vec<Vec<LinkId>>> = c
            .iter()
            .map(|cm| {
                let (ra, rb) = (net.rack_of_host(cm.src), net.rack_of_host(cm.dst));
                let set = router.paths_in_plane(PlaneId(0), ra, rb);
                expand_host_routes(&net, cm.src, cm.dst, &set)
            })
            .collect();
        let sol = solve(&net, &c, &PathMode::Explicit(paths), EPS);
        let per_host = sol.rates[0];
        assert!(
            per_host > 0.85 * 100e9,
            "expected near-full bisection, got {per_host}"
        );
    }

    #[test]
    fn warm_resolve_matches_cold_after_failure() {
        use pnet_topology::failures;
        let mut net = assemble_homogeneous(
            &Jellyfish::new(12, 3, 2, 5),
            2,
            &LinkProfile::paper_default(),
        );
        let c = commodity::all_to_all(8);
        let base = solve(&net, &c, &PathMode::AnyPath, 0.1);
        let cable = failures::fabric_cables(&net, None)[2];
        failures::fail_cable(&mut net, cable);
        let cold = solve(&net, &c, &PathMode::AnyPath, 0.1);
        let warm = solve_warm(&net, &c, &PathMode::AnyPath, 0.1, &base);
        assert!(
            (warm.lambda - cold.lambda).abs() <= WARM_LAMBDA_TOLERANCE * cold.lambda,
            "warm λ {} vs cold λ {}",
            warm.lambda,
            cold.lambda
        );
        assert!(
            warm.phases < cold.phases,
            "warm ({}) should need fewer phases than cold ({})",
            warm.phases,
            cold.phases
        );
        // Warm solutions are feasible unconditionally (congestion rescale).
        let caps = link_capacities(&net);
        for (f, cap) in warm.link_flow.iter().zip(&caps) {
            assert!(f <= &(cap * 1.000001 + 1.0), "infeasible warm link flow");
        }
    }

    #[test]
    fn warm_resolve_handles_restored_links() {
        use pnet_topology::failures;
        let mut net = assemble_homogeneous(
            &Jellyfish::new(12, 3, 2, 5),
            2,
            &LinkProfile::paper_default(),
        );
        let cable = failures::fabric_cables(&net, None)[4];
        failures::fail_cable(&mut net, cable);
        let c = commodity::all_to_all(8);
        // Base solve sees the cable down: its length is ∞ in the profile.
        let base = solve(&net, &c, &PathMode::AnyPath, 0.1);
        assert!(base.length[cable.index()].is_infinite());
        failures::restore_cable(&mut net, cable);
        let cold = solve(&net, &c, &PathMode::AnyPath, 0.1);
        let warm = solve_warm(&net, &c, &PathMode::AnyPath, 0.1, &base);
        assert!(
            (warm.lambda - cold.lambda).abs() <= WARM_LAMBDA_TOLERANCE * cold.lambda,
            "warm λ {} vs cold λ {} after restore",
            warm.lambda,
            cold.lambda
        );
        // The restored cable must be routable again in the warm solve.
        assert!(warm.length[cable.index()].is_finite());
    }

    #[test]
    fn lambda_matches_min_rate_ratio() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let c = vec![
            Commodity {
                src: HostId(0),
                dst: HostId(15),
                demand: 1.0,
            },
            Commodity {
                src: HostId(1),
                dst: HostId(14),
                demand: 2.0,
            },
        ];
        let sol = solve(&net, &c, &PathMode::AnyPath, EPS);
        // λ = min_i rate_i / d_i by definition.
        let expect = (sol.rates[0] / 1.0).min(sol.rates[1] / 2.0);
        assert!((sol.lambda - expect).abs() <= expect * 1e-9);
        // Weighted fairness: commodity 1 should get ~2x commodity 0.
        let ratio = sol.rates[1] / sol.rates[0];
        assert!((ratio - 2.0).abs() < 0.5, "ratio {ratio}");
    }
}
