//! Experiment-level throughput drivers: the quantities plotted in Figures
//! 6, 7, and 8 of the paper.
//!
//! Three regimes:
//!
//! * [`ecmp_throughput`] — per-flow single-path routing by hash (plane by
//!   hash, then one equal-cost path by hash), rates from exact max-min
//!   waterfilling. This is the "naive ECMP" of section 4.
//! * [`ksp_multipath_throughput`] — each flow may split over the K globally
//!   shortest paths across all planes (the MPTCP + KSP configuration),
//!   solved as max concurrent flow.
//! * [`ideal_throughput`] — no path constraint (Figure 7), max concurrent
//!   flow with a free per-plane shortest-path oracle.
//!
//! All functions return *total* delivered rate in bits per second; the
//! experiment binaries normalize against the serial low-bandwidth network as
//! in the paper ("throughput normalized against serial low-bandwidth").

use crate::commodity::Commodity;
use crate::maxmin;
use crate::mcf::{self, PathMode};
use pnet_routing::{RouteAlgo, Router};
use pnet_topology::Network;

/// Total throughput of hash-based single-path ECMP under max-min fairness.
pub fn ecmp_throughput(net: &Network, commodities: &[Commodity]) -> f64 {
    let router = Router::new(net, RouteAlgo::Ecmp { cap: 64 });
    ecmp_throughput_with(net, &router, commodities)
}

/// As [`ecmp_throughput`], but pinned to a caller-provided ECMP router —
/// the snapshot entry point: no router is built here, so concurrent
/// queries against the same topology generation share one path table.
pub fn ecmp_throughput_with(net: &Network, router: &Router, commodities: &[Commodity]) -> f64 {
    let mode = mcf::ecmp_mode(net, router, commodities);
    let PathMode::Explicit(paths) = mode else {
        unreachable!()
    };
    let routes: Vec<Vec<pnet_topology::LinkId>> =
        paths.into_iter().map(|mut p| p.swap_remove(0)).collect();
    let rates = mcf::single_path_maxmin(net, &routes);
    maxmin::total_rate(&rates)
}

/// Total throughput when every flow may split across its K best paths
/// (merged across planes), via max concurrent flow. Returns
/// `(total_rate, lambda)`.
pub fn ksp_multipath_throughput(
    net: &Network,
    commodities: &[Commodity],
    k: usize,
    eps: f64,
) -> (f64, f64) {
    // The router computes a wider per-plane candidate set than K so that
    // per-flow hash rotation has equal-cost alternatives to spread over
    // (see `mcf::ksp_mode`).
    let wide = (2 * k).max(8);
    let router = Router::new(net, RouteAlgo::Ksp { k: wide });
    let sol = ksp_solution_with(
        net,
        &router,
        commodities,
        k,
        eps,
        mcf::McfOptions::default(),
    );
    (sol.total_rate(), sol.lambda)
}

/// Full KSP-multipath solution against a caller-provided router snapshot.
/// The planner's generation entry point: the router's tables must already
/// reflect `net`, and `k` must not exceed the router's per-plane width.
pub fn ksp_solution_with(
    net: &Network,
    router: &Router,
    commodities: &[Commodity],
    k: usize,
    eps: f64,
    opts: mcf::McfOptions,
) -> mcf::McfSolution {
    let mode = mcf::ksp_mode(net, router, commodities, k);
    mcf::solve_with_options(net, commodities, &mode, eps, opts)
}

/// Fallible twin of [`ksp_solution_with`]: degenerate inputs (bad `eps`,
/// empty or unroutable commodities) come back as [`mcf::McfError`] instead
/// of panicking — what a serving layer wants.
pub fn try_ksp_solution(
    net: &Network,
    router: &Router,
    commodities: &[Commodity],
    k: usize,
    eps: f64,
    opts: mcf::McfOptions,
) -> Result<mcf::McfSolution, mcf::McfError> {
    let mode = mcf::ksp_mode(net, router, commodities, k);
    mcf::try_solve_with_options(net, commodities, &mode, eps, opts)
}

/// Ideal total throughput with no path constraint (each plane freely
/// routed). Returns `(total_rate, lambda)`.
pub fn ideal_throughput(net: &Network, commodities: &[Commodity], eps: f64) -> (f64, f64) {
    let sol = mcf::solve(net, commodities, &PathMode::AnyPath, eps);
    (sol.total_rate(), sol.lambda)
}

/// Fallible free-routing solve returning the full solution — the planner's
/// ideal-throughput entry point ([`ideal_throughput`] /
/// [`ideal_core_throughput`] with typed errors and the whole primal).
pub fn try_ideal_solution(
    net: &Network,
    commodities: &[Commodity],
    eps: f64,
    opts: mcf::McfOptions,
) -> Result<mcf::McfSolution, mcf::McfError> {
    mcf::try_solve_with_options(net, commodities, &PathMode::AnyPath, eps, opts)
}

/// Ideal *core* throughput: like [`ideal_throughput`] but with host
/// attachment links uncapacitated, measuring only the switch fabric — the
/// paper's rack-level "total capacity of the network core" (Figure 7).
pub fn ideal_core_throughput(net: &Network, commodities: &[Commodity], eps: f64) -> (f64, f64) {
    let sol = mcf::solve_with_options(
        net,
        commodities,
        &PathMode::AnyPath,
        eps,
        mcf::McfOptions {
            host_links_free: true,
            ..Default::default()
        },
    );
    (sol.total_rate(), sol.lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commodity;
    use pnet_topology::{assemble_homogeneous, FatTree, LinkProfile};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn cross_pod_permutation(n: usize, seed: u64) -> Vec<Commodity> {
        // Random derangement-ish permutation.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        commodity::permutation(&perm)
    }

    #[test]
    fn ecmp_permutation_does_not_scale_with_planes() {
        // The headline negative result (Figure 6b): adding planes barely
        // helps permutation traffic under single-path ECMP.
        let base = LinkProfile::paper_default();
        let serial = assemble_homogeneous(&FatTree::three_tier(4), 1, &base);
        let par4 = assemble_homogeneous(&FatTree::three_tier(4), 4, &base);
        let c = cross_pod_permutation(16, 9);
        let t1 = ecmp_throughput(&serial, &c);
        let t4 = ecmp_throughput(&par4, &c);
        // Some improvement from collision avoidance is possible, but far
        // below the 4x capacity increase.
        assert!(
            t4 < 2.0 * t1,
            "ECMP should not extract parallel capacity: {t1} vs {t4}"
        );
        assert!(t4 >= t1 * 0.8, "more planes should not hurt much");
    }

    #[test]
    fn multipath_recovers_parallel_capacity() {
        // With enough subflows (K = 8 per the paper's N x 8 rule for N=2... 16),
        // a 2-plane P-Net reaches ~2x the serial throughput on permutation.
        let base = LinkProfile::paper_default();
        let serial = assemble_homogeneous(&FatTree::three_tier(4), 1, &base);
        let par2 = assemble_homogeneous(&FatTree::three_tier(4), 2, &base);
        let c = cross_pod_permutation(16, 5);
        let (t1, _) = ksp_multipath_throughput(&serial, &c, 8, 0.05);
        let (t2, _) = ksp_multipath_throughput(&par2, &c, 16, 0.05);
        let ratio = t2 / t1;
        assert!(
            ratio > 1.7,
            "2-plane multipath should nearly double throughput, got {ratio}"
        );
    }

    #[test]
    fn ideal_at_least_matches_constrained() {
        let base = LinkProfile::paper_default();
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &base);
        let c = cross_pod_permutation(16, 2);
        let (ideal, _) = ideal_throughput(&net, &c, 0.05);
        let (ksp1, _) = ksp_multipath_throughput(&net, &c, 1, 0.05);
        assert!(
            ideal >= ksp1 * 0.95,
            "ideal {ideal} should dominate single-path {ksp1}"
        );
    }
}
