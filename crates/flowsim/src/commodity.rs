//! Commodities: host-to-host demands for the flow-level solvers.
//!
//! Rack-level experiments (e.g. Figure 7's rack-level all-to-all) are
//! expressed with topologies that attach one host per rack, so a single
//! commodity type suffices.

use pnet_topology::HostId;

/// A demand between two hosts, in bits per second. The max-concurrent-flow
/// solver scales every commodity by a common factor λ; a commodity with
/// demand d receives rate λ·d.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Commodity {
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Demand in bits per second; must be positive.
    pub demand: f64,
}

impl Commodity {
    /// A unit-demand commodity (demands are relative; the solvers only care
    /// about ratios between commodities).
    pub fn unit(src: HostId, dst: HostId) -> Self {
        Commodity {
            src,
            dst,
            demand: 1.0,
        }
    }
}

/// All-to-all unit commodities among `n` hosts (n·(n−1) entries).
pub fn all_to_all(n: usize) -> Vec<Commodity> {
    let mut out = Vec::with_capacity(n * (n - 1));
    for a in 0..n {
        for b in 0..n {
            if a != b {
                out.push(Commodity::unit(HostId(a as u32), HostId(b as u32)));
            }
        }
    }
    out
}

/// Commodities for an explicit permutation: host i sends to `perm[i]`
/// (entries with `perm[i] == i` are skipped).
pub fn permutation(perm: &[usize]) -> Vec<Commodity> {
    perm.iter()
        .enumerate()
        .filter(|&(i, &j)| i != j)
        .map(|(i, &j)| Commodity::unit(HostId(i as u32), HostId(j as u32)))
        .collect()
}

/// Total demand of a commodity set.
pub fn total_demand(commodities: &[Commodity]) -> f64 {
    commodities.iter().map(|c| c.demand).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_counts() {
        let c = all_to_all(4);
        assert_eq!(c.len(), 12);
        assert!(c.iter().all(|c| c.src != c.dst));
    }

    #[test]
    fn permutation_skips_fixed_points() {
        let c = permutation(&[1, 0, 2, 3]);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].src, HostId(0));
        assert_eq!(c[0].dst, HostId(1));
    }

    #[test]
    fn total_demand_sums() {
        let c = all_to_all(3);
        assert!((total_demand(&c) - 6.0).abs() < 1e-12);
    }
}
