//! Exact max-min fair rate allocation for fixed single-path flows
//! (progressive filling / waterfilling).
//!
//! This is the flow-level model for the paper's *single-path* routing cases
//! (ECMP on fat trees, hash-selected paths in P-Nets): each flow is pinned to
//! one route, rates grow uniformly, and a flow freezes when some link on its
//! route saturates. The outcome is the classic bottleneck max-min allocation,
//! the steady state ideal that per-flow-fair TCP approximates.

/// Compute max-min fair rates.
///
/// * `capacity[e]` — capacity of link `e` (any consistent unit).
/// * `flow_links[f]` — the links flow `f` traverses (duplicates ignored).
///
/// Returns the rate of each flow in the same unit as capacities. Flows with
/// empty link lists (e.g. two hosts colocated with zero network hops —
/// cannot happen with our route construction, but tolerated) get
/// `f64::INFINITY`.
pub fn maxmin_rates(capacity: &[f64], flow_links: &[Vec<usize>]) -> Vec<f64> {
    let n_links = capacity.len();
    let n_flows = flow_links.len();

    // Deduplicated link lists and per-link active-flow counts.
    let mut links_of_flow: Vec<Vec<usize>> = Vec::with_capacity(n_flows);
    let mut active_count = vec![0usize; n_links];
    for links in flow_links {
        let mut ls = links.clone();
        ls.sort_unstable();
        ls.dedup();
        for &l in &ls {
            assert!(l < n_links, "flow references unknown link {l}");
            active_count[l] += 1;
        }
        links_of_flow.push(ls);
    }
    let mut flows_of_link: Vec<Vec<usize>> = vec![Vec::new(); n_links];
    for (f, ls) in links_of_flow.iter().enumerate() {
        for &l in ls {
            flows_of_link[l].push(f);
        }
    }

    let mut residual: Vec<f64> = capacity.to_vec();
    let mut rate = vec![f64::INFINITY; n_flows];
    let mut frozen = vec![false; n_flows];
    let mut n_frozen = links_of_flow.iter().filter(|l| l.is_empty()).count();
    for (f, ls) in links_of_flow.iter().enumerate() {
        if ls.is_empty() {
            frozen[f] = true;
        }
    }

    while n_frozen < n_flows {
        // Bottleneck link: the one with the smallest fair share among links
        // still carrying active flows.
        let mut best_share = f64::INFINITY;
        let mut best_link = usize::MAX;
        for l in 0..n_links {
            if active_count[l] > 0 {
                let share = residual[l] / active_count[l] as f64;
                if share < best_share {
                    best_share = share;
                    best_link = l;
                }
            }
        }
        if best_link == usize::MAX {
            // No active links left but unfrozen flows remain: impossible
            // given the bookkeeping, but guard against float oddities.
            break;
        }
        // Freeze every active flow crossing the bottleneck at the fair share.
        let victims: Vec<usize> = flows_of_link[best_link]
            .iter()
            .copied()
            .filter(|&f| !frozen[f])
            .collect();
        for f in victims {
            frozen[f] = true;
            n_frozen += 1;
            rate[f] = best_share;
            for &l in &links_of_flow[f] {
                residual[l] = (residual[l] - best_share).max(0.0);
                active_count[l] -= 1;
            }
        }
    }
    rate
}

/// Sum of the finite rates of an allocation.
pub fn total_rate(rates: &[f64]) -> f64 {
    rates.iter().copied().filter(|r| r.is_finite()).sum()
}

/// Check (for tests) that `rates` is max-min fair: feasible, and no flow can
/// be increased without decreasing a flow of equal or smaller rate. The
/// standard certificate: every flow has a bottleneck link — a saturated link
/// where the flow's rate is maximal among the link's flows.
pub fn is_maxmin_fair(capacity: &[f64], flow_links: &[Vec<usize>], rates: &[f64]) -> bool {
    let n_links = capacity.len();
    let mut load = vec![0.0f64; n_links];
    for (f, links) in flow_links.iter().enumerate() {
        let mut ls = links.clone();
        ls.sort_unstable();
        ls.dedup();
        for &l in &ls {
            load[l] += rates[f];
        }
    }
    // Feasibility.
    for l in 0..n_links {
        if load[l] > capacity[l] * (1.0 + 1e-9) + 1e-9 {
            return false;
        }
    }
    // Bottleneck certificate.
    'flows: for (f, links) in flow_links.iter().enumerate() {
        if links.is_empty() {
            continue;
        }
        for &l in links {
            let saturated = load[l] >= capacity[l] * (1.0 - 1e-9) - 1e-9;
            if saturated {
                let max_on_link = flow_links
                    .iter()
                    .enumerate()
                    .filter(|(_, ls)| ls.contains(&l))
                    .map(|(g, _)| rates[g])
                    .fold(0.0f64, f64::max);
                if rates[f] >= max_on_link - 1e-9 {
                    continue 'flows;
                }
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_link_equal_split() {
        let caps = vec![10.0];
        let flows = vec![vec![0], vec![0]];
        let r = maxmin_rates(&caps, &flows);
        assert!((r[0] - 5.0).abs() < 1e-9);
        assert!((r[1] - 5.0).abs() < 1e-9);
        assert!(is_maxmin_fair(&caps, &flows, &r));
    }

    #[test]
    fn classic_three_flow_example() {
        // Two links in series with caps 10, 6. Flow A uses both, flow B uses
        // link 0, flow C uses link 1.
        // Max-min: bottleneck link 1 share = 3 -> A=C=3; B gets 10-3=7.
        let caps = vec![10.0, 6.0];
        let flows = vec![vec![0, 1], vec![0], vec![1]];
        let r = maxmin_rates(&caps, &flows);
        assert!((r[0] - 3.0).abs() < 1e-9);
        assert!((r[1] - 7.0).abs() < 1e-9);
        assert!((r[2] - 3.0).abs() < 1e-9);
        assert!(is_maxmin_fair(&caps, &flows, &r));
    }

    #[test]
    fn disjoint_flows_get_full_capacity() {
        let caps = vec![4.0, 9.0];
        let flows = vec![vec![0], vec![1]];
        let r = maxmin_rates(&caps, &flows);
        assert!((r[0] - 4.0).abs() < 1e-9);
        assert!((r[1] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_links_counted_once() {
        let caps = vec![8.0];
        let flows = vec![vec![0, 0], vec![0]];
        let r = maxmin_rates(&caps, &flows);
        assert!((r[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_flow_is_unbounded() {
        let caps = vec![1.0];
        let flows = vec![vec![], vec![0]];
        let r = maxmin_rates(&caps, &flows);
        assert!(r[0].is_infinite());
        assert!((r[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chain_of_bottlenecks() {
        // Links 0..3 with caps 1, 2, 3, 4; flows: f_i uses links i..4.
        let caps = vec![1.0, 2.0, 3.0, 4.0];
        let flows = vec![vec![0, 1, 2, 3], vec![1, 2, 3], vec![2, 3], vec![3]];
        let r = maxmin_rates(&caps, &flows);
        assert!(is_maxmin_fair(&caps, &flows, &r));
        // f0 limited by link0 = 1; link1 leaves 1 for f1; link2 leaves 1 for
        // f2; link3 leaves 1 for f3.
        for &x in &r {
            assert!((x - 1.0).abs() < 1e-9, "rates {r:?}");
        }
    }

    #[test]
    fn total_rate_ignores_infinite() {
        assert!((total_rate(&[1.0, f64::INFINITY, 2.0]) - 3.0).abs() < 1e-12);
    }
}
