//! # pnet-flowsim
//!
//! Flow-level throughput solvers — this workspace's substitute for the LP
//! solver (Gurobi) used by the paper's artifact. Two engines:
//!
//! * [`mcf`] — max concurrent flow via the Garg–Könemann / Fleischer
//!   multiplicative-weights (1−ε)-approximation, with explicit path sets
//!   (ECMP / K-shortest-path routes) or free per-plane routing;
//! * [`maxmin`] — exact progressive-filling max-min fairness for flows
//!   pinned to single paths.
//!
//! [`throughput`] wraps both into the exact quantities plotted in Figures 6,
//! 7, and 8.
//!
//! ## Example
//!
//! ```
//! use pnet_flowsim::{commodity, throughput};
//! use pnet_topology::{assemble_homogeneous, FatTree, LinkProfile};
//!
//! let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
//! let perm: Vec<usize> = (0..16).map(|i| (i + 8) % 16).collect();
//! let commodities = commodity::permutation(&perm);
//! let (total, lambda) = throughput::ksp_multipath_throughput(&net, &commodities, 16, 0.1);
//! assert!(total > 0.0 && lambda > 0.0);
//! ```

pub mod commodity;
pub mod maxmin;
pub mod mcf;
pub mod throughput;

pub use commodity::Commodity;
pub use mcf::{link_capacities, McfError, McfSolution, PathMode};
