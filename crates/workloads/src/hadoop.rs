//! The Hadoop-sort workload of section 5.2.2.
//!
//! "We simulated the Hadoop traffic of a sorting application in a 250-host
//! cluster, in which we distribute 100G data to 32 mappers and 32 reducers.
//! Each mapper loads data in blocks of 128 MB [...] the shuffle stage
//! consists of 32 x 32 flows of the same size [...] After a reducer
//! completes sorting, it will write to a replica in a random rack. We
//! configured our mappers and reducers to read/write 4 concurrent blocks at
//! a time."
//!
//! The job compiles to three [`JobStage`]s of transfers; the
//! `pnet-htsim` `ShuffleDriver` executes them with the
//! per-worker concurrency limit.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// One network transfer of the job (indices are host indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTransfer {
    pub src: usize,
    pub dst: usize,
    pub size_bytes: u64,
    /// Which worker's stage-completion clock this transfer belongs to.
    pub worker: usize,
}

/// One stage of the job.
#[derive(Debug, Clone)]
pub struct JobStage {
    pub name: &'static str,
    pub transfers: Vec<JobTransfer>,
}

/// The sort job parameters (defaults are the paper's).
#[derive(Debug, Clone, Copy)]
pub struct SortJob {
    /// Hosts in the cluster.
    pub n_hosts: usize,
    pub n_mappers: usize,
    pub n_reducers: usize,
    /// Total bytes to sort.
    pub total_bytes: u64,
    /// Block size for reads and writes.
    pub block_bytes: u64,
    /// Concurrent blocks per worker ("4 concurrent blocks at a time").
    pub concurrency: usize,
    /// Placement and data-source randomness.
    pub seed: u64,
}

impl SortJob {
    /// The paper's configuration: 250 hosts, 100 GB, 32 + 32 workers,
    /// 128 MB blocks, concurrency 4.
    pub fn paper_default(seed: u64) -> Self {
        SortJob {
            n_hosts: 250,
            n_mappers: 32,
            n_reducers: 32,
            total_bytes: 100_000_000_000,
            block_bytes: 128_000_000,
            concurrency: 4,
            seed,
        }
    }

    /// A scaled copy (total and block sizes multiplied by `factor`) for
    /// fast runs that keep the flow-count structure intact.
    pub fn scaled(self, factor: f64) -> Self {
        SortJob {
            total_bytes: ((self.total_bytes as f64 * factor) as u64).max(1),
            block_bytes: ((self.block_bytes as f64 * factor) as u64).max(1),
            ..self
        }
    }

    /// Total workers (max of mappers and reducers; worker indices 0..n are
    /// mappers in stages 1-2 and reducers in stage 3).
    pub fn n_workers(&self) -> usize {
        self.n_mappers.max(self.n_reducers)
    }

    /// Lay out the job: worker placement plus the three stages of
    /// transfers. Deterministic in the seed.
    ///
    /// # Panics
    /// If the cluster is too small to give every mapper and reducer its own
    /// host.
    pub fn stages(&self) -> (Placement, Vec<JobStage>) {
        assert!(
            self.n_hosts >= self.n_mappers + self.n_reducers,
            "cluster too small for disjoint mapper/reducer placement"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut hosts: Vec<usize> = (0..self.n_hosts).collect();
        hosts.shuffle(&mut rng);
        let mappers: Vec<usize> = hosts[..self.n_mappers].to_vec();
        let reducers: Vec<usize> = hosts[self.n_mappers..self.n_mappers + self.n_reducers].to_vec();
        let others: Vec<usize> = hosts[self.n_mappers + self.n_reducers..].to_vec();
        let pick_other = |rng: &mut StdRng, exclude: usize| -> usize {
            if others.is_empty() {
                // Degenerate small clusters: pick any host other than `exclude`.
                loop {
                    let h = rng.random_range(0..self.n_hosts);
                    if h != exclude {
                        return h;
                    }
                }
            } else {
                others[rng.random_range(0..others.len())]
            }
        };

        // Stage 1 — read input: each mapper loads total/n_mappers bytes in
        // blocks from random remote (non-worker) hosts.
        let per_mapper = self.total_bytes / self.n_mappers as u64;
        let mut read = Vec::new();
        for (w, &m) in mappers.iter().enumerate() {
            let mut left = per_mapper;
            while left > 0 {
                let sz = left.min(self.block_bytes);
                let src = pick_other(&mut rng, m);
                read.push(JobTransfer {
                    src,
                    dst: m,
                    size_bytes: sz,
                    worker: w,
                });
                left -= sz;
            }
        }

        // Stage 2 — shuffle: n_mappers x n_reducers equal flows; measured at
        // the mapper ("we measure this at each mapper for the read input and
        // shuffle stages").
        let shuffle_sz = self.total_bytes / (self.n_mappers as u64 * self.n_reducers as u64);
        let mut shuffle = Vec::new();
        for (w, &m) in mappers.iter().enumerate() {
            for &r in &reducers {
                shuffle.push(JobTransfer {
                    src: m,
                    dst: r,
                    size_bytes: shuffle_sz.max(1),
                    worker: w,
                });
            }
        }

        // Stage 3 — write output: each reducer writes total/n_reducers bytes
        // in blocks to a replica on a random host.
        let per_reducer = self.total_bytes / self.n_reducers as u64;
        let mut write = Vec::new();
        for (w, &r) in reducers.iter().enumerate() {
            let mut left = per_reducer;
            while left > 0 {
                let sz = left.min(self.block_bytes);
                let dst = pick_other(&mut rng, r);
                write.push(JobTransfer {
                    src: r,
                    dst,
                    size_bytes: sz,
                    worker: w,
                });
                left -= sz;
            }
        }

        (
            Placement { mappers, reducers },
            vec![
                JobStage {
                    name: "read input",
                    transfers: read,
                },
                JobStage {
                    name: "shuffle",
                    transfers: shuffle,
                },
                JobStage {
                    name: "write output",
                    transfers: write,
                },
            ],
        )
    }
}

/// Which hosts run the workers.
#[derive(Debug, Clone)]
pub struct Placement {
    pub mappers: Vec<usize>,
    pub reducers: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SortJob {
        SortJob {
            n_hosts: 32,
            n_mappers: 8,
            n_reducers: 8,
            total_bytes: 64_000_000,
            block_bytes: 8_000_000,
            concurrency: 4,
            seed: 1,
        }
    }

    #[test]
    fn stage_structure() {
        let job = small();
        let (placement, stages) = job.stages();
        assert_eq!(stages.len(), 3);
        assert_eq!(placement.mappers.len(), 8);
        assert_eq!(placement.reducers.len(), 8);
        // Read: 64M/8 mappers = 8M each = 1 block each.
        assert_eq!(stages[0].transfers.len(), 8);
        // Shuffle: 8 x 8.
        assert_eq!(stages[1].transfers.len(), 64);
        // Write: 8 reducers x 1 block.
        assert_eq!(stages[2].transfers.len(), 8);
    }

    #[test]
    fn byte_conservation_per_stage() {
        let job = small();
        let (_, stages) = job.stages();
        for stage in &stages {
            let total: u64 = stage.transfers.iter().map(|t| t.size_bytes).sum();
            assert_eq!(total, job.total_bytes, "stage {}", stage.name);
        }
    }

    #[test]
    fn shuffle_is_uniform() {
        let (_, stages) = small().stages();
        let sz = stages[1].transfers[0].size_bytes;
        assert!(stages[1].transfers.iter().all(|t| t.size_bytes == sz));
        assert_eq!(sz, 1_000_000);
    }

    #[test]
    fn workers_disjoint_and_sources_remote() {
        let (placement, stages) = small().stages();
        for m in &placement.mappers {
            assert!(!placement.reducers.contains(m));
        }
        for t in &stages[0].transfers {
            assert_ne!(t.src, t.dst, "read from self");
        }
        for t in &stages[2].transfers {
            assert_ne!(t.src, t.dst, "write to self");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (_, a) = small().stages();
        let (_, b) = small().stages();
        assert_eq!(a[0].transfers, b[0].transfers);
        assert_eq!(a[2].transfers, b[2].transfers);
    }

    #[test]
    fn paper_default_shape() {
        let job = SortJob::paper_default(0);
        let (_, stages) = job.stages();
        // 100G / 32 mappers = 3.125G per mapper = 25 blocks of 128M (24 full
        // + remainder), so 32 x 25 = 800ish transfers.
        assert!(stages[0].transfers.len() >= 32 * 24);
        assert_eq!(stages[1].transfers.len(), 1024);
    }

    #[test]
    fn scaling_preserves_structure() {
        let job = small().scaled(0.125);
        let (_, stages) = job.stages();
        assert_eq!(stages[1].transfers.len(), 64);
        let total: u64 = stages[0].transfers.iter().map(|t| t.size_bytes).sum();
        assert_eq!(total, 8_000_000);
    }
}
