//! Flow-size CDFs of the five published datacenter traces used in section
//! 5.3 and Appendix A (Figure 13a).
//!
//! The paper's artifact obtained these by digitizing the CDF figures of the
//! source papers into CSV files; the point sets below are the same kind of
//! digitization (approximate, by construction — the originals are plots, not
//! data releases):
//!
//! * **websearch** — DCTCP, Alizadeh et al., SIGCOMM 2010 \[6\]: query/response
//!   traffic; flows from a few kB to tens of MB, byte-heavy tail.
//! * **datamining** — VL2, Greenberg et al., SIGCOMM 2009 \[22\]: mice
//!   dominate flow count (half under ~1 kB) while a thin >100 MB tail
//!   carries most bytes.
//! * **webserver**, **cache**, **hadoop** — Facebook production clusters,
//!   Roy et al., SIGCOMM 2015 \[35\]: webserver flows are overwhelmingly tiny;
//!   cache flows are small-to-medium; Hadoop flows are small but with a
//!   longer tail.

use crate::sizes::EmpiricalCdf;

/// The five traces of Figure 13a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trace {
    Websearch,
    Datamining,
    Webserver,
    Cache,
    Hadoop,
}

impl Trace {
    /// All traces in the paper's presentation order.
    pub fn all() -> [Trace; 5] {
        [
            Trace::Webserver,
            Trace::Cache,
            Trace::Hadoop,
            Trace::Datamining,
            Trace::Websearch,
        ]
    }

    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Trace::Websearch => "websearch",
            Trace::Datamining => "datamining",
            Trace::Webserver => "webserver",
            Trace::Cache => "cache",
            Trace::Hadoop => "hadoop",
        }
    }

    /// The flow-size CDF of this trace.
    pub fn cdf(self) -> EmpiricalCdf {
        match self {
            // DCTCP web search (sizes in bytes). Digitized from the CDF used
            // throughout the literature (pFabric et al.).
            Trace::Websearch => EmpiricalCdf::new(&[
                (6_000.0, 0.15),
                (13_000.0, 0.20),
                (19_000.0, 0.30),
                (33_000.0, 0.40),
                (53_000.0, 0.53),
                (133_000.0, 0.60),
                (667_000.0, 0.70),
                (1_333_000.0, 0.80),
                (3_333_000.0, 0.90),
                (6_667_000.0, 0.95),
                (20_000_000.0, 0.98),
                (30_000_000.0, 1.00),
            ]),
            // VL2 data mining: half the flows are mice; a thin tail reaches
            // 1 GB and dominates bytes.
            Trace::Datamining => EmpiricalCdf::new(&[
                (100.0, 0.03),
                (300.0, 0.20),
                (1_000.0, 0.50),
                (2_000.0, 0.60),
                (3_000.0, 0.70),
                (10_000.0, 0.80),
                (1_000_000.0, 0.90),
                (30_000_000.0, 0.95),
                (100_000_000.0, 0.98),
                (1_000_000_000.0, 1.00),
            ]),
            // Facebook web servers: overwhelmingly sub-10 kB responses.
            Trace::Webserver => EmpiricalCdf::new(&[
                (100.0, 0.05),
                (300.0, 0.30),
                (1_000.0, 0.70),
                (3_000.0, 0.85),
                (10_000.0, 0.95),
                (100_000.0, 0.99),
                (1_000_000.0, 1.00),
            ]),
            // Facebook cache followers: small-to-medium objects.
            Trace::Cache => EmpiricalCdf::new(&[
                (100.0, 0.10),
                (1_000.0, 0.40),
                (10_000.0, 0.75),
                (100_000.0, 0.90),
                (1_000_000.0, 0.97),
                (10_000_000.0, 1.00),
            ]),
            // Facebook Hadoop: small flows with a modest tail.
            Trace::Hadoop => EmpiricalCdf::new(&[
                (100.0, 0.10),
                (300.0, 0.50),
                (1_000.0, 0.70),
                (10_000.0, 0.90),
                (100_000.0, 0.95),
                (10_000_000.0, 0.99),
                (100_000_000.0, 1.00),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_traces_build() {
        for t in Trace::all() {
            let c = t.cdf();
            assert!(c.max_bytes() >= 1_000_000, "{} tail too short", t.label());
        }
    }

    #[test]
    fn datamining_is_mice_dominated() {
        // Half the flows at or under ~1 kB (the VL2 signature).
        let c = Trace::Datamining.cdf();
        assert!(c.quantile(0.50) <= 1_000);
        assert!(c.quantile(0.999) >= 100_000_000);
    }

    #[test]
    fn websearch_flows_are_larger() {
        let ws = Trace::Websearch.cdf();
        let dm = Trace::Datamining.cdf();
        assert!(ws.quantile(0.5) > dm.quantile(0.5) * 10);
    }

    #[test]
    fn webserver_is_tiniest() {
        let c = Trace::Webserver.cdf();
        assert!(c.quantile(0.95) <= 10_000);
        assert!(c.max_bytes() <= 1_000_000);
    }

    #[test]
    fn sampling_is_reproducible() {
        let c = Trace::Cache.cdf();
        let take = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| c.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(take(9), take(9));
        assert_ne!(take(9), take(10));
    }

    #[test]
    fn mean_sizes_are_ordered_sensibly() {
        // Byte-heavy traces have much larger means.
        let ws = Trace::Websearch.cdf().mean_bytes();
        let web = Trace::Webserver.cdf().mean_bytes();
        assert!(
            ws > 50.0 * web,
            "websearch mean {ws} not >> webserver mean {web}"
        );
    }
}
