//! Traffic-matrix generators: the synthetic patterns of section 5.1.
//!
//! * **all-to-all** — every host (or rack) sends to every other: the dense
//!   pattern that even naive ECMP can spread across planes (Figure 6a);
//! * **permutation** — every host sends to exactly one other host and
//!   receives from exactly one: the sparse pattern that defeats single-path
//!   routing in P-Nets (Figure 6b).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A random permutation of `0..n` without fixed points (each index maps to a
/// different index), deterministic in `seed`.
///
/// Built by shuffling and then rotating any fixed points into a cycle, so the
/// result is always a derangement for `n >= 2`.
pub fn random_permutation(n: usize, seed: u64) -> Vec<usize> {
    assert!(n >= 2, "permutation traffic needs at least two endpoints");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    // Repair fixed points: collect them and rotate amongst themselves (or
    // with a neighbor if only one remains).
    let fixed: Vec<usize> = (0..n).filter(|&i| perm[i] == i).collect();
    match fixed.len() {
        0 => {}
        1 => {
            let i = fixed[0];
            let j = (i + 1) % n;
            perm.swap(i, j);
        }
        _ => {
            // Rotate the images of the fixed points amongst themselves:
            // each fixed point then maps to the next fixed point.
            let first = perm[fixed[0]];
            for w in 0..fixed.len() - 1 {
                perm[fixed[w]] = perm[fixed[w + 1]];
            }
            perm[*fixed
                .last()
                .expect("invariant: this branch only runs with >= 2 fixed points")] = first;
        }
    }
    debug_assert!((0..n).all(|i| perm[i] != i));
    perm
}

/// Source/destination index pairs of a permutation pattern.
pub fn permutation_pairs(n: usize, seed: u64) -> Vec<(usize, usize)> {
    random_permutation(n, seed)
        .into_iter()
        .enumerate()
        .collect()
}

/// All ordered pairs (a, b), a != b.
pub fn all_to_all_pairs(n: usize) -> Vec<(usize, usize)> {
    (0..n)
        .flat_map(|a| (0..n).filter(move |&b| b != a).map(move |b| (a, b)))
        .collect()
}

/// Uniformly random (src, dst) pairs with src != dst, deterministic in seed.
pub fn random_pairs(n: usize, count: usize, seed: u64) -> Vec<(usize, usize)> {
    use rand::RngExt;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            (a, b)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_derangement() {
        for seed in 0..50 {
            let p = random_permutation(20, seed);
            let mut seen = [false; 20];
            for (i, &j) in p.iter().enumerate() {
                assert_ne!(i, j, "fixed point at {i} (seed {seed})");
                assert!(!seen[j], "duplicate image {j}");
                seen[j] = true;
            }
        }
    }

    #[test]
    fn permutation_deterministic() {
        assert_eq!(random_permutation(16, 7), random_permutation(16, 7));
        assert_ne!(random_permutation(16, 7), random_permutation(16, 8));
    }

    #[test]
    fn tiny_permutation() {
        let p = random_permutation(2, 0);
        assert_eq!(p, vec![1, 0]);
    }

    #[test]
    fn all_to_all_count() {
        assert_eq!(all_to_all_pairs(5).len(), 20);
    }

    #[test]
    fn random_pairs_no_self() {
        let pairs = random_pairs(10, 1000, 3);
        assert!(pairs.iter().all(|&(a, b)| a != b && a < 10 && b < 10));
        // All destinations reachable.
        let mut hit = [false; 10];
        for &(_, b) in &pairs {
            hit[b] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }
}
