//! Flow-size distributions: empirical CDF sampling.
//!
//! The paper's trace-driven experiments draw flow sizes from CDFs digitized
//! out of published figures ("we captured the CDF curves from figures in
//! these papers and saved them as CSV files" — artifact appendix B.3.4).
//! [`EmpiricalCdf`] is that CSV: a piecewise log-linear CDF over flow sizes.

use rand::Rng;

/// An empirical flow-size CDF: sorted `(bytes, cumulative_fraction)` points,
/// ending at fraction 1.0. Sampling inverts the CDF with log-linear
/// interpolation between points (flow sizes span many decades, so linear
/// interpolation in log-size is the faithful reading of a log-x CDF plot).
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    points: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Build from `(bytes, cdf)` points. Points must be strictly increasing
    /// in both coordinates and end at cdf 1.0; a starting point is implied
    /// at (min_bytes, 0).
    pub fn new(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must increase: {w:?}");
            assert!(w[0].1 <= w[1].1, "cdf must not decrease: {w:?}");
        }
        let last = points
            .last()
            .expect("invariant: length >= 2 asserted above");
        assert!(
            (last.1 - 1.0).abs() < 1e-9,
            "cdf must end at 1.0, got {}",
            last.1
        );
        assert!(points[0].0 >= 1.0, "sizes must be >= 1 byte");
        assert!(points[0].1 >= 0.0);
        EmpiricalCdf {
            points: points.to_vec(),
        }
    }

    /// Inverse-CDF sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Uniform in (0, 1]; rand's random::<f64>() is [0, 1).
        let mut u: f64 = 1.0 - rand::RngExt::random::<f64>(rng);
        u = u.clamp(f64::MIN_POSITIVE, 1.0);
        self.quantile(u)
    }

    /// The size at cumulative fraction `u` (0 < u <= 1).
    pub fn quantile(&self, u: f64) -> u64 {
        let pts = &self.points;
        if u <= pts[0].1 {
            return pts[0].0.round() as u64;
        }
        for w in pts.windows(2) {
            let (x0, c0) = w[0];
            let (x1, c1) = w[1];
            if u <= c1 {
                if c1 <= c0 + f64::EPSILON {
                    return x1.round() as u64;
                }
                let t = (u - c0) / (c1 - c0);
                let lx = x0.ln() + t * (x1.ln() - x0.ln());
                return lx.exp().round().max(1.0) as u64;
            }
        }
        pts.last()
            .expect("invariant: CDF point lists are non-empty (validated in new)")
            .0
            .round() as u64
    }

    /// Mean flow size implied by the piecewise log-linear CDF, estimated by
    /// numerical integration of the quantile function.
    pub fn mean_bytes(&self) -> f64 {
        let n = 10_000;
        let mut sum = 0.0;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            sum += self.quantile(u) as f64;
        }
        sum / n as f64
    }

    /// A copy with all sizes multiplied by `factor` (used to scale
    /// experiments down while preserving the distribution's shape).
    pub fn scaled(&self, factor: f64) -> EmpiricalCdf {
        assert!(factor > 0.0);
        EmpiricalCdf {
            points: self
                .points
                .iter()
                .map(|&(x, c)| ((x * factor).max(1.0), c))
                .collect(),
        }
    }

    /// The CDF points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Largest size in the support.
    pub fn max_bytes(&self) -> u64 {
        self.points
            .last()
            .expect("invariant: CDF point lists are non-empty (validated in new)")
            .0
            .round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simple() -> EmpiricalCdf {
        EmpiricalCdf::new(&[(1_000.0, 0.5), (1_000_000.0, 1.0)])
    }

    #[test]
    fn quantile_endpoints() {
        let c = simple();
        assert_eq!(c.quantile(0.25), 1_000);
        assert_eq!(c.quantile(0.5), 1_000);
        assert_eq!(c.quantile(1.0), 1_000_000);
    }

    #[test]
    fn quantile_log_interpolates() {
        let c = simple();
        // Midway in CDF between 0.5 and 1.0 => geometric mean of sizes.
        let q = c.quantile(0.75);
        let gm = (1_000.0f64 * 1_000_000.0).sqrt();
        assert!((q as f64 - gm).abs() / gm < 0.01, "q={q}, gm={gm}");
    }

    #[test]
    fn samples_within_support() {
        let c = simple();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let s = c.sample(&mut rng);
            assert!((1_000..=1_000_000).contains(&s), "sample {s}");
        }
    }

    #[test]
    fn sample_fractions_match_cdf() {
        let c = simple();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let small = (0..n).filter(|_| c.sample(&mut rng) <= 1_000).count() as f64 / n as f64;
        assert!((small - 0.5).abs() < 0.02, "P(size<=1k) = {small}");
    }

    #[test]
    fn mean_is_between_extremes() {
        let c = simple();
        let m = c.mean_bytes();
        assert!(m > 1_000.0 && m < 1_000_000.0);
    }

    #[test]
    fn scaling_shrinks_sizes() {
        let c = simple().scaled(0.01);
        assert_eq!(c.max_bytes(), 10_000);
        assert_eq!(c.quantile(0.25), 10);
    }

    #[test]
    #[should_panic(expected = "end at 1.0")]
    fn incomplete_cdf_rejected() {
        EmpiricalCdf::new(&[(10.0, 0.2), (100.0, 0.9)]);
    }
}
