//! # pnet-workloads
//!
//! Workload generation for the P-Net evaluation:
//!
//! * [`tm`] — synthetic traffic matrices (all-to-all, permutation, random
//!   pairs);
//! * [`sizes`] — empirical flow-size CDF sampling;
//! * [`traces`] — the five published datacenter traces of Figure 13a
//!   (websearch \[6\], datamining \[22\], Facebook webserver/cache/hadoop \[35\]);
//! * [`hadoop`] — the 3-stage Hadoop sort job of section 5.2.2.
//!
//! ## Example
//!
//! ```
//! use pnet_workloads::{tm, Trace};
//! use rand::SeedableRng;
//!
//! let perm = tm::random_permutation(16, 42);
//! assert!(perm.iter().enumerate().all(|(i, &j)| i != j));
//!
//! let cdf = Trace::Websearch.cdf();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let size = cdf.sample(&mut rng);
//! assert!(size >= 1_000);
//! ```

pub mod arrivals;
pub mod hadoop;
pub mod sizes;
pub mod tm;
pub mod traces;

pub use arrivals::PoissonArrivals;
pub use hadoop::{JobStage, JobTransfer, SortJob};
pub use sizes::EmpiricalCdf;
pub use traces::Trace;
