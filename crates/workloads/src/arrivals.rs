//! Arrival processes for open-loop workloads.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};

/// A Poisson arrival process: exponentially distributed inter-arrival gaps
/// with the given mean (picoseconds). Deterministic in the seed.
pub struct PoissonArrivals {
    rng: StdRng,
    exp: Exp<f64>,
}

impl PoissonArrivals {
    /// Mean inter-arrival gap in picoseconds (must be positive).
    pub fn new(mean_gap_ps: f64, seed: u64) -> Self {
        assert!(mean_gap_ps > 0.0, "mean gap must be positive");
        PoissonArrivals {
            rng: StdRng::seed_from_u64(seed),
            exp: Exp::new(1.0 / mean_gap_ps)
                .expect("invariant: rate is positive (mean gap asserted above)"),
        }
    }

    /// For an offered load `rho` against `capacity_bps` with mean flow size
    /// `mean_bytes`: gaps so that `rho * capacity = lambda * mean_bytes * 8`.
    pub fn for_load(rho: f64, capacity_bps: f64, mean_bytes: f64, seed: u64) -> Self {
        assert!(rho > 0.0 && capacity_bps > 0.0 && mean_bytes > 0.0);
        let lambda_per_sec = rho * capacity_bps / (mean_bytes * 8.0);
        Self::new(1e12 / lambda_per_sec, seed)
    }

    /// Next inter-arrival gap in picoseconds (at least 1).
    pub fn next_gap_ps(&mut self) -> u64 {
        (self.exp.sample(&mut self.rng).round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_gap_is_respected() {
        let mut p = PoissonArrivals::new(1_000_000.0, 7); // 1 us mean
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.next_gap_ps()).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 1_000_000.0).abs() < 30_000.0,
            "mean gap {mean} ps not ~1e6"
        );
    }

    #[test]
    fn load_formula() {
        // rho=0.5 of 100G with 1 MB flows: lambda = 0.5*1e11/(8e6) = 6250/s
        // => mean gap = 160 us.
        let mut p = PoissonArrivals::for_load(0.5, 1e11, 1e6, 3);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.next_gap_ps()).sum();
        let mean_us = total as f64 / n as f64 / 1e6;
        assert!((mean_us - 160.0).abs() < 5.0, "mean gap {mean_us} us");
    }

    #[test]
    fn deterministic_in_seed() {
        let take = |seed| {
            let mut p = PoissonArrivals::new(500.0, seed);
            (0..50).map(|_| p.next_gap_ps()).collect::<Vec<_>>()
        };
        assert_eq!(take(1), take(1));
        assert_ne!(take(1), take(2));
    }

    #[test]
    fn gaps_are_positive() {
        let mut p = PoissonArrivals::new(10.0, 0);
        assert!((0..1000).all(|_| p.next_gap_ps() >= 1));
    }
}
