//! The end-host view of a P-Net (section 3.4 of the paper).
//!
//! "At the OS level, we expose multiple dataplanes to end hosts at the IP
//! layer": every host gets one IP address per dataplane, applications pick a
//! plane by binding the corresponding address, and plane failures are
//! detected via link status. This module models that addressing plus the
//! per-host uplink/failure view.

use pnet_topology::{HostId, Network, PlaneId};
use std::fmt;

/// A per-plane IP-like address: `10.<plane>.<rack>.<host-in-rack>`.
///
/// One address per (host, plane) pair; applications select the dataplane by
/// choosing which local address to bind — exactly the Linux multi-interface
/// model the paper describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlaneAddr {
    pub plane: PlaneId,
    pub rack: u32,
    pub host_in_rack: u8,
}

impl fmt::Display for PlaneAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "10.{}.{}.{}", self.plane.0, self.rack, self.host_in_rack)
    }
}

/// The host stack: addresses and live-plane tracking for one host.
#[derive(Debug, Clone)]
pub struct HostStack {
    pub host: HostId,
    addrs: Vec<PlaneAddr>,
    /// Which planes currently have a live uplink.
    live: Vec<bool>,
}

impl HostStack {
    /// Build the stack for `host` from the network's current link state.
    pub fn new(net: &Network, host: HostId) -> Self {
        let rack = net.rack_of_host(host);
        // Position within the rack (stable small index for the address).
        let host_in_rack = net.hosts_by_rack()[rack.index()]
            .iter()
            .position(|&h| h == host)
            .expect("invariant: every host appears in its own rack's host list")
            as u8;
        let addrs = net
            .planes()
            .map(|plane| PlaneAddr {
                plane,
                rack: rack.0,
                host_in_rack,
            })
            .collect();
        let live = net
            .planes()
            .map(|p| net.host_uplink(host, p).is_some())
            .collect();
        HostStack { host, addrs, live }
    }

    /// The host's address on `plane`.
    pub fn addr(&self, plane: PlaneId) -> PlaneAddr {
        self.addrs[plane.index()]
    }

    /// All addresses (one per plane).
    pub fn addrs(&self) -> &[PlaneAddr] {
        &self.addrs
    }

    /// Is the uplink into `plane` alive?
    pub fn plane_live(&self, plane: PlaneId) -> bool {
        self.live[plane.index()]
    }

    /// Planes with live uplinks.
    pub fn live_planes(&self) -> Vec<PlaneId> {
        self.live
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l)
            .map(|(i, _)| PlaneId(i as u16))
            .collect()
    }

    /// Re-read link status (after failures), returning planes that changed
    /// state — the "quick detection via link status" hook.
    pub fn refresh(&mut self, net: &Network) -> Vec<PlaneId> {
        let mut changed = Vec::new();
        for p in net.planes() {
            let now = net.host_uplink(self.host, p).is_some();
            if now != self.live[p.index()] {
                self.live[p.index()] = now;
                changed.push(p);
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_topology::{assemble_homogeneous, failures, FatTree, LinkProfile};

    fn net() -> Network {
        assemble_homogeneous(&FatTree::three_tier(4), 4, &LinkProfile::paper_default())
    }

    #[test]
    fn one_address_per_plane() {
        let n = net();
        let hs = HostStack::new(&n, HostId(5));
        assert_eq!(hs.addrs().len(), 4);
        // Rack of host 5 in k=4 fat tree: 5 / 2 = rack 2, position 1.
        assert_eq!(hs.addr(PlaneId(2)).to_string(), "10.2.2.1");
    }

    #[test]
    fn addresses_unique_across_hosts_and_planes() {
        let n = net();
        let mut seen = std::collections::HashSet::new();
        for h in 0..n.n_hosts() {
            let hs = HostStack::new(&n, HostId(h as u32));
            for a in hs.addrs() {
                assert!(seen.insert(a.to_string()), "duplicate address {a}");
            }
        }
    }

    #[test]
    fn all_planes_initially_live() {
        let n = net();
        let hs = HostStack::new(&n, HostId(0));
        assert_eq!(hs.live_planes().len(), 4);
    }

    #[test]
    fn failure_detection_on_refresh() {
        let mut n = net();
        let mut hs = HostStack::new(&n, HostId(0));
        let up = n.host_uplink(HostId(0), PlaneId(1)).unwrap();
        failures::fail_cable(&mut n, up);
        let changed = hs.refresh(&n);
        assert_eq!(changed, vec![PlaneId(1)]);
        assert!(!hs.plane_live(PlaneId(1)));
        assert_eq!(hs.live_planes().len(), 3);
        // Restore.
        failures::restore_cable(&mut n, up);
        let changed = hs.refresh(&n);
        assert_eq!(changed, vec![PlaneId(1)]);
        assert!(hs.plane_live(PlaneId(1)));
    }
}
