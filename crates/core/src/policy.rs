//! Path-selection policies: how a P-Net end host picks dataplane(s) and
//! path(s) for each flow (sections 3.4 and 4 of the paper).
//!
//! * [`PathPolicy::EcmpHash`] — hash the flow onto one plane, then onto one
//!   equal-cost shortest path inside it. The "naive" baseline whose failure
//!   on sparse traffic motivates the paper (Figure 6b).
//! * [`PathPolicy::RoundRobin`] — cycle planes per flow ("by default,
//!   round-robin is used for load balancing").
//! * [`PathPolicy::ShortestPlane`] — the *low-latency* pseudo interface:
//!   send on the plane with the fewest hops to this destination — the
//!   heterogeneous P-Net advantage (section 5.2.1).
//! * [`PathPolicy::MultipathKsp`] — the *high-throughput* interface: MPTCP
//!   subflows over the K globally shortest paths across all planes.
//! * [`PathPolicy::SizeThreshold`] — the paper's empirical rule from
//!   section 5.1.2: small flows use single-path, large flows multipath
//!   ("flows smaller than or equal to 100 MB ... should use single-path
//!   routing; flows larger than or equal to 1 GB ... multipath").

use pnet_htsim::CcAlgo;
use pnet_routing::{flow_hash, hash_plane, hash_select, host_route, Path, Router};
use pnet_topology::{HostId, LinkId, Network, PlaneId};

/// A path-selection policy.
#[derive(Debug, Clone)]
pub enum PathPolicy {
    /// Hash → plane, hash → ECMP path. Single subflow, Reno.
    EcmpHash,
    /// Planes in round-robin order per flow; shortest path within the
    /// chosen plane (hash-balanced over equal-cost candidates).
    RoundRobin,
    /// The plane with the fewest switch hops to the destination; shortest
    /// path within it (hash-balanced over equal-cost candidates).
    ShortestPlane,
    /// MPTCP (LIA) over the `k` globally shortest paths across planes.
    MultipathKsp { k: usize },
    /// MPTCP (LIA) with `per_plane` subflows in *every* usable plane (each
    /// on that plane's shortest paths). Guarantees the subflow set spreads
    /// over all planes — the natural MPTCP path-manager behaviour when each
    /// plane is a separate interface/IP, and the configuration behind the
    /// paper's "4-way KSP on a 4-plane P-Net" small-flow results.
    PlaneKsp { per_plane: usize },
    /// MPTCP (LIA) with up to `per_plane` *edge-disjoint* subflow paths per
    /// plane: no two subflows share any cable, so a single link failure or
    /// hotspot degrades at most one subflow — the resilience-maximizing
    /// variant of [`PathPolicy::PlaneKsp`].
    DisjointPerPlane { per_plane: usize },
    /// Dispatch on flow size: below `cutoff_bytes` use `small`, at or above
    /// use `large`.
    SizeThreshold {
        cutoff_bytes: u64,
        small: Box<PathPolicy>,
        large: Box<PathPolicy>,
    },
    /// Restrict `inner` to a subset of planes — the paper's *performance
    /// isolation* (section 7): "operators can assign different traffic
    /// classes to different dataplanes... user-facing frontend traffic can
    /// be assigned to one dataplane, and background data analysis traffic
    /// can be assigned to another".
    Pinned {
        planes: Vec<u16>,
        inner: Box<PathPolicy>,
    },
}

impl PathPolicy {
    /// The paper's recommended host default: 100 MB cutoff between
    /// single-path (shortest-plane) and multipath (`k`-way KSP).
    pub fn paper_default(k: usize) -> PathPolicy {
        PathPolicy::SizeThreshold {
            cutoff_bytes: 100_000_000,
            small: Box::new(PathPolicy::ShortestPlane),
            large: Box::new(PathPolicy::MultipathKsp { k }),
        }
    }
}

/// A stateful selector binding a policy to a network's router.
pub struct PathSelector {
    router: Router,
    policy: PathPolicy,
    rr: u64,
    /// When set (by [`PathPolicy::Pinned`]), only these planes are usable.
    pinned: Option<Vec<PlaneId>>,
}

impl PathSelector {
    /// Create a selector. `router` should be built with an algorithm
    /// compatible with the policy (KSP with a large enough k covers all
    /// policies; see [`crate::pnet::PNet::selector`]).
    pub fn new(router: Router, policy: PathPolicy) -> Self {
        PathSelector {
            router,
            policy,
            rr: 0,
            pinned: None,
        }
    }

    /// Access the underlying router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Mutable access to the underlying router (e.g. for
    /// [`Router::refresh`] after failure injection).
    pub fn router_mut(&mut self) -> &mut Router {
        &mut self.router
    }

    /// Bulk-precompute the router's all-pairs route table in parallel, so
    /// subsequent [`PathSelector::select`] calls never pay the lazy
    /// per-pair Yen/ECMP cost.
    pub fn warm(&self) {
        self.router.precompute_all_pairs();
    }

    /// Select subflow routes and a congestion controller for a flow.
    ///
    /// # Panics
    /// If no plane connects the two hosts (total disconnection).
    pub fn select(
        &mut self,
        net: &Network,
        src: HostId,
        dst: HostId,
        flow_id: u64,
        size_bytes: u64,
    ) -> (Vec<Vec<LinkId>>, CcAlgo) {
        let policy = self.policy.clone();
        self.select_with(&policy, net, src, dst, flow_id, size_bytes)
    }

    fn select_with(
        &mut self,
        policy: &PathPolicy,
        net: &Network,
        src: HostId,
        dst: HostId,
        flow_id: u64,
        size_bytes: u64,
    ) -> (Vec<Vec<LinkId>>, CcAlgo) {
        let (ra, rb) = (net.rack_of_host(src), net.rack_of_host(dst));
        let h = flow_hash(src, dst, flow_id);
        match policy {
            PathPolicy::EcmpHash => {
                let plane = self.usable_plane(net, src, dst, hash_plane(net.n_planes(), h));
                let path = self.single_path_in(net, plane, ra, rb, h);
                (self.expand(net, src, dst, &[path]), CcAlgo::Reno)
            }
            PathPolicy::RoundRobin => {
                let start = PlaneId((self.rr % net.n_planes() as u64) as u16);
                self.rr += 1;
                let plane = self.usable_plane(net, src, dst, start);
                let path = self.single_path_in(net, plane, ra, rb, h);
                (self.expand(net, src, dst, &[path]), CcAlgo::Reno)
            }
            PathPolicy::ShortestPlane => {
                let path = self.shortest_plane_path(net, src, dst, ra, rb, h);
                (self.expand(net, src, dst, &[path]), CcAlgo::Reno)
            }
            PathPolicy::MultipathKsp { k } => {
                let paths = if ra == rb {
                    self.usable_planes(net, src, dst)
                        .into_iter()
                        .map(Path::intra_rack)
                        .collect()
                } else {
                    // Wide fetch, per-flow hash rotation of equal-cost ties,
                    // then truncate: flows between the same racks get
                    // *different* shortest-path subsets.
                    let mut ps = self.router.k_best_across_planes(ra, rb, 2 * *k);
                    ps.retain(|p| self.plane_usable(net, src, dst, p.plane));
                    pnet_routing::rotate_ties(&mut ps, h);
                    ps.truncate(*k);
                    ps
                };
                assert!(!paths.is_empty(), "no usable path {src}->{dst}");
                (self.expand(net, src, dst, &paths), CcAlgo::Lia)
            }
            PathPolicy::PlaneKsp { per_plane } => {
                let mut paths = Vec::new();
                for plane in self.usable_planes(net, src, dst) {
                    if ra == rb {
                        paths.push(Path::intra_rack(plane));
                        continue;
                    }
                    let set = self.router.paths_in_plane(plane, ra, rb);
                    let mut v: Vec<Path> = set.to_vec();
                    pnet_routing::rotate_ties(&mut v, h ^ plane.0 as u64);
                    paths.extend(v.into_iter().take(*per_plane));
                }
                assert!(!paths.is_empty(), "no usable path {src}->{dst}");
                (self.expand(net, src, dst, &paths), CcAlgo::Lia)
            }
            PathPolicy::DisjointPerPlane { per_plane } => {
                let mut paths = Vec::new();
                for plane in self.usable_planes(net, src, dst) {
                    if ra == rb {
                        paths.push(Path::intra_rack(plane));
                        continue;
                    }
                    let pg = &self.router.plane_graphs()[plane.index()];
                    paths.extend(pnet_routing::edge_disjoint_paths(pg, ra, rb, *per_plane));
                }
                assert!(!paths.is_empty(), "no usable path {src}->{dst}");
                (self.expand(net, src, dst, &paths), CcAlgo::Lia)
            }
            PathPolicy::SizeThreshold {
                cutoff_bytes,
                small,
                large,
            } => {
                if size_bytes <= *cutoff_bytes {
                    self.select_with(small, net, src, dst, flow_id, size_bytes)
                } else {
                    self.select_with(large, net, src, dst, flow_id, size_bytes)
                }
            }
            PathPolicy::Pinned { planes, inner } => {
                assert!(!planes.is_empty(), "Pinned needs at least one plane");
                let saved = self.pinned.take();
                self.pinned = Some(planes.iter().map(|&p| PlaneId(p)).collect());
                let result = self.select_with(inner, net, src, dst, flow_id, size_bytes);
                self.pinned = saved;
                result
            }
        }
    }

    /// A single path within `plane` (intra-rack or hash-selected among the
    /// plane's candidates).
    fn single_path_in(
        &mut self,
        _net: &Network,
        plane: PlaneId,
        ra: pnet_topology::RackId,
        rb: pnet_topology::RackId,
        h: u64,
    ) -> Path {
        if ra == rb {
            return Path::intra_rack(plane);
        }
        let set = self.router.paths_in_plane(plane, ra, rb);
        assert!(!set.is_empty(), "no path in {plane} between {ra} and {rb}");
        // Restrict the hash choice to the shortest tier so "single path"
        // means "a shortest path" for every policy.
        let best = set[0].links.len();
        let shortest: Vec<&Path> = set.iter().filter(|p| p.links.len() == best).collect();
        (*hash_select(&shortest, h)).clone()
    }

    /// The lowest-hop path across all usable planes (ties hash-balanced).
    fn shortest_plane_path(
        &mut self,
        net: &Network,
        src: HostId,
        dst: HostId,
        ra: pnet_topology::RackId,
        rb: pnet_topology::RackId,
        h: u64,
    ) -> Path {
        if ra == rb {
            let planes = self.usable_planes(net, src, dst);
            return Path::intra_rack(planes[(h % planes.len() as u64) as usize]);
        }
        let mut best: Vec<Path> = Vec::new();
        let mut best_len = usize::MAX;
        for plane in net.planes() {
            if !self.plane_usable(net, src, dst, plane) {
                continue;
            }
            let set = self.router.paths_in_plane(plane, ra, rb);
            if let Some(p) = set.first() {
                match p.links.len().cmp(&best_len) {
                    std::cmp::Ordering::Less => {
                        best_len = p.links.len();
                        best = set
                            .iter()
                            .filter(|q| q.links.len() == best_len)
                            .cloned()
                            .collect();
                    }
                    std::cmp::Ordering::Equal => {
                        best.extend(set.iter().filter(|q| q.links.len() == best_len).cloned());
                    }
                    std::cmp::Ordering::Greater => {}
                }
            }
        }
        assert!(!best.is_empty(), "no usable path {src}->{dst}");
        hash_select(&best, h).clone()
    }

    /// Planes where both hosts have live uplinks.
    fn usable_planes(&self, net: &Network, src: HostId, dst: HostId) -> Vec<PlaneId> {
        net.planes()
            .filter(|&p| self.plane_usable(net, src, dst, p))
            .collect()
    }

    fn plane_usable(&self, net: &Network, src: HostId, dst: HostId, plane: PlaneId) -> bool {
        if let Some(pinned) = &self.pinned {
            if !pinned.contains(&plane) {
                return false;
            }
        }
        net.host_uplink(src, plane).is_some() && net.host_uplink(dst, plane).is_some()
    }

    /// `preferred` if usable, otherwise the next usable plane (failure
    /// masking: "end hosts can quickly detect individual dataplane failures
    /// via link status and avoid using the broken dataplane(s)").
    fn usable_plane(&self, net: &Network, src: HostId, dst: HostId, preferred: PlaneId) -> PlaneId {
        let n = net.n_planes();
        (0..n)
            .map(|off| PlaneId((preferred.0 + off) % n))
            .find(|&p| self.plane_usable(net, src, dst, p))
            .expect("invariant: assembled multi-plane networks keep every host pair connected")
    }

    fn expand(&self, net: &Network, src: HostId, dst: HostId, paths: &[Path]) -> Vec<Vec<LinkId>> {
        let routes: Vec<Vec<LinkId>> = paths
            .iter()
            .filter_map(|p| host_route(net, src, dst, p))
            .collect();
        assert!(!routes.is_empty(), "no expandable route {src}->{dst}");
        routes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_routing::RouteAlgo;
    use pnet_topology::{
        assemble_homogeneous, parallel, FatTree, Jellyfish, LinkProfile, NetworkClass,
    };

    fn par4() -> Network {
        assemble_homogeneous(&FatTree::three_tier(4), 4, &LinkProfile::paper_default())
    }

    fn selector(net: &Network, policy: PathPolicy) -> PathSelector {
        PathSelector::new(Router::new(net, RouteAlgo::Ksp { k: 32 }), policy)
    }

    #[test]
    fn ecmp_hash_is_per_flow_stable() {
        let net = par4();
        let mut s = selector(&net, PathPolicy::EcmpHash);
        let (a, cc) = s.select(&net, HostId(0), HostId(15), 7, 1000);
        let (b, _) = s.select(&net, HostId(0), HostId(15), 7, 1000);
        assert_eq!(a, b, "same flow id must map to the same path");
        assert_eq!(a.len(), 1);
        assert_eq!(cc, CcAlgo::Reno);
    }

    #[test]
    fn ecmp_hash_spreads_flows_over_planes() {
        let net = par4();
        let mut s = selector(&net, PathPolicy::EcmpHash);
        let mut planes_seen = std::collections::HashSet::new();
        for f in 0..64 {
            let (routes, _) = s.select(&net, HostId(0), HostId(15), f, 1000);
            let plane = net.link(routes[0][0]).plane;
            planes_seen.insert(plane);
        }
        assert_eq!(planes_seen.len(), 4, "hash should hit all 4 planes");
    }

    #[test]
    fn round_robin_cycles_planes() {
        let net = par4();
        let mut s = selector(&net, PathPolicy::RoundRobin);
        let planes: Vec<u16> = (0..8)
            .map(|f| {
                let (routes, _) = s.select(&net, HostId(0), HostId(15), f, 1000);
                net.link(routes[0][0]).plane.0
            })
            .collect();
        assert_eq!(planes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn multipath_uses_all_planes() {
        let net = par4();
        let mut s = selector(&net, PathPolicy::MultipathKsp { k: 16 });
        let (routes, cc) = s.select(&net, HostId(0), HostId(15), 0, 1 << 31);
        assert_eq!(routes.len(), 16);
        assert_eq!(cc, CcAlgo::Lia);
        let planes: std::collections::HashSet<u16> =
            routes.iter().map(|r| net.link(r[0]).plane.0).collect();
        assert_eq!(planes.len(), 4, "16 best paths should span all 4 planes");
    }

    #[test]
    fn shortest_plane_picks_minimum_hops() {
        // Heterogeneous Jellyfish: the chosen plane must match the min over
        // planes of the shortest-path length.
        let proto = Jellyfish::new(16, 4, 2, 0);
        let net = parallel::jellyfish_network(
            NetworkClass::ParallelHeterogeneous,
            proto,
            4,
            3,
            &LinkProfile::paper_default(),
        );
        let mut s = selector(&net, PathPolicy::ShortestPlane);
        let check = Router::new(&net, RouteAlgo::Ksp { k: 1 });
        for (a, b) in [(0u32, 20u32), (3, 17), (5, 30), (9, 12)] {
            let (routes, _) = s.select(&net, HostId(a), HostId(b), 0, 1000);
            let hops = routes[0].len() - 1;
            let (_, best) = check
                .shortest_plane(net.rack_of_host(HostId(a)), net.rack_of_host(HostId(b)))
                .unwrap();
            assert_eq!(hops, best, "pair ({a},{b})");
        }
    }

    #[test]
    fn disjoint_per_plane_subflows_share_no_cable() {
        let net = par4();
        let mut s = selector(&net, PathPolicy::DisjointPerPlane { per_plane: 2 });
        let (routes, cc) = s.select(&net, HostId(0), HostId(15), 3, 1 << 30);
        assert_eq!(cc, CcAlgo::Lia);
        // k=4 fat tree: 2 disjoint fabric paths per plane x 4 planes; host
        // links are shared per plane by construction (one uplink), so check
        // disjointness over the fabric portion only.
        assert_eq!(routes.len(), 8);
        let mut seen = std::collections::HashSet::new();
        for r in &routes {
            for &l in &r[1..r.len() - 1] {
                assert!(seen.insert(l.0 / 2), "fabric cable shared across subflows");
            }
        }
    }

    #[test]
    fn size_threshold_dispatches() {
        let net = par4();
        let mut s = selector(&net, PathPolicy::paper_default(16));
        let (small, cc_small) = s.select(&net, HostId(0), HostId(15), 0, 1_000_000);
        let (large, cc_large) = s.select(&net, HostId(0), HostId(15), 0, 2_000_000_000);
        assert_eq!(small.len(), 1);
        assert_eq!(cc_small, CcAlgo::Reno);
        assert!(large.len() > 1);
        assert_eq!(cc_large, CcAlgo::Lia);
    }

    #[test]
    fn intra_rack_flows_work_under_all_policies() {
        let net = par4();
        for policy in [
            PathPolicy::EcmpHash,
            PathPolicy::RoundRobin,
            PathPolicy::ShortestPlane,
            PathPolicy::MultipathKsp { k: 8 },
        ] {
            let mut s = selector(&net, policy);
            let (routes, _) = s.select(&net, HostId(0), HostId(1), 0, 1000);
            for r in &routes {
                assert_eq!(r.len(), 2, "intra-rack route is up+down");
            }
        }
    }

    #[test]
    fn pinned_policy_confines_traffic() {
        let net = par4();
        // Frontend pinned to plane 0; background pinned to planes 1-3.
        let mut frontend = selector(
            &net,
            PathPolicy::Pinned {
                planes: vec![0],
                inner: Box::new(PathPolicy::EcmpHash),
            },
        );
        let mut background = selector(
            &net,
            PathPolicy::Pinned {
                planes: vec![1, 2, 3],
                inner: Box::new(PathPolicy::MultipathKsp { k: 12 }),
            },
        );
        for f in 0..32 {
            let (routes, _) = frontend.select(&net, HostId(0), HostId(15), f, 1000);
            assert_eq!(net.link(routes[0][0]).plane, PlaneId(0));
            let (routes, _) = background.select(&net, HostId(0), HostId(15), f, 1 << 31);
            for r in &routes {
                assert_ne!(
                    net.link(r[0]).plane,
                    PlaneId(0),
                    "background leaked onto plane 0"
                );
            }
        }
    }

    #[test]
    fn pinned_mask_does_not_leak_across_selects() {
        let net = par4();
        let mut s = selector(
            &net,
            PathPolicy::SizeThreshold {
                cutoff_bytes: 1000,
                small: Box::new(PathPolicy::Pinned {
                    planes: vec![0],
                    inner: Box::new(PathPolicy::EcmpHash),
                }),
                large: Box::new(PathPolicy::MultipathKsp { k: 16 }),
            },
        );
        let (_small, _) = s.select(&net, HostId(0), HostId(15), 1, 500);
        // Large flows after a pinned select must see all planes again.
        let (large, _) = s.select(&net, HostId(0), HostId(15), 2, 1_000_000);
        let planes: std::collections::HashSet<u16> =
            large.iter().map(|r| net.link(r[0]).plane.0).collect();
        assert_eq!(planes.len(), 4, "mask leaked: {planes:?}");
    }

    #[test]
    fn failure_masking_avoids_dead_plane() {
        let mut net = par4();
        // Fail host 0's uplink into plane 0.
        let up = net.host_uplink(HostId(0), PlaneId(0)).unwrap();
        pnet_topology::failures::fail_cable(&mut net, up);
        let mut s = selector(&net, PathPolicy::EcmpHash);
        for f in 0..32 {
            let (routes, _) = s.select(&net, HostId(0), HostId(15), f, 1000);
            assert_ne!(
                net.link(routes[0][0]).plane,
                PlaneId(0),
                "flow hashed onto the dead plane"
            );
        }
    }
}
