//! # pnet-core
//!
//! The paper's primary contribution as a library: **Parallel Dataplane
//! Networks** (P-Nets) with host-level plane/path selection.
//!
//! A P-Net connects every end host to N disjoint forwarding planes; packets
//! never cross planes in flight, so *all* multiplexing intelligence lives at
//! the host. This crate provides that host stack:
//!
//! * [`PNetSpec`] / [`PNet`] — build any of the paper's four comparison
//!   networks (serial low/high bandwidth, parallel homogeneous,
//!   parallel heterogeneous) over fat-tree, Jellyfish, or Xpander planes;
//! * [`PathPolicy`] / [`PathSelector`] — per-flow plane/path selection:
//!   ECMP hashing, round-robin, shortest-plane (low latency), K-shortest
//!   multipath (high throughput), and the size-threshold composite the
//!   paper recommends;
//! * [`TrafficClass`] — the application-facing pseudo interfaces;
//! * [`HostStack`] — per-plane IP addressing and link-status failure
//!   masking;
//! * [`analysis`] — hop-count/resiliency analytics behind Figures 10 and 14.
//!
//! ## Example: build a 4-plane heterogeneous P-Net and pick paths
//!
//! ```
//! use pnet_core::{PNet, PNetSpec, PathPolicy, TopologyKind};
//! use pnet_topology::{HostId, NetworkClass};
//!
//! let spec = PNetSpec::new(
//!     TopologyKind::Jellyfish { n_tors: 16, degree: 4, hosts_per_tor: 2 },
//!     NetworkClass::ParallelHeterogeneous,
//!     4,
//!     42,
//! );
//! let pnet: PNet = spec.build();
//! let mut selector = pnet.selector(PathPolicy::paper_default(32));
//!
//! // A small RPC goes single-path on the lowest-hop plane...
//! let (routes, _cc) = selector.select(&pnet.net, HostId(0), HostId(31), 1, 1_500);
//! assert_eq!(routes.len(), 1);
//!
//! // ...a bulk transfer gets MPTCP subflows across the planes.
//! let (routes, _cc) = selector.select(&pnet.net, HostId(0), HostId(31), 2, 2_000_000_000);
//! assert!(routes.len() > 1);
//! ```

pub mod adaptive;
pub mod analysis;
pub mod hoststack;
pub mod interfaces;
pub mod monitoring;
pub mod pnet;
pub mod policy;

pub use adaptive::AdaptiveBalancer;
pub use hoststack::{HostStack, PlaneAddr};
pub use interfaces::{subflows_for, TrafficClass};
pub use monitoring::{PlaneReport, PlaneStats};
pub use pnet::{PNet, PNetSpec, TopologyKind};
pub use policy::{PathPolicy, PathSelector};
