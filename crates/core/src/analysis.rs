//! Hop-count and resiliency analyses (sections 5.2.1 and 5.4).
//!
//! The heterogeneous P-Net advantage is structural: with N independently
//! random planes, the minimum-over-planes path length between two racks is
//! stochastically smaller than any single plane's. These helpers compute
//! the hop statistics behind Figure 10's stepped CDFs and Figure 14's
//! failure sweep.

use pnet_routing::{bfs, PlaneGraph};
use pnet_topology::Network;

/// Mean switch hops over all rack pairs when every flow must stay in one
/// *fixed* plane (serial networks, or per-plane view of a P-Net).
pub fn mean_hops_single_plane(net: &Network) -> f64 {
    let pg = PlaneGraph::build(net, pnet_topology::PlaneId(0));
    bfs::mean_switch_hops(&bfs::rack_hop_matrix(&pg))
}

/// Mean switch hops over all rack pairs when the host may pick the best
/// plane per destination (the P-Net host stack's shortest-plane interface).
pub fn mean_hops_best_plane(net: &Network) -> f64 {
    let matrices: Vec<Vec<Vec<u32>>> = PlaneGraph::build_all(net)
        .iter()
        .map(bfs::rack_hop_matrix)
        .collect();
    bfs::mean_switch_hops(&bfs::min_hops_across_planes(&matrices))
}

/// The distribution of best-plane switch hops over all ordered rack pairs
/// (for the stepped RPC CDFs of Figure 10): `histogram[h]` = number of pairs
/// at `h` switch hops. Disconnected pairs are counted in `unreachable`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopHistogram {
    pub histogram: Vec<u64>,
    pub unreachable: u64,
}

impl HopHistogram {
    /// Mean switch hops of reachable pairs.
    pub fn mean(&self) -> f64 {
        let total: u64 = self.histogram.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let weighted: u64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(h, &c)| h as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }

    /// Fraction of reachable pairs with at most `h` switch hops.
    pub fn cdf_at(&self, h: usize) -> f64 {
        let total: u64 = self.histogram.iter().sum();
        let upto: u64 = self.histogram.iter().take(h + 1).sum();
        upto as f64 / total as f64
    }
}

/// Hop histogram with best-plane selection.
pub fn hop_histogram_best_plane(net: &Network) -> HopHistogram {
    let matrices: Vec<Vec<Vec<u32>>> = PlaneGraph::build_all(net)
        .iter()
        .map(bfs::rack_hop_matrix)
        .collect();
    let min = bfs::min_hops_across_planes(&matrices);
    histogram_of(&min)
}

/// Hop histogram of plane 0 only (serial view).
pub fn hop_histogram_single_plane(net: &Network) -> HopHistogram {
    let pg = PlaneGraph::build(net, pnet_topology::PlaneId(0));
    histogram_of(&bfs::rack_hop_matrix(&pg))
}

fn histogram_of(matrix: &[Vec<u32>]) -> HopHistogram {
    let mut histogram = Vec::new();
    let mut unreachable = 0u64;
    for (a, row) in matrix.iter().enumerate() {
        for (b, &d) in row.iter().enumerate() {
            if a == b {
                continue;
            }
            if d == u32::MAX {
                unreachable += 1;
                continue;
            }
            let hops = d as usize + 1; // switch hops = fabric links + 1
            if histogram.len() <= hops {
                histogram.resize(hops + 1, 0);
            }
            histogram[hops] += 1;
        }
    }
    HopHistogram {
        histogram,
        unreachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_topology::{
        assemble_homogeneous, parallel, FatTree, Jellyfish, LinkProfile, NetworkClass,
    };

    #[test]
    fn fat_tree_hop_mix() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let h = hop_histogram_single_plane(&net);
        // 8 racks: same-pod pairs at 3 switch hops (2 per pod x 2 ordered x
        // 4 pods = 8... precisely: per pod 2 racks -> 2 ordered pairs), so 8
        // pairs at 3 hops; the other 48 ordered pairs at 5 hops.
        assert_eq!(h.histogram[3], 8);
        assert_eq!(h.histogram[5], 48);
        assert_eq!(h.unreachable, 0);
        let expect_mean = (8.0 * 3.0 + 48.0 * 5.0) / 56.0;
        assert!((h.mean() - expect_mean).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_shortens_paths() {
        // The paper's core structural claim: min-over-planes beats any
        // single plane on expanders.
        let proto = Jellyfish::new(32, 4, 1, 0);
        let base = LinkProfile::paper_default();
        let serial = parallel::jellyfish_network(NetworkClass::SerialLow, proto, 4, 11, &base);
        let hetero =
            parallel::jellyfish_network(NetworkClass::ParallelHeterogeneous, proto, 4, 11, &base);
        let homo =
            parallel::jellyfish_network(NetworkClass::ParallelHomogeneous, proto, 4, 11, &base);
        let s = mean_hops_single_plane(&serial);
        let het = mean_hops_best_plane(&hetero);
        let hom = mean_hops_best_plane(&homo);
        assert!(
            het < s - 0.2,
            "heterogeneous mean {het} not clearly below serial {s}"
        );
        // Homogeneous planes are identical: best-plane = single-plane.
        assert!((hom - s).abs() < 1e-9, "homogeneous {hom} vs serial {s}");
    }

    #[test]
    fn cdf_is_monotone() {
        let net = assemble_homogeneous(
            &Jellyfish::new(20, 4, 1, 5),
            2,
            &LinkProfile::paper_default(),
        );
        let h = hop_histogram_best_plane(&net);
        let mut prev = 0.0;
        for hops in 0..h.histogram.len() {
            let c = h.cdf_at(hops);
            assert!(c >= prev);
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-12);
    }
}
