//! Per-plane monitoring and diagnostics (section 7 of the paper).
//!
//! "P-Net's adoption of multiple dataplanes brings management and diagnostic
//! challenges, since each dataplane is logically separate... Existing
//! systems will need to merge flow statistics from multiple dataplanes to
//! accurately describe the network state and troubleshoot issues."
//!
//! [`PlaneReport`] is that merge: it rolls a simulator's per-queue counters
//! up per dataplane and flags asymmetries (a plane dropping far more than
//! its siblings is the first thing an operator would chase).
//!
//! For the *time-resolved* view — how plane load evolved during the run —
//! enable the simulator's telemetry samplers and feed the trace to
//! [`plane_utilization_series`].

use pnet_htsim::{SimTime, Simulator, TraceRecord};
use pnet_topology::{Network, PlaneId};

/// Aggregated statistics of one dataplane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneStats {
    pub plane: PlaneId,
    /// Packets enqueued across the plane's queues.
    pub enqueued: u64,
    /// Packets dropped at full buffers (congestion loss only).
    pub dropped: u64,
    /// Packets discarded at dark links (failure loss) — kept separate so a
    /// failed plane isn't misdiagnosed as congested.
    pub dropped_link_down: u64,
    /// Worst single-queue peak occupancy (bytes).
    pub peak_queue_bytes: u64,
    /// Bytes that completed serialization across the plane's links.
    pub bytes_sent: u64,
    /// Fabric links of the plane currently down.
    pub failed_links: usize,
}

impl PlaneStats {
    /// Congestion drop rate (drop-tail drops / enqueue attempts at live
    /// links). Link-down discards are deliberately excluded: they indicate
    /// failure, not load.
    pub fn drop_rate(&self) -> f64 {
        if self.enqueued + self.dropped == 0 {
            0.0
        } else {
            self.dropped as f64 / (self.enqueued + self.dropped) as f64
        }
    }

    /// All losses in this plane, congestion and failure alike.
    pub fn total_dropped(&self) -> u64 {
        self.dropped + self.dropped_link_down
    }
}

/// The merged multi-plane view.
#[derive(Debug, Clone)]
pub struct PlaneReport {
    pub planes: Vec<PlaneStats>,
}

impl PlaneReport {
    /// Collect from a finished (or running) simulation.
    pub fn collect(net: &Network, sim: &Simulator) -> Self {
        let mut planes: Vec<PlaneStats> = net
            .planes()
            .map(|plane| PlaneStats {
                plane,
                enqueued: 0,
                dropped: 0,
                dropped_link_down: 0,
                peak_queue_bytes: 0,
                bytes_sent: 0,
                failed_links: 0,
            })
            .collect();
        for (id, link) in net.links() {
            let stats = &mut planes[link.plane.index()];
            if !link.up {
                stats.failed_links += 1;
            }
            // Down links still report: packets discarded at a dark link (and
            // anything dropped before the failure) must show up in the merge.
            let qs = sim.queue_stats(id);
            stats.enqueued += qs.enqueued;
            stats.dropped += qs.dropped;
            stats.dropped_link_down += qs.dropped_link_down;
            stats.peak_queue_bytes = stats.peak_queue_bytes.max(qs.peak_bytes);
            stats.bytes_sent += qs.bytes_sent;
        }
        PlaneReport { planes }
    }

    /// Total load across planes.
    pub fn total_enqueued(&self) -> u64 {
        self.planes.iter().map(|p| p.enqueued).sum()
    }

    /// Load imbalance: max plane share over the uniform share (1.0 =
    /// perfectly balanced; 4.0 on a 4-plane network = everything on one
    /// plane).
    pub fn imbalance(&self) -> f64 {
        let total = self.total_enqueued();
        if total == 0 || self.planes.is_empty() {
            return 1.0;
        }
        let max = self
            .planes
            .iter()
            .map(|p| p.enqueued)
            .max()
            .expect("invariant: planes is checked non-empty above");
        max as f64 * self.planes.len() as f64 / total as f64
    }

    /// Planes whose drop rate exceeds `factor` times the mean drop rate —
    /// the troubleshooting shortlist.
    pub fn anomalous_planes(&self, factor: f64) -> Vec<PlaneId> {
        let mean: f64 =
            self.planes.iter().map(|p| p.drop_rate()).sum::<f64>() / self.planes.len() as f64;
        if mean == 0.0 {
            return Vec::new();
        }
        self.planes
            .iter()
            .filter(|p| p.drop_rate() > factor * mean)
            .map(|p| p.plane)
            .collect()
    }
}

/// One point of a per-plane utilization time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneUtilizationPoint {
    /// Sample time.
    pub t: SimTime,
    /// Bytes the plane served since the previous sample.
    pub bytes_delta: u64,
    /// Fraction of the plane's aggregate link capacity used over the
    /// sampling interval.
    pub utilization: f64,
}

/// Extract per-plane utilization time series from a telemetry trace (the
/// time-resolved complement of [`PlaneReport`]). Requires the simulator to
/// have run with the `plane` sampler enabled
/// (`TelemetryConfig { events, sample_interval }`); returns one series per
/// plane index observed, each in sample order.
pub fn plane_utilization_series(records: &[TraceRecord]) -> Vec<Vec<PlaneUtilizationPoint>> {
    let mut series: Vec<Vec<PlaneUtilizationPoint>> = Vec::new();
    for rec in records {
        if let TraceRecord::PlaneSample {
            t,
            plane,
            bytes_delta,
            utilization,
        } = *rec
        {
            let idx = usize::try_from(plane).expect("invariant: plane index fits in usize");
            if series.len() <= idx {
                series.resize_with(idx + 1, Vec::new);
            }
            series[idx].push(PlaneUtilizationPoint {
                t,
                bytes_delta,
                utilization,
            });
        }
    }
    series
}

/// Time-weighted mean utilization of one plane's series over the window
/// `(from, to]`. Each sample's utilization covers the stretch since the
/// previous sample (clamped to the window), so the mean is
/// `sum(utilization_i * dt_i) / (to - from)`.
///
/// A zero-width or inverted window has no duration to average over — the
/// division would be the same class of bug as the zero-duration-flow
/// infinity goodput — so it is defined as 0 instead.
pub fn mean_plane_utilization(points: &[PlaneUtilizationPoint], from: SimTime, to: SimTime) -> f64 {
    if to <= from {
        return 0.0;
    }
    let width = (to.as_ps() - from.as_ps()) as f64;
    let mut weighted = 0.0;
    let mut prev = from;
    for pt in points {
        if pt.t <= from {
            prev = pt.t.max(from);
            continue;
        }
        if pt.t > to {
            break;
        }
        let dt = (pt.t.as_ps() - prev.max(from).as_ps()) as f64;
        weighted += pt.utilization * dt;
        prev = pt.t;
    }
    weighted / width
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PNetSpec, PathPolicy, TopologyKind};
    use pnet_htsim::{run_to_completion, FlowSpec, SimConfig};
    use pnet_topology::{HostId, NetworkClass};

    fn run_some_traffic(policy: PathPolicy) -> (pnet_topology::Network, Simulator) {
        let pnet = PNetSpec::new(
            TopologyKind::Jellyfish {
                n_tors: 8,
                degree: 3,
                hosts_per_tor: 2,
            },
            NetworkClass::ParallelHomogeneous,
            4,
            5,
        )
        .build();
        let mut selector = pnet.selector(policy);
        let mut sim = Simulator::new(&pnet.net, SimConfig::default());
        for i in 0..8u32 {
            let (src, dst) = (HostId(i), HostId(15 - i));
            let (routes, cc) = selector.select(&pnet.net, src, dst, i as u64, 600_000);
            sim.start_flow(FlowSpec {
                src,
                dst,
                size_bytes: 600_000,
                routes,
                cc,
                owner_tag: 0,
            });
        }
        run_to_completion(&mut sim);
        (pnet.net, sim)
    }

    #[test]
    fn round_robin_traffic_is_balanced() {
        let (net, sim) = run_some_traffic(PathPolicy::RoundRobin);
        let report = PlaneReport::collect(&net, &sim);
        assert_eq!(report.planes.len(), 4);
        assert!(report.total_enqueued() > 0);
        assert!(
            report.imbalance() < 2.0,
            "round robin imbalance {}",
            report.imbalance()
        );
    }

    #[test]
    fn pinned_traffic_shows_up_as_imbalance() {
        let (net, sim) = run_some_traffic(PathPolicy::Pinned {
            planes: vec![2],
            inner: Box::new(PathPolicy::EcmpHash),
        });
        let report = PlaneReport::collect(&net, &sim);
        // Everything on plane 2: imbalance = plane count.
        assert!(report.imbalance() > 3.5);
        assert_eq!(report.planes[0].enqueued, 0);
        assert!(report.planes[2].enqueued > 0);
    }

    #[test]
    fn failed_links_are_counted() {
        let pnet = PNetSpec::new(
            TopologyKind::Jellyfish {
                n_tors: 8,
                degree: 3,
                hosts_per_tor: 1,
            },
            NetworkClass::ParallelHomogeneous,
            2,
            0,
        )
        .build();
        let mut net = pnet.net;
        let cables = pnet_topology::failures::fabric_cables(&net, Some(PlaneId(1)));
        pnet_topology::failures::fail_cable(&mut net, cables[0]);
        let sim = Simulator::new(&net, SimConfig::default());
        let report = PlaneReport::collect(&net, &sim);
        assert_eq!(report.planes[0].failed_links, 0);
        assert_eq!(report.planes[1].failed_links, 2); // both directions
    }

    #[test]
    fn link_down_discards_reported_separately() {
        use pnet_htsim::{run, NullDriver, SimTime};
        let pnet = PNetSpec::new(
            TopologyKind::Jellyfish {
                n_tors: 8,
                degree: 3,
                hosts_per_tor: 2,
            },
            NetworkClass::ParallelHomogeneous,
            4,
            5,
        )
        .build();
        // Pin a flow to plane 1, then blackhole its uplink before any packet
        // moves: every transmission attempt is a failure discard.
        let mut selector = pnet.selector(PathPolicy::Pinned {
            planes: vec![1],
            inner: Box::new(PathPolicy::EcmpHash),
        });
        let mut sim = Simulator::new(&pnet.net, SimConfig::default());
        let (routes, cc) = selector.select(&pnet.net, HostId(0), HostId(15), 0, 600_000);
        sim.start_flow(FlowSpec {
            src: HostId(0),
            dst: HostId(15),
            size_bytes: 600_000,
            routes,
            cc,
            owner_tag: 0,
        });
        let uplink = pnet.net.host_uplink(HostId(0), PlaneId(1)).unwrap();
        sim.fail_link(uplink);
        run(&mut sim, &mut NullDriver, Some(SimTime::from_ms(50)));

        let report = PlaneReport::collect(&pnet.net, &sim);
        let p1 = &report.planes[1];
        assert!(p1.dropped_link_down > 0, "dark uplink must report discards");
        assert_eq!(p1.dropped, 0, "no congestion loss on an idle plane");
        assert_eq!(p1.drop_rate(), 0.0, "failure loss is not congestion");
        assert_eq!(p1.total_dropped(), p1.dropped_link_down);
        for p in [0usize, 2, 3] {
            assert_eq!(report.planes[p].dropped_link_down, 0);
        }
    }

    #[test]
    fn plane_utilization_series_tracks_load() {
        use pnet_htsim::{run_to_completion, TelemetryConfig};
        let pnet = PNetSpec::new(
            TopologyKind::Jellyfish {
                n_tors: 8,
                degree: 3,
                hosts_per_tor: 2,
            },
            NetworkClass::ParallelHomogeneous,
            4,
            5,
        )
        .build();
        // Pin all traffic to plane 2 and sample utilization as it flows.
        let mut selector = pnet.selector(PathPolicy::Pinned {
            planes: vec![2],
            inner: Box::new(PathPolicy::EcmpHash),
        });
        let cfg = SimConfig {
            telemetry: TelemetryConfig::all(SimTime::from_us(5)),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&pnet.net, cfg);
        for i in 0..8u32 {
            let (src, dst) = (HostId(i), HostId(15 - i));
            let (routes, cc) = selector.select(&pnet.net, src, dst, i as u64, 600_000);
            sim.start_flow(FlowSpec {
                src,
                dst,
                size_bytes: 600_000,
                routes,
                cc,
                owner_tag: 0,
            });
        }
        run_to_completion(&mut sim);
        let tl = sim.telemetry().expect("telemetry enabled");
        let series = plane_utilization_series(tl.records());
        assert_eq!(series.len(), 4, "one series per plane");
        let total_bytes = |p: usize| series[p].iter().map(|pt| pt.bytes_delta).sum::<u64>();
        assert!(total_bytes(2) > 0, "pinned plane must show load");
        assert_eq!(total_bytes(0), 0, "unpinned plane stays idle");
        for pts in &series {
            for pt in pts {
                assert!(pt.utilization >= 0.0 && pt.utilization.is_finite());
            }
        }
        // Sample times strictly increase within a series.
        for w in series[2].windows(2) {
            assert!(w[0].t < w[1].t);
        }
        // The series totals agree with the aggregate report's bytes_sent.
        let report = PlaneReport::collect(&pnet.net, &sim);
        assert!(report.planes[2].bytes_sent >= total_bytes(2));
    }

    /// Regression: the windowed mean divides by the window width; a
    /// zero-width (or inverted) window must yield 0, not NaN/infinity —
    /// same family as the zero-duration-flow goodput bug.
    #[test]
    fn zero_width_window_mean_utilization_is_zero() {
        let points = [
            PlaneUtilizationPoint {
                t: SimTime::from_us(5),
                bytes_delta: 100,
                utilization: 0.5,
            },
            PlaneUtilizationPoint {
                t: SimTime::from_us(10),
                bytes_delta: 100,
                utilization: 1.0,
            },
        ];
        let z = mean_plane_utilization(&points, SimTime::from_us(5), SimTime::from_us(5));
        assert!(z == 0.0, "zero-width window must be 0, got {z}");
        let inv = mean_plane_utilization(&points, SimTime::from_us(10), SimTime::from_us(5));
        assert!(inv == 0.0, "inverted window must be 0, got {inv}");
        assert!(mean_plane_utilization(&[], SimTime::ZERO, SimTime::from_us(1)) == 0.0);
        // A real window time-weights each sample by the stretch it covers.
        let m = mean_plane_utilization(&points, SimTime::ZERO, SimTime::from_us(10));
        assert!((m - 0.75).abs() < 1e-12, "time-weighted mean wrong: {m}");
        // Samples outside the window don't contribute.
        let tail = mean_plane_utilization(&points, SimTime::from_us(5), SimTime::from_us(10));
        assert!((tail - 1.0).abs() < 1e-12, "windowed tail wrong: {tail}");
    }

    #[test]
    fn no_anomalies_without_drops() {
        let (net, sim) = run_some_traffic(PathPolicy::RoundRobin);
        let report = PlaneReport::collect(&net, &sim);
        if report.planes.iter().all(|p| p.dropped == 0) {
            assert!(report.anomalous_planes(2.0).is_empty());
        }
    }
}
