//! Adaptive plane selection (section 3.4 of the paper).
//!
//! "End-host routing solutions provide OS direct access to routing
//! information and can facilitate better flow placement decisions in P-Net"
//! — the paper points at DARD \[44\] and Fastpass \[33\] as the kind of
//! end-host mechanism that P-Nets can run *per dataplane*.
//!
//! [`AdaptiveBalancer`] is a small DARD-flavored controller: each completed
//! flow reports its *slowdown* (achieved FCT over the ideal FCT for its
//! size) against the plane it used; the balancer keeps an EWMA per plane and
//! steers new flows toward the least-congested plane, with occasional
//! exploration so a plane that recovered gets rediscovered.

use pnet_topology::PlaneId;

/// Congestion scoreboard over the planes of a P-Net.
#[derive(Debug, Clone)]
pub struct AdaptiveBalancer {
    /// EWMA slowdown per plane (1.0 = ideal, higher = congested).
    scores: Vec<f64>,
    /// EWMA gain for new reports.
    gain: f64,
    /// Every `explore_every`-th decision probes a random-ish plane instead
    /// of the best one (0 disables exploration).
    explore_every: u64,
    decisions: u64,
}

impl AdaptiveBalancer {
    /// New balancer over `n_planes` planes. `gain` in (0, 1]; typical 0.2.
    pub fn new(n_planes: usize, gain: f64, explore_every: u64) -> Self {
        assert!(n_planes >= 1);
        assert!(gain > 0.0 && gain <= 1.0);
        AdaptiveBalancer {
            scores: vec![1.0; n_planes],
            gain,
            explore_every,
            decisions: 0,
        }
    }

    /// Report a completed flow: it ran on `plane` and achieved `slowdown`
    /// (measured FCT / ideal FCT; clamp anything below 1 to 1).
    pub fn report(&mut self, plane: PlaneId, slowdown: f64) {
        let s = slowdown.max(1.0);
        let e = &mut self.scores[plane.index()];
        *e = (1.0 - self.gain) * *e + self.gain * s;
    }

    /// Current score of a plane.
    pub fn score(&self, plane: PlaneId) -> f64 {
        self.scores[plane.index()]
    }

    /// Pick a plane among `usable` (must be non-empty): normally the lowest
    /// score (ties to the lowest id); every `explore_every`-th call probes
    /// round-robin across usable planes instead.
    pub fn choose(&mut self, usable: &[PlaneId]) -> PlaneId {
        assert!(!usable.is_empty(), "no usable planes");
        self.decisions += 1;
        if self.explore_every > 0 && self.decisions.is_multiple_of(self.explore_every) {
            let idx = (self.decisions / self.explore_every) as usize % usable.len();
            return usable[idx];
        }
        *usable
            .iter()
            .min_by(|a, b| {
                self.score(**a)
                    .total_cmp(&self.score(**b))
                    .then(a.0.cmp(&b.0))
            })
            .expect("invariant: usable is checked non-empty above")
    }

    /// Decay all scores toward 1.0 (call periodically so stale congestion
    /// verdicts expire even without exploration traffic).
    pub fn decay(&mut self, factor: f64) {
        assert!((0.0..=1.0).contains(&factor));
        for s in &mut self.scores {
            *s = 1.0 + (*s - 1.0) * factor;
        }
    }
}

/// Ideal FCT (microseconds) of `bytes` at `bottleneck_bps` — the slowdown
/// denominator used with [`AdaptiveBalancer::report`].
pub fn ideal_fct_us(bytes: u64, bottleneck_bps: u64) -> f64 {
    pnet_htsim::transfer_us_f64(bytes, bottleneck_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planes(n: u16) -> Vec<PlaneId> {
        (0..n).map(PlaneId).collect()
    }

    #[test]
    fn avoids_the_congested_plane() {
        let mut b = AdaptiveBalancer::new(4, 0.3, 0);
        for _ in 0..10 {
            b.report(PlaneId(0), 8.0);
        }
        let all = planes(4);
        assert_ne!(b.choose(&all), PlaneId(0));
        // Among the untouched planes, lowest id wins ties.
        assert_eq!(b.choose(&all), PlaneId(1));
    }

    #[test]
    fn recovers_via_decay() {
        let mut b = AdaptiveBalancer::new(2, 0.5, 0);
        for _ in 0..10 {
            b.report(PlaneId(0), 10.0);
        }
        assert_eq!(b.choose(&planes(2)), PlaneId(1));
        for _ in 0..50 {
            b.decay(0.8);
        }
        // Scores converged back toward 1.0: plane 0 usable again (ties to
        // lowest id when equal within float noise is not guaranteed, so
        // check the score itself).
        assert!(b.score(PlaneId(0)) < 1.1);
    }

    #[test]
    fn exploration_touches_other_planes() {
        let mut b = AdaptiveBalancer::new(3, 0.3, 4);
        b.report(PlaneId(1), 5.0);
        b.report(PlaneId(2), 5.0);
        let all = planes(3);
        let picks: Vec<PlaneId> = (0..12).map(|_| b.choose(&all)).collect();
        // Best plane is 0, but exploration must pick someone else at least
        // once.
        assert!(picks.iter().any(|&p| p != PlaneId(0)), "never explored");
        assert!(picks.iter().filter(|&&p| p == PlaneId(0)).count() >= 8);
    }

    #[test]
    fn respects_usable_subset() {
        let mut b = AdaptiveBalancer::new(4, 0.2, 0);
        b.report(PlaneId(2), 3.0);
        // Only planes 2 and 3 usable: score of 3 vs 1 => 3 wins.
        assert_eq!(b.choose(&[PlaneId(2), PlaneId(3)]), PlaneId(3));
    }

    #[test]
    fn ideal_fct_math() {
        // 1.25 MB at 100G = 100 us.
        assert!((ideal_fct_us(1_250_000, 100_000_000_000) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn slowdowns_below_one_clamped() {
        let mut b = AdaptiveBalancer::new(1, 0.5, 0);
        b.report(PlaneId(0), 0.2);
        assert!(b.score(PlaneId(0)) >= 1.0);
    }
}
