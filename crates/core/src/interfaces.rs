//! Pseudo interfaces and traffic classes (section 3.4 of the paper).
//!
//! "End hosts are aware of the topologies of all dataplanes in P-Net, and
//! thus can provide pseudo/proxy interfaces like 'low-latency'
//! single-shortest-path and 'high-throughput' multipath interfaces.
//! Applications/flows can use special tags like traffic classes to choose
//! how to take advantage of the multiple dataplanes."

use crate::policy::PathPolicy;

/// Application-visible traffic classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Small, latency-critical traffic (RPCs, queries): single shortest
    /// path on the lowest-hop plane.
    LowLatency,
    /// Bulk transfers: MPTCP over many paths across all planes.
    HighThroughput,
    /// Unclassified traffic: the size-threshold default of section 5.1.2.
    Default,
}

impl TrafficClass {
    /// The policy behind each pseudo interface; `n_planes` scales the
    /// multipath level (the paper's "N dataplanes need N times as many
    /// subflows" rule, with 8 subflows per plane).
    pub fn policy(self, n_planes: usize) -> PathPolicy {
        let k = subflows_for(n_planes);
        match self {
            TrafficClass::LowLatency => PathPolicy::ShortestPlane,
            TrafficClass::HighThroughput => PathPolicy::MultipathKsp { k },
            TrafficClass::Default => PathPolicy::paper_default(k),
        }
    }
}

/// The paper's multipath sizing rule: a serial network saturates with 8-way
/// multipath, and "P-Nets with N dataplanes need N times as many subflows"
/// (section 5.1.1, Figures 6c and 8c).
pub fn subflows_for(n_planes: usize) -> usize {
    8 * n_planes.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subflow_rule_matches_paper() {
        // "8-way multipath can fully utilize serial networks, but
        // 2-dataplane P-Nets need 16-way multipath and 4-dataplane P-Nets
        // need 32-way multipath."
        assert_eq!(subflows_for(1), 8);
        assert_eq!(subflows_for(2), 16);
        assert_eq!(subflows_for(4), 32);
    }

    #[test]
    fn classes_map_to_expected_policies() {
        assert!(matches!(
            TrafficClass::LowLatency.policy(4),
            PathPolicy::ShortestPlane
        ));
        assert!(matches!(
            TrafficClass::HighThroughput.policy(4),
            PathPolicy::MultipathKsp { k: 32 }
        ));
        assert!(matches!(
            TrafficClass::Default.policy(2),
            PathPolicy::SizeThreshold { .. }
        ));
    }
}
