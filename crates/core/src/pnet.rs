//! The top-level P-Net object: a declarative spec, the assembled network,
//! and factories for routers, selectors, and simulator flow factories.

use crate::policy::{PathPolicy, PathSelector};
use pnet_routing::{RouteAlgo, Router};
use pnet_topology::{parallel, FatTree, Jellyfish, LinkProfile, Network, NetworkClass, Xpander};

/// Which topology family the planes use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Three-tier k-ary fat tree planes.
    FatTree { k: usize },
    /// Jellyfish (random regular graph) planes.
    Jellyfish {
        n_tors: usize,
        degree: usize,
        hosts_per_tor: usize,
    },
    /// Xpander (2-lift expander) planes.
    Xpander {
        degree: usize,
        lifts: u32,
        hosts_per_tor: usize,
    },
}

/// Declarative description of one of the paper's four network classes over
/// a chosen topology family.
#[derive(Debug, Clone, Copy)]
pub struct PNetSpec {
    pub topology: TopologyKind,
    pub class: NetworkClass,
    /// Number of dataplanes N (for the serial classes this sets the
    /// high-bandwidth multiplier). The paper bounds this at 8 (section 3.4).
    pub n_planes: usize,
    /// Base per-plane link profile (100G paper default).
    pub profile: LinkProfile,
    /// Seed for randomized topologies; heterogeneous planes use seed,
    /// seed+1, ...
    pub seed: u64,
}

impl PNetSpec {
    /// New spec with the paper's defaults (100G links).
    pub fn new(topology: TopologyKind, class: NetworkClass, n_planes: usize, seed: u64) -> Self {
        assert!(
            (1..=8).contains(&n_planes),
            "the paper limits parallelism to <= 8 dataplanes"
        );
        PNetSpec {
            topology,
            class,
            n_planes,
            profile: LinkProfile::paper_default(),
            seed,
        }
    }

    /// Build the network.
    pub fn build(&self) -> PNet {
        let net = match self.topology {
            TopologyKind::FatTree { k } => {
                parallel::fattree_network(self.class, k, self.n_planes, &self.profile)
            }
            TopologyKind::Jellyfish {
                n_tors,
                degree,
                hosts_per_tor,
            } => parallel::jellyfish_network(
                self.class,
                Jellyfish::new(n_tors, degree, hosts_per_tor, self.seed),
                self.n_planes,
                self.seed,
                &self.profile,
            ),
            TopologyKind::Xpander {
                degree,
                lifts,
                hosts_per_tor,
            } => parallel::xpander_network(
                self.class,
                Xpander::new(degree, lifts, hosts_per_tor, self.seed),
                self.n_planes,
                self.seed,
                &self.profile,
            ),
        };
        PNet { spec: *self, net }
    }

    /// Hosts this spec will produce.
    pub fn n_hosts(&self) -> usize {
        match self.topology {
            TopologyKind::FatTree { k } => FatTree::three_tier(k).n_hosts(),
            TopologyKind::Jellyfish {
                n_tors,
                hosts_per_tor,
                ..
            } => n_tors * hosts_per_tor,
            TopologyKind::Xpander {
                degree,
                lifts,
                hosts_per_tor,
            } => ((degree + 1) << lifts) * hosts_per_tor,
        }
    }
}

/// The KSP route-table width `policy` needs: wide enough for any built-in
/// policy (floor 32), recursing into the wrapper variants so a nested
/// `MultipathKsp { k > 32 }` is never truncated.
fn ksp_width(policy: &PathPolicy) -> usize {
    match policy {
        PathPolicy::EcmpHash
        | PathPolicy::RoundRobin
        | PathPolicy::ShortestPlane
        | PathPolicy::PlaneKsp { .. }
        | PathPolicy::DisjointPerPlane { .. } => 32,
        PathPolicy::MultipathKsp { k } => (*k).max(32),
        PathPolicy::SizeThreshold { small, large, .. } => ksp_width(small).max(ksp_width(large)),
        PathPolicy::Pinned { inner, .. } => ksp_width(inner),
    }
}

/// An assembled P-Net.
pub struct PNet {
    pub spec: PNetSpec,
    pub net: Network,
}

impl PNet {
    /// A router over the current link state (lazy route table).
    pub fn router(&self, algo: RouteAlgo) -> Router {
        Router::new(&self.net, algo)
    }

    /// A router with the full all-pairs route table precomputed in parallel
    /// — the bulk path for experiment sweeps, where every rack pair will be
    /// queried anyway. The returned router only ever reads its frozen
    /// tables, so it can be shared across threads behind an `Arc`.
    pub fn precomputed_router(&self, algo: RouteAlgo) -> Router {
        let router = Router::new(&self.net, algo);
        router.precompute_all_pairs();
        router
    }

    /// A path selector for `policy`, backed by a KSP router wide enough for
    /// any of the built-in policies (`k = max(32, policy k)`).
    pub fn selector(&self, policy: PathPolicy) -> PathSelector {
        let k = ksp_width(&policy);
        PathSelector::new(self.router(RouteAlgo::Ksp { k }), policy)
    }

    /// Shorthand: the four comparison networks of the evaluation over one
    /// topology family, in the paper's order (heterogeneous omitted for fat
    /// trees, which have no heterogeneous variant).
    pub fn evaluation_set(
        topology: TopologyKind,
        n_planes: usize,
        seed: u64,
    ) -> Vec<(NetworkClass, PNet)> {
        let classes: Vec<NetworkClass> = match topology {
            TopologyKind::FatTree { .. } => vec![
                NetworkClass::SerialLow,
                NetworkClass::ParallelHomogeneous,
                NetworkClass::SerialHigh,
            ],
            TopologyKind::Jellyfish { .. } | TopologyKind::Xpander { .. } => {
                NetworkClass::all().to_vec()
            }
        };
        classes
            .into_iter()
            .map(|class| {
                (
                    class,
                    PNetSpec::new(topology, class, n_planes, seed).build(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_spec_builds() {
        let spec = PNetSpec::new(
            TopologyKind::FatTree { k: 4 },
            NetworkClass::ParallelHomogeneous,
            4,
            0,
        );
        let pnet = spec.build();
        assert_eq!(pnet.net.n_planes(), 4);
        assert_eq!(pnet.net.n_hosts(), 16);
        assert_eq!(spec.n_hosts(), 16);
    }

    #[test]
    fn jellyfish_heterogeneous_spec_builds() {
        let spec = PNetSpec::new(
            TopologyKind::Jellyfish {
                n_tors: 12,
                degree: 3,
                hosts_per_tor: 2,
            },
            NetworkClass::ParallelHeterogeneous,
            2,
            5,
        );
        let pnet = spec.build();
        pnet.net.validate().unwrap();
        assert_eq!(pnet.net.n_hosts(), 24);
        assert_eq!(spec.n_hosts(), 24);
    }

    #[test]
    fn xpander_spec_builds() {
        let spec = PNetSpec::new(
            TopologyKind::Xpander {
                degree: 3,
                lifts: 2,
                hosts_per_tor: 1,
            },
            NetworkClass::SerialHigh,
            4,
            1,
        );
        let pnet = spec.build();
        assert_eq!(pnet.net.n_planes(), 1);
        assert_eq!(spec.n_hosts(), 16);
        // High-bandwidth: links at 4 x 100G.
        let (_, link) = pnet.net.links().next().unwrap();
        assert_eq!(link.capacity_bps, 400_000_000_000);
    }

    #[test]
    fn evaluation_set_shapes() {
        let ft = PNet::evaluation_set(TopologyKind::FatTree { k: 4 }, 2, 0);
        assert_eq!(ft.len(), 3);
        let jf = PNet::evaluation_set(
            TopologyKind::Jellyfish {
                n_tors: 10,
                degree: 3,
                hosts_per_tor: 1,
            },
            2,
            0,
        );
        assert_eq!(jf.len(), 4);
        // Equal host counts across classes.
        let hosts: Vec<usize> = jf.iter().map(|(_, p)| p.net.n_hosts()).collect();
        assert!(hosts.iter().all(|&h| h == hosts[0]));
    }

    #[test]
    #[should_panic(expected = "<= 8")]
    fn parallelism_bound_enforced() {
        PNetSpec::new(
            TopologyKind::FatTree { k: 4 },
            NetworkClass::ParallelHomogeneous,
            9,
            0,
        );
    }
}
