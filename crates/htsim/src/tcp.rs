//! TCP and MPTCP sender/receiver state.
//!
//! The transport model is packet-granular, as in htsim: sequence numbers
//! count MTU-sized packets, ACKs are cumulative per subflow, and congestion
//! windows are real-valued packet counts. Three congestion controllers are
//! provided:
//!
//! * [`CcAlgo::Reno`] — NewReno-style slow start / AIMD / fast retransmit
//!   with window inflation (the paper's "TCP");
//! * [`CcAlgo::Lia`] — the MPTCP Linked-Increases Algorithm of RFC 6356 /
//!   Wischik et al. \[43\], coupling the additive increase across subflows
//!   (the paper's "MPTCP");
//! * [`CcAlgo::Uncoupled`] — each subflow runs an independent Reno increase
//!   (an ablation: uncoupled MPTCP is unfair but a useful comparison).
//!
//! A connection with one subflow under `Reno` is plain TCP; a connection
//! with K subflows under `Lia` is MPTCP over K paths. The retransmission
//! timer uses the paper's datacenter tuning (10 ms minimum RTO, following
//! DCTCP \[6\]).

use crate::packet::ConnId;
use crate::time::SimTime;
use pnet_topology::{HostId, LinkId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Congestion-control algorithm of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAlgo {
    /// NewReno single-path behaviour on every subflow (standard TCP when the
    /// connection has one subflow).
    Reno,
    /// RFC 6356 Linked Increases (MPTCP's coupled congestion control).
    Lia,
    /// Independent Reno per subflow (ablation).
    Uncoupled,
    /// DCTCP (Alizadeh et al., SIGCOMM 2010 \[6\]): ECN-based congestion
    /// control with a fraction-proportional window cut. The incast-aware
    /// transport the paper points to for P-Net incast scenarios (section
    /// 6.5). Requires queues with an ECN marking threshold
    /// ([`crate::SimConfig::ecn_threshold_packets`]); on unmarked queues it
    /// behaves like Reno.
    Dctcp,
}

/// Transport tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Initial congestion window, packets.
    pub initial_cwnd: f64,
    /// Minimum retransmission timeout (the paper tunes this to 10 ms).
    pub min_rto: SimTime,
    /// Maximum retransmission timeout (with backoff).
    pub max_rto: SimTime,
    /// Fallback RTT estimate before the first sample, used by LIA's alpha.
    pub default_rtt: SimTime,
    /// A multipath subflow that reaches this many consecutive timeout
    /// backoffs is declared dead; its unacknowledged data is re-injected
    /// onto the surviving subflows (MPTCP's path-failure handling, the
    /// mechanism behind the paper's "graceful performance degradation" on
    /// plane failures). Single-subflow connections never die this way.
    pub dead_after_backoff: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            initial_cwnd: 10.0,
            min_rto: SimTime::from_ms(10),
            max_rto: SimTime::from_secs(1),
            default_rtt: SimTime::from_us(20),
            dead_after_backoff: 3,
        }
    }
}

/// One subflow: a fixed path with its own sequence space, window, and timer.
///
/// `repr(C)` pins the declaration order in memory: at paper scale the
/// subflow table far exceeds L2, so every ACK faults this struct in cold.
/// The cumulative-ACK path (advance `snd_una`, window check, congestion
/// update, progress stamp) reads exactly the first 64 bytes — one cache
/// line instead of the four-to-five a field-order-agnostic layout touches.
#[derive(Debug)]
#[repr(C)]
pub struct Subflow {
    // --- sender state (hot ACK path: keep within the first cache line) ---
    /// First unacknowledged sequence.
    pub snd_una: u64,
    /// Everything in `snd_una..resend_high` is believed in flight. Normally
    /// equals `highest_sent`; an RTO rewinds it to `snd_una` so the pump
    /// go-back-N resends the presumed-lost window under slow start instead
    /// of stalling behind a closed window.
    pub resend_high: u64,
    /// Next subflow sequence to assign (== packets this subflow has ever
    /// sent fresh).
    pub highest_sent: u64,
    pub cwnd: f64,
    pub ssthresh: f64,
    /// Flow-control bound on the window: the path's bandwidth-delay product
    /// plus one buffer's worth of packets (a receiver window tuned to
    /// pipe + queue, which is how htsim experiments avoid pathological
    /// slow-start overshoot with cumulative-ACK NewReno).
    pub cwnd_cap: f64,
    /// Time of the last forward progress (fresh data out or new data acked);
    /// the lazy RTO measures its deadline from here. Kept on the subflow so
    /// the ACK path touches one cache line, not a separate side table.
    pub last_progress: SimTime,
    /// Recovery ends when `snd_una` passes this point.
    pub recover: u64,

    // --- second line: loss handling and the timer ---
    pub dupacks: u32,
    pub backoff: u32,
    pub in_recovery: bool,
    /// True once the subflow is declared dead (persistent path failure);
    /// it sends nothing further and its outstanding data was re-injected
    /// onto sibling subflows.
    pub dead: bool,
    pub rtt_valid: bool,
    pub timer_armed: bool,
    /// Token identifying the currently armed timer; stale timer events are
    /// dropped.
    pub timer_token: u64,
    pub rto: SimTime,
    pub srtt_ps: f64,
    pub rttvar_ps: f64,
    /// Sequences queued for retransmission.
    pub rtx_queue: VecDeque<u64>,

    // --- DCTCP state (used only under [`CcAlgo::Dctcp`]) ---
    /// EWMA of the marked fraction (initialised to 1.0 per the paper, so an
    /// early mark is treated conservatively).
    pub dctcp_alpha: f64,
    /// Packets acked in the current observation window.
    pub dctcp_acked: u64,
    /// Of those, packets whose ACK carried ECN-Echo.
    pub dctcp_marked: u64,
    /// The observation window ends when `snd_una` passes this sequence.
    /// Seeded by the simulator at first transmission to cover the whole
    /// initial flight (left at 0 the very first ACK would close a
    /// degenerate one-sample window).
    pub dctcp_window_end: u64,
    /// At most one multiplicative cut per window.
    pub dctcp_cut_this_window: bool,
    /// Lifetime count of duplicate ACKs that carried ECN-Echo (never reset;
    /// regression guard that dupack marks enter the accounting).
    pub dctcp_dupack_marks: u64,

    // --- receiver state (the peer's side of this subflow) ---
    pub rcv_next: u64,
    /// Out-of-order sequences received past `rcv_next`, as a min-heap. May
    /// hold duplicates (spurious retransmissions of buffered segments); the
    /// drain loop in [`Subflow::receive_data`] discards them, so the
    /// cumulative ACK sequence is identical to a set's. Contiguous storage:
    /// no per-node allocation under loss, unlike a `BTreeSet`.
    pub ooo: BinaryHeap<Reverse<u64>>,

    // --- statistics ---
    pub retransmits: u64,
    pub timeouts: u64,
    pub packets_sent: u64,

    // --- routes (cold: cloned once per transmitted packet, never read on
    //     the ACK fast path) ---
    /// Forward route (data direction), interned once at flow start: every
    /// packet of the subflow clones this single-allocation `Arc<[LinkId]>`.
    pub route: Arc<[LinkId]>,
    /// Reverse route (ACK direction).
    pub rev_route: Arc<[LinkId]>,
}

impl Subflow {
    /// Fresh subflow over a route pair.
    pub fn new(route: Arc<[LinkId]>, rev_route: Arc<[LinkId]>, cfg: &TcpConfig) -> Self {
        Subflow {
            route,
            rev_route,
            cwnd: cfg.initial_cwnd,
            ssthresh: f64::INFINITY,
            cwnd_cap: f64::INFINITY,
            highest_sent: 0,
            snd_una: 0,
            resend_high: 0,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            rtx_queue: VecDeque::new(),
            dead: false,
            srtt_ps: 0.0,
            rttvar_ps: 0.0,
            rtt_valid: false,
            rto: cfg.min_rto,
            backoff: 0,
            timer_token: 0,
            timer_armed: false,
            last_progress: SimTime::ZERO,
            dctcp_alpha: 1.0,
            dctcp_acked: 0,
            dctcp_marked: 0,
            dctcp_window_end: 0,
            dctcp_cut_this_window: false,
            dctcp_dupack_marks: 0,
            rcv_next: 0,
            ooo: BinaryHeap::new(),
            retransmits: 0,
            timeouts: 0,
            packets_sent: 0,
        }
    }

    /// Packets believed in flight (the pipe estimate; rewound by RTOs).
    #[inline]
    pub fn in_flight(&self) -> u64 {
        self.resend_high - self.snd_una
    }

    /// Packets outstanding by sequence horizon (ignores RTO rewinds); used
    /// to decide whether the subflow still owes the receiver anything.
    #[inline]
    pub fn outstanding(&self) -> u64 {
        self.highest_sent - self.snd_una
    }

    /// Can this subflow transmit one more packet under its window?
    #[inline]
    pub fn window_open(&self) -> bool {
        !self.dead && (self.in_flight() as f64) < self.cwnd.min(self.cwnd_cap).max(1.0).floor()
    }

    /// RFC 6298 RTT update; returns the new RTO.
    pub fn rtt_sample(&mut self, sample_ps: u64, cfg: &TcpConfig) {
        let s = sample_ps as f64;
        if !self.rtt_valid {
            self.srtt_ps = s;
            self.rttvar_ps = s / 2.0;
            self.rtt_valid = true;
        } else {
            self.rttvar_ps = 0.75 * self.rttvar_ps + 0.25 * (self.srtt_ps - s).abs();
            self.srtt_ps = 0.875 * self.srtt_ps + 0.125 * s;
        }
        let rto_ps = (self.srtt_ps + 4.0 * self.rttvar_ps) as u64;
        self.rto = SimTime::from_ps(rto_ps).max(cfg.min_rto).min(cfg.max_rto);
    }

    /// Effective timeout with exponential backoff.
    pub fn effective_rto(&self, cfg: &TcpConfig) -> SimTime {
        let shifted = self.rto.as_ps().saturating_shl(self.backoff.min(10));
        SimTime::from_ps(shifted).min(cfg.max_rto)
    }

    /// RTT estimate used for LIA (falls back to the configured default).
    pub fn rtt_estimate_ps(&self, cfg: &TcpConfig) -> f64 {
        if self.rtt_valid {
            self.srtt_ps.max(1.0)
        } else {
            cfg.default_rtt.as_ps() as f64
        }
    }

    /// DCTCP processing of an acknowledgment that advanced `snd_una` by
    /// `newly` packets to `cum`, with ECN-Echo `ece` (DCTCP's g = 1/16).
    /// Returns true if the window must be cut multiplicatively
    /// (`cwnd *= 1 - alpha/2`), which the caller applies.
    pub fn dctcp_on_ack(&mut self, newly: u64, ece: bool, cum: u64) -> bool {
        const G: f64 = 1.0 / 16.0;
        self.dctcp_acked += newly;
        if ece {
            self.dctcp_marked += newly;
        }
        let cut = ece && !self.dctcp_cut_this_window;
        if cut {
            self.dctcp_cut_this_window = true;
        }
        if cum >= self.dctcp_window_end {
            if self.dctcp_acked > 0 {
                let f = self.dctcp_marked as f64 / self.dctcp_acked as f64;
                self.dctcp_alpha = (1.0 - G) * self.dctcp_alpha + G * f;
            }
            self.dctcp_acked = 0;
            self.dctcp_marked = 0;
            self.dctcp_window_end = self.highest_sent;
            self.dctcp_cut_this_window = false;
        }
        cut
    }

    /// DCTCP processing of a duplicate ACK. A dupack still acknowledges the
    /// arrival of one data packet, and its ECN-Echo carries that packet's CE
    /// mark — both must enter the observation-window accounting or the
    /// marked fraction is understated exactly when the network is congested
    /// enough to reorder or drop. No cut and no window close here: those
    /// stay on the cumulative-ACK path.
    pub fn dctcp_on_dupack(&mut self, ece: bool) {
        self.dctcp_acked += 1;
        if ece {
            self.dctcp_marked += 1;
            self.dctcp_dupack_marks += 1;
        }
    }

    /// Receiver-side processing of an arriving data sequence. Returns the
    /// cumulative ACK value to send.
    pub fn receive_data(&mut self, seq: u64) -> u64 {
        if seq == self.rcv_next {
            self.rcv_next += 1;
            while let Some(&Reverse(m)) = self.ooo.peek() {
                if m > self.rcv_next {
                    break;
                }
                // m == rcv_next extends the in-order prefix; m < rcv_next is
                // a duplicate of an already-consumed buffered segment.
                if m == self.rcv_next {
                    self.rcv_next += 1;
                }
                self.ooo.pop();
            }
        } else if seq > self.rcv_next {
            self.ooo.push(Reverse(seq));
        }
        // seq < rcv_next: spurious retransmission, still ACK cumulatively.
        self.rcv_next
    }
}

trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> Self;
}
impl SaturatingShl for u64 {
    fn saturating_shl(self, n: u32) -> u64 {
        if n >= 64 || self > (u64::MAX >> n) {
            u64::MAX
        } else {
            self << n
        }
    }
}

/// Why the connection finished pumping (used by tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Still transferring.
    Active,
    /// All packets assigned and acknowledged.
    Finished,
}

/// A (possibly multipath) connection transferring a fixed number of packets.
#[derive(Debug)]
pub struct Connection {
    pub id: ConnId,
    pub src: HostId,
    pub dst: HostId,
    pub cc: CcAlgo,
    /// Total packets to transfer.
    pub size_packets: u64,
    /// Requested transfer size in bytes (the wire moves `size_packets` whole
    /// MTUs; completion records report this exact figure).
    pub size_bytes: u64,
    /// Packets assigned to subflows so far.
    pub assigned: u64,
    /// Packets cumulatively acknowledged across subflows.
    pub acked: u64,
    pub start: SimTime,
    pub finish: Option<SimTime>,
    pub subflows: Vec<Subflow>,
    /// Round-robin pointer for packet assignment.
    pub rr: usize,
    /// Application owner tag (delivered on completion).
    pub owner_tag: u64,
}

impl Connection {
    /// Total retransmissions across subflows.
    pub fn retransmits(&self) -> u64 {
        self.subflows.iter().map(|s| s.retransmits).sum()
    }

    /// Total timeouts across subflows.
    pub fn timeouts(&self) -> u64 {
        self.subflows.iter().map(|s| s.timeouts).sum()
    }

    /// Current state.
    pub fn state(&self) -> ConnState {
        if self.finish.is_some() {
            ConnState::Finished
        } else {
            ConnState::Active
        }
    }

    /// The LIA alpha parameter (RFC 6356): α = cwnd_total ·
    /// max_i(cwndᵢ/rttᵢ²) / (Σᵢ cwndᵢ/rttᵢ)².
    pub fn lia_alpha(&self, cfg: &TcpConfig) -> f64 {
        let live = || self.subflows.iter().filter(|s| !s.dead);
        let total: f64 = live().map(|s| s.cwnd).sum();
        let mut max_term: f64 = 0.0;
        let mut sum_term: f64 = 0.0;
        for s in live() {
            let rtt = s.rtt_estimate_ps(cfg);
            max_term = max_term.max(s.cwnd / (rtt * rtt));
            sum_term += s.cwnd / rtt;
        }
        if sum_term <= 0.0 {
            return 1.0;
        }
        (total * max_term / (sum_term * sum_term)).max(f64::MIN_POSITIVE)
    }

    /// Congestion-avoidance increase for one acked packet on subflow `i`.
    pub fn ca_increase(&self, i: usize, cfg: &TcpConfig) -> f64 {
        let sub = &self.subflows[i];
        match self.cc {
            CcAlgo::Reno | CcAlgo::Uncoupled | CcAlgo::Dctcp => 1.0 / sub.cwnd.max(1.0),
            CcAlgo::Lia => {
                let total: f64 = self
                    .subflows
                    .iter()
                    .filter(|s| !s.dead)
                    .map(|s| s.cwnd)
                    .sum();
                let alpha = self.lia_alpha(cfg);
                (alpha / total.max(1.0)).min(1.0 / sub.cwnd.max(1.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(cfg: &TcpConfig) -> Subflow {
        Subflow::new(Arc::from(vec![LinkId(0)]), Arc::from(vec![LinkId(1)]), cfg)
    }

    fn conn_with(cc: CcAlgo, n_subs: usize, cfg: &TcpConfig) -> Connection {
        Connection {
            id: ConnId(0),
            src: HostId(0),
            dst: HostId(1),
            cc,
            size_packets: 100,
            size_bytes: 100 * 1500,
            assigned: 0,
            acked: 0,
            start: SimTime::ZERO,
            finish: None,
            subflows: (0..n_subs).map(|_| sub(cfg)).collect(),
            rr: 0,
            owner_tag: 0,
        }
    }

    #[test]
    fn window_accounting() {
        let cfg = TcpConfig::default();
        let mut s = sub(&cfg);
        assert!(s.window_open());
        s.highest_sent = 10; // == initial cwnd
        s.resend_high = 10;
        assert_eq!(s.in_flight(), 10);
        assert_eq!(s.outstanding(), 10);
        assert!(!s.window_open());
        s.snd_una = 1;
        s.resend_high = s.resend_high.max(s.snd_una);
        assert!(s.window_open());
        // An RTO rewind empties the pipe but not the outstanding horizon.
        s.resend_high = s.snd_una;
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.outstanding(), 9);
    }

    #[test]
    fn rtt_first_sample_initializes() {
        let cfg = TcpConfig::default();
        let mut s = sub(&cfg);
        s.rtt_sample(2_000_000, &cfg); // 2 us
        assert!(s.rtt_valid);
        assert_eq!(s.srtt_ps, 2_000_000.0);
        // RTO floored at min_rto.
        assert_eq!(s.rto, cfg.min_rto);
    }

    #[test]
    fn rto_tracks_large_rtt() {
        let cfg = TcpConfig::default();
        let mut s = sub(&cfg);
        s.rtt_sample(SimTime::from_ms(20).as_ps(), &cfg);
        // srtt=20ms, rttvar=10ms -> rto = 60ms.
        assert_eq!(s.rto, SimTime::from_ms(60));
    }

    #[test]
    fn backoff_doubles_effective_rto() {
        let cfg = TcpConfig::default();
        let mut s = sub(&cfg);
        assert_eq!(s.effective_rto(&cfg), cfg.min_rto);
        s.backoff = 2;
        assert_eq!(s.effective_rto(&cfg), SimTime::from_ms(40));
        s.backoff = 30; // capped
        assert_eq!(s.effective_rto(&cfg), cfg.max_rto);
    }

    #[test]
    fn receiver_in_order_and_ooo() {
        let cfg = TcpConfig::default();
        let mut s = sub(&cfg);
        assert_eq!(s.receive_data(0), 1);
        assert_eq!(s.receive_data(2), 1); // gap
        assert_eq!(s.receive_data(3), 1);
        assert_eq!(s.receive_data(1), 4); // fills the hole, drains ooo
        assert!(s.ooo.is_empty());
        assert_eq!(s.receive_data(1), 4); // duplicate still acks 4
    }

    #[test]
    fn lia_single_subflow_equals_reno() {
        let cfg = TcpConfig::default();
        let mut c = conn_with(CcAlgo::Lia, 1, &cfg);
        c.subflows[0].cwnd = 20.0;
        c.subflows[0].srtt_ps = 1e6;
        c.subflows[0].rtt_valid = true;
        let lia = c.ca_increase(0, &cfg);
        assert!((lia - 1.0 / 20.0).abs() < 1e-12, "LIA {lia} != Reno 0.05");
    }

    #[test]
    fn lia_couples_subflows() {
        // Two equal-RTT subflows with equal windows: total = 2w, alpha = 1/2·...
        // α = 2w·(w/r²)/(2w/r)² = 2w²/r² / (4w²/r²) = 0.5; increase =
        // min(0.5/2w, 1/w) = 1/(4w): half of what two independent Renos do
        // per subflow relative to 1/(2w)... i.e. strictly less aggressive.
        let cfg = TcpConfig::default();
        let mut c = conn_with(CcAlgo::Lia, 2, &cfg);
        for s in &mut c.subflows {
            s.cwnd = 10.0;
            s.srtt_ps = 1e6;
            s.rtt_valid = true;
        }
        let lia = c.ca_increase(0, &cfg);
        assert!((lia - 1.0 / 40.0).abs() < 1e-12, "LIA increase {lia}");
        let mut unc = conn_with(CcAlgo::Uncoupled, 2, &cfg);
        for s in &mut unc.subflows {
            s.cwnd = 10.0;
        }
        assert!(lia < unc.ca_increase(0, &cfg));
    }

    #[test]
    fn lia_shifts_toward_better_path() {
        // A subflow on a faster (lower-RTT) path gets a larger increase
        // *relative to its window* than a slow one when windows are equal —
        // actually LIA gives the same alpha/total to both but caps at
        // 1/cwnd; verify the cap binds on the small-window subflow.
        let cfg = TcpConfig::default();
        let mut c = conn_with(CcAlgo::Lia, 2, &cfg);
        c.subflows[0].cwnd = 1.0;
        c.subflows[1].cwnd = 100.0;
        for s in &mut c.subflows {
            s.srtt_ps = 1e6;
            s.rtt_valid = true;
        }
        let inc0 = c.ca_increase(0, &cfg);
        let inc1 = c.ca_increase(1, &cfg);
        assert!(inc0 <= 1.0);
        assert!(inc1 < inc0 * 1.5 + 1.0); // sanity: both finite & bounded
        let alpha = c.lia_alpha(&cfg);
        assert!(alpha > 0.0 && alpha.is_finite());
    }

    #[test]
    fn dctcp_alpha_converges_to_mark_fraction() {
        let cfg = TcpConfig::default();
        let mut s = sub(&cfg);
        // Simulate many windows with 50% marking (by sequence parity, so
        // the fraction is 0.5 regardless of where window boundaries land):
        // alpha -> 0.5.
        let mut cum = 0u64;
        for _ in 0..2000 {
            // Sliding window: the sender keeps 10 packets in flight, so
            // every observation window covers ~10 ACKs.
            s.highest_sent = cum + 10;
            cum += 1;
            s.snd_una = cum;
            s.dctcp_on_ack(1, cum.is_multiple_of(2), cum);
        }
        assert!(
            (s.dctcp_alpha - 0.5).abs() < 0.1,
            "alpha {} should approach 0.5",
            s.dctcp_alpha
        );
    }

    #[test]
    fn dctcp_cuts_once_per_window() {
        let cfg = TcpConfig::default();
        let mut s = sub(&cfg);
        s.highest_sent = 20;
        s.dctcp_window_end = 20;
        // First marked ack within the window: cut.
        assert!(s.dctcp_on_ack(1, true, 1));
        // Further marks within the same window: no cut.
        assert!(!s.dctcp_on_ack(1, true, 2));
        assert!(!s.dctcp_on_ack(1, true, 10));
        // Window boundary passed: the next mark cuts again.
        s.highest_sent = 40;
        assert!(!s.dctcp_on_ack(1, false, 20)); // boundary, unmarked
        assert!(s.dctcp_on_ack(1, true, 21));
    }

    #[test]
    fn dctcp_no_marks_means_alpha_decays() {
        let cfg = TcpConfig::default();
        let mut s = sub(&cfg);
        assert_eq!(s.dctcp_alpha, 1.0);
        let mut cum = 0;
        for _ in 0..100 {
            s.highest_sent = cum + 10;
            for _ in 0..10 {
                cum += 1;
                s.snd_una = cum;
                assert!(!s.dctcp_on_ack(1, false, cum));
            }
        }
        assert!(s.dctcp_alpha < 0.01, "alpha {} should decay", s.dctcp_alpha);
    }

    #[test]
    fn dctcp_dupack_marks_enter_accounting() {
        let cfg = TcpConfig::default();
        let mut s = sub(&cfg);
        s.highest_sent = 20;
        s.dctcp_window_end = 20;
        s.snd_una = 5;
        // Three marked dupacks and one clean one: 4 acked, 3 marked.
        s.dctcp_on_dupack(true);
        s.dctcp_on_dupack(true);
        s.dctcp_on_dupack(false);
        s.dctcp_on_dupack(true);
        assert_eq!(s.dctcp_acked, 4);
        assert_eq!(s.dctcp_marked, 3);
        assert_eq!(s.dctcp_dupack_marks, 3);
        // No cut and no window close happened: alpha untouched.
        assert_eq!(s.dctcp_alpha, 1.0);
        assert!(!s.dctcp_cut_this_window);
        // The fraction flows into alpha when the window closes on the
        // cumulative path: 5 acked total, 3 marked -> f = 0.6.
        s.snd_una = 20;
        s.dctcp_on_ack(1, false, 20);
        let expect = (1.0 - 1.0 / 16.0) * 1.0 + (1.0 / 16.0) * 0.6;
        assert!((s.dctcp_alpha - expect).abs() < 1e-12, "{}", s.dctcp_alpha);
    }

    #[test]
    fn connection_stats_aggregate() {
        let cfg = TcpConfig::default();
        let mut c = conn_with(CcAlgo::Reno, 2, &cfg);
        c.subflows[0].retransmits = 3;
        c.subflows[1].retransmits = 4;
        c.subflows[1].timeouts = 1;
        assert_eq!(c.retransmits(), 7);
        assert_eq!(c.timeouts(), 1);
        assert_eq!(c.state(), ConnState::Active);
    }
}
