//! # pnet-htsim
//!
//! A discrete-event, packet-granular network simulator in the style of
//! `htsim` (Handley et al., SIGCOMM'17 \[23\]) — the packet-level evaluation
//! substrate of the P-Net paper.
//!
//! Components:
//!
//! * [`Simulator`] — event engine: one drop-tail queue per directed link,
//!   source-routed packets, picosecond clock, deterministic event ordering;
//! * [`tcp`] — packet-level TCP (NewReno) and MPTCP (RFC 6356 LIA) with the
//!   paper's datacenter tuning (10 ms minimum RTO);
//! * [`apps`] — workload drivers: one-shot flow batches, closed-loop
//!   sources, RPC ping-pong, and staged shuffle jobs;
//! * [`metrics`] — FCT percentiles, CDFs, summaries.
//!
//! ## Example
//!
//! ```
//! use pnet_htsim::{run_to_completion, CcAlgo, FlowSpec, SimConfig, Simulator};
//! use pnet_routing::{host_route, RouteAlgo, Router};
//! use pnet_topology::{assemble_homogeneous, FatTree, HostId, LinkProfile, PlaneId};
//!
//! let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
//! let router = Router::new(&net, RouteAlgo::Ksp { k: 1 });
//! let path = router
//!     .paths_in_plane(PlaneId(0), net.rack_of_host(HostId(0)), net.rack_of_host(HostId(15)))
//!     .first()
//!     .cloned()
//!     .unwrap();
//! let route = host_route(&net, HostId(0), HostId(15), &path).unwrap();
//!
//! let mut sim = Simulator::new(&net, SimConfig::default());
//! sim.start_flow(FlowSpec {
//!     src: HostId(0),
//!     dst: HostId(15),
//!     size_bytes: 150_000,
//!     routes: vec![route],
//!     cc: CcAlgo::Reno,
//!     owner_tag: 0,
//! });
//! run_to_completion(&mut sim);
//! assert_eq!(sim.records.len(), 1);
//! ```

pub mod apps;
pub mod event;
pub mod metrics;
pub mod packet;
pub mod queue;
pub mod reference;
pub mod sim;
pub mod tcp;
pub mod telemetry;
pub mod time;

pub use packet::{ConnId, Packet, PacketArena, PacketId, PacketKind, ACK_BYTES, MTU_BYTES};
#[cfg(feature = "strict-invariants")]
pub use sim::ConservationLedger;
pub use sim::{
    run, run_to_completion, Driver, FlowRecord, FlowSpec, NullDriver, QueueStats, SimConfig,
    Simulator,
};
pub use tcp::{CcAlgo, TcpConfig};
pub use telemetry::{EventMask, Telemetry, TelemetryConfig, TraceRecord};
pub use time::{serialization_ps, transfer_us_f64, SimTime};
