//! The event queue: a deterministic min-heap of timestamped events.
//!
//! Ties are broken by a monotonically increasing sequence number, so two runs
//! with identical inputs dispatch events in identical order — a property the
//! test suite checks end-to-end.

use crate::packet::{ConnId, Packet};
use crate::time::SimTime;
use pnet_topology::LinkId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Things that can happen.
#[derive(Debug)]
pub enum EventKind {
    /// The head-of-line packet of `link`'s queue finished serializing.
    QueueDeparture { link: LinkId },
    /// `packet` finished propagating and arrives at the input of its next
    /// hop (or at the destination host if the route is exhausted).
    Arrival { packet: Packet },
    /// A retransmission timer fired. Stale tokens are ignored.
    RtoTimer {
        conn: ConnId,
        subflow: u8,
        token: u64,
    },
    /// An application-scheduled wakeup (flow start, think time, ...).
    AppTimer { app: u32, tag: u64 },
    /// A periodic telemetry sampler tick. Observes queue/plane/subflow state
    /// and mutates nothing, so enabling it never changes transport behaviour.
    TelemetrySample,
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    pub time: SimTime,
    seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    scheduled: u64,
    dispatched: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse(Event {
            time: at,
            seq,
            kind,
        }));
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        let e = self.heap.pop().map(|Reverse(e)| e);
        if e.is_some() {
            self.dispatched += 1;
        }
        // Drain invariant: every event is scheduled exactly once and
        // dispatched at most once, so pending + dispatched == scheduled.
        debug_assert_eq!(
            self.heap.len() as u64 + self.dispatched,
            self.scheduled,
            "event queue counters out of sync"
        );
        e
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events dispatched so far (for instrumentation).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Total events scheduled so far (for instrumentation; always equals
    /// `dispatched() + len()`).
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Packets currently propagating: pending [`EventKind::Arrival`] events.
    /// Only needed by the conservation ledger, and O(pending events), so it
    /// is compiled out with the feature.
    #[cfg(feature = "strict-invariants")]
    pub fn pending_arrivals(&self) -> u64 {
        self.heap
            .iter()
            .filter(|Reverse(e)| matches!(e.kind, EventKind::Arrival { .. }))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_partial_ord_is_consistent_with_ord_and_eq() {
        use std::cmp::Ordering;
        let ev = |t: u64, seq: u64| Event {
            time: SimTime::from_ps(t),
            seq,
            kind: EventKind::TelemetrySample,
        };
        // Same (time, seq) with different kinds still compares Equal — the
        // queue orders purely on (time, seq).
        let same = Event {
            time: SimTime::from_ps(10),
            seq: 1,
            kind: EventKind::AppTimer { app: 0, tag: 0 },
        };
        let cases = [ev(10, 1), ev(10, 2), ev(20, 0), same];
        for x in &cases {
            for y in &cases {
                assert_eq!(
                    x.partial_cmp(y),
                    Some(x.cmp(y)),
                    "PartialOrd must delegate to Ord"
                );
                assert_eq!(
                    x == y,
                    x.cmp(y) == Ordering::Equal,
                    "Eq must agree with Ord"
                );
            }
        }
        assert!(ev(10, 1) < ev(10, 2), "seq breaks time ties");
        assert!(ev(10, 2) < ev(20, 0), "time dominates");
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(3), EventKind::AppTimer { app: 3, tag: 0 });
        q.schedule(SimTime::from_us(1), EventKind::AppTimer { app: 1, tag: 0 });
        q.schedule(SimTime::from_us(2), EventKind::AppTimer { app: 2, tag: 0 });
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::AppTimer { app, .. } => app,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_us(5), EventKind::AppTimer { app: i, tag: 0 });
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::AppTimer { app, .. } => app,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(7), EventKind::AppTimer { app: 0, tag: 0 });
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        let e = q.pop().unwrap();
        assert_eq!(e.time, SimTime::from_ns(7));
        assert!(q.is_empty());
    }

    #[test]
    fn counters_track() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, EventKind::AppTimer { app: 0, tag: 0 });
        q.schedule(SimTime::ZERO, EventKind::AppTimer { app: 1, tag: 0 });
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.dispatched(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_invariant_holds_through_interleaved_use() {
        let mut q = EventQueue::new();
        // Interleave schedules and pops, including pops on empty, and check
        // scheduled == dispatched + pending at every step.
        for round in 0..5u64 {
            for i in 0..3 {
                q.schedule(
                    SimTime::from_ns(round * 10 + i),
                    EventKind::AppTimer {
                        app: i as u32,
                        tag: round,
                    },
                );
                assert_eq!(q.scheduled(), q.dispatched() + q.len() as u64);
            }
            q.pop();
            assert_eq!(q.scheduled(), q.dispatched() + q.len() as u64);
        }
        while q.pop().is_some() {
            assert_eq!(q.scheduled(), q.dispatched() + q.len() as u64);
        }
        // Pop on empty must not disturb the counters.
        assert!(q.pop().is_none());
        assert_eq!(q.scheduled(), 15);
        assert_eq!(q.dispatched(), 15);
        assert_eq!(q.len(), 0);
    }
}
