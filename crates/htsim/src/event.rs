//! The event queue: a hierarchical calendar/ladder queue with deterministic
//! (time, seq) ordering.
//!
//! Most simulator events are *near-future*: a queue departure lands one
//! serialization time ahead (3.2 ns for an ACK at 100G, 120 ns for an MTU),
//! an arrival one propagation delay ahead (~1 µs). A binary heap pays
//! O(log n) pointer-chasing for every one of them. This queue instead hashes
//! events into fixed-width time buckets:
//!
//! * **Buckets**: `N_SLOTS` slots of `2^SLOT_SHIFT` ps each cover a sliding
//!   window of ~67 µs from `window_start` (a multiple of the window span).
//!   Insertion is O(1): push onto `slots[(t >> SLOT_SHIFT) & (N_SLOTS-1)]`.
//! * **Drain + late heap**: when a slot becomes current its staged events
//!   are sorted once, descending by `(time, seq)`, into a stack popped from
//!   the end — O(1) amortized. Events scheduled *into* the current slot
//!   while it drains (ACK-departure cascades 3.2 ns out, same-timestamp
//!   batches) go to a small binary heap instead; each pop takes the smaller
//!   of the stack tail and the heap head. Both structures realize the same
//!   (time, seq) total order and sequence numbers are unique, so the
//!   cross-pick is never ambiguous. (Binary-inserting late events into the
//!   sorted stack is quadratic per slot: a same-timestamp straggler sorts
//!   *before* every equal-time event already there — larger seq, descending
//!   stack — and memmoves the whole batch. The heap caps that at O(log k).)
//! * **Ladder**: events at or beyond the window end (RTO timers at ≥10 ms,
//!   app wakeups, telemetry ticks) go to an overflow binary heap. When the
//!   buckets drain, the window jumps forward to the span containing the
//!   ladder minimum and every ladder event inside the new window is
//!   re-hashed into its bucket.
//!
//! Determinism is bit-identical to the old `BinaryHeap<Reverse<Event>>`:
//! both implement the same total order — time, ties broken by a
//! monotonically increasing sequence number — and the calendar realizes it
//! exactly (see DESIGN.md "Event engine internals" for the argument). The
//! golden fingerprint and proptest suites verify this end to end.
//!
//! The two structural invariants that make the window logic sound:
//!
//! 1. every `schedule(at, ..)` happens with `at >= now >= window_start`, so
//!    a bucketed insertion never lands in a slot before `cur_slot`;
//! 2. the window only advances when the buckets are empty, and only to the
//!    span containing the global minimum, so no pending event is ever left
//!    behind the window.

use crate::packet::{ConnId, PacketId};
use crate::time::SimTime;
use pnet_topology::LinkId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Things that can happen.
#[derive(Debug)]
pub enum EventKind {
    /// The head-of-line packet of `link`'s queue finished serializing.
    QueueDeparture { link: LinkId },
    /// The packet behind `packet` (an index into the simulator's arena)
    /// finished propagating and arrives at the input of its next hop (or at
    /// the destination host if the route is exhausted).
    Arrival { packet: PacketId },
    /// A retransmission timer fired. Stale tokens are ignored.
    RtoTimer {
        conn: ConnId,
        subflow: u8,
        token: u64,
    },
    /// An application-scheduled wakeup (flow start, think time, ...).
    AppTimer { app: u32, tag: u64 },
    /// A periodic telemetry sampler tick. Observes queue/plane/subflow state
    /// and mutates nothing, so enabling it never changes transport behaviour.
    TelemetrySample,
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    pub time: SimTime,
    seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Bucket width: 2^14 ps ≈ 16.4 ns. Finer than an MTU serialization at 100G
/// (120 ns), so back-to-back departures spread over distinct slots; coarse
/// enough that a window of 4096 slots spans ~67 µs — comfortably past any
/// hop latency (serialization + ~1 µs propagation) while keeping every
/// ≥10 ms RTO in the ladder.
const SLOT_SHIFT: u32 = 14;
/// Number of bucket slots (power of two so the slot index is a mask).
const N_SLOTS: usize = 1 << 12;
/// Width of the bucket window in picoseconds (~67.1 µs).
const SPAN_PS: u64 = (N_SLOTS as u64) << SLOT_SHIFT;

#[inline]
fn slot_of(t_ps: u64) -> usize {
    ((t_ps >> SLOT_SHIFT) as usize) & (N_SLOTS - 1)
}

/// Deterministic event queue (calendar buckets + overflow ladder).
#[derive(Debug)]
pub struct EventQueue {
    /// Unsorted per-slot staging areas for the current window. The current
    /// slot's staging area is always empty: its backlog lives in `drain` and
    /// fresh insertions go to `late`.
    slots: Vec<Vec<Event>>,
    /// The current slot's backlog, sorted descending by `(time, seq)`; pops
    /// come off the end.
    drain: Vec<Event>,
    /// Events scheduled into the current slot after it opened.
    late: BinaryHeap<Reverse<Event>>,
    /// Slot currently being drained. Slots before it (within this window)
    /// are empty.
    cur_slot: usize,
    /// Start of the bucket window; always a multiple of `SPAN_PS`.
    window_start: u64,
    /// Far-future overflow: every event at or beyond `window_start + SPAN_PS`.
    ladder: BinaryHeap<Reverse<Event>>,
    /// Lower bound on the lowest-indexed occupied staging slot (`N_SLOTS`
    /// when provably none): slot scans start here instead of at `cur_slot`,
    /// so a run of empty slots is traversed once, not once per peek/pop.
    /// Lowered on staged insertion, raised past each slot as it opens, reset
    /// on window jumps; never below `cur_slot`.
    min_staged: usize,
    /// Events in `slots` + `drain` (not the ladder).
    in_buckets: usize,
    next_seq: u64,
    scheduled: u64,
    dispatched: u64,
    /// Pending [`EventKind::Arrival`] events, maintained at schedule/pop so
    /// the conservation ledger never scans the queue.
    #[cfg(feature = "strict-invariants")]
    arrivals_pending: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..N_SLOTS).map(|_| Vec::new()).collect(),
            drain: Vec::new(),
            late: BinaryHeap::new(),
            cur_slot: 0,
            window_start: 0,
            ladder: BinaryHeap::new(),
            min_staged: N_SLOTS,
            in_buckets: 0,
            next_seq: 0,
            scheduled: 0,
            dispatched: 0,
            #[cfg(feature = "strict-invariants")]
            arrivals_pending: 0,
        }
    }

    /// Schedule `kind` at absolute time `at`.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        #[cfg(feature = "strict-invariants")]
        if matches!(kind, EventKind::Arrival { .. }) {
            self.arrivals_pending += 1;
        }
        let ev = Event {
            time: at,
            seq,
            kind,
        };
        let t = at.as_ps();
        if t < self.window_start.saturating_add(SPAN_PS) {
            debug_assert!(
                t >= self.window_start,
                "scheduled behind the calendar window ({} < {})",
                t,
                self.window_start
            );
            let s = slot_of(t);
            debug_assert!(
                s >= self.cur_slot,
                "bucketed insertion behind the drain cursor"
            );
            if s == self.cur_slot {
                self.late.push(Reverse(ev));
            } else {
                self.slots[s].push(ev);
                self.min_staged = self.min_staged.min(s);
            }
            self.in_buckets += 1;
        } else {
            self.ladder.push(Reverse(ev));
        }
    }

    /// Open staged slot `s`: take its events as the new drain stack, sorted
    /// once, descending by `(time, seq)`. Recycles the old drain buffer (and
    /// its capacity) as the slot's staging area. The comparator is total —
    /// sequence numbers are unique — so `sort_unstable` is deterministic.
    fn open_slot(&mut self, s: usize) {
        self.cur_slot = s;
        std::mem::swap(&mut self.drain, &mut self.slots[s]);
        self.drain.sort_unstable_by(|a, b| b.cmp(a));
        // Slots at or before `s` are now all empty (the scan that found `s`
        // proved those before it empty, and `s` was just swapped out).
        self.min_staged = s + 1;
    }

    /// Pop the earliest event of the current slot: the smaller of the drain
    /// stack's tail and the late heap's head.
    #[inline]
    fn pop_current(&mut self) -> Option<Event> {
        let take_late = match (self.drain.last(), self.late.peek()) {
            (Some(d), Some(Reverse(l))) => l.cmp(d) == std::cmp::Ordering::Less,
            (None, Some(_)) => true,
            (_, None) => false,
        };
        if take_late {
            self.late.pop().map(|Reverse(e)| e)
        } else {
            self.drain.pop()
        }
    }

    /// The event most likely to pop next — the drain-stack tail — offered as
    /// a prefetch hint to the dispatch loop. Purely advisory: the late heap
    /// or a later slot may in fact come first, so callers must never use it
    /// for ordering decisions. (This hint is a structural advantage of the
    /// calendar layout: the old binary heap knows its head, but the head's
    /// *successor* is buried mid-sift.)
    #[inline]
    pub fn next_hint(&self) -> &[Event] {
        let n = self.drain.len();
        // Two-deep: a handler runs long enough to cover its successor's DRAM
        // load but often not two, so overlapping a pair keeps the pipeline
        // ahead of the dispatch loop.
        &self.drain[n.saturating_sub(2)..]
    }

    /// Shared post-pop bookkeeping for both pop paths.
    #[inline]
    fn note_popped(&mut self, _ev: &Event) {
        self.dispatched += 1;
        #[cfg(feature = "strict-invariants")]
        if matches!(_ev.kind, EventKind::Arrival { .. }) {
            self.arrivals_pending -= 1;
        }
        // Drain invariant: every event is scheduled exactly once and
        // dispatched at most once, so pending + dispatched == scheduled.
        debug_assert_eq!(
            self.len() as u64 + self.dispatched,
            self.scheduled,
            "event queue counters out of sync"
        );
    }

    /// Pop the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<Event> {
        loop {
            if self.in_buckets > 0 {
                if self.drain.is_empty() && self.late.is_empty() {
                    // Advance to the next occupied slot of this window. The
                    // scan never wraps: bucketed insertions always land at or
                    // after cur_slot (invariant 1 in the module docs), and
                    // `min_staged` bounds it below so the empty prefix is
                    // skipped without probing.
                    debug_assert!(self.min_staged >= self.cur_slot);
                    let next = (self.min_staged..N_SLOTS)
                        .find(|&s| !self.slots[s].is_empty())
                        .expect("invariant: in_buckets > 0 implies an occupied slot ahead");
                    self.open_slot(next);
                }
                let ev = self
                    .pop_current()
                    .expect("invariant: an opened slot yields a non-empty drain or late heap");
                self.in_buckets -= 1;
                self.note_popped(&ev);
                return Some(ev);
            }
            let Reverse(head) = self.ladder.peek()?;
            // Buckets empty: jump the window to the span containing the
            // ladder minimum and re-hash every ladder event inside it.
            let min_t = head.time.as_ps();
            self.window_start = min_t & !(SPAN_PS - 1);
            self.cur_slot = slot_of(min_t);
            self.min_staged = N_SLOTS; // refill below re-establishes the bound
            let end = self.window_start.saturating_add(SPAN_PS);
            while self
                .ladder
                .peek()
                .is_some_and(|Reverse(e)| e.time.as_ps() < end)
            {
                let Reverse(ev) = self
                    .ladder
                    .pop()
                    .expect("invariant: peeked ladder head exists");
                let s = slot_of(ev.time.as_ps());
                self.slots[s].push(ev);
                self.min_staged = self.min_staged.min(s);
                self.in_buckets += 1;
            }
        }
    }

    /// Pop the earliest event only if it is scheduled exactly at `t`. This is
    /// the batched-dispatch fast path: draining a same-timestamp cascade
    /// (departure → arrival → departure ...) touches only the drain stack's
    /// tail, skipping the peek scan and window logic entirely.
    #[inline]
    pub fn pop_if_at(&mut self, t: SimTime) -> Option<Event> {
        if self.peek_time() == Some(t) {
            self.pop()
        } else {
            None
        }
    }

    /// Time of the next event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.in_buckets > 0 {
            // Bucketed events are all earlier than the window end, ladder
            // events all at or after it, so the bucket minimum is global.
            let best = match (self.drain.last(), self.late.peek()) {
                (Some(d), Some(Reverse(l))) => Some(d.time.min(l.time)),
                (Some(d), None) => Some(d.time),
                (None, Some(Reverse(l))) => Some(l.time),
                (None, None) => None,
            };
            if best.is_some() {
                return best;
            }
            for s in self.min_staged..N_SLOTS {
                if let Some(min) = self.slots[s].iter().map(|e| e.time).min() {
                    return Some(min);
                }
            }
            debug_assert!(false, "in_buckets > 0 but no occupied slot found");
        }
        self.ladder.peek().map(|Reverse(e)| e.time)
    }

    /// Events still pending.
    pub fn len(&self) -> usize {
        self.in_buckets + self.ladder.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events dispatched so far (for instrumentation).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Total events scheduled so far (for instrumentation; always equals
    /// `dispatched() + len()`).
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Packets currently propagating: pending [`EventKind::Arrival`] events.
    /// A counter maintained at schedule/pop time, so the conservation ledger
    /// stays O(1) per check at any simulation scale.
    #[cfg(feature = "strict-invariants")]
    pub fn pending_arrivals(&self) -> u64 {
        self.arrivals_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_partial_ord_is_consistent_with_ord_and_eq() {
        use std::cmp::Ordering;
        let ev = |t: u64, seq: u64| Event {
            time: SimTime::from_ps(t),
            seq,
            kind: EventKind::TelemetrySample,
        };
        // Same (time, seq) with different kinds still compares Equal — the
        // queue orders purely on (time, seq).
        let same = Event {
            time: SimTime::from_ps(10),
            seq: 1,
            kind: EventKind::AppTimer { app: 0, tag: 0 },
        };
        let cases = [ev(10, 1), ev(10, 2), ev(20, 0), same];
        for x in &cases {
            for y in &cases {
                assert_eq!(
                    x.partial_cmp(y),
                    Some(x.cmp(y)),
                    "PartialOrd must delegate to Ord"
                );
                assert_eq!(
                    x == y,
                    x.cmp(y) == Ordering::Equal,
                    "Eq must agree with Ord"
                );
            }
        }
        assert!(ev(10, 1) < ev(10, 2), "seq breaks time ties");
        assert!(ev(10, 2) < ev(20, 0), "time dominates");
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(3), EventKind::AppTimer { app: 3, tag: 0 });
        q.schedule(SimTime::from_us(1), EventKind::AppTimer { app: 1, tag: 0 });
        q.schedule(SimTime::from_us(2), EventKind::AppTimer { app: 2, tag: 0 });
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::AppTimer { app, .. } => app,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_us(5), EventKind::AppTimer { app: i, tag: 0 });
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::AppTimer { app, .. } => app,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(7), EventKind::AppTimer { app: 0, tag: 0 });
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        let e = q.pop().unwrap();
        assert_eq!(e.time, SimTime::from_ns(7));
        assert!(q.is_empty());
    }

    #[test]
    fn counters_track() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, EventKind::AppTimer { app: 0, tag: 0 });
        q.schedule(SimTime::ZERO, EventKind::AppTimer { app: 1, tag: 0 });
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.dispatched(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_invariant_holds_through_interleaved_use() {
        let mut q = EventQueue::new();
        // Interleave schedules and pops, including pops on empty, and check
        // scheduled == dispatched + pending at every step.
        for round in 0..5u64 {
            for i in 0..3 {
                q.schedule(
                    SimTime::from_ns(round * 10 + i),
                    EventKind::AppTimer {
                        app: i as u32,
                        tag: round,
                    },
                );
                assert_eq!(q.scheduled(), q.dispatched() + q.len() as u64);
            }
            q.pop();
            assert_eq!(q.scheduled(), q.dispatched() + q.len() as u64);
        }
        while q.pop().is_some() {
            assert_eq!(q.scheduled(), q.dispatched() + q.len() as u64);
        }
        // Pop on empty must not disturb the counters.
        assert!(q.pop().is_none());
        assert_eq!(q.scheduled(), 15);
        assert_eq!(q.dispatched(), 15);
        assert_eq!(q.len(), 0);
    }

    // -------------------------------------------------------------------
    // Calendar-specific edge cases.
    // -------------------------------------------------------------------

    fn app(q: &mut EventQueue, at_ps: u64, app: u32) {
        q.schedule(SimTime::from_ps(at_ps), EventKind::AppTimer { app, tag: 0 });
    }

    fn drain_apps(q: &mut EventQueue) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::AppTimer { app, .. } => (e.time.as_ps(), app),
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn bucket_rollover_across_slot_boundaries() {
        // Events straddling slot boundaries within one window: exact order
        // regardless of which 16.4 ns bucket each lands in.
        let w = 1u64 << SLOT_SHIFT;
        let mut q = EventQueue::new();
        app(&mut q, 3 * w + 1, 4);
        app(&mut q, w - 1, 1); // last ps of slot 0
        app(&mut q, w, 2); // first ps of slot 1
        app(&mut q, 0, 0);
        app(&mut q, 3 * w + 1, 5); // tie with app 4: seq order
        app(&mut q, 2 * w + 7, 3);
        let got = drain_apps(&mut q);
        assert_eq!(
            got,
            vec![
                (0, 0),
                (w - 1, 1),
                (w, 2),
                (2 * w + 7, 3),
                (3 * w + 1, 4),
                (3 * w + 1, 5),
            ]
        );
    }

    #[test]
    fn far_future_events_take_the_ladder_and_come_back() {
        // A mix of near events and far timers (several windows out, RTO
        // scale): the ladder must hand them back in exact order, including
        // ties and events that share the post-jump window.
        let mut q = EventQueue::new();
        app(&mut q, SPAN_PS * 3 + 500, 3); // far: ladder
        app(&mut q, 10, 0); // near
        app(&mut q, SPAN_PS * 3 + 500, 4); // far tie: seq order
        app(&mut q, SPAN_PS * 3 + 499, 2); // far, just before the tie
        app(&mut q, SPAN_PS - 1, 1); // last ps of the first window
        app(&mut q, SPAN_PS * 9 + 1, 5); // beyond even the jumped window
        let got = drain_apps(&mut q);
        assert_eq!(
            got,
            vec![
                (10, 0),
                (SPAN_PS - 1, 1),
                (SPAN_PS * 3 + 499, 2),
                (SPAN_PS * 3 + 500, 3),
                (SPAN_PS * 3 + 500, 4),
                (SPAN_PS * 9 + 1, 5),
            ]
        );
    }

    #[test]
    fn window_jump_then_schedule_into_new_window() {
        // After the window jumps to a far timer, scheduling near the new
        // "now" must land in the new window's buckets and sort correctly
        // against remaining ladder events.
        let far = SPAN_PS * 5 + 1000;
        let mut q = EventQueue::new();
        app(&mut q, far, 1);
        app(&mut q, far + SPAN_PS, 3); // next window again
        let first = q.pop().unwrap();
        assert_eq!(first.time.as_ps(), far);
        // Simulate the dispatch of `first` scheduling a follow-up shortly
        // after now (same window) — the common RTO-retransmit pattern.
        app(&mut q, far + 5, 2);
        let got = drain_apps(&mut q);
        assert_eq!(got, vec![(far + 5, 2), (far + SPAN_PS, 3)]);
    }

    #[test]
    fn late_insertion_into_draining_slot_keeps_order() {
        // Pop one event of a slot, then schedule an earlier-time event into
        // the same slot (larger seq, smaller time than the drain remainder):
        // the merge must interleave it correctly.
        let mut q = EventQueue::new();
        app(&mut q, 100, 0);
        app(&mut q, 300, 2);
        app(&mut q, 400, 3);
        assert_eq!(q.pop().unwrap().time.as_ps(), 100);
        app(&mut q, 200, 1); // same slot 0, earlier than 300
        let got = drain_apps(&mut q);
        assert_eq!(got, vec![(200, 1), (300, 2), (400, 3)]);
    }

    #[test]
    fn pop_if_at_only_pops_exact_timestamp() {
        let mut q = EventQueue::new();
        app(&mut q, 50, 0);
        app(&mut q, 50, 1);
        app(&mut q, 60, 2);
        let t = SimTime::from_ps(50);
        assert_eq!(q.pop().unwrap().time, t);
        // Batch path: second event at the same timestamp pops...
        let e = q.pop_if_at(t).expect("event at t=50 pending");
        assert!(matches!(e.kind, EventKind::AppTimer { app: 1, .. }));
        // ...but the t=60 event does not.
        assert!(q.pop_if_at(t).is_none());
        assert_eq!(q.len(), 1);
        // Late insertion at the batch timestamp is still honoured (slow path).
        app(&mut q, 50, 3);
        let e = q.pop_if_at(t).expect("late event at t=50 pending");
        assert!(matches!(e.kind, EventKind::AppTimer { app: 3, .. }));
        assert_eq!(q.pop().unwrap().time.as_ps(), 60);
    }

    #[test]
    fn matches_reference_heap_on_a_dense_mixed_schedule() {
        // Deterministic miniature of the props.rs proptest: interleave
        // schedules (near, far, tied) with pops and compare against a
        // straightforward (time, insertion-index) sort.
        let times: Vec<u64> = (0..400u64)
            .map(|i| {
                // LCG spreading times over ~3 windows with many collisions.
                let r = i
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (r >> 33) % (3 * SPAN_PS / 2)
            })
            .collect();
        let mut q = EventQueue::new();
        let mut expect: Vec<(u64, u32)> = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            app(&mut q, t, i as u32);
            expect.push((t, i as u32));
        }
        expect.sort_unstable(); // (time, seq) == (time, insertion index) here
        assert_eq!(drain_apps(&mut q), expect);
    }
}
