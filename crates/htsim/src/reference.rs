//! The pre-overhaul packet engine, kept alive for live-timed benchmarking.
//!
//! This module is a frozen copy of the simulator core as it stood before the
//! calendar-queue / packet-arena rework: a `BinaryHeap<Reverse<Event>>` event
//! queue, `Packet`s moved *by value* through events and queue FIFOs, and an
//! `Arc<Vec<LinkId>>` route clone per wire transmission. `bench_report` runs
//! the same workload through this engine and the production engine in one
//! process, asserts the flow-completion vectors are byte-identical, and
//! reports the events/sec ratio — the same role `ksp_reference` plays for
//! the routing overhaul.
//!
//! Scope: one-shot flow batches only (no [`crate::sim::Driver`], no app
//! timers, no telemetry, no conservation ledger). Transport behaviour —
//! NewReno, LIA coupling, DCTCP, RTO backoff and subflow death — is copied
//! verbatim from the pre-overhaul `sim.rs`, so FCTs match the production
//! engine bit-for-bit on any workload this surface can express. Do not
//! "improve" this module: its value is being old.

use crate::packet::{ConnId, PacketKind, ACK_BYTES, MTU_BYTES};
use crate::sim::{FlowRecord, FlowSpec, SimConfig};
use crate::tcp::CcAlgo;
use crate::time::SimTime;
use pnet_routing::reverse_route;
use pnet_topology::{HostId, LinkId, Network};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use std::sync::Arc;

/// The pre-overhaul serialization-delay arithmetic, pinned here so the
/// baseline stays the baseline: `crate::time::serialization_ps` has since
/// grown a 64-bit fast path, and timing the old engine against the new
/// helper would silently credit that shared win to the old engine too.
/// Same result for every input (proved by the identical-FCT assertion).
fn serialization_ps(bytes: u32, rate_bps: u64) -> u64 {
    let bits = bytes as u64 * 8;
    // bits / rate seconds = bits * 1e12 / rate ps
    (bits as u128 * 1_000_000_000_000u128).div_ceil(rate_bps as u128) as u64
}

// ---------------------------------------------------------------------------
// Packets: by-value, with the old double-indirect route sharing.
// ---------------------------------------------------------------------------

/// A packet in flight (pre-arena representation: moved by value through the
/// event queue and link FIFOs, route behind `Arc<Vec<_>>`).
#[derive(Debug, Clone)]
struct Packet {
    route: Arc<Vec<LinkId>>,
    hop: u16,
    size_bytes: u32,
    kind: PacketKind,
}

impl Packet {
    #[inline]
    fn next_link(&self) -> Option<LinkId> {
        self.route.get(self.hop as usize).copied()
    }
}

// ---------------------------------------------------------------------------
// Event queue: the original binary heap with (time, seq) ordering.
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum EventKind {
    QueueDeparture {
        link: LinkId,
    },
    Arrival {
        packet: Packet,
    },
    RtoTimer {
        conn: ConnId,
        subflow: u8,
        token: u64,
    },
}

#[derive(Debug)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    dispatched: u64,
}

impl EventQueue {
    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event {
            time: at,
            seq,
            kind,
        }));
    }

    fn pop(&mut self) -> Option<Event> {
        let e = self.heap.pop().map(|Reverse(e)| e);
        if e.is_some() {
            self.dispatched += 1;
        }
        e
    }
}

// ---------------------------------------------------------------------------
// Per-link drop-tail queue: stores packets by value.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Queue {
    rate_bps: u64,
    delay_ps: u64,
    capacity_bytes: u64,
    ecn_threshold_bytes: Option<u64>,
    link_up: bool,
    buffered_bytes: u64,
    fifo: VecDeque<Packet>,
    busy: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Enqueue {
    StartService,
    Queued,
    Dropped,
    DroppedLinkDown,
}

impl Queue {
    fn new(rate_bps: u64, delay_ps: u64, capacity_bytes: u64) -> Self {
        Queue {
            rate_bps,
            delay_ps,
            capacity_bytes,
            ecn_threshold_bytes: None,
            link_up: true,
            buffered_bytes: 0,
            fifo: VecDeque::new(),
            busy: false,
        }
    }

    fn enqueue(&mut self, mut packet: Packet) -> Enqueue {
        let size = packet.size_bytes as u64;
        if !self.link_up {
            return Enqueue::DroppedLinkDown;
        }
        if self.buffered_bytes + size > self.capacity_bytes {
            return Enqueue::Dropped;
        }
        self.buffered_bytes += size;
        if let Some(k) = self.ecn_threshold_bytes {
            if self.buffered_bytes > k {
                if let PacketKind::Data { ce, .. } = &mut packet.kind {
                    *ce = true;
                }
            }
        }
        self.fifo.push_back(packet);
        if self.busy {
            Enqueue::Queued
        } else {
            self.busy = true;
            Enqueue::StartService
        }
    }

    fn head_service_ps(&self) -> u64 {
        let head = self
            .fifo
            .front()
            .expect("invariant: service only starts on a non-empty queue");
        serialization_ps(head.size_bytes, self.rate_bps)
    }

    fn depart(&mut self, now: SimTime) -> (Packet, SimTime, Option<u64>) {
        let packet = self
            .fifo
            .pop_front()
            .expect("invariant: departures only fire on a non-empty queue");
        self.buffered_bytes -= packet.size_bytes as u64;
        let arrival = now + SimTime::from_ps(self.delay_ps);
        let next = if self.fifo.is_empty() {
            self.busy = false;
            None
        } else {
            Some(self.head_service_ps())
        };
        (packet, arrival, next)
    }
}

// ---------------------------------------------------------------------------
// Transport state: verbatim pre-overhaul Subflow / Connection with
// Arc<Vec<LinkId>> routes.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Subflow {
    route: Arc<Vec<LinkId>>,
    rev_route: Arc<Vec<LinkId>>,
    cwnd: f64,
    ssthresh: f64,
    cwnd_cap: f64,
    highest_sent: u64,
    snd_una: u64,
    resend_high: u64,
    dupacks: u32,
    in_recovery: bool,
    recover: u64,
    rtx_queue: VecDeque<u64>,
    dead: bool,
    srtt_ps: f64,
    rttvar_ps: f64,
    rtt_valid: bool,
    rto: SimTime,
    backoff: u32,
    timer_token: u64,
    timer_armed: bool,
    dctcp_alpha: f64,
    dctcp_acked: u64,
    dctcp_marked: u64,
    dctcp_window_end: u64,
    dctcp_cut_this_window: bool,
    rcv_next: u64,
    ooo: BTreeSet<u64>,
    retransmits: u64,
    timeouts: u64,
}

impl Subflow {
    fn new(
        route: Arc<Vec<LinkId>>,
        rev_route: Arc<Vec<LinkId>>,
        cfg: &crate::tcp::TcpConfig,
    ) -> Self {
        Subflow {
            route,
            rev_route,
            cwnd: cfg.initial_cwnd,
            ssthresh: f64::INFINITY,
            cwnd_cap: f64::INFINITY,
            highest_sent: 0,
            snd_una: 0,
            resend_high: 0,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            rtx_queue: VecDeque::new(),
            dead: false,
            srtt_ps: 0.0,
            rttvar_ps: 0.0,
            rtt_valid: false,
            rto: cfg.min_rto,
            backoff: 0,
            timer_token: 0,
            timer_armed: false,
            dctcp_alpha: 1.0,
            dctcp_acked: 0,
            dctcp_marked: 0,
            dctcp_window_end: 0,
            dctcp_cut_this_window: false,
            rcv_next: 0,
            ooo: BTreeSet::new(),
            retransmits: 0,
            timeouts: 0,
        }
    }

    #[inline]
    fn in_flight(&self) -> u64 {
        self.resend_high - self.snd_una
    }

    #[inline]
    fn outstanding(&self) -> u64 {
        self.highest_sent - self.snd_una
    }

    #[inline]
    fn window_open(&self) -> bool {
        !self.dead && (self.in_flight() as f64) < self.cwnd.min(self.cwnd_cap).max(1.0).floor()
    }

    fn rtt_sample(&mut self, sample_ps: u64, cfg: &crate::tcp::TcpConfig) {
        let s = sample_ps as f64;
        if !self.rtt_valid {
            self.srtt_ps = s;
            self.rttvar_ps = s / 2.0;
            self.rtt_valid = true;
        } else {
            self.rttvar_ps = 0.75 * self.rttvar_ps + 0.25 * (self.srtt_ps - s).abs();
            self.srtt_ps = 0.875 * self.srtt_ps + 0.125 * s;
        }
        let rto_ps = (self.srtt_ps + 4.0 * self.rttvar_ps) as u64;
        self.rto = SimTime::from_ps(rto_ps).max(cfg.min_rto).min(cfg.max_rto);
    }

    fn effective_rto(&self, cfg: &crate::tcp::TcpConfig) -> SimTime {
        let n = self.backoff.min(10);
        let shifted = if self.rto.as_ps() > (u64::MAX >> n) {
            u64::MAX
        } else {
            self.rto.as_ps() << n
        };
        SimTime::from_ps(shifted).min(cfg.max_rto)
    }

    fn rtt_estimate_ps(&self, cfg: &crate::tcp::TcpConfig) -> f64 {
        if self.rtt_valid {
            self.srtt_ps.max(1.0)
        } else {
            cfg.default_rtt.as_ps() as f64
        }
    }

    fn dctcp_on_ack(&mut self, newly: u64, ece: bool, cum: u64) -> bool {
        const G: f64 = 1.0 / 16.0;
        self.dctcp_acked += newly;
        if ece {
            self.dctcp_marked += newly;
        }
        let cut = ece && !self.dctcp_cut_this_window;
        if cut {
            self.dctcp_cut_this_window = true;
        }
        if cum >= self.dctcp_window_end {
            if self.dctcp_acked > 0 {
                let f = self.dctcp_marked as f64 / self.dctcp_acked as f64;
                self.dctcp_alpha = (1.0 - G) * self.dctcp_alpha + G * f;
            }
            self.dctcp_acked = 0;
            self.dctcp_marked = 0;
            self.dctcp_window_end = self.highest_sent;
            self.dctcp_cut_this_window = false;
        }
        cut
    }

    fn dctcp_on_dupack(&mut self, ece: bool) {
        self.dctcp_acked += 1;
        if ece {
            self.dctcp_marked += 1;
        }
    }

    fn receive_data(&mut self, seq: u64) -> u64 {
        if seq == self.rcv_next {
            self.rcv_next += 1;
            while self.ooo.remove(&self.rcv_next) {
                self.rcv_next += 1;
            }
        } else if seq > self.rcv_next {
            self.ooo.insert(seq);
        }
        self.rcv_next
    }
}

#[derive(Debug)]
struct Connection {
    src: HostId,
    dst: HostId,
    cc: CcAlgo,
    size_packets: u64,
    size_bytes: u64,
    assigned: u64,
    acked: u64,
    start: SimTime,
    finish: Option<SimTime>,
    subflows: Vec<Subflow>,
    rr: usize,
    owner_tag: u64,
}

impl Connection {
    fn retransmits(&self) -> u64 {
        self.subflows.iter().map(|s| s.retransmits).sum()
    }

    fn timeouts(&self) -> u64 {
        self.subflows.iter().map(|s| s.timeouts).sum()
    }

    fn lia_alpha(&self, cfg: &crate::tcp::TcpConfig) -> f64 {
        let live = || self.subflows.iter().filter(|s| !s.dead);
        let total: f64 = live().map(|s| s.cwnd).sum();
        let mut max_term: f64 = 0.0;
        let mut sum_term: f64 = 0.0;
        for s in live() {
            let rtt = s.rtt_estimate_ps(cfg);
            max_term = max_term.max(s.cwnd / (rtt * rtt));
            sum_term += s.cwnd / rtt;
        }
        if sum_term <= 0.0 {
            return 1.0;
        }
        (total * max_term / (sum_term * sum_term)).max(f64::MIN_POSITIVE)
    }

    fn ca_increase(&self, i: usize, cfg: &crate::tcp::TcpConfig) -> f64 {
        let sub = &self.subflows[i];
        match self.cc {
            CcAlgo::Reno | CcAlgo::Uncoupled | CcAlgo::Dctcp => 1.0 / sub.cwnd.max(1.0),
            CcAlgo::Lia => {
                let total: f64 = self
                    .subflows
                    .iter()
                    .filter(|s| !s.dead)
                    .map(|s| s.cwnd)
                    .sum();
                let alpha = self.lia_alpha(cfg);
                (alpha / total.max(1.0)).min(1.0 / sub.cwnd.max(1.0))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

/// Pre-overhaul simulator: one-shot flow batches, no driver, no telemetry.
pub struct RefSimulator {
    /// Current simulation time.
    pub now: SimTime,
    events: EventQueue,
    queues: Vec<Queue>,
    conns: Vec<Connection>,
    cfg: SimConfig,
    /// Completion records, in completion order (same contents as the
    /// production engine's records for the same workload).
    pub records: Vec<FlowRecord>,
    /// Drop-tail losses.
    pub dropped_packets: u64,
    last_progress: Vec<Vec<SimTime>>,
}

impl RefSimulator {
    /// Build a reference simulator over `net`'s links. `cfg.telemetry` is
    /// ignored: this engine predates the telemetry layer's hooks.
    pub fn new(net: &Network, cfg: SimConfig) -> Self {
        let queues = net
            .links()
            .map(|(_, l)| {
                let mut q = Queue::new(l.capacity_bps, l.delay_ps, cfg.queue_bytes);
                q.ecn_threshold_bytes = cfg
                    .ecn_threshold_packets
                    .map(|k| k as u64 * MTU_BYTES as u64);
                q
            })
            .collect();
        RefSimulator {
            now: SimTime::ZERO,
            events: EventQueue::default(),
            queues,
            conns: Vec::new(),
            cfg,
            records: Vec::new(),
            dropped_packets: 0,
            last_progress: Vec::new(),
        }
    }

    /// Events dispatched so far (the numerator of events/sec).
    pub fn events_dispatched(&self) -> u64 {
        self.events.dispatched
    }

    /// Take a link dark mid-simulation (both directions of the cable).
    pub fn fail_link(&mut self, link: LinkId) {
        self.queues[link.index()].link_up = false;
        self.queues[link.reverse().index()].link_up = false;
    }

    /// Start a flow now. Returns its connection id.
    pub fn start_flow(&mut self, spec: FlowSpec) -> ConnId {
        assert!(spec.src != spec.dst, "flow to self");
        assert!(!spec.routes.is_empty(), "flow needs at least one route");
        let id = ConnId(
            u32::try_from(self.conns.len()).expect("invariant: connection count stays within u32"),
        );
        let size_packets = spec.size_bytes.div_ceil(MTU_BYTES as u64).max(1);
        let subflows: Vec<Subflow> = spec
            .routes
            .iter()
            .map(|r| {
                assert!(!r.is_empty(), "empty route");
                let fwd = Arc::new(r.clone());
                let rev = Arc::new(reverse_route(r));
                let mut sub = Subflow::new(fwd, rev, &self.cfg.tcp);
                sub.cwnd_cap = self.window_cap(r);
                sub
            })
            .collect();
        self.last_progress.push(vec![self.now; subflows.len()]);
        self.conns.push(Connection {
            src: spec.src,
            dst: spec.dst,
            cc: spec.cc,
            size_packets,
            size_bytes: spec.size_bytes.max(1),
            assigned: 0,
            acked: 0,
            start: self.now,
            finish: None,
            subflows,
            rr: 0,
            owner_tag: spec.owner_tag,
        });
        self.pump(id);
        id
    }

    fn window_cap(&self, route: &[LinkId]) -> f64 {
        let mut rtt_ps: u64 = 0;
        let mut bottleneck = u64::MAX;
        for &l in route {
            let q = &self.queues[l.index()];
            rtt_ps += q.delay_ps + serialization_ps(MTU_BYTES, q.rate_bps);
            bottleneck = bottleneck.min(q.rate_bps);
        }
        for &l in route {
            let q = &self.queues[l.reverse().index()];
            rtt_ps += q.delay_ps + serialization_ps(ACK_BYTES, q.rate_bps);
        }
        let bdp_bits = SimTime::from_ps(rtt_ps).as_secs_f64() * bottleneck as f64;
        let bdp_packets = (bdp_bits / 8.0 / MTU_BYTES as f64).ceil();
        let buffer_packets = (self.cfg.queue_bytes / MTU_BYTES as u64) as f64;
        (bdp_packets + buffer_packets).max(2.0)
    }

    fn send_packet(&mut self, pkt: Packet) {
        let link = pkt
            .next_link()
            .expect("invariant: send_packet is only called with hops remaining");
        let q = &mut self.queues[link.index()];
        match q.enqueue(pkt) {
            Enqueue::StartService => {
                let ser = q.head_service_ps();
                self.events.schedule(
                    self.now + SimTime::from_ps(ser),
                    EventKind::QueueDeparture { link },
                );
            }
            Enqueue::Queued => {}
            Enqueue::Dropped => self.dropped_packets += 1,
            Enqueue::DroppedLinkDown => {}
        }
    }

    fn on_departure(&mut self, link: LinkId) {
        let q = &mut self.queues[link.index()];
        let (mut pkt, arrival, next) = q.depart(self.now);
        pkt.hop += 1;
        self.events
            .schedule(arrival, EventKind::Arrival { packet: pkt });
        if let Some(ser) = next {
            self.events.schedule(
                self.now + SimTime::from_ps(ser),
                EventKind::QueueDeparture { link },
            );
        }
    }

    fn on_arrival(&mut self, pkt: Packet) {
        if pkt.next_link().is_some() {
            self.send_packet(pkt);
            return;
        }
        match pkt.kind {
            PacketKind::Data {
                conn,
                subflow,
                seq,
                ts,
                rtx,
                ce,
            } => self.on_data(conn, subflow, seq, ts, rtx, ce),
            PacketKind::Ack {
                conn,
                subflow,
                cum,
                ts_echo,
                rtx_echo,
                ece,
            } => self.on_ack(conn, subflow, cum, ts_echo, rtx_echo, ece),
        }
    }

    fn on_data(&mut self, conn: ConnId, subflow: u8, seq: u64, ts: SimTime, rtx: bool, ce: bool) {
        let c = &mut self.conns[conn.0 as usize];
        let sub = &mut c.subflows[subflow as usize];
        let cum = sub.receive_data(seq);
        let ack = Packet {
            route: Arc::clone(&sub.rev_route),
            hop: 0,
            size_bytes: ACK_BYTES,
            kind: PacketKind::Ack {
                conn,
                subflow,
                cum,
                ts_echo: ts,
                rtx_echo: rtx,
                ece: ce,
            },
        };
        self.send_packet(ack);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_ack(
        &mut self,
        conn: ConnId,
        subflow: u8,
        cum: u64,
        ts_echo: SimTime,
        rtx_echo: bool,
        ece: bool,
    ) {
        let ci = conn.0 as usize;
        if self.conns[ci].finish.is_some() {
            return;
        }
        let si = subflow as usize;
        if self.conns[ci].subflows[si].dead {
            return;
        }
        let now = self.now;

        if !rtx_echo {
            let sample = now.saturating_sub(ts_echo).as_ps();
            self.conns[ci].subflows[si].rtt_sample(sample, &self.cfg.tcp);
        }

        let snd_una = self.conns[ci].subflows[si].snd_una;
        if cum > snd_una {
            let newly = cum - snd_una;
            {
                let sub = &mut self.conns[ci].subflows[si];
                sub.snd_una = cum;
                sub.resend_high = sub.resend_high.max(cum);
                sub.backoff = 0;
            }
            self.conns[ci].acked += newly;
            self.last_progress[ci][si] = now;

            let in_recovery = self.conns[ci].subflows[si].in_recovery;
            if in_recovery {
                let recover = self.conns[ci].subflows[si].recover;
                if cum >= recover {
                    let sub = &mut self.conns[ci].subflows[si];
                    sub.cwnd = sub.ssthresh.max(1.0);
                    sub.in_recovery = false;
                    sub.dupacks = 0;
                } else {
                    let sub = &mut self.conns[ci].subflows[si];
                    sub.rtx_queue.push_back(cum);
                    sub.cwnd = (sub.cwnd - newly as f64 + 1.0).max(1.0);
                }
            } else {
                self.conns[ci].subflows[si].dupacks = 0;
                if self.conns[ci].cc == CcAlgo::Dctcp {
                    let cut = self.conns[ci].subflows[si].dctcp_on_ack(newly, ece, cum);
                    if cut {
                        let sub = &mut self.conns[ci].subflows[si];
                        sub.cwnd = (sub.cwnd * (1.0 - sub.dctcp_alpha / 2.0)).max(1.0);
                        sub.ssthresh = sub.cwnd;
                    }
                }
                for _ in 0..newly {
                    let (cwnd, ssthresh) = {
                        let s = &self.conns[ci].subflows[si];
                        (s.cwnd, s.ssthresh)
                    };
                    let inc = if cwnd < ssthresh {
                        1.0
                    } else {
                        self.conns[ci].ca_increase(si, &self.cfg.tcp)
                    };
                    self.conns[ci].subflows[si].cwnd += inc;
                }
            }
        } else if cum == snd_una && self.conns[ci].subflows[si].outstanding() > 0 {
            if self.conns[ci].cc == CcAlgo::Dctcp {
                self.conns[ci].subflows[si].dctcp_on_dupack(ece);
            }
            let sub = &mut self.conns[ci].subflows[si];
            sub.dupacks += 1;
            if sub.dupacks == 3 && !sub.in_recovery {
                let flight = sub.in_flight() as f64;
                sub.ssthresh = (flight / 2.0).max(2.0);
                sub.in_recovery = true;
                sub.recover = sub.highest_sent;
                sub.cwnd = sub.ssthresh + 3.0;
                sub.rtx_queue.push_back(sub.snd_una);
            } else if sub.in_recovery {
                sub.cwnd += 1.0;
            }
        }

        if self.conns[ci].acked >= self.conns[ci].size_packets {
            self.finish_conn(conn);
            return;
        }
        self.pump(conn);
    }

    fn finish_conn(&mut self, conn: ConnId) {
        let c = &mut self.conns[conn.0 as usize];
        c.finish = Some(self.now);
        self.records.push(FlowRecord {
            conn,
            src: c.src,
            dst: c.dst,
            size_bytes: c.size_bytes,
            start: c.start,
            finish: self.now,
            retransmits: c.retransmits(),
            timeouts: c.timeouts(),
            n_subflows: c.subflows.len(),
            min_switch_hops: c
                .subflows
                .iter()
                .map(|s| s.route.len().saturating_sub(1))
                .min()
                .unwrap_or(0),
            owner_tag: c.owner_tag,
        });
    }

    fn pump(&mut self, conn: ConnId) {
        let ci = conn.0 as usize;
        let n_subs = self.conns[ci].subflows.len();
        let mut progress = true;
        while progress {
            progress = false;
            for off in 0..n_subs {
                let si = (self.conns[ci].rr + off) % n_subs;
                while let Some(seq) = self.conns[ci].subflows[si].rtx_queue.pop_front() {
                    if seq < self.conns[ci].subflows[si].snd_una {
                        continue;
                    }
                    self.transmit(conn, si, seq, true);
                    progress = true;
                }
                loop {
                    if !self.conns[ci].subflows[si].window_open() {
                        break;
                    }
                    let sub = &self.conns[ci].subflows[si];
                    if sub.resend_high < sub.highest_sent {
                        let seq = sub.resend_high;
                        self.conns[ci].subflows[si].resend_high += 1;
                        self.transmit(conn, si, seq, true);
                        progress = true;
                    } else if self.conns[ci].assigned < self.conns[ci].size_packets {
                        let seq = sub.highest_sent;
                        let sub = &mut self.conns[ci].subflows[si];
                        sub.highest_sent += 1;
                        sub.resend_high += 1;
                        self.conns[ci].assigned += 1;
                        self.transmit(conn, si, seq, false);
                        progress = true;
                    } else {
                        break;
                    }
                }
            }
            self.conns[ci].rr = (self.conns[ci].rr + 1) % n_subs;
        }
        for si in 0..n_subs {
            if self.conns[ci].subflows[si].outstanding() > 0
                && !self.conns[ci].subflows[si].timer_armed
            {
                self.arm_timer(conn, si);
            }
        }
    }

    fn transmit(&mut self, conn: ConnId, si: usize, seq: u64, rtx: bool) {
        let ci = conn.0 as usize;
        let now = self.now;
        let cc = self.conns[ci].cc;
        let (route, size) = {
            let sub = &mut self.conns[ci].subflows[si];
            if rtx {
                sub.retransmits += 1;
            }
            if cc == CcAlgo::Dctcp && !rtx && sub.snd_una == 0 && sub.dctcp_acked == 0 {
                sub.dctcp_window_end = sub.highest_sent;
            }
            (Arc::clone(&sub.route), MTU_BYTES)
        };
        if !rtx {
            self.last_progress[ci][si] = now;
        }
        let pkt = Packet {
            route,
            hop: 0,
            size_bytes: size,
            kind: PacketKind::Data {
                conn,
                subflow: u8::try_from(si).expect("invariant: subflow count stays within u8"),
                seq,
                ts: now,
                rtx,
                ce: false,
            },
        };
        self.send_packet(pkt);
    }

    fn arm_timer(&mut self, conn: ConnId, si: usize) {
        let ci = conn.0 as usize;
        let sub = &mut self.conns[ci].subflows[si];
        sub.timer_token += 1;
        sub.timer_armed = true;
        let deadline = self.now + sub.effective_rto(&self.cfg.tcp);
        self.events.schedule(
            deadline,
            EventKind::RtoTimer {
                conn,
                subflow: u8::try_from(si).expect("invariant: subflow count stays within u8"),
                token: sub.timer_token,
            },
        );
    }

    fn on_rto(&mut self, conn: ConnId, subflow: u8, token: u64) {
        let ci = conn.0 as usize;
        let si = subflow as usize;
        if self.conns[ci].finish.is_some() {
            return;
        }
        {
            let sub = &self.conns[ci].subflows[si];
            if !sub.timer_armed || sub.timer_token != token {
                return;
            }
        }
        if self.conns[ci].subflows[si].outstanding() == 0 {
            self.conns[ci].subflows[si].timer_armed = false;
            return;
        }
        let eff = self.conns[ci].subflows[si].effective_rto(&self.cfg.tcp);
        let deadline = self.last_progress[ci][si] + eff;
        if self.now < deadline {
            let tok = self.conns[ci].subflows[si].timer_token;
            self.events.schedule(
                deadline,
                EventKind::RtoTimer {
                    conn,
                    subflow,
                    token: tok,
                },
            );
            return;
        }
        {
            let sub = &mut self.conns[ci].subflows[si];
            sub.timeouts += 1;
            let flight = sub.in_flight() as f64;
            sub.ssthresh = (flight / 2.0).max(2.0);
            sub.cwnd = 1.0;
            sub.in_recovery = false;
            sub.dupacks = 0;
            sub.backoff += 1;
            sub.rtx_queue.clear();
            sub.resend_high = sub.snd_una;
            sub.timer_armed = false;
        }
        let has_live_sibling = self.conns[ci]
            .subflows
            .iter()
            .enumerate()
            .any(|(j, s)| j != si && !s.dead);
        if self.conns[ci].subflows[si].backoff >= self.cfg.tcp.dead_after_backoff
            && has_live_sibling
        {
            let reclaimed = {
                let sub = &mut self.conns[ci].subflows[si];
                sub.dead = true;
                let lost = sub.highest_sent - sub.snd_una;
                sub.highest_sent = sub.snd_una;
                sub.resend_high = sub.snd_una;
                lost
            };
            self.conns[ci].assigned -= reclaimed;
            self.pump(conn);
            return;
        }
        self.last_progress[ci][si] = self.now;
        self.pump(conn);
        if !self.conns[ci].subflows[si].timer_armed {
            self.arm_timer(conn, si);
        }
    }

    /// Run until the event queue drains.
    pub fn run_to_completion(&mut self) {
        while let Some(ev) = self.events.pop() {
            self.now = ev.time;
            match ev.kind {
                EventKind::QueueDeparture { link } => self.on_departure(link),
                EventKind::Arrival { packet } => self.on_arrival(packet),
                EventKind::RtoTimer {
                    conn,
                    subflow,
                    token,
                } => self.on_rto(conn, subflow, token),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_routing::{host_route, RouteAlgo, Router};
    use pnet_topology::{assemble_homogeneous, FatTree, LinkProfile, PlaneId};

    /// Both engines run the same 8-flow batch; completion records must be
    /// field-for-field identical. This is the small always-on version of the
    /// paper-scale assertion `bench_report` makes.
    #[test]
    fn reference_engine_matches_production_engine() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let router = Router::new(&net, RouteAlgo::Ksp { k: 1 });
        let flows: Vec<FlowSpec> = (0..8u32)
            .map(|h| {
                let (src, dst) = (HostId(h), HostId(15 - h));
                let (ra, rb) = (net.rack_of_host(src), net.rack_of_host(dst));
                let routes: Vec<_> = (0..2u16)
                    .map(|p| {
                        let path = router.paths_in_plane(PlaneId(p), ra, rb)[0].clone();
                        host_route(&net, src, dst, &path)
                            .expect("invariant: fat-tree pair is routable")
                    })
                    .collect();
                FlowSpec {
                    src,
                    dst,
                    size_bytes: 300_000 + 50_000 * u64::from(h % 3),
                    routes,
                    cc: CcAlgo::Lia,
                    owner_tag: u64::from(h),
                }
            })
            .collect();

        let mut new_sim = crate::sim::Simulator::new(&net, SimConfig::default());
        for f in &flows {
            new_sim.start_flow(f.clone());
        }
        crate::sim::run_to_completion(&mut new_sim);

        let mut ref_sim = RefSimulator::new(&net, SimConfig::default());
        for f in &flows {
            ref_sim.start_flow(f.clone());
        }
        ref_sim.run_to_completion();

        assert_eq!(new_sim.records.len(), ref_sim.records.len());
        let key = |r: &FlowRecord| {
            (
                r.owner_tag,
                r.start.as_ps(),
                r.finish.as_ps(),
                r.retransmits,
                r.timeouts,
            )
        };
        let mut a: Vec<_> = new_sim.records.iter().map(key).collect();
        let mut b: Vec<_> = ref_sim.records.iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "engines diverged on an identical workload");
    }
}
