//! Per-link drop-tail output queues.
//!
//! Every directed link of the network has one FIFO output queue that
//! serializes packets at the link rate and then hands them to the link's
//! propagation delay. This is the htsim component model: queue → pipe, fused
//! here because a pipe never reorders or drops.

use crate::packet::Packet;
use crate::time::{serialization_ps, SimTime};
use std::collections::VecDeque;

/// A drop-tail FIFO with a byte-capacity bound and optional ECN marking.
#[derive(Debug)]
pub struct Queue {
    /// Line rate, bits per second.
    pub rate_bps: u64,
    /// Propagation delay of the attached link, picoseconds.
    pub delay_ps: u64,
    /// Buffer bound in bytes (drop-tail beyond this).
    pub capacity_bytes: u64,
    /// ECN marking threshold (DCTCP's K): data packets enqueued while the
    /// occupancy exceeds this get a CE mark. `None` disables marking.
    pub ecn_threshold_bytes: Option<u64>,
    /// When false the link is dark: every arriving packet is dropped
    /// (mid-simulation link failure). Already-buffered packets still drain.
    pub link_up: bool,
    /// Packets marked CE.
    pub marked: u64,
    /// Bytes currently buffered (including the packet in service).
    buffered_bytes: u64,
    fifo: VecDeque<Packet>,
    /// True while a packet is being serialized (a departure event is
    /// outstanding).
    busy: bool,
    /// Statistics.
    pub enqueued: u64,
    /// Drop-tail losses: packet arrived at a live link with a full buffer.
    pub dropped: u64,
    /// Packets discarded because the link was down, not because the buffer
    /// was full — kept apart so failure experiments don't misread blackhole
    /// loss as congestion.
    pub dropped_link_down: u64,
    /// Peak queue occupancy in bytes.
    pub peak_bytes: u64,
    /// Cumulative bytes that completed serialization on this link (the
    /// numerator of the telemetry layer's per-plane utilization samples).
    pub bytes_sent: u64,
}

/// Outcome of an enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Packet accepted and serialization should start now (the caller must
    /// schedule the departure event at `now + serialization`).
    StartService,
    /// Packet accepted behind others; a departure event is already pending.
    Queued,
    /// Buffer full: packet dropped.
    Dropped,
    /// Link is down: packet discarded regardless of buffer occupancy.
    DroppedLinkDown,
}

impl Queue {
    /// New queue for a link.
    pub fn new(rate_bps: u64, delay_ps: u64, capacity_bytes: u64) -> Self {
        Queue {
            rate_bps,
            delay_ps,
            capacity_bytes,
            ecn_threshold_bytes: None,
            link_up: true,
            marked: 0,
            buffered_bytes: 0,
            fifo: VecDeque::new(),
            busy: false,
            enqueued: 0,
            dropped: 0,
            dropped_link_down: 0,
            peak_bytes: 0,
            bytes_sent: 0,
        }
    }

    /// Try to accept `packet`.
    pub fn enqueue(&mut self, mut packet: Packet) -> Enqueue {
        let size = packet.size_bytes as u64;
        if !self.link_up {
            self.dropped_link_down += 1;
            return Enqueue::DroppedLinkDown;
        }
        if self.buffered_bytes + size > self.capacity_bytes {
            self.dropped += 1;
            return Enqueue::Dropped;
        }
        self.buffered_bytes += size;
        self.peak_bytes = self.peak_bytes.max(self.buffered_bytes);
        self.enqueued += 1;
        if let Some(k) = self.ecn_threshold_bytes {
            if self.buffered_bytes > k {
                if let crate::packet::PacketKind::Data { ce, .. } = &mut packet.kind {
                    if !*ce {
                        *ce = true;
                        self.marked += 1;
                    }
                }
            }
        }
        self.fifo.push_back(packet);
        if self.busy {
            Enqueue::Queued
        } else {
            self.busy = true;
            Enqueue::StartService
        }
    }

    /// Serialization time of the head-of-line packet (call when starting
    /// service).
    pub fn head_service_ps(&self) -> u64 {
        let head = self
            .fifo
            .front()
            .expect("invariant: service only starts on a non-empty queue");
        serialization_ps(head.size_bytes, self.rate_bps)
    }

    /// Complete service of the head packet: returns it together with the
    /// absolute arrival time at the other end of the link, and whether
    /// another departure event must be scheduled (`Some(next_service_ps)`)
    /// for the new head.
    pub fn depart(&mut self, now: SimTime) -> (Packet, SimTime, Option<u64>) {
        let packet = self
            .fifo
            .pop_front()
            .expect("invariant: departures only fire on a non-empty queue");
        self.buffered_bytes -= packet.size_bytes as u64;
        self.bytes_sent += packet.size_bytes as u64;
        let arrival = now + SimTime::from_ps(self.delay_ps);
        let next = if self.fifo.is_empty() {
            self.busy = false;
            None
        } else {
            Some(self.head_service_ps())
        };
        (packet, arrival, next)
    }

    /// Bytes currently buffered.
    pub fn buffered_bytes(&self) -> u64 {
        self.buffered_bytes
    }

    /// Packets currently buffered.
    pub fn depth(&self) -> usize {
        self.fifo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{ConnId, PacketKind, MTU_BYTES};
    use pnet_topology::LinkId;
    use std::sync::Arc;

    fn pkt(size: u32) -> Packet {
        Packet {
            route: Arc::new(vec![LinkId(0)]),
            hop: 0,
            size_bytes: size,
            kind: PacketKind::Data {
                conn: ConnId(0),
                subflow: 0,
                seq: 0,
                ts: SimTime::ZERO,
                rtx: false,
                ce: false,
            },
        }
    }

    #[test]
    fn first_packet_starts_service() {
        let mut q = Queue::new(100_000_000_000, 1000, 10 * MTU_BYTES as u64);
        assert_eq!(q.enqueue(pkt(1500)), Enqueue::StartService);
        assert_eq!(q.enqueue(pkt(1500)), Enqueue::Queued);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn service_time_is_serialization() {
        let mut q = Queue::new(100_000_000_000, 1000, 10 * MTU_BYTES as u64);
        q.enqueue(pkt(1500));
        assert_eq!(q.head_service_ps(), 120_000); // 120 ns at 100G
    }

    #[test]
    fn departure_adds_propagation() {
        let mut q = Queue::new(100_000_000_000, 5_000_000, 10 * MTU_BYTES as u64);
        q.enqueue(pkt(1500));
        let now = SimTime::from_ps(120_000);
        let (p, arrival, next) = q.depart(now);
        assert_eq!(p.size_bytes, 1500);
        assert_eq!(arrival, SimTime::from_ps(120_000 + 5_000_000));
        assert!(next.is_none());
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut q = Queue::new(100_000_000_000, 0, 2 * 1500);
        assert_eq!(q.enqueue(pkt(1500)), Enqueue::StartService);
        assert_eq!(q.enqueue(pkt(1500)), Enqueue::Queued);
        assert_eq!(q.enqueue(pkt(1500)), Enqueue::Dropped);
        assert_eq!(q.dropped, 1);
        assert_eq!(q.enqueued, 2);
    }

    #[test]
    fn small_packet_fits_after_big_drop() {
        let mut q = Queue::new(100_000_000_000, 0, 1540);
        q.enqueue(pkt(1500));
        assert_eq!(q.enqueue(pkt(1500)), Enqueue::Dropped);
        assert_eq!(q.enqueue(pkt(40)), Enqueue::Queued);
    }

    #[test]
    fn pipeline_of_departures() {
        let mut q = Queue::new(100_000_000_000, 0, 10_000);
        q.enqueue(pkt(1500));
        q.enqueue(pkt(1500));
        let (_, _, next) = q.depart(SimTime::from_ps(120_000));
        assert_eq!(next, Some(120_000));
        let (_, _, next) = q.depart(SimTime::from_ps(240_000));
        assert!(next.is_none());
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut q = Queue::new(100_000_000_000, 0, 100 * 1500);
        q.ecn_threshold_bytes = Some(2 * 1500);
        q.enqueue(pkt(1500)); // occupancy 1500 <= 3000: no mark
        q.enqueue(pkt(1500)); // occupancy 3000 <= 3000: no mark
        q.enqueue(pkt(1500)); // occupancy 4500 > 3000: mark
        assert_eq!(q.marked, 1);
        // Verify the mark landed on the third packet.
        let (p1, _, _) = q.depart(SimTime::ZERO);
        let (p2, _, _) = q.depart(SimTime::ZERO);
        let (p3, _, _) = q.depart(SimTime::ZERO);
        let ce = |p: &Packet| matches!(p.kind, PacketKind::Data { ce, .. } if ce);
        assert!(!ce(&p1));
        assert!(!ce(&p2));
        assert!(ce(&p3));
    }

    #[test]
    fn no_marking_when_disabled() {
        let mut q = Queue::new(100_000_000_000, 0, 100 * 1500);
        for _ in 0..50 {
            q.enqueue(pkt(1500));
        }
        assert_eq!(q.marked, 0);
    }

    #[test]
    fn link_down_drops_counted_separately() {
        let mut q = Queue::new(100_000_000_000, 0, 2 * 1500);
        q.enqueue(pkt(1500));
        q.enqueue(pkt(1500));
        assert_eq!(q.enqueue(pkt(1500)), Enqueue::Dropped); // congestion
        q.link_up = false;
        // Plenty of headroom would exist after a departure, but the link is
        // dark: this is a failure drop, not drop-tail.
        assert_eq!(q.enqueue(pkt(40)), Enqueue::DroppedLinkDown);
        assert_eq!(q.enqueue(pkt(40)), Enqueue::DroppedLinkDown);
        assert_eq!(q.dropped, 1);
        assert_eq!(q.dropped_link_down, 2);
        assert_eq!(q.enqueued, 2);
    }

    #[test]
    fn peak_tracking() {
        let mut q = Queue::new(1_000_000_000, 0, 100_000);
        q.enqueue(pkt(1500));
        q.enqueue(pkt(1500));
        q.depart(SimTime::ZERO);
        assert_eq!(q.peak_bytes, 3000);
    }

    #[test]
    fn bytes_sent_counts_departures_only() {
        let mut q = Queue::new(1_000_000_000, 0, 100_000);
        q.enqueue(pkt(1500));
        q.enqueue(pkt(40));
        assert_eq!(q.bytes_sent, 0); // buffered, not yet on the wire
        q.depart(SimTime::ZERO);
        assert_eq!(q.bytes_sent, 1500);
        q.depart(SimTime::ZERO);
        assert_eq!(q.bytes_sent, 1540);
    }
}
