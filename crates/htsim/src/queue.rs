//! Per-link drop-tail output queues.
//!
//! Every directed link of the network has one FIFO output queue that
//! serializes packets at the link rate and then hands them to the link's
//! propagation delay. This is the htsim component model: queue → pipe, fused
//! here because a pipe never reorders or drops.
//!
//! Queues store [`PacketId`]s (plus the wire size, so service times never
//! touch the arena), not packets: the packet itself stays in the simulator's
//! [`crate::packet::PacketArena`] slot for its whole queue → wire → next-hop
//! life.

use crate::packet::{Packet, PacketId, ACK_BYTES, MTU_BYTES};
use crate::time::{serialization_ps, SimTime};
use std::collections::VecDeque;

/// A drop-tail FIFO with a byte-capacity bound and optional ECN marking.
#[derive(Debug)]
pub struct Queue {
    /// Line rate, bits per second.
    pub rate_bps: u64,
    /// Propagation delay of the attached link, picoseconds.
    pub delay_ps: u64,
    /// Buffer bound in bytes (drop-tail beyond this).
    pub capacity_bytes: u64,
    /// ECN marking threshold (DCTCP's K): data packets enqueued while the
    /// occupancy exceeds this get a CE mark. `None` disables marking.
    pub ecn_threshold_bytes: Option<u64>,
    /// When false the link is dark: every arriving packet is dropped
    /// (mid-simulation link failure). Already-buffered packets still drain.
    pub link_up: bool,
    /// Packets marked CE.
    pub marked: u64,
    /// Bytes currently buffered (including the packet in service).
    buffered_bytes: u64,
    fifo: VecDeque<(PacketId, u32)>,
    /// True while a packet is being serialized (a departure event is
    /// outstanding).
    busy: bool,
    /// Statistics.
    pub enqueued: u64,
    /// Drop-tail losses: packet arrived at a live link with a full buffer.
    pub dropped: u64,
    /// Packets discarded because the link was down, not because the buffer
    /// was full — kept apart so failure experiments don't misread blackhole
    /// loss as congestion.
    pub dropped_link_down: u64,
    /// Peak queue occupancy in bytes.
    pub peak_bytes: u64,
    /// Cumulative bytes that completed serialization on this link (the
    /// numerator of the telemetry layer's per-plane utilization samples).
    pub bytes_sent: u64,
    /// Memoized serialization times for the two wire sizes that dominate
    /// traffic (full data segments and bare ACKs). Valid because `rate_bps`
    /// is fixed at construction; other sizes fall through to the exact
    /// computation, so every answer equals `serialization_ps`.
    ser_cache: [(u32, u64); 2],
}

/// Outcome of an enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Packet accepted and serialization should start now (the caller must
    /// schedule the departure event at `now + serialization`).
    StartService,
    /// Packet accepted behind others; a departure event is already pending.
    Queued,
    /// Buffer full: packet dropped (the caller frees the arena slot).
    Dropped,
    /// Link is down: packet discarded regardless of buffer occupancy (the
    /// caller frees the arena slot).
    DroppedLinkDown,
}

impl Queue {
    /// New queue for a link.
    pub fn new(rate_bps: u64, delay_ps: u64, capacity_bytes: u64) -> Self {
        Queue {
            rate_bps,
            delay_ps,
            capacity_bytes,
            ecn_threshold_bytes: None,
            link_up: true,
            marked: 0,
            buffered_bytes: 0,
            fifo: VecDeque::new(),
            busy: false,
            enqueued: 0,
            dropped: 0,
            dropped_link_down: 0,
            peak_bytes: 0,
            bytes_sent: 0,
            ser_cache: [
                (MTU_BYTES, serialization_ps(MTU_BYTES, rate_bps)),
                (ACK_BYTES, serialization_ps(ACK_BYTES, rate_bps)),
            ],
        }
    }

    /// Try to accept the packet in arena slot `id`. `packet` is that slot,
    /// borrowed by the caller; on acceptance above the ECN threshold its CE
    /// bit is marked in place. On `Dropped` / `DroppedLinkDown` the caller
    /// keeps ownership of the slot (and frees it).
    #[inline]
    pub fn enqueue(&mut self, id: PacketId, packet: &mut Packet) -> Enqueue {
        let size = packet.size_bytes as u64;
        if !self.link_up {
            self.dropped_link_down += 1;
            return Enqueue::DroppedLinkDown;
        }
        if self.buffered_bytes + size > self.capacity_bytes {
            self.dropped += 1;
            return Enqueue::Dropped;
        }
        self.buffered_bytes += size;
        self.peak_bytes = self.peak_bytes.max(self.buffered_bytes);
        self.enqueued += 1;
        if let Some(k) = self.ecn_threshold_bytes {
            if self.buffered_bytes > k {
                if let crate::packet::PacketKind::Data { ce, .. } = &mut packet.kind {
                    if !*ce {
                        *ce = true;
                        self.marked += 1;
                    }
                }
            }
        }
        self.fifo.push_back((id, packet.size_bytes));
        if self.busy {
            Enqueue::Queued
        } else {
            self.busy = true;
            Enqueue::StartService
        }
    }

    /// Serialization time of the head-of-line packet (call when starting
    /// service).
    #[inline]
    pub fn head_service_ps(&self) -> u64 {
        let &(_, size) = self
            .fifo
            .front()
            .expect("invariant: service only starts on a non-empty queue");
        self.service_ps(size)
    }

    /// Serialization time for `size` bytes at this link's rate, via the
    /// memo for the common wire sizes.
    #[inline]
    fn service_ps(&self, size: u32) -> u64 {
        for &(s, ps) in &self.ser_cache {
            if s == size {
                return ps;
            }
        }
        serialization_ps(size, self.rate_bps)
    }

    /// Complete service of the head packet: returns its arena id together
    /// with the absolute arrival time at the other end of the link, and
    /// whether another departure event must be scheduled
    /// (`Some(next_service_ps)`) for the new head.
    #[inline]
    pub fn depart(&mut self, now: SimTime) -> (PacketId, SimTime, Option<u64>) {
        let (id, size) = self
            .fifo
            .pop_front()
            .expect("invariant: departures only fire on a non-empty queue");
        self.buffered_bytes -= size as u64;
        self.bytes_sent += size as u64;
        let arrival = now + SimTime::from_ps(self.delay_ps);
        let next = if self.fifo.is_empty() {
            self.busy = false;
            None
        } else {
            Some(self.head_service_ps())
        };
        (id, arrival, next)
    }

    /// Bytes currently buffered.
    pub fn buffered_bytes(&self) -> u64 {
        self.buffered_bytes
    }

    /// Packets currently buffered.
    pub fn depth(&self) -> usize {
        self.fifo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{ConnId, PacketArena, PacketKind, MTU_BYTES};
    use pnet_topology::LinkId;
    use std::sync::Arc;

    fn pkt(size: u32) -> Packet {
        Packet {
            route: Arc::from(vec![LinkId(0)]),
            hop: 0,
            size_bytes: size,
            kind: PacketKind::Data {
                conn: ConnId(0),
                subflow: 0,
                seq: 0,
                ts: SimTime::ZERO,
                rtx: false,
                ce: false,
            },
        }
    }

    /// Allocate into `arena` and enqueue, mirroring the simulator's split
    /// borrow of arena and queue.
    fn push(q: &mut Queue, arena: &mut PacketArena, size: u32) -> Enqueue {
        let id = arena.alloc(pkt(size));
        let r = q.enqueue(id, &mut arena[id]);
        if matches!(r, Enqueue::Dropped | Enqueue::DroppedLinkDown) {
            arena.free(id);
        }
        r
    }

    #[test]
    fn first_packet_starts_service() {
        let mut a = PacketArena::new();
        let mut q = Queue::new(100_000_000_000, 1000, 10 * MTU_BYTES as u64);
        assert_eq!(push(&mut q, &mut a, 1500), Enqueue::StartService);
        assert_eq!(push(&mut q, &mut a, 1500), Enqueue::Queued);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn service_time_is_serialization() {
        let mut a = PacketArena::new();
        let mut q = Queue::new(100_000_000_000, 1000, 10 * MTU_BYTES as u64);
        push(&mut q, &mut a, 1500);
        assert_eq!(q.head_service_ps(), 120_000); // 120 ns at 100G
    }

    #[test]
    fn departure_adds_propagation() {
        let mut a = PacketArena::new();
        let mut q = Queue::new(100_000_000_000, 5_000_000, 10 * MTU_BYTES as u64);
        push(&mut q, &mut a, 1500);
        let now = SimTime::from_ps(120_000);
        let (id, arrival, next) = q.depart(now);
        assert_eq!(a[id].size_bytes, 1500);
        assert_eq!(arrival, SimTime::from_ps(120_000 + 5_000_000));
        assert!(next.is_none());
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut a = PacketArena::new();
        let mut q = Queue::new(100_000_000_000, 0, 2 * 1500);
        assert_eq!(push(&mut q, &mut a, 1500), Enqueue::StartService);
        assert_eq!(push(&mut q, &mut a, 1500), Enqueue::Queued);
        assert_eq!(push(&mut q, &mut a, 1500), Enqueue::Dropped);
        assert_eq!(q.dropped, 1);
        assert_eq!(q.enqueued, 2);
        // The dropped packet's slot went back to the freelist.
        assert_eq!(a.live(), 2);
    }

    #[test]
    fn small_packet_fits_after_big_drop() {
        let mut a = PacketArena::new();
        let mut q = Queue::new(100_000_000_000, 0, 1540);
        push(&mut q, &mut a, 1500);
        assert_eq!(push(&mut q, &mut a, 1500), Enqueue::Dropped);
        assert_eq!(push(&mut q, &mut a, 40), Enqueue::Queued);
    }

    #[test]
    fn pipeline_of_departures() {
        let mut a = PacketArena::new();
        let mut q = Queue::new(100_000_000_000, 0, 10_000);
        push(&mut q, &mut a, 1500);
        push(&mut q, &mut a, 1500);
        let (_, _, next) = q.depart(SimTime::from_ps(120_000));
        assert_eq!(next, Some(120_000));
        let (_, _, next) = q.depart(SimTime::from_ps(240_000));
        assert!(next.is_none());
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut a = PacketArena::new();
        let mut q = Queue::new(100_000_000_000, 0, 100 * 1500);
        q.ecn_threshold_bytes = Some(2 * 1500);
        push(&mut q, &mut a, 1500); // occupancy 1500 <= 3000: no mark
        push(&mut q, &mut a, 1500); // occupancy 3000 <= 3000: no mark
        push(&mut q, &mut a, 1500); // occupancy 4500 > 3000: mark
        assert_eq!(q.marked, 1);
        // Verify the mark landed on the third packet — in its arena slot.
        let (p1, _, _) = q.depart(SimTime::ZERO);
        let (p2, _, _) = q.depart(SimTime::ZERO);
        let (p3, _, _) = q.depart(SimTime::ZERO);
        let ce = |id: PacketId| matches!(a[id].kind, PacketKind::Data { ce, .. } if ce);
        assert!(!ce(p1));
        assert!(!ce(p2));
        assert!(ce(p3));
    }

    #[test]
    fn no_marking_when_disabled() {
        let mut a = PacketArena::new();
        let mut q = Queue::new(100_000_000_000, 0, 100 * 1500);
        for _ in 0..50 {
            push(&mut q, &mut a, 1500);
        }
        assert_eq!(q.marked, 0);
    }

    #[test]
    fn link_down_drops_counted_separately() {
        let mut a = PacketArena::new();
        let mut q = Queue::new(100_000_000_000, 0, 2 * 1500);
        push(&mut q, &mut a, 1500);
        push(&mut q, &mut a, 1500);
        assert_eq!(push(&mut q, &mut a, 1500), Enqueue::Dropped); // congestion
        q.link_up = false;
        // Plenty of headroom would exist after a departure, but the link is
        // dark: this is a failure drop, not drop-tail.
        assert_eq!(push(&mut q, &mut a, 40), Enqueue::DroppedLinkDown);
        assert_eq!(push(&mut q, &mut a, 40), Enqueue::DroppedLinkDown);
        assert_eq!(q.dropped, 1);
        assert_eq!(q.dropped_link_down, 2);
        assert_eq!(q.enqueued, 2);
    }

    #[test]
    fn peak_tracking() {
        let mut a = PacketArena::new();
        let mut q = Queue::new(1_000_000_000, 0, 100_000);
        push(&mut q, &mut a, 1500);
        push(&mut q, &mut a, 1500);
        q.depart(SimTime::ZERO);
        assert_eq!(q.peak_bytes, 3000);
    }

    #[test]
    fn bytes_sent_counts_departures_only() {
        let mut a = PacketArena::new();
        let mut q = Queue::new(1_000_000_000, 0, 100_000);
        push(&mut q, &mut a, 1500);
        push(&mut q, &mut a, 40);
        assert_eq!(q.bytes_sent, 0); // buffered, not yet on the wire
        q.depart(SimTime::ZERO);
        assert_eq!(q.bytes_sent, 1500);
        q.depart(SimTime::ZERO);
        assert_eq!(q.bytes_sent, 1540);
    }
}
