//! Metric helpers: percentiles, means, and CDFs over flow records, plus the
//! packet-loss breakdown by cause.

use crate::sim::{FlowRecord, QueueStats};
use crate::time::SimTime;

/// Packet losses split by cause across a set of queues. Drop-tail loss at a
/// live link signals congestion; a discard at a dark link signals failure —
/// conflating them makes failure experiments look like buffer problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DropBreakdown {
    /// Drop-tail losses at live links.
    pub congestion: u64,
    /// Discards at links that were down.
    pub link_down: u64,
}

impl DropBreakdown {
    /// Sum the breakdown over per-queue statistics (e.g. one
    /// [`crate::Simulator::queue_stats`] call per link).
    pub fn accumulate(stats: impl IntoIterator<Item = QueueStats>) -> Self {
        let mut out = DropBreakdown::default();
        for qs in stats {
            out.congestion += qs.dropped;
            out.link_down += qs.dropped_link_down;
        }
        out
    }

    /// All losses regardless of cause.
    pub fn total(&self) -> u64 {
        self.congestion + self.link_down
    }
}

/// A percentile of a sample set (nearest-rank). `p` in [0, 100].
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of empty sample set");
    assert!((0.0..=100.0).contains(&p));
    let mut v = samples.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
    v[rank.saturating_sub(1).min(v.len() - 1)]
}

/// Arithmetic mean.
pub fn mean(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Sample standard deviation (n-1 denominator); 0 for a single sample.
pub fn stddev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (samples.len() - 1) as f64;
    var.sqrt()
}

/// Empirical CDF points `(value, fraction <= value)`, one per distinct value.
pub fn ecdf(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut v = samples.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, x) in v.iter().enumerate() {
        let frac = (i + 1) as f64 / n;
        match out.last_mut() {
            // pnet-tidy: allow(D3) -- dedup of sorted samples: exact representation equality is the intent
            Some(last) if last.0 == *x => last.1 = frac,
            _ => out.push((*x, frac)),
        }
    }
    out
}

/// Flow completion times in microseconds.
pub fn fcts_us(records: &[FlowRecord]) -> Vec<f64> {
    records.iter().map(|r| r.fct().as_us_f64()).collect()
}

/// Records filtered by owner tag.
pub fn with_tag(records: &[FlowRecord], tag: u64) -> Vec<&FlowRecord> {
    records.iter().filter(|r| r.owner_tag == tag).collect()
}

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub median: f64,
    pub p90: f64,
    pub p99: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Build from samples.
    pub fn of(samples: &[f64]) -> Summary {
        Summary {
            n: samples.len(),
            mean: mean(samples),
            median: percentile(samples, 50.0),
            p90: percentile(samples, 90.0),
            p99: percentile(samples, 99.0),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Convert a picosecond duration sample set to microseconds.
pub fn ps_to_us(samples_ps: &[u64]) -> Vec<f64> {
    samples_ps
        .iter()
        .map(|&p| SimTime::from_ps(p).as_us_f64())
        .collect()
}

/// Goodput of a record in Gb/s. A zero-duration record (degenerate, e.g. a
/// hand-built placeholder) yields 0.0 rather than infinity, so aggregates
/// like [`mean`] and [`Summary::of`] stay finite.
pub fn goodput_gbps(rec: &FlowRecord) -> f64 {
    let secs = rec.fct().as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    // pnet-tidy: allow(U1) -- this *is* the checked bits->Gb/s conversion helper the rule points callers at
    rec.size_bytes as f64 * 8.0 / secs / 1e9
}

/// Format a [`SimTime`] duration as adaptive microseconds/milliseconds.
pub fn fmt_duration(t: SimTime) -> String {
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_breakdown_sums_by_cause() {
        let q = |dropped, link_down| QueueStats {
            enqueued: 10,
            dropped,
            dropped_link_down: link_down,
            peak_bytes: 0,
            bytes_sent: 0,
        };
        let b = DropBreakdown::accumulate([q(3, 0), q(0, 5), q(2, 1)]);
        assert_eq!(b.congestion, 5);
        assert_eq!(b.link_down, 6);
        assert_eq!(b.total(), 11);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
    }

    #[test]
    fn mean_and_stddev() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((stddev(&v) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn ecdf_steps() {
        let v = [1.0, 1.0, 2.0, 3.0];
        let cdf = ecdf(&v);
        assert_eq!(cdf, vec![(1.0, 0.5), (2.0, 0.75), (3.0, 1.0)]);
    }

    #[test]
    fn summary_consistency() {
        let v: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let s = Summary::of(&v);
        assert_eq!(s.n, 10);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.median, 5.0);
        assert!((s.mean - 5.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 50.0);
    }

    #[test]
    fn goodput_of_zero_duration_record_is_zero_not_infinite() {
        use crate::packet::ConnId;
        use pnet_topology::HostId;
        let rec = |fct_ps: u64| FlowRecord {
            conn: ConnId(0),
            src: HostId(0),
            dst: HostId(1),
            size_bytes: 1500,
            start: SimTime::from_us(1),
            finish: SimTime::from_us(1) + SimTime::from_ps(fct_ps),
            retransmits: 0,
            timeouts: 0,
            n_subflows: 1,
            min_switch_hops: 2,
            owner_tag: 0,
        };
        let degenerate = rec(0);
        assert_eq!(goodput_gbps(&degenerate), 0.0);
        // And it no longer poisons aggregates.
        let normal = rec(1_000_000); // 1500 B in 1 us = 12 Gb/s
        let m = mean(&[goodput_gbps(&degenerate), goodput_gbps(&normal)]);
        assert!(m.is_finite());
        assert!((m - 6.0).abs() < 1e-9, "mean goodput {m}");
    }
}
