//! Workload drivers: the application layer of the simulator.
//!
//! Three reusable [`Driver`]s cover every packet-level experiment in the
//! paper:
//!
//! * [`ClosedLoopDriver`] — N flow "slots", each immediately replaced on
//!   completion with a fresh flow (the trace-replay setup of section 5.3:
//!   "each flow runs in a closed loop");
//! * [`RpcDriver`] — ping-pong request/response pairs with per-round
//!   completion times (sections 5.2.1 and Figure 11's concurrent RPCs);
//! * [`ShuffleDriver`] — staged bulk transfers with per-worker concurrency
//!   limits and per-worker stage completion times (the Hadoop sort of
//!   section 5.2.2).
//!
//! Drivers know nothing about topologies: a *flow factory* closure maps
//! `(src, dst, size)` to subflow routes and a congestion controller, which is
//! where the P-Net path-selection policies plug in.

use crate::sim::{Driver, FlowRecord, FlowSpec, Simulator};
use crate::tcp::CcAlgo;
use crate::time::SimTime;
use pnet_topology::{HostId, LinkId};

/// Maps a flow request to concrete subflow routes and a congestion
/// controller. This is the hook where path-selection policy lives.
pub type FlowFactory<'a> = Box<dyn FnMut(HostId, HostId, u64) -> (Vec<Vec<LinkId>>, CcAlgo) + 'a>;

/// Build a [`FlowSpec`] through a factory.
fn make_spec(factory: &mut FlowFactory, src: HostId, dst: HostId, size: u64, tag: u64) -> FlowSpec {
    let (routes, cc) = factory(src, dst, size);
    FlowSpec {
        src,
        dst,
        size_bytes: size,
        routes,
        cc,
        owner_tag: tag,
    }
}

// ---------------------------------------------------------------------------
// Closed-loop driver
// ---------------------------------------------------------------------------

/// One closed-loop slot: a (source, destination-chooser, size-sampler)
/// triple that always keeps exactly one flow in flight.
pub struct ClosedLoopSlot<'a> {
    /// Fixed source host.
    pub src: HostId,
    /// Produces the next destination (may be constant or random).
    pub next_dst: Box<dyn FnMut() -> HostId + 'a>,
    /// Produces the next flow size in bytes.
    pub next_size: Box<dyn FnMut() -> u64 + 'a>,
}

/// Keeps `slots.len()` flows in flight until `stop` (new flows are not
/// started after `stop`; in-flight ones finish).
pub struct ClosedLoopDriver<'a> {
    slots: Vec<ClosedLoopSlot<'a>>,
    factory: FlowFactory<'a>,
    stop: SimTime,
    /// All completed flow records, in completion order.
    pub completed: Vec<FlowRecord>,
}

impl<'a> ClosedLoopDriver<'a> {
    /// Create the driver and start one flow per slot.
    pub fn start(
        sim: &mut Simulator,
        mut slots: Vec<ClosedLoopSlot<'a>>,
        mut factory: FlowFactory<'a>,
        stop: SimTime,
    ) -> Self {
        for (i, slot) in slots.iter_mut().enumerate() {
            let dst = (slot.next_dst)();
            let size = (slot.next_size)();
            let spec = make_spec(&mut factory, slot.src, dst, size, i as u64);
            sim.start_flow(spec);
        }
        ClosedLoopDriver {
            slots,
            factory,
            stop,
            completed: Vec::new(),
        }
    }
}

impl Driver for ClosedLoopDriver<'_> {
    fn on_flow_complete(&mut self, sim: &mut Simulator, rec: &FlowRecord) {
        self.completed.push(rec.clone());
        if sim.now >= self.stop {
            return;
        }
        let i = rec.owner_tag as usize;
        let slot = &mut self.slots[i];
        let dst = (slot.next_dst)();
        let size = (slot.next_size)();
        let spec = make_spec(&mut self.factory, slot.src, dst, size, rec.owner_tag);
        sim.start_flow(spec);
    }
}

// ---------------------------------------------------------------------------
// Open-loop (Poisson arrival) driver
// ---------------------------------------------------------------------------

/// Open-loop workload: flows arrive on a global arrival process regardless
/// of completions (the standard FCT-versus-offered-load methodology).
/// Arrivals stop at `stop`; in-flight flows drain afterwards.
pub struct OpenLoopDriver<'a> {
    factory: FlowFactory<'a>,
    /// Samples the next flow: (source, destination, size).
    next_flow: Box<dyn FnMut() -> (HostId, HostId, u64) + 'a>,
    /// Samples the next inter-arrival gap.
    next_gap: Box<dyn FnMut() -> SimTime + 'a>,
    stop: SimTime,
    /// All completed flow records.
    pub completed: Vec<FlowRecord>,
    /// Flows started.
    pub started: u64,
}

/// App id used by [`OpenLoopDriver`]'s arrival timer.
const OPEN_LOOP_APP: u32 = 0xA1;

impl<'a> OpenLoopDriver<'a> {
    /// Create the driver and schedule the first arrival.
    pub fn start(
        sim: &mut Simulator,
        factory: FlowFactory<'a>,
        next_flow: Box<dyn FnMut() -> (HostId, HostId, u64) + 'a>,
        mut next_gap: Box<dyn FnMut() -> SimTime + 'a>,
        stop: SimTime,
    ) -> Self {
        let first = sim.now + next_gap();
        sim.schedule_app(first, OPEN_LOOP_APP, 0);
        OpenLoopDriver {
            factory,
            next_flow,
            next_gap,
            stop,
            completed: Vec::new(),
            started: 0,
        }
    }
}

impl Driver for OpenLoopDriver<'_> {
    fn on_app_timer(&mut self, sim: &mut Simulator, app: u32, _tag: u64) {
        debug_assert_eq!(app, OPEN_LOOP_APP);
        if sim.now >= self.stop {
            return; // arrivals end; in-flight flows drain
        }
        let (src, dst, size) = (self.next_flow)();
        let spec = make_spec(&mut self.factory, src, dst, size, self.started);
        sim.start_flow(spec);
        self.started += 1;
        let next = sim.now + (self.next_gap)();
        sim.schedule_app(next, OPEN_LOOP_APP, self.started);
    }

    fn on_flow_complete(&mut self, _sim: &mut Simulator, rec: &FlowRecord) {
        self.completed.push(rec.clone());
    }
}

// ---------------------------------------------------------------------------
// RPC ping-pong driver
// ---------------------------------------------------------------------------

/// One ping-pong slot (a client with one outstanding RPC at a time).
pub struct RpcSlot<'a> {
    /// The client host.
    pub client: HostId,
    /// Picks the server for each round.
    pub next_server: Box<dyn FnMut() -> HostId + 'a>,
}

/// Request/response driver: each slot sends `request_bytes` to a server,
/// the server replies with `response_bytes`, and the round-trip completion
/// time is recorded; repeated for `rounds` rounds per slot.
pub struct RpcDriver<'a> {
    slots: Vec<RpcState<'a>>,
    factory: FlowFactory<'a>,
    request_bytes: u64,
    response_bytes: u64,
    rounds: u64,
    /// Completed round times (one entry per finished round, any slot),
    /// in microseconds.
    pub round_times_us: Vec<f64>,
    /// Retransmission count summed over all request/response flows.
    pub retransmits: u64,
}

struct RpcState<'a> {
    slot: RpcSlot<'a>,
    rounds_done: u64,
    round_start: SimTime,
    current_server: HostId,
}

impl<'a> RpcDriver<'a> {
    /// Create the driver and launch round 1 on every slot.
    pub fn start(
        sim: &mut Simulator,
        slots: Vec<RpcSlot<'a>>,
        mut factory: FlowFactory<'a>,
        request_bytes: u64,
        response_bytes: u64,
        rounds: u64,
    ) -> Self {
        assert!(rounds >= 1);
        let mut states: Vec<RpcState> = slots
            .into_iter()
            .map(|slot| RpcState {
                slot,
                rounds_done: 0,
                round_start: SimTime::ZERO,
                current_server: HostId(0),
            })
            .collect();
        for (i, st) in states.iter_mut().enumerate() {
            let server = (st.slot.next_server)();
            st.current_server = server;
            st.round_start = sim.now;
            let spec = make_spec(
                &mut factory,
                st.slot.client,
                server,
                request_bytes,
                tag(i, Phase::Request),
            );
            sim.start_flow(spec);
        }
        RpcDriver {
            slots: states,
            factory,
            request_bytes,
            response_bytes,
            rounds,
            round_times_us: Vec::new(),
            retransmits: 0,
        }
    }

    /// True when every slot has finished all its rounds.
    pub fn done(&self) -> bool {
        self.slots.iter().all(|s| s.rounds_done >= self.rounds)
    }

    /// Configured request size (bytes).
    pub fn request_bytes(&self) -> u64 {
        self.request_bytes
    }
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Phase {
    Request,
    Response,
}

fn tag(slot: usize, phase: Phase) -> u64 {
    (slot as u64) << 1
        | match phase {
            Phase::Request => 0,
            Phase::Response => 1,
        }
}

fn untag(t: u64) -> (usize, Phase) {
    (
        (t >> 1) as usize,
        if t & 1 == 0 {
            Phase::Request
        } else {
            Phase::Response
        },
    )
}

impl Driver for RpcDriver<'_> {
    fn on_flow_complete(&mut self, sim: &mut Simulator, rec: &FlowRecord) {
        self.retransmits += rec.retransmits;
        let (i, phase) = untag(rec.owner_tag);
        match phase {
            Phase::Request => {
                // Server received the request: send the response back.
                let st = &self.slots[i];
                let spec = make_spec(
                    &mut self.factory,
                    st.current_server,
                    st.slot.client,
                    self.response_bytes,
                    tag(i, Phase::Response),
                );
                sim.start_flow(spec);
            }
            Phase::Response => {
                let st = &mut self.slots[i];
                let rtt = sim.now - st.round_start;
                self.round_times_us.push(rtt.as_us_f64());
                st.rounds_done += 1;
                if st.rounds_done < self.rounds {
                    let server = (st.slot.next_server)();
                    st.current_server = server;
                    st.round_start = sim.now;
                    let spec = make_spec(
                        &mut self.factory,
                        st.slot.client,
                        server,
                        self.request_bytes,
                        tag(i, Phase::Request),
                    );
                    sim.start_flow(spec);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Staged shuffle (Hadoop-style) driver
// ---------------------------------------------------------------------------

/// A single transfer within a stage.
#[derive(Debug, Clone, Copy)]
pub struct Transfer {
    pub src: HostId,
    pub dst: HostId,
    pub size_bytes: u64,
    /// Worker this transfer is accounted to (its per-worker stage time).
    pub worker: usize,
}

/// One stage: a set of transfers executed with a per-worker concurrency
/// limit; the stage ends when all its transfers complete.
#[derive(Debug, Clone)]
pub struct Stage {
    pub name: String,
    pub transfers: Vec<Transfer>,
}

/// Runs stages strictly in sequence; within a stage each worker keeps at
/// most `concurrency` of its transfers in flight (the paper's "4 concurrent
/// blocks at a time").
pub struct ShuffleDriver<'a> {
    stages: Vec<Stage>,
    factory: FlowFactory<'a>,
    concurrency: usize,
    n_workers: usize,
    current: usize,
    stage_start: SimTime,
    /// Per worker: queue of not-yet-started transfer indices of the current
    /// stage.
    pending: Vec<Vec<usize>>,
    outstanding: Vec<usize>,
    remaining_in_stage: usize,
    /// `results[stage][worker]` = completion time of that worker's share of
    /// the stage, in microseconds (0 if the worker had no transfers).
    pub results: Vec<Vec<f64>>,
}

impl<'a> ShuffleDriver<'a> {
    /// Create and start the first stage.
    pub fn start(
        sim: &mut Simulator,
        stages: Vec<Stage>,
        factory: FlowFactory<'a>,
        concurrency: usize,
        n_workers: usize,
    ) -> Self {
        assert!(!stages.is_empty());
        assert!(concurrency >= 1);
        let mut driver = ShuffleDriver {
            stages,
            factory,
            concurrency,
            n_workers,
            current: 0,
            stage_start: sim.now,
            pending: Vec::new(),
            outstanding: Vec::new(),
            remaining_in_stage: 0,
            results: Vec::new(),
        };
        driver.begin_stage(sim);
        driver
    }

    fn begin_stage(&mut self, sim: &mut Simulator) {
        let stage = &self.stages[self.current];
        self.stage_start = sim.now;
        self.pending = vec![Vec::new(); self.n_workers];
        self.outstanding = vec![0; self.n_workers];
        self.remaining_in_stage = stage.transfers.len();
        self.results.push(vec![0.0; self.n_workers]);
        for (idx, t) in stage.transfers.iter().enumerate() {
            assert!(t.worker < self.n_workers, "worker index out of range");
            self.pending[t.worker].push(idx);
        }
        for w in 0..self.n_workers {
            self.launch_for_worker(sim, w);
        }
    }

    fn launch_for_worker(&mut self, sim: &mut Simulator, w: usize) {
        while self.outstanding[w] < self.concurrency {
            let Some(idx) = self.pending[w].pop() else {
                break;
            };
            let t = self.stages[self.current].transfers[idx];
            let spec = make_spec(
                &mut self.factory,
                t.src,
                t.dst,
                t.size_bytes,
                (self.current as u64) << 32 | w as u64,
            );
            sim.start_flow(spec);
            self.outstanding[w] += 1;
        }
    }

    /// True when every stage has completed.
    pub fn done(&self) -> bool {
        self.current >= self.stages.len()
    }

    /// Stage names in order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|s| s.name.as_str()).collect()
    }
}

impl Driver for ShuffleDriver<'_> {
    fn on_flow_complete(&mut self, sim: &mut Simulator, rec: &FlowRecord) {
        let stage = (rec.owner_tag >> 32) as usize;
        let w = (rec.owner_tag & 0xFFFF_FFFF) as usize;
        debug_assert_eq!(stage, self.current, "stray completion from old stage");
        self.outstanding[w] -= 1;
        self.remaining_in_stage -= 1;
        if self.pending[w].is_empty() && self.outstanding[w] == 0 {
            // This worker finished its share of the stage.
            self.results[self.current][w] = (sim.now - self.stage_start).as_us_f64();
        } else {
            self.launch_for_worker(sim, w);
        }
        if self.remaining_in_stage == 0 {
            self.current += 1;
            if self.current < self.stages.len() {
                self.begin_stage(sim);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run, SimConfig};
    use pnet_routing::{host_route, Path, RouteAlgo, Router};
    use pnet_topology::{assemble_homogeneous, FatTree, LinkProfile, Network, PlaneId};

    fn net() -> Network {
        assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default())
    }

    fn factory_for(net: &Network) -> FlowFactory<'_> {
        let router = Router::new(net, RouteAlgo::Ksp { k: 1 });
        Box::new(move |src, dst, _size| {
            let (ra, rb) = (net.rack_of_host(src), net.rack_of_host(dst));
            let p = if ra == rb {
                Path::intra_rack(PlaneId(0))
            } else {
                router.paths_in_plane(PlaneId(0), ra, rb)[0].clone()
            };
            (vec![host_route(net, src, dst, &p).unwrap()], CcAlgo::Reno)
        })
    }

    #[test]
    fn closed_loop_keeps_slots_busy() {
        let n = net();
        let mut sim = Simulator::new(&n, SimConfig::default());
        let slots = vec![ClosedLoopSlot {
            src: HostId(0),
            next_dst: Box::new(|| HostId(15)),
            next_size: Box::new(|| 150_000),
        }];
        let mut driver =
            ClosedLoopDriver::start(&mut sim, slots, factory_for(&n), SimTime::from_ms(1));
        run(&mut sim, &mut driver, Some(SimTime::from_ms(2)));
        // 150 kB at ~100G takes ~15-30 us; in 1 ms we expect dozens of
        // completions.
        assert!(
            driver.completed.len() > 20,
            "only {} closed-loop flows",
            driver.completed.len()
        );
        // No flow started after the stop time.
        assert!(driver
            .completed
            .iter()
            .all(|r| r.start <= SimTime::from_ms(1)));
    }

    #[test]
    fn open_loop_arrivals_follow_the_clock() {
        let n = net();
        let mut sim = Simulator::new(&n, SimConfig::default());
        // Deterministic 10 us inter-arrival, constant 15 kB flows between a
        // fixed pair: in 1 ms of arrivals we expect ~100 starts.
        let mut toggle = 0u32;
        let driver_flow = Box::new(move || {
            toggle += 1;
            if toggle.is_multiple_of(2) {
                (HostId(0), HostId(15), 15_000u64)
            } else {
                (HostId(2), HostId(13), 15_000u64)
            }
        });
        let gap = Box::new(|| SimTime::from_us(10));
        let mut driver = OpenLoopDriver::start(
            &mut sim,
            factory_for(&n),
            driver_flow,
            gap,
            SimTime::from_ms(1),
        );
        run(&mut sim, &mut driver, None);
        assert_eq!(driver.started, 99, "arrivals at 10us..990us");
        assert_eq!(driver.completed.len(), 99, "all flows must drain");
        // A 15kB flow at light load finishes in ~10us; mean FCT sane.
        let mean = crate::metrics::mean(&crate::metrics::fcts_us(&driver.completed));
        assert!(mean < 100.0, "mean fct {mean}us too high for light load");
    }

    #[test]
    fn open_loop_stops_arrivals_at_deadline() {
        let n = net();
        let mut sim = Simulator::new(&n, SimConfig::default());
        let driver_flow = Box::new(|| (HostId(0), HostId(15), 1_500u64));
        let gap = Box::new(|| SimTime::from_us(100));
        let mut driver = OpenLoopDriver::start(
            &mut sim,
            factory_for(&n),
            driver_flow,
            gap,
            SimTime::from_us(250),
        );
        run(&mut sim, &mut driver, None);
        // Arrivals at 100us and 200us only (300us is past the deadline).
        assert_eq!(driver.started, 2);
        assert!(driver
            .completed
            .iter()
            .all(|r| r.start <= SimTime::from_us(250)));
    }

    #[test]
    fn rpc_rounds_complete_and_measure() {
        let n = net();
        let mut sim = Simulator::new(&n, SimConfig::default());
        let slots = vec![
            RpcSlot {
                client: HostId(0),
                next_server: Box::new(|| HostId(15)),
            },
            RpcSlot {
                client: HostId(2),
                next_server: Box::new(|| HostId(13)),
            },
        ];
        let mut driver = RpcDriver::start(&mut sim, slots, factory_for(&n), 1500, 1500, 5);
        run(&mut sim, &mut driver, None);
        assert!(driver.done());
        assert_eq!(driver.round_times_us.len(), 10);
        // A 1-packet ping-pong across 5 switch hops each way: ~2 x 5 us
        // one-way => under 50 us per round, over 5 us.
        for &t in &driver.round_times_us {
            assert!(t > 5.0 && t < 50.0, "round time {t} us");
        }
    }

    #[test]
    fn shuffle_stages_run_in_order() {
        let n = net();
        let mut sim = Simulator::new(&n, SimConfig::default());
        let stage = |name: &str, sz: u64| Stage {
            name: name.into(),
            transfers: (0..4u32)
                .map(|w| Transfer {
                    src: HostId(w),
                    dst: HostId(15 - w),
                    size_bytes: sz,
                    worker: w as usize,
                })
                .collect(),
        };
        let stages = vec![stage("read", 300_000), stage("shuffle", 150_000)];
        let mut driver = ShuffleDriver::start(&mut sim, stages, factory_for(&n), 2, 4);
        run(&mut sim, &mut driver, None);
        assert!(driver.done());
        assert_eq!(driver.results.len(), 2);
        for stage_result in &driver.results {
            for &t in stage_result {
                assert!(t > 0.0, "worker never finished its stage");
            }
        }
    }

    #[test]
    fn shuffle_concurrency_limit_respected() {
        // 1 worker, 6 transfers, concurrency 1: transfers serialize, so the
        // stage takes at least 6x one transfer's wire time.
        let n = net();
        let mut sim = Simulator::new(&n, SimConfig::default());
        let stages = vec![Stage {
            name: "serial".into(),
            transfers: (0..6)
                .map(|_| Transfer {
                    src: HostId(0),
                    dst: HostId(15),
                    size_bytes: 1_500_000,
                    worker: 0,
                })
                .collect(),
        }];
        let mut driver = ShuffleDriver::start(&mut sim, stages, factory_for(&n), 1, 1);
        run(&mut sim, &mut driver, None);
        let t = driver.results[0][0];
        // 6 x 1.5 MB = 9 MB at 100G = 720 us minimum.
        assert!(t >= 720.0, "stage time {t} us implies overlap");
    }

    #[test]
    fn tag_roundtrip() {
        for slot in [0usize, 1, 5, 1000] {
            for phase in [Phase::Request, Phase::Response] {
                let (s, p) = untag(tag(slot, phase));
                assert_eq!(s, slot);
                assert_eq!(p, phase);
            }
        }
    }
}
