//! Packets: the unit the simulator forwards.
//!
//! Packets are *source-routed*: each carries (a shared reference to) the full
//! sequence of directed links from the source host to the destination host.
//! This mirrors the paper's end-host-routing model — the host picks the
//! plane and path; switches merely forward along it — and keeps switch state
//! out of the simulator entirely.
//!
//! Packets live in a slab arena ([`PacketArena`]) owned by the simulator.
//! Events and link FIFOs carry a 4-byte [`PacketId`] instead of moving the
//! packet struct by value, and freed slots are recycled through a freelist,
//! so steady-state simulation performs zero per-packet heap allocation: a
//! transmission writes into a recycled slot and bumps the refcount of its
//! subflow's interned `Arc<[LinkId]>` route.

use crate::time::SimTime;
use pnet_topology::LinkId;
use std::sync::Arc;

/// Data packets occupy a full MTU on the wire (1500 B, as in the paper's RPC
/// experiment).
pub const MTU_BYTES: u32 = 1500;

/// ACK wire size.
pub const ACK_BYTES: u32 = 40;

/// Identifier of a connection within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

/// Index of a live packet in its simulator's [`PacketArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketId(u32);

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A data segment: `seq` counts MTU-sized packets within one subflow.
    Data {
        conn: ConnId,
        subflow: u8,
        seq: u64,
        /// Send timestamp, echoed by the ACK for RTT sampling.
        ts: SimTime,
        /// True if this is a retransmission (Karn's rule: no RTT sample).
        rtx: bool,
        /// ECN Congestion Experienced: set by a queue whose occupancy
        /// exceeded its marking threshold (DCTCP).
        ce: bool,
    },
    /// A cumulative acknowledgment for one subflow.
    Ack {
        conn: ConnId,
        subflow: u8,
        /// All packets with seq < `cum` have been received in order.
        cum: u64,
        /// Echo of the triggering data packet's timestamp / rtx flag.
        ts_echo: SimTime,
        rtx_echo: bool,
        /// ECN-Echo: the triggering data packet carried a CE mark.
        ece: bool,
    },
}

/// A packet in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// The full source route, interned once per subflow and shared by every
    /// packet of that subflow (a single allocation — no `Vec` indirection).
    pub route: Arc<[LinkId]>,
    /// Index into `route` of the next link to traverse.
    pub hop: u16,
    /// Wire size in bytes.
    pub size_bytes: u32,
    /// Payload descriptor.
    pub kind: PacketKind,
}

impl Packet {
    /// The next link this packet must traverse, or `None` if it has arrived.
    #[inline]
    pub fn next_link(&self) -> Option<LinkId> {
        self.route.get(self.hop as usize).copied()
    }

    /// Number of switch hops on the packet's route (links − 1: the route
    /// includes the host uplink and downlink).
    #[inline]
    pub fn switch_hops(&self) -> usize {
        self.route.len().saturating_sub(1)
    }
}

/// Slab arena of in-flight packets with freelist reuse.
///
/// Lifecycle invariants:
/// * a slot is *live* from [`PacketArena::alloc`] until exactly one matching
///   [`PacketArena::free`] — while live, its id is held by exactly one owner
///   (a link FIFO entry or a pending `Arrival` event);
/// * `free` pushes the slot onto the freelist without touching its contents;
///   the stale `Packet` (and its route `Arc`) is overwritten by the next
///   `alloc`, so no slot ever holds a dangling reference;
/// * `alloc` pops the freelist before growing the slab, so a simulation's
///   slab high-water mark equals its peak in-flight packet count.
#[derive(Debug, Default)]
pub struct PacketArena {
    slab: Vec<Packet>,
    free: Vec<PacketId>,
}

impl PacketArena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store `pkt`, recycling a freed slot when one exists.
    pub fn alloc(&mut self, pkt: Packet) -> PacketId {
        if let Some(id) = self.free.pop() {
            self.slab[id.index()] = pkt;
            id
        } else {
            let id = PacketId(
                u32::try_from(self.slab.len())
                    .expect("invariant: in-flight packet count stays within u32"),
            );
            self.slab.push(pkt);
            id
        }
    }

    /// Release `id`'s slot for reuse. The caller must own the only copy of
    /// `id` (the packet was delivered or dropped); double frees would hand
    /// one slot to two owners. The conservation ledger's in-flight balance
    /// checks this indirectly: a double free shows up as `live()` drifting
    /// below the pending-arrival + buffered count.
    pub fn free(&mut self, id: PacketId) {
        self.free.push(id);
    }

    /// Live packets (allocated and not yet freed).
    pub fn live(&self) -> usize {
        self.slab.len() - self.free.len()
    }

    /// Slab high-water mark: the peak number of simultaneously live packets.
    pub fn capacity(&self) -> usize {
        self.slab.len()
    }
}

impl PacketId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Index<PacketId> for PacketArena {
    type Output = Packet;
    #[inline]
    fn index(&self, id: PacketId) -> &Packet {
        &self.slab[id.index()]
    }
}

impl std::ops::IndexMut<PacketId> for PacketArena {
    #[inline]
    fn index_mut(&mut self, id: PacketId) -> &mut Packet {
        &mut self.slab[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(route: Vec<LinkId>) -> Packet {
        Packet {
            route: Arc::from(route),
            hop: 0,
            size_bytes: MTU_BYTES,
            kind: PacketKind::Data {
                conn: ConnId(0),
                subflow: 0,
                seq: 0,
                ts: SimTime::ZERO,
                rtx: false,
                ce: false,
            },
        }
    }

    #[test]
    fn next_link_advances() {
        let mut p = pkt(vec![LinkId(0), LinkId(2), LinkId(5)]);
        assert_eq!(p.next_link(), Some(LinkId(0)));
        p.hop = 2;
        assert_eq!(p.next_link(), Some(LinkId(5)));
        p.hop = 3;
        assert_eq!(p.next_link(), None);
    }

    #[test]
    fn switch_hops_counts_interior_nodes() {
        // host -> ToR -> ToR -> host: 3 links, 2 switches.
        let p = pkt(vec![LinkId(0), LinkId(2), LinkId(5)]);
        assert_eq!(p.switch_hops(), 2);
    }

    #[test]
    fn arena_recycles_freed_slots() {
        let mut a = PacketArena::new();
        let id0 = a.alloc(pkt(vec![LinkId(0)]));
        let id1 = a.alloc(pkt(vec![LinkId(1)]));
        assert_eq!(a.live(), 2);
        assert_eq!(a.capacity(), 2);
        a.free(id0);
        assert_eq!(a.live(), 1);
        // The freed slot is reused: no slab growth.
        let id2 = a.alloc(pkt(vec![LinkId(2)]));
        assert_eq!(id2, id0);
        assert_eq!(a.capacity(), 2);
        assert_eq!(a[id2].next_link(), Some(LinkId(2)));
        assert_eq!(a[id1].next_link(), Some(LinkId(1)));
    }

    #[test]
    fn arena_mutation_in_place() {
        let mut a = PacketArena::new();
        let id = a.alloc(pkt(vec![LinkId(0), LinkId(1)]));
        a[id].hop += 1;
        assert_eq!(a[id].next_link(), Some(LinkId(1)));
    }

    #[test]
    fn arena_high_water_mark_tracks_peak_in_flight() {
        let mut a = PacketArena::new();
        let ids: Vec<_> = (0..10).map(|i| a.alloc(pkt(vec![LinkId(i)]))).collect();
        for id in ids {
            a.free(id);
        }
        assert_eq!(a.live(), 0);
        // Steady-state churn below the peak never grows the slab.
        for i in 0..100u32 {
            let id = a.alloc(pkt(vec![LinkId(i % 7)]));
            a.free(id);
        }
        assert_eq!(a.capacity(), 10);
    }
}
