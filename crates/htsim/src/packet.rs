//! Packets: the unit the simulator forwards.
//!
//! Packets are *source-routed*: each carries (a shared reference to) the full
//! sequence of directed links from the source host to the destination host.
//! This mirrors the paper's end-host-routing model — the host picks the
//! plane and path; switches merely forward along it — and keeps switch state
//! out of the simulator entirely.

use crate::time::SimTime;
use pnet_topology::LinkId;
use std::sync::Arc;

/// Data packets occupy a full MTU on the wire (1500 B, as in the paper's RPC
/// experiment).
pub const MTU_BYTES: u32 = 1500;

/// ACK wire size.
pub const ACK_BYTES: u32 = 40;

/// Identifier of a connection within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A data segment: `seq` counts MTU-sized packets within one subflow.
    Data {
        conn: ConnId,
        subflow: u8,
        seq: u64,
        /// Send timestamp, echoed by the ACK for RTT sampling.
        ts: SimTime,
        /// True if this is a retransmission (Karn's rule: no RTT sample).
        rtx: bool,
        /// ECN Congestion Experienced: set by a queue whose occupancy
        /// exceeded its marking threshold (DCTCP).
        ce: bool,
    },
    /// A cumulative acknowledgment for one subflow.
    Ack {
        conn: ConnId,
        subflow: u8,
        /// All packets with seq < `cum` have been received in order.
        cum: u64,
        /// Echo of the triggering data packet's timestamp / rtx flag.
        ts_echo: SimTime,
        rtx_echo: bool,
        /// ECN-Echo: the triggering data packet carried a CE mark.
        ece: bool,
    },
}

/// A packet in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// The full source route, shared between all packets of a subflow.
    pub route: Arc<Vec<LinkId>>,
    /// Index into `route` of the next link to traverse.
    pub hop: u16,
    /// Wire size in bytes.
    pub size_bytes: u32,
    /// Payload descriptor.
    pub kind: PacketKind,
}

impl Packet {
    /// The next link this packet must traverse, or `None` if it has arrived.
    #[inline]
    pub fn next_link(&self) -> Option<LinkId> {
        self.route.get(self.hop as usize).copied()
    }

    /// Number of switch hops on the packet's route (links − 1: the route
    /// includes the host uplink and downlink).
    #[inline]
    pub fn switch_hops(&self) -> usize {
        self.route.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(route: Vec<LinkId>) -> Packet {
        Packet {
            route: Arc::new(route),
            hop: 0,
            size_bytes: MTU_BYTES,
            kind: PacketKind::Data {
                conn: ConnId(0),
                subflow: 0,
                seq: 0,
                ts: SimTime::ZERO,
                rtx: false,
                ce: false,
            },
        }
    }

    #[test]
    fn next_link_advances() {
        let mut p = pkt(vec![LinkId(0), LinkId(2), LinkId(5)]);
        assert_eq!(p.next_link(), Some(LinkId(0)));
        p.hop = 2;
        assert_eq!(p.next_link(), Some(LinkId(5)));
        p.hop = 3;
        assert_eq!(p.next_link(), None);
    }

    #[test]
    fn switch_hops_counts_interior_nodes() {
        // host -> ToR -> ToR -> host: 3 links, 2 switches.
        let p = pkt(vec![LinkId(0), LinkId(2), LinkId(5)]);
        assert_eq!(p.switch_hops(), 2);
    }
}
