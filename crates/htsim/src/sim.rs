//! The discrete-event simulation engine.
//!
//! A [`Simulator`] owns one drop-tail [`Queue`] per directed link of the
//! network and an arena of [`Connection`]s. Packets are source-routed by the
//! sending host (the P-Net model: path choice happens at the edge), traverse
//! queue → propagation → queue …, and are delivered to the peer's transport
//! state at the destination.
//!
//! Application logic lives *outside* the simulator, behind the [`Driver`]
//! trait: the run loop hands flow completions and app timers to the driver,
//! which may start new flows — this is how closed-loop workloads, RPC
//! ping-pong, and the Hadoop stages are built without `Rc<RefCell>` webs.

use crate::event::{EventKind, EventQueue};
use crate::packet::{ConnId, Packet, PacketArena, PacketId, PacketKind, ACK_BYTES, MTU_BYTES};
use crate::queue::{Enqueue, Queue};
use crate::tcp::{CcAlgo, Connection, Subflow, TcpConfig};
use crate::telemetry::{EventMask, Telemetry, TelemetryConfig, TraceRecord};
use crate::time::SimTime;
use pnet_routing::reverse_route;
use pnet_topology::{HostId, LinkId, Network};
use std::sync::Arc;

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Transport tuning.
    pub tcp: TcpConfig,
    /// Per-port buffer in bytes (default: 100 MTU-sized packets, the htsim
    /// convention).
    pub queue_bytes: u64,
    /// ECN marking threshold in packets (DCTCP's K), applied to every
    /// queue. `None` (default) disables marking; [`CcAlgo::Dctcp`] flows
    /// then behave like Reno. DCTCP's guideline is K ≈ 17%–20% of C·RTT;
    /// 20–65 packets are typical datacenter values.
    pub ecn_threshold_packets: Option<u32>,
    /// Telemetry: event tracing and periodic sampling (default: fully
    /// disabled — no records, no sampler events, no allocation).
    pub telemetry: TelemetryConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            tcp: TcpConfig::default(),
            queue_bytes: 100 * MTU_BYTES as u64,
            ecn_threshold_packets: None,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// A flow to start: one route per subflow (a single route + [`CcAlgo::Reno`]
/// is plain TCP; K routes + [`CcAlgo::Lia`] is MPTCP over K paths).
#[derive(Debug, Clone)]
pub struct FlowSpec {
    pub src: HostId,
    pub dst: HostId,
    /// Bytes to transfer. The wire moves whole MTU packets (rounded up,
    /// minimum 1), but completion records report this exact figure.
    pub size_bytes: u64,
    /// Host-to-host routes, one per subflow. Must be non-empty.
    pub routes: Vec<Vec<LinkId>>,
    pub cc: CcAlgo,
    /// Opaque tag handed back to the driver on completion.
    pub owner_tag: u64,
}

/// Completion record of a finished flow.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    pub conn: ConnId,
    pub src: HostId,
    pub dst: HostId,
    /// Requested transfer size in bytes (not the MTU-rounded wire
    /// footprint), so goodput of sub-MTU flows is not overstated.
    pub size_bytes: u64,
    pub start: SimTime,
    pub finish: SimTime,
    pub retransmits: u64,
    pub timeouts: u64,
    pub n_subflows: usize,
    /// Fewest switch hops among the subflow routes.
    pub min_switch_hops: usize,
    pub owner_tag: u64,
}

impl FlowRecord {
    /// Flow completion time.
    pub fn fct(&self) -> SimTime {
        self.finish - self.start
    }
}

/// Application callbacks driven by the run loop.
pub trait Driver {
    /// A flow finished (all packets acknowledged).
    fn on_flow_complete(&mut self, _sim: &mut Simulator, _rec: &FlowRecord) {}
    /// An application timer (scheduled with [`Simulator::schedule_app`])
    /// fired.
    fn on_app_timer(&mut self, _sim: &mut Simulator, _app: u32, _tag: u64) {}
}

/// A driver that does nothing (for one-shot flow batches).
pub struct NullDriver;
impl Driver for NullDriver {}

/// Counters of one link's output queue, as reported by
/// [`Simulator::queue_stats`]. `dropped` is drop-tail (congestion) loss only;
/// `dropped_link_down` counts packets discarded because the link was dark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Packets accepted into the buffer.
    pub enqueued: u64,
    /// Packets lost to a full buffer on a live link.
    pub dropped: u64,
    /// Packets discarded because the link was down.
    pub dropped_link_down: u64,
    /// Peak buffer occupancy in bytes.
    pub peak_bytes: u64,
    /// Cumulative bytes that completed serialization on the link.
    pub bytes_sent: u64,
}

impl QueueStats {
    /// All losses at this queue, regardless of cause.
    pub fn total_dropped(&self) -> u64 {
        self.dropped + self.dropped_link_down
    }
}

/// Packet-conservation ledger (feature `strict-invariants`): a snapshot of
/// where every packet ever handed to [`Simulator::send_packet`]'s first hop
/// currently is. The books balance at every event boundary:
///
/// `injected == delivered + dropped_congestion + dropped_link_down + in_flight`
///
/// and once the event queue drains, `in_flight == 0`.
#[cfg(feature = "strict-invariants")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConservationLedger {
    /// Packets entering the network at hop 0 (data and ACKs alike).
    pub injected: u64,
    /// Packets that reached the end of their route.
    pub delivered: u64,
    /// Drop-tail losses at live links.
    pub dropped_congestion: u64,
    /// Discards at dark (failed) links.
    pub dropped_link_down: u64,
    /// Packets buffered in queues or propagating on the wire.
    pub in_flight: u64,
}

#[cfg(feature = "strict-invariants")]
impl ConservationLedger {
    /// True when every injected packet is accounted for.
    pub fn balanced(&self) -> bool {
        self.injected
            == self.delivered + self.dropped_congestion + self.dropped_link_down + self.in_flight
    }
}

/// The engine.
pub struct Simulator {
    /// Current simulation time.
    pub now: SimTime,
    events: EventQueue,
    queues: Vec<Queue>,
    /// Slab arena of in-flight packets; events and queue FIFOs carry
    /// [`PacketId`]s into it.
    packets: PacketArena,
    conns: Vec<Connection>,
    cfg: SimConfig,
    /// Completion records of all finished flows, in completion order.
    pub records: Vec<FlowRecord>,
    /// Completions not yet delivered to the driver.
    pending_complete: Vec<ConnId>,
    /// Packets lost to full buffers.
    pub dropped_packets: u64,
    /// Packets lost to dark (failed) links — separate from drop-tail loss so
    /// failure experiments don't misreport congestion.
    pub dropped_link_down_packets: u64,
    /// Trace buffer; `None` (the default) keeps hook sites down to one
    /// branch each and samplers unscheduled.
    telemetry: Option<Box<Telemetry>>,
    /// Packets injected at hop 0 (conservation ledger numerator).
    #[cfg(feature = "strict-invariants")]
    ledger_injected: u64,
    /// Packets that reached the end of their route.
    #[cfg(feature = "strict-invariants")]
    ledger_delivered: u64,
}

impl Simulator {
    /// Build a simulator over `net`'s links.
    pub fn new(net: &Network, cfg: SimConfig) -> Self {
        let queues = net
            .links()
            .map(|(_, l)| {
                let mut q = Queue::new(l.capacity_bps, l.delay_ps, cfg.queue_bytes);
                q.ecn_threshold_bytes = cfg
                    .ecn_threshold_packets
                    .map(|k| k as u64 * MTU_BYTES as u64);
                q
            })
            .collect();
        let telemetry = if cfg.telemetry.enabled() {
            Some(Box::new(Telemetry::new(net, cfg.telemetry)))
        } else {
            None
        };
        let mut sim = Simulator {
            now: SimTime::ZERO,
            events: EventQueue::new(),
            queues,
            packets: PacketArena::new(),
            conns: Vec::new(),
            cfg,
            records: Vec::new(),
            pending_complete: Vec::new(),
            dropped_packets: 0,
            dropped_link_down_packets: 0,
            telemetry,
            #[cfg(feature = "strict-invariants")]
            ledger_injected: 0,
            #[cfg(feature = "strict-invariants")]
            ledger_delivered: 0,
        };
        // Arm the first sampler tick. If the run drains before flows exist,
        // the tick observes an idle network once and does not re-arm.
        if let Some(tl) = sim.telemetry.as_mut() {
            if let Some(iv) = tl.cfg.sample_interval {
                tl.sampler_armed = true;
                sim.events.schedule(iv, EventKind::TelemetrySample);
            }
        }
        sim
    }

    /// The telemetry trace buffer, when enabled via
    /// [`SimConfig::telemetry`].
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref()
    }

    /// True when telemetry is on and `cat` is an enabled category.
    #[inline]
    fn wants(&self, cat: EventMask) -> bool {
        self.telemetry.as_ref().is_some_and(|t| t.wants(cat))
    }

    /// Append a trace record (caller has already checked the category via
    /// [`Simulator::wants`]).
    #[inline]
    fn emit(&mut self, rec: TraceRecord) {
        if let Some(t) = self.telemetry.as_mut() {
            t.record(rec);
        }
    }

    /// Snapshot of the packet-conservation books (feature
    /// `strict-invariants`). Valid at any event boundary; [`run`] asserts
    /// [`ConservationLedger::balanced`] before returning.
    #[cfg(feature = "strict-invariants")]
    pub fn conservation(&self) -> ConservationLedger {
        let buffered: u64 = self.queues.iter().map(|q| q.depth() as u64).sum();
        let in_flight = buffered + self.events.pending_arrivals();
        // The packet arena must agree with the queues + event queue about
        // what is in flight: a leak (missed free) or double free would show
        // up here before it corrupts a later flow.
        debug_assert_eq!(
            self.packets.live() as u64,
            in_flight,
            "packet arena live count disagrees with queue/event books"
        );
        ConservationLedger {
            injected: self.ledger_injected,
            delivered: self.ledger_delivered,
            dropped_congestion: self.dropped_packets,
            dropped_link_down: self.dropped_link_down_packets,
            in_flight,
        }
    }

    /// Panic unless the conservation books balance (and, if the event queue
    /// has drained, unless the network is empty).
    #[cfg(feature = "strict-invariants")]
    fn assert_conservation(&self) {
        let l = self.conservation();
        assert!(
            l.balanced(),
            "packet conservation violated: injected {} != delivered {} \
             + dropped_congestion {} + dropped_link_down {} + in_flight {}",
            l.injected,
            l.delivered,
            l.dropped_congestion,
            l.dropped_link_down,
            l.in_flight
        );
        if self.events.is_empty() {
            assert_eq!(
                l.in_flight, 0,
                "event queue drained but {} packet(s) still in flight",
                l.in_flight
            );
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Connection accessor (e.g. for inspecting windows in tests).
    pub fn conn(&self, id: ConnId) -> &Connection {
        &self.conns[id.0 as usize]
    }

    /// Number of connections ever started.
    pub fn n_conns(&self) -> usize {
        self.conns.len()
    }

    /// Queue statistics of a link.
    pub fn queue_stats(&self, link: LinkId) -> QueueStats {
        let q = &self.queues[link.index()];
        QueueStats {
            enqueued: q.enqueued,
            dropped: q.dropped,
            dropped_link_down: q.dropped_link_down,
            peak_bytes: q.peak_bytes,
            bytes_sent: q.bytes_sent,
        }
    }

    /// Events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events.dispatched()
    }

    /// The packet arena (e.g. for slab high-water instrumentation).
    pub fn packet_arena(&self) -> &PacketArena {
        &self.packets
    }

    /// Take a link dark mid-simulation: every packet arriving at either
    /// direction of the cable from now on is dropped (buffered packets
    /// still drain). Pair with [`pnet_topology::failures`] on the topology
    /// side and a router/selector refresh for new flows.
    pub fn fail_link(&mut self, link: LinkId) {
        self.queues[link.index()].link_up = false;
        self.queues[link.reverse().index()].link_up = false;
        if self.wants(EventMask::LINK_STATE) {
            let t = self.now;
            self.emit(TraceRecord::LinkDown {
                t,
                link: u64::from(link.0),
            });
        }
    }

    /// Restore a failed link.
    pub fn restore_link(&mut self, link: LinkId) {
        self.queues[link.index()].link_up = true;
        self.queues[link.reverse().index()].link_up = true;
        if self.wants(EventMask::LINK_STATE) {
            let t = self.now;
            self.emit(TraceRecord::LinkUp {
                t,
                link: u64::from(link.0),
            });
        }
    }

    /// Schedule an application timer at absolute time `at` (delivered to the
    /// driver as `on_app_timer(app, tag)`).
    pub fn schedule_app(&mut self, at: SimTime, app: u32, tag: u64) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.events.schedule(at, EventKind::AppTimer { app, tag });
    }

    /// Start a flow now. Returns its connection id.
    pub fn start_flow(&mut self, spec: FlowSpec) -> ConnId {
        assert!(spec.src != spec.dst, "flow to self");
        assert!(!spec.routes.is_empty(), "flow needs at least one route");
        let id = ConnId(
            u32::try_from(self.conns.len()).expect("invariant: connection count stays within u32"),
        );
        let size_packets = spec.size_bytes.div_ceil(MTU_BYTES as u64).max(1);
        let subflows: Vec<Subflow> = spec
            .routes
            .iter()
            .map(|r| {
                assert!(!r.is_empty(), "empty route");
                // Intern both directions once: a single `Arc<[LinkId]>`
                // allocation each, cloned (refcount bump only) per packet.
                let fwd: Arc<[LinkId]> = Arc::from(&r[..]);
                let rev: Arc<[LinkId]> = Arc::from(reverse_route(r));
                let mut sub = Subflow::new(fwd, rev, &self.cfg.tcp);
                sub.cwnd_cap = self.window_cap(r);
                sub.last_progress = self.now;
                sub
            })
            .collect();
        let n_subflows = subflows.len();
        self.conns.push(Connection {
            id,
            src: spec.src,
            dst: spec.dst,
            cc: spec.cc,
            size_packets,
            size_bytes: spec.size_bytes.max(1),
            assigned: 0,
            acked: 0,
            start: self.now,
            finish: None,
            subflows,
            rr: 0,
            owner_tag: spec.owner_tag,
        });
        if self.wants(EventMask::FLOW_START) {
            let t = self.now;
            self.emit(TraceRecord::FlowStart {
                t,
                conn: u64::from(id.0),
                src: spec.src.index() as u64,
                dst: spec.dst.index() as u64,
                size_bytes: spec.size_bytes.max(1),
                n_subflows: n_subflows as u64,
            });
        }
        // A flow starting on an idle simulator revives the sampler.
        if let Some(tl) = self.telemetry.as_mut() {
            if let Some(iv) = tl.cfg.sample_interval {
                if !tl.sampler_armed {
                    tl.sampler_armed = true;
                    let at = self.now + iv;
                    self.events.schedule(at, EventKind::TelemetrySample);
                }
            }
        }
        self.pump(id);
        id
    }

    /// Flow-control window cap for a route: the path's base-RTT
    /// bandwidth-delay product (at the route's bottleneck rate) plus one
    /// port buffer of packets. Plays the role of a well-tuned receiver
    /// window: a single flow fills the pipe without overshooting into
    /// hundreds of slow-start losses, while competing flows still contend in
    /// the queues normally.
    fn window_cap(&self, route: &[LinkId]) -> f64 {
        use crate::time::serialization_ps;
        let mut rtt_ps: u64 = 0;
        let mut bottleneck = u64::MAX;
        for &l in route {
            let q = &self.queues[l.index()];
            rtt_ps += q.delay_ps + serialization_ps(MTU_BYTES, q.rate_bps);
            bottleneck = bottleneck.min(q.rate_bps);
        }
        for &l in route {
            // Reverse direction carries ACKs.
            let q = &self.queues[l.reverse().index()];
            rtt_ps += q.delay_ps + serialization_ps(ACK_BYTES, q.rate_bps);
        }
        let bdp_bits = SimTime::from_ps(rtt_ps).as_secs_f64() * bottleneck as f64;
        let bdp_packets = (bdp_bits / 8.0 / MTU_BYTES as f64).ceil();
        let buffer_packets = (self.cfg.queue_bytes / MTU_BYTES as u64) as f64;
        (bdp_packets + buffer_packets).max(2.0)
    }

    // ------------------------------------------------------------------
    // Packet plumbing
    // ------------------------------------------------------------------

    /// Hand the packet in arena slot `id` to its next link's queue. On a
    /// drop the slot is freed immediately — ids never dangle.
    fn send_packet(&mut self, id: PacketId) {
        #[cfg(feature = "strict-invariants")]
        if self.packets[id].hop == 0 {
            self.ledger_injected += 1;
        }
        let trace_ecn = self.wants(EventMask::ECN_MARK);
        // One arena access for the whole hop: `queues` and `packets` are
        // disjoint fields, so the packet borrow spans the enqueue.
        let p = &mut self.packets[id];
        let link = p
            .next_link()
            .expect("invariant: send_packet is only called with hops remaining");
        let q = &mut self.queues[link.index()];
        let marked_before = if trace_ecn { q.marked } else { 0 };
        match q.enqueue(id, p) {
            Enqueue::StartService => {
                let ser = q.head_service_ps();
                self.events.schedule(
                    self.now + SimTime::from_ps(ser),
                    EventKind::QueueDeparture { link },
                );
            }
            Enqueue::Queued => {}
            Enqueue::Dropped => {
                self.dropped_packets += 1;
                self.packets.free(id);
            }
            Enqueue::DroppedLinkDown => {
                self.dropped_link_down_packets += 1;
                self.packets.free(id);
            }
        }
        if trace_ecn {
            let q = &self.queues[link.index()];
            if q.marked > marked_before {
                let t = self.now;
                let buffered_bytes = q.buffered_bytes();
                self.emit(TraceRecord::EcnMark {
                    t,
                    link: u64::from(link.0),
                    buffered_bytes,
                });
            }
        }
    }

    fn on_departure(&mut self, link: LinkId) {
        let q = &mut self.queues[link.index()];
        let (id, arrival, next) = q.depart(self.now);
        self.packets[id].hop += 1;
        self.events
            .schedule(arrival, EventKind::Arrival { packet: id });
        if let Some(ser) = next {
            self.events.schedule(
                self.now + SimTime::from_ps(ser),
                EventKind::QueueDeparture { link },
            );
        }
    }

    fn on_arrival(&mut self, id: PacketId) {
        if self.packets[id].next_link().is_some() {
            self.send_packet(id);
            return;
        }
        #[cfg(feature = "strict-invariants")]
        {
            self.ledger_delivered += 1;
        }
        // Delivered: copy the payload descriptor out and recycle the slot
        // before transport processing (which may immediately reuse it for
        // the ACK or the next window of data).
        let kind = self.packets[id].kind;
        self.packets.free(id);
        match kind {
            PacketKind::Data {
                conn,
                subflow,
                seq,
                ts,
                rtx,
                ce,
            } => self.on_data(conn, subflow, seq, ts, rtx, ce),
            PacketKind::Ack {
                conn,
                subflow,
                cum,
                ts_echo,
                rtx_echo,
                ece,
            } => self.on_ack(conn, subflow, cum, ts_echo, rtx_echo, ece),
        }
    }

    fn on_data(&mut self, conn: ConnId, subflow: u8, seq: u64, ts: SimTime, rtx: bool, ce: bool) {
        let c = &mut self.conns[conn.0 as usize];
        let sub = &mut c.subflows[subflow as usize];
        let cum = sub.receive_data(seq);
        let route = Arc::clone(&sub.rev_route);
        let id = self.packets.alloc(Packet {
            route,
            hop: 0,
            size_bytes: ACK_BYTES,
            kind: PacketKind::Ack {
                conn,
                subflow,
                cum,
                ts_echo: ts,
                rtx_echo: rtx,
                ece: ce,
            },
        });
        self.send_packet(id);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_ack(
        &mut self,
        conn: ConnId,
        subflow: u8,
        cum: u64,
        ts_echo: SimTime,
        rtx_echo: bool,
        ece: bool,
    ) {
        let ci = conn.0 as usize;
        let now = self.now;
        // Single borrow of the connection for the whole handler: ACKs are
        // ~half of all events, and the repeated `conns[ci].subflows[si]`
        // double-indexing was measurable. `self.cfg` is a disjoint field, so
        // the split borrows below are fine.
        let c = &mut self.conns[ci];
        if c.finish.is_some() {
            return; // late ACK after completion
        }
        let si = subflow as usize;
        let cc = c.cc;
        let sub = &mut c.subflows[si];
        if sub.dead {
            return; // subflow abandoned; its data was re-injected elsewhere
        }

        // RTT sample (Karn: never from retransmitted segments).
        if !rtx_echo {
            let sample = now.saturating_sub(ts_echo).as_ps();
            sub.rtt_sample(sample, &self.cfg.tcp);
        }

        let snd_una = sub.snd_una;
        if cum > snd_una {
            let newly = cum - snd_una;
            sub.snd_una = cum;
            sub.resend_high = sub.resend_high.max(cum);
            sub.backoff = 0;
            c.acked += newly;

            let sub = &mut c.subflows[si];
            sub.last_progress = now;
            if sub.in_recovery {
                if cum >= sub.recover {
                    sub.cwnd = sub.ssthresh.max(1.0);
                    sub.in_recovery = false;
                    sub.dupacks = 0;
                } else {
                    // NewReno partial ACK: retransmit the next hole, deflate.
                    sub.rtx_queue.push_back(cum);
                    sub.cwnd = (sub.cwnd - newly as f64 + 1.0).max(1.0);
                }
            } else {
                sub.dupacks = 0;
                // DCTCP: fraction-proportional multiplicative decrease, at
                // most once per observation window; additive increase
                // continues below as for Reno.
                if cc == CcAlgo::Dctcp {
                    let cut = sub.dctcp_on_ack(newly, ece, cum);
                    if cut {
                        sub.cwnd = (sub.cwnd * (1.0 - sub.dctcp_alpha / 2.0)).max(1.0);
                        sub.ssthresh = sub.cwnd; // leave slow start
                    }
                }
                for _ in 0..newly {
                    let (cwnd, ssthresh) = {
                        let s = &c.subflows[si];
                        (s.cwnd, s.ssthresh)
                    };
                    let inc = if cwnd < ssthresh {
                        1.0 // slow start
                    } else {
                        c.ca_increase(si, &self.cfg.tcp)
                    };
                    c.subflows[si].cwnd += inc;
                }
            }
        } else if cum == snd_una && sub.outstanding() > 0 {
            // DCTCP: a dupack still acknowledges one received data packet
            // and carries that packet's CE mark in ECE — it must enter the
            // marked-fraction accounting or the fraction under loss is
            // understated.
            if cc == CcAlgo::Dctcp {
                sub.dctcp_on_dupack(ece);
            }
            sub.dupacks += 1;
            if sub.dupacks == 3 && !sub.in_recovery {
                let flight = sub.in_flight() as f64;
                sub.ssthresh = (flight / 2.0).max(2.0);
                sub.in_recovery = true;
                sub.recover = sub.highest_sent;
                sub.cwnd = sub.ssthresh + 3.0;
                sub.rtx_queue.push_back(sub.snd_una);
            } else if sub.in_recovery {
                sub.cwnd += 1.0; // window inflation per extra dupack
            }
        }

        // Completion?
        if c.acked >= c.size_packets {
            self.finish_conn(conn);
            return;
        }
        self.pump(conn);
    }

    fn finish_conn(&mut self, conn: ConnId) {
        let c = &mut self.conns[conn.0 as usize];
        c.finish = Some(self.now);
        let rec = FlowRecord {
            conn,
            src: c.src,
            dst: c.dst,
            // The requested size, not the MTU-rounded wire footprint —
            // goodput of sub-MTU flows would otherwise be overstated.
            size_bytes: c.size_bytes,
            start: c.start,
            finish: self.now,
            retransmits: c.retransmits(),
            timeouts: c.timeouts(),
            n_subflows: c.subflows.len(),
            min_switch_hops: c
                .subflows
                .iter()
                .map(|s| s.route.len().saturating_sub(1))
                .min()
                .unwrap_or(0),
            owner_tag: c.owner_tag,
        };
        if self.wants(EventMask::FLOW_FINISH) {
            let t = self.now;
            self.emit(TraceRecord::FlowFinish {
                t,
                conn: u64::from(conn.0),
                fct_ps: rec.fct().as_ps(),
                retransmits: rec.retransmits,
                timeouts: rec.timeouts,
            });
        }
        self.records.push(rec);
        self.pending_complete.push(conn);
    }

    // ------------------------------------------------------------------
    // Sending
    // ------------------------------------------------------------------

    /// Push out as much as windows allow, round-robin over subflows.
    fn pump(&mut self, conn: ConnId) {
        let ci = conn.0 as usize;
        let n_subs = self.conns[ci].subflows.len();
        let mut progress = true;
        while progress {
            progress = false;
            for off in 0..n_subs {
                let si = (self.conns[ci].rr + off) % n_subs;
                // Point retransmissions (fast retransmit, NewReno partial
                // acks) go out regardless of window space.
                loop {
                    let sub = &mut self.conns[ci].subflows[si];
                    let Some(seq) = sub.rtx_queue.pop_front() else {
                        break;
                    };
                    if seq < sub.snd_una {
                        continue; // already cumulatively acked
                    }
                    self.transmit(conn, si, seq, true);
                    progress = true;
                }
                // Window-paced (re)transmission: first go-back-N resends of
                // the post-RTO hole (resend_high .. highest_sent), then
                // fresh packets if the connection has unassigned data left.
                loop {
                    // Re-borrow each iteration: `transmit` needs `&mut self`.
                    let c = &mut self.conns[ci];
                    let sub = &mut c.subflows[si];
                    if !sub.window_open() {
                        break;
                    }
                    if sub.resend_high < sub.highest_sent {
                        let seq = sub.resend_high;
                        sub.resend_high += 1;
                        self.transmit(conn, si, seq, true);
                        progress = true;
                    } else if c.assigned < c.size_packets {
                        let seq = sub.highest_sent;
                        sub.highest_sent += 1;
                        sub.resend_high += 1;
                        c.assigned += 1;
                        self.transmit(conn, si, seq, false);
                        progress = true;
                    } else {
                        break;
                    }
                }
            }
            let c = &mut self.conns[ci];
            c.rr = (c.rr + 1) % n_subs;
        }
        // Arm timers wherever data is outstanding.
        for si in 0..n_subs {
            let sub = &self.conns[ci].subflows[si];
            if sub.outstanding() > 0 && !sub.timer_armed {
                self.arm_timer(conn, si);
            }
        }
    }

    fn transmit(&mut self, conn: ConnId, si: usize, seq: u64, rtx: bool) {
        let ci = conn.0 as usize;
        let now = self.now;
        let c = &mut self.conns[ci];
        let cc = c.cc;
        let (route, size) = {
            let sub = &mut c.subflows[si];
            sub.packets_sent += 1;
            if rtx {
                sub.retransmits += 1;
            }
            if cc == CcAlgo::Dctcp && !rtx && sub.snd_una == 0 && sub.dctcp_acked == 0 {
                // Seed the first DCTCP observation window to span the whole
                // initial flight. `pump` sends the entire initial cwnd
                // before any ACK arrives, and `highest_sent` was already
                // advanced past `seq`, so the window keeps extending through
                // the burst; left at 0 the very first ACK would close a
                // degenerate one-sample window and EWMA-update alpha from it.
                sub.dctcp_window_end = sub.highest_sent;
            }
            if !rtx {
                // Fresh data marks forward progress for the lazy RTO.
                sub.last_progress = now;
            }
            (Arc::clone(&sub.route), MTU_BYTES)
        };
        if rtx && self.wants(EventMask::RETRANSMIT) {
            self.emit(TraceRecord::Retransmit {
                t: now,
                conn: u64::from(conn.0),
                subflow: si as u64,
                seq,
            });
        }
        let id = self.packets.alloc(Packet {
            route,
            hop: 0,
            size_bytes: size,
            kind: PacketKind::Data {
                conn,
                subflow: u8::try_from(si).expect("invariant: subflow count stays within u8"),
                seq,
                ts: now,
                rtx,
                ce: false,
            },
        });
        self.send_packet(id);
    }

    // ------------------------------------------------------------------
    // Timers (lazy re-arm: one outstanding event per subflow)
    // ------------------------------------------------------------------

    fn arm_timer(&mut self, conn: ConnId, si: usize) {
        let ci = conn.0 as usize;
        let sub = &mut self.conns[ci].subflows[si];
        sub.timer_token += 1;
        sub.timer_armed = true;
        let deadline = self.now + sub.effective_rto(&self.cfg.tcp);
        self.events.schedule(
            deadline,
            EventKind::RtoTimer {
                conn,
                subflow: u8::try_from(si).expect("invariant: subflow count stays within u8"),
                token: sub.timer_token,
            },
        );
    }

    fn on_rto(&mut self, conn: ConnId, subflow: u8, token: u64) {
        let ci = conn.0 as usize;
        let si = subflow as usize;
        if self.conns[ci].finish.is_some() {
            return;
        }
        {
            let sub = &self.conns[ci].subflows[si];
            if !sub.timer_armed || sub.timer_token != token {
                return; // stale
            }
        }
        // Nothing outstanding: disarm.
        if self.conns[ci].subflows[si].outstanding() == 0 {
            self.conns[ci].subflows[si].timer_armed = false;
            return;
        }
        // Progress since arming: push the deadline out (lazy re-arm keeps a
        // single pending event instead of one per ACK).
        let eff = self.conns[ci].subflows[si].effective_rto(&self.cfg.tcp);
        let deadline = self.conns[ci].subflows[si].last_progress + eff;
        if self.now < deadline {
            let tok = self.conns[ci].subflows[si].timer_token;
            self.events.schedule(
                deadline,
                EventKind::RtoTimer {
                    conn,
                    subflow,
                    token: tok,
                },
            );
            return;
        }
        // Genuine timeout: rewind the pipe estimate so the pump go-back-N
        // resends the presumed-lost window under slow start.
        {
            let sub = &mut self.conns[ci].subflows[si];
            sub.timeouts += 1;
            let flight = sub.in_flight() as f64;
            sub.ssthresh = (flight / 2.0).max(2.0);
            sub.cwnd = 1.0;
            sub.in_recovery = false;
            sub.dupacks = 0;
            sub.backoff += 1;
            sub.rtx_queue.clear();
            sub.resend_high = sub.snd_una;
            sub.timer_armed = false;
        }
        if self.wants(EventMask::TIMEOUT) {
            let t = self.now;
            let backoff = u64::from(self.conns[ci].subflows[si].backoff);
            self.emit(TraceRecord::Timeout {
                t,
                conn: u64::from(conn.0),
                subflow: u64::from(subflow),
                backoff,
            });
        }
        // MPTCP path-failure handling: after repeated backoffs, declare the
        // subflow dead and re-inject its outstanding data onto the
        // surviving subflows.
        let has_live_sibling = self.conns[ci]
            .subflows
            .iter()
            .enumerate()
            .any(|(j, s)| j != si && !s.dead);
        if self.conns[ci].subflows[si].backoff >= self.cfg.tcp.dead_after_backoff
            && has_live_sibling
        {
            let reclaimed = {
                let sub = &mut self.conns[ci].subflows[si];
                sub.dead = true;
                let lost = sub.highest_sent - sub.snd_una;
                sub.highest_sent = sub.snd_una;
                sub.resend_high = sub.snd_una;
                lost
            };
            self.conns[ci].assigned -= reclaimed;
            if self.wants(EventMask::SUBFLOW_DEAD) {
                let t = self.now;
                self.emit(TraceRecord::SubflowDead {
                    t,
                    conn: u64::from(conn.0),
                    subflow: u64::from(subflow),
                    reclaimed,
                });
            }
            self.pump(conn);
            return; // no timer for a dead subflow
        }
        self.conns[ci].subflows[si].last_progress = self.now;
        self.pump(conn);
        if !self.conns[ci].subflows[si].timer_armed {
            self.arm_timer(conn, si);
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::QueueDeparture { link } => self.on_departure(link),
            EventKind::Arrival { packet } => self.on_arrival(packet),
            EventKind::RtoTimer {
                conn,
                subflow,
                token,
            } => self.on_rto(conn, subflow, token),
            EventKind::AppTimer { .. } => unreachable!("app timers handled by the run loop"),
            EventKind::TelemetrySample => self.on_telemetry_sample(),
        }
    }

    /// Warm the cache lines the next event's handler will touch. At paper
    /// scale the packet arena, link queues, and connection table all exceed
    /// L2 and events address them near-randomly, so each dispatch stalls on
    /// one or two DRAM loads; issuing the successor's loads during the
    /// current handler overlaps that latency. Advisory only — prefetching
    /// the wrong line (the hint can be overtaken by the late heap) costs a
    /// few cycles and changes nothing observable.
    #[inline]
    fn prefetch_for(&self, ev: &crate::event::Event) {
        match ev.kind {
            EventKind::QueueDeparture { link } => prefetch_read(&self.queues[link.index()]),
            EventKind::Arrival { packet } => prefetch_read(&self.packets[packet]),
            EventKind::RtoTimer { conn, .. } => prefetch_read(&self.conns[conn.0 as usize]),
            EventKind::AppTimer { .. } | EventKind::TelemetrySample => {}
        }
    }

    /// One sampler tick: observe queue occupancy, per-plane utilization, and
    /// live subflow state. Mutates no transport or queue state, so enabling
    /// sampling never changes FCTs, drops, or retransmit counts.
    fn on_telemetry_sample(&mut self) {
        let now = self.now;
        let Some(tl) = self.telemetry.as_mut() else {
            return;
        };
        let Some(interval) = tl.cfg.sample_interval else {
            tl.sampler_armed = false;
            return;
        };
        if tl.cfg.events.contains(EventMask::QUEUE_SAMPLE) {
            // Only non-empty queues: trace volume tracks activity, and an
            // absent link at a sample time reads as "empty".
            for (i, q) in self.queues.iter().enumerate() {
                if q.depth() > 0 {
                    tl.record(TraceRecord::QueueSample {
                        t: now,
                        link: i as u64,
                        depth_pkts: q.depth() as u64,
                        buffered_bytes: q.buffered_bytes(),
                    });
                }
            }
        }
        if tl.cfg.events.contains(EventMask::PLANE_SAMPLE) {
            let n = tl.plane_capacity_bps.len();
            let mut bytes = vec![0u64; n];
            for (i, q) in self.queues.iter().enumerate() {
                bytes[tl.link_planes[i].index()] += q.bytes_sent;
            }
            let dt_secs = now.saturating_sub(tl.last_sample_at).as_secs_f64();
            for (p, &total) in bytes.iter().enumerate() {
                let bytes_delta = total - tl.last_plane_bytes[p];
                let cap = tl.plane_capacity_bps[p];
                let utilization = if dt_secs > 0.0 && cap > 0 {
                    bytes_delta as f64 * 8.0 / (cap as f64 * dt_secs)
                } else {
                    0.0
                };
                tl.record(TraceRecord::PlaneSample {
                    t: now,
                    plane: p as u64,
                    bytes_delta,
                    utilization,
                });
            }
            tl.last_plane_bytes = bytes;
        }
        if tl.cfg.events.contains(EventMask::SUBFLOW_SAMPLE) {
            for c in &self.conns {
                if c.finish.is_some() {
                    continue;
                }
                for (si, sub) in c.subflows.iter().enumerate() {
                    if sub.dead {
                        continue;
                    }
                    tl.record(TraceRecord::SubflowSample {
                        t: now,
                        conn: u64::from(c.id.0),
                        subflow: si as u64,
                        cwnd: sub.cwnd,
                        srtt_ps: sub.srtt_ps,
                        in_flight: sub.in_flight(),
                    });
                }
            }
        }
        tl.last_sample_at = now;
        // Re-arm only while a flow is still live AND other events are
        // pending. The first guard stops the sampler once every flow has
        // finished (stale RTO timers may linger in the queue long after);
        // the second keeps the sampler from being the only thing driving
        // the clock forever. `start_flow` re-arms it when traffic returns.
        let live =
            !self.pending_complete.is_empty() || self.conns.iter().any(|c| c.finish.is_none());
        if live && !self.events.is_empty() {
            tl.sampler_armed = true;
            self.events
                .schedule(now + interval, EventKind::TelemetrySample);
        } else {
            tl.sampler_armed = false;
        }
    }
}

/// Issue a read prefetch for the cache line holding `p`. A pure scheduling
/// hint to the load unit: no memory access is architecturally performed, so
/// it is valid for any pointer and can never fault or race.
#[inline]
fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 performs no architectural memory access; it is
    // defined for arbitrary addresses, dangling or unaligned included.
    unsafe {
        std::arch::x86_64::_mm_prefetch(p as *const i8, std::arch::x86_64::_MM_HINT_T0)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Run the simulation until the event queue drains or `until` is reached.
/// Driver callbacks may start new flows and schedule new timers.
pub fn run(sim: &mut Simulator, driver: &mut dyn Driver, until: Option<SimTime>) {
    loop {
        // Deliver completions before advancing time further.
        while let Some(cid) = sim.pending_complete.pop() {
            let rec = sim
                .records
                .iter()
                .rfind(|r| r.conn == cid)
                .expect("invariant: every completed connection has a flow record")
                .clone();
            driver.on_flow_complete(sim, &rec);
        }
        // With no horizon (the common case) popping directly saves a full
        // peek — queue emptiness is what `pop` reports anyway.
        let ev = if let Some(u) = until {
            let Some(t) = sim.events.peek_time() else {
                break;
            };
            if t > u {
                sim.now = u;
                break;
            }
            sim.events
                .pop()
                .expect("invariant: peek_time returned a pending event")
        } else {
            let Some(ev) = sim.events.pop() else {
                break;
            };
            ev
        };
        sim.now = ev.time;
        for next in sim.events.next_hint() {
            sim.prefetch_for(next);
        }
        match ev.kind {
            EventKind::AppTimer { app, tag } => driver.on_app_timer(sim, app, tag),
            other => sim.dispatch(other),
        }
        // Batched dispatch: drain the same-timestamp cascade (departure →
        // arrival → departure at a slower link, ACK fan-out, ...) without
        // re-touching the queue head machinery. Two exits keep behaviour
        // identical to one-pop-per-iteration: a completion must reach the
        // driver *before* the next event (the driver may start flows, and
        // their event sequence numbers — hence all downstream tie-breaks —
        // depend on that ordering), and `pop_if_at` refuses any event not at
        // exactly `sim.now` (all ≤ `until` since `t` was). Time never
        // advances inside the batch, so `sim.now` stays correct.
        while sim.pending_complete.is_empty() {
            let Some(ev) = sim.events.pop_if_at(sim.now) else {
                break;
            };
            for next in sim.events.next_hint() {
                sim.prefetch_for(next);
            }
            match ev.kind {
                EventKind::AppTimer { app, tag } => driver.on_app_timer(sim, app, tag),
                other => sim.dispatch(other),
            }
        }
    }
    while let Some(cid) = sim.pending_complete.pop() {
        let rec = sim
            .records
            .iter()
            .rfind(|r| r.conn == cid)
            .expect("invariant: every completed connection has a flow record")
            .clone();
        driver.on_flow_complete(sim, &rec);
    }
    #[cfg(feature = "strict-invariants")]
    sim.assert_conservation();
}

/// Convenience: run with no driver.
pub fn run_to_completion(sim: &mut Simulator) {
    run(sim, &mut NullDriver, None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_routing::{host_route, RouteAlgo, Router};
    use pnet_topology::{assemble_homogeneous, FatTree, LinkProfile};

    fn net() -> pnet_topology::Network {
        assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default())
    }

    fn route_for(
        net: &pnet_topology::Network,
        src: HostId,
        dst: HostId,
        plane: u16,
    ) -> Vec<LinkId> {
        let router = Router::new(net, RouteAlgo::Ksp { k: 1 });
        let (ra, rb) = (net.rack_of_host(src), net.rack_of_host(dst));
        let p = if ra == rb {
            pnet_routing::Path::intra_rack(pnet_topology::PlaneId(plane))
        } else {
            router
                .paths_in_plane(pnet_topology::PlaneId(plane), ra, rb)
                .first()
                .unwrap()
                .clone()
        };
        host_route(net, src, dst, &p).unwrap()
    }

    #[test]
    fn single_packet_flow_completes() {
        let n = net();
        let mut sim = Simulator::new(&n, SimConfig::default());
        let route = route_for(&n, HostId(0), HostId(15), 0);
        sim.start_flow(FlowSpec {
            src: HostId(0),
            dst: HostId(15),
            size_bytes: 1000,
            routes: vec![route],
            cc: CcAlgo::Reno,
            owner_tag: 0,
        });
        run_to_completion(&mut sim);
        assert_eq!(sim.records.len(), 1);
        let r = &sim.records[0];
        // One MTU over 6 links (~4 us of propagation + serialization) plus
        // the ACK back: FCT should be ~2 one-way delays, well under 100 us.
        assert!(r.fct() > SimTime::ZERO);
        assert!(r.fct() < SimTime::from_us(100), "fct {}", r.fct());
        assert_eq!(r.retransmits, 0);
    }

    #[test]
    fn fct_scales_with_size_at_fixed_rate() {
        // A 12 Mbyte flow at 100G takes ~1 ms of serialization; FCT must be
        // at least size*8/rate.
        let n = net();
        let mut sim = Simulator::new(&n, SimConfig::default());
        let route = route_for(&n, HostId(0), HostId(15), 0);
        let size: u64 = 12_000_000;
        sim.start_flow(FlowSpec {
            src: HostId(0),
            dst: HostId(15),
            size_bytes: size,
            routes: vec![route],
            cc: CcAlgo::Reno,
            owner_tag: 0,
        });
        run_to_completion(&mut sim);
        let r = &sim.records[0];
        let wire_time_ps = size * 8 * 10; // ps on the wire at 100G: bits * (1e12/1e11)
        assert!(r.fct().as_ps() >= wire_time_ps, "fct {} too fast", r.fct());
        // ...and within 3x of it (slow start ramp + RTTs).
        assert!(
            r.fct().as_ps() < 3 * wire_time_ps,
            "fct {} too slow",
            r.fct()
        );
    }

    #[test]
    fn two_flows_share_a_bottleneck_fairly() {
        let n = net();
        let mut sim = Simulator::new(&n, SimConfig::default());
        // Both flows from hosts in rack 0 to the same destination host's
        // rack... use distinct destinations behind one ToR so the shared
        // bottleneck is the down-path into rack 7.
        let r1 = route_for(&n, HostId(0), HostId(14), 0);
        let r2 = route_for(&n, HostId(1), HostId(14), 0);
        // Same destination host => its downlink is the bottleneck.
        let size = 3_000_000u64;
        for (src, route) in [(HostId(0), r1), (HostId(1), r2)] {
            sim.start_flow(FlowSpec {
                src,
                dst: HostId(14),
                size_bytes: size,
                routes: vec![route],
                cc: CcAlgo::Reno,
                owner_tag: 0,
            });
        }
        run_to_completion(&mut sim);
        assert_eq!(sim.records.len(), 2);
        // Work conservation at the shared 100G bottleneck: 6 MB total must
        // take at least ~480 us end to end, so the last finisher cannot be
        // faster than that. (Per-flow fairness at identical start times is
        // subject to drop-tail phase effects, so we do not assert equality.)
        let wire = size * 8 * 10; // ps on the wire at 100G: bits * (1e12/1e11)
        let max_fct = sim.records.iter().map(|r| r.fct().as_ps()).max().unwrap();
        let min_fct = sim.records.iter().map(|r| r.fct().as_ps()).min().unwrap();
        assert!(
            max_fct > 19 * wire / 10,
            "last finisher {max_fct} beats the combined drain time"
        );
        assert!(min_fct >= wire, "a flow finished faster than its own bytes");
    }

    #[test]
    fn mptcp_two_planes_beats_single_path() {
        let n = net();
        let size = 6_000_000u64;
        // Single path.
        let mut sim1 = Simulator::new(&n, SimConfig::default());
        sim1.start_flow(FlowSpec {
            src: HostId(0),
            dst: HostId(15),
            size_bytes: size,
            routes: vec![route_for(&n, HostId(0), HostId(15), 0)],
            cc: CcAlgo::Reno,
            owner_tag: 0,
        });
        run_to_completion(&mut sim1);
        // Two subflows over two planes.
        let mut sim2 = Simulator::new(&n, SimConfig::default());
        sim2.start_flow(FlowSpec {
            src: HostId(0),
            dst: HostId(15),
            size_bytes: size,
            routes: vec![
                route_for(&n, HostId(0), HostId(15), 0),
                route_for(&n, HostId(0), HostId(15), 1),
            ],
            cc: CcAlgo::Lia,
            owner_tag: 0,
        });
        run_to_completion(&mut sim2);
        let f1 = sim1.records[0].fct();
        let f2 = sim2.records[0].fct();
        assert!(
            f2.as_ps() < f1.as_ps() * 7 / 10,
            "MPTCP {f2} not clearly faster than single-path {f1}"
        );
    }

    #[test]
    fn deterministic_replay() {
        let n = net();
        let mut fcts = Vec::new();
        for _ in 0..2 {
            let mut sim = Simulator::new(&n, SimConfig::default());
            for h in 0..8u32 {
                let src = HostId(h);
                let dst = HostId(15 - h);
                let route = route_for(&n, src, dst, (h % 2) as u16);
                sim.start_flow(FlowSpec {
                    src,
                    dst,
                    size_bytes: 500_000,
                    routes: vec![route],
                    cc: CcAlgo::Reno,
                    owner_tag: h as u64,
                });
            }
            run_to_completion(&mut sim);
            let v: Vec<u64> = sim.records.iter().map(|r| r.fct().as_ps()).collect();
            fcts.push(v);
        }
        assert_eq!(fcts[0], fcts[1]);
    }

    #[test]
    fn drops_recovered_under_heavy_incast() {
        // 8 senders incast into one host: buffers overflow, retransmits
        // happen, but all flows still complete.
        let n = net();
        let mut sim = Simulator::new(&n, SimConfig::default());
        for h in 1..9u32 {
            let src = HostId(h + 3); // hosts 4..12, different racks
            let route = route_for(&n, src, HostId(0), 0);
            sim.start_flow(FlowSpec {
                src,
                dst: HostId(0),
                size_bytes: 1_500_000,
                routes: vec![route],
                cc: CcAlgo::Reno,
                owner_tag: 0,
            });
        }
        run_to_completion(&mut sim);
        assert_eq!(sim.records.len(), 8, "not all incast flows completed");
        let rtx: u64 = sim.records.iter().map(|r| r.retransmits).sum();
        assert!(sim.dropped_packets > 0, "incast should overflow buffers");
        assert!(rtx > 0, "drops should force retransmissions");
    }

    #[test]
    fn dctcp_keeps_queues_short() {
        // 4-to-1 incast: DCTCP with ECN marking should keep the destination
        // downlink queue far below the drop-tail peak Reno produces, and
        // avoid (most) drops.
        let n = net();
        let srcs = [HostId(4), HostId(6), HostId(8), HostId(10)];
        let run_with = |cc: CcAlgo, ecn: Option<u32>| -> (u64, u64) {
            let cfg = SimConfig {
                ecn_threshold_packets: ecn,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(&n, cfg);
            for &src in &srcs {
                let route = route_for(&n, src, HostId(0), 0);
                sim.start_flow(FlowSpec {
                    src,
                    dst: HostId(0),
                    size_bytes: 3_000_000,
                    routes: vec![route],
                    cc,
                    owner_tag: 0,
                });
            }
            run_to_completion(&mut sim);
            assert_eq!(sim.records.len(), 4);
            // The merge point depends on the routes; report the hottest
            // queue in the network.
            let mut drops = 0;
            let mut peak = 0;
            for (id, _) in n.links() {
                let qs = sim.queue_stats(id);
                drops += qs.dropped;
                peak = peak.max(qs.peak_bytes);
            }
            (drops, peak)
        };
        let (reno_drops, reno_peak) = run_with(CcAlgo::Reno, None);
        let (dctcp_drops, dctcp_peak) = run_with(CcAlgo::Dctcp, Some(20));
        assert!(
            dctcp_peak < reno_peak / 2,
            "DCTCP peak queue {dctcp_peak} not well below Reno's {reno_peak}"
        );
        assert!(
            dctcp_drops <= reno_drops,
            "DCTCP drops {dctcp_drops} vs Reno {reno_drops}"
        );
    }

    #[test]
    fn app_timer_fires() {
        struct T {
            fired: Vec<(u32, u64)>,
        }
        impl Driver for T {
            fn on_app_timer(&mut self, _sim: &mut Simulator, app: u32, tag: u64) {
                self.fired.push((app, tag));
            }
        }
        let n = net();
        let mut sim = Simulator::new(&n, SimConfig::default());
        sim.schedule_app(SimTime::from_us(5), 1, 42);
        sim.schedule_app(SimTime::from_us(2), 0, 7);
        let mut d = T { fired: vec![] };
        run(&mut sim, &mut d, None);
        assert_eq!(d.fired, vec![(0, 7), (1, 42)]);
        assert_eq!(sim.now, SimTime::from_us(5));
    }

    #[test]
    fn run_until_stops_early() {
        let n = net();
        let mut sim = Simulator::new(&n, SimConfig::default());
        sim.start_flow(FlowSpec {
            src: HostId(0),
            dst: HostId(15),
            size_bytes: 120_000_000, // 1 Gbit: ~10 ms at 100G
            routes: vec![route_for(&n, HostId(0), HostId(15), 0)],
            cc: CcAlgo::Reno,
            owner_tag: 0,
        });
        run(&mut sim, &mut NullDriver, Some(SimTime::from_us(50)));
        assert!(sim.records.is_empty());
        assert_eq!(sim.now, SimTime::from_us(50));
    }
}
