//! Deterministic telemetry: a structured event tracer plus periodic
//! samplers, all driven off the simulator's own event queue.
//!
//! The paper's packet-level claims (FCT distributions, queue dynamics under
//! incast, graceful degradation on plane failure) are *time-resolved*
//! properties, but the simulator's end-of-run aggregates ([`FlowRecord`],
//! `QueueStats`) flatten them away. This module records what happened *when*:
//!
//! * **Trace events** — flow start/finish, retransmit, timeout,
//!   subflow-death, ECN mark, link up/down — emitted at the instant the
//!   simulator processes them, gated per category by an [`EventMask`];
//! * **Samplers** — queue depth/occupancy per link, per-plane utilization,
//!   per-subflow cwnd/srtt — taken every
//!   [`TelemetryConfig::sample_interval`] of *simulation* time via a
//!   dedicated event-queue entry, so sampling is part of the deterministic
//!   event order rather than an outside observer;
//! * **Exporters** — JSONL (one object per line, fixed field order) and CSV
//!   (fixed column set, per-event legend in leading `#` comments).
//!
//! ## Determinism contract
//!
//! Every timestamp is a [`SimTime`]; no wall clock is read anywhere
//! (`pnet-tidy` rule D2 applies to this file like any other). Records are
//! appended in event-dispatch order and serialized with a stable field
//! order, so two runs of the same scenario produce **byte-identical** JSONL
//! and CSV. Sampler events mutate no transport or queue state — enabling
//! telemetry never changes FCTs, drops, or retransmit counts, and with
//! telemetry disabled the only residue is one branch per hook site.
//!
//! [`FlowRecord`]: crate::sim::FlowRecord

use crate::time::SimTime;
use pnet_topology::{Network, PlaneId};

/// Bit set of trace-record categories (see the associated constants).
/// `contains` is "any overlap", so composites like [`EventMask::ALL`] can be
/// tested against single categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventMask(pub u16);

impl EventMask {
    /// Nothing enabled.
    pub const NONE: EventMask = EventMask(0);
    /// A flow was started ([`TraceRecord::FlowStart`]).
    pub const FLOW_START: EventMask = EventMask(1 << 0);
    /// A flow completed ([`TraceRecord::FlowFinish`]).
    pub const FLOW_FINISH: EventMask = EventMask(1 << 1);
    /// A data packet was retransmitted ([`TraceRecord::Retransmit`]).
    pub const RETRANSMIT: EventMask = EventMask(1 << 2);
    /// A retransmission timer expired ([`TraceRecord::Timeout`]).
    pub const TIMEOUT: EventMask = EventMask(1 << 3);
    /// A subflow was declared dead ([`TraceRecord::SubflowDead`]).
    pub const SUBFLOW_DEAD: EventMask = EventMask(1 << 4);
    /// A queue CE-marked a data packet ([`TraceRecord::EcnMark`]).
    pub const ECN_MARK: EventMask = EventMask(1 << 5);
    /// A link failed or was restored ([`TraceRecord::LinkDown`]/[`TraceRecord::LinkUp`]).
    pub const LINK_STATE: EventMask = EventMask(1 << 6);
    /// Periodic per-link queue occupancy ([`TraceRecord::QueueSample`]).
    pub const QUEUE_SAMPLE: EventMask = EventMask(1 << 7);
    /// Periodic per-plane utilization ([`TraceRecord::PlaneSample`]).
    pub const PLANE_SAMPLE: EventMask = EventMask(1 << 8);
    /// Periodic per-subflow cwnd/srtt ([`TraceRecord::SubflowSample`]).
    pub const SUBFLOW_SAMPLE: EventMask = EventMask(1 << 9);

    /// All instantaneous trace events (no samplers).
    pub const TRACE: EventMask = EventMask(
        Self::FLOW_START.0
            | Self::FLOW_FINISH.0
            | Self::RETRANSMIT.0
            | Self::TIMEOUT.0
            | Self::SUBFLOW_DEAD.0
            | Self::ECN_MARK.0
            | Self::LINK_STATE.0,
    );
    /// All periodic samplers.
    pub const SAMPLES: EventMask =
        EventMask(Self::QUEUE_SAMPLE.0 | Self::PLANE_SAMPLE.0 | Self::SUBFLOW_SAMPLE.0);
    /// Everything.
    pub const ALL: EventMask = EventMask(Self::TRACE.0 | Self::SAMPLES.0);

    /// Union of two masks.
    #[inline]
    pub const fn union(self, other: EventMask) -> EventMask {
        EventMask(self.0 | other.0)
    }

    /// True when `self` enables any category in `other`.
    #[inline]
    pub const fn contains(self, other: EventMask) -> bool {
        self.0 & other.0 != 0
    }

    /// True when no category is enabled.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Parse a comma-separated category list, e.g. `"flow,ecn,samples"`.
    ///
    /// Names: `flow` (start+finish), `flow-start`, `flow-finish`,
    /// `retransmit`, `timeout`, `subflow-dead`, `ecn`, `link`, `queue`,
    /// `plane`, `subflow-samples`, `samples` (all three samplers), `trace`
    /// (all instantaneous events), `all`.
    pub fn from_names(names: &str) -> Result<EventMask, String> {
        let mut mask = EventMask::NONE;
        for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            mask = mask.union(match name {
                "flow" => Self::FLOW_START.union(Self::FLOW_FINISH),
                "flow-start" => Self::FLOW_START,
                "flow-finish" => Self::FLOW_FINISH,
                "retransmit" => Self::RETRANSMIT,
                "timeout" => Self::TIMEOUT,
                "subflow-dead" => Self::SUBFLOW_DEAD,
                "ecn" => Self::ECN_MARK,
                "link" => Self::LINK_STATE,
                "queue" => Self::QUEUE_SAMPLE,
                "plane" => Self::PLANE_SAMPLE,
                "subflow-samples" => Self::SUBFLOW_SAMPLE,
                "samples" => Self::SAMPLES,
                "trace" => Self::TRACE,
                "all" => Self::ALL,
                other => return Err(format!("unknown telemetry category {other:?}")),
            });
        }
        Ok(mask)
    }
}

impl std::ops::BitOr for EventMask {
    type Output = EventMask;
    fn bitor(self, rhs: EventMask) -> EventMask {
        EventMask(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for EventMask {
    fn bitor_assign(&mut self, rhs: EventMask) {
        self.0 |= rhs.0;
    }
}

/// Telemetry configuration, carried inside [`crate::SimConfig`]. The default
/// is fully disabled: no events are recorded, no sampler is scheduled, and
/// the simulator allocates no trace state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Which record categories to keep.
    pub events: EventMask,
    /// Sampler period in simulation time. `None` disables the periodic
    /// samplers even if their categories are set in `events`.
    pub sample_interval: Option<SimTime>,
}

impl TelemetryConfig {
    /// Record every category, sampling at `interval`.
    pub fn all(interval: SimTime) -> TelemetryConfig {
        TelemetryConfig {
            events: EventMask::ALL,
            sample_interval: Some(interval),
        }
    }

    /// Instantaneous trace events only (no samplers).
    pub fn trace_only() -> TelemetryConfig {
        TelemetryConfig {
            events: EventMask::TRACE,
            sample_interval: None,
        }
    }

    /// True when this configuration records anything at all.
    pub fn enabled(&self) -> bool {
        !self.events.is_empty()
    }
}

/// One recorded telemetry event. Integer ids are stored widened (`u64`) so
/// serialization needs no narrowing casts; timestamps are simulation time.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A flow was started (`start_flow`).
    FlowStart {
        t: SimTime,
        conn: u64,
        src: u64,
        dst: u64,
        size_bytes: u64,
        n_subflows: u64,
    },
    /// A flow acknowledged its last packet.
    FlowFinish {
        t: SimTime,
        conn: u64,
        fct_ps: u64,
        retransmits: u64,
        timeouts: u64,
    },
    /// A data packet was sent as a retransmission.
    Retransmit {
        t: SimTime,
        conn: u64,
        subflow: u64,
        seq: u64,
    },
    /// A genuine RTO expiry (not a lazy re-arm).
    Timeout {
        t: SimTime,
        conn: u64,
        subflow: u64,
        backoff: u64,
    },
    /// A subflow was declared dead; its outstanding packets were re-injected
    /// onto surviving subflows.
    SubflowDead {
        t: SimTime,
        conn: u64,
        subflow: u64,
        reclaimed: u64,
    },
    /// A queue CE-marked a data packet (occupancy exceeded the threshold).
    EcnMark {
        t: SimTime,
        link: u64,
        buffered_bytes: u64,
    },
    /// A link was taken dark ([`crate::Simulator::fail_link`]).
    LinkDown { t: SimTime, link: u64 },
    /// A link was restored ([`crate::Simulator::restore_link`]).
    LinkUp { t: SimTime, link: u64 },
    /// Sampler: occupancy of one link's queue (emitted only for non-empty
    /// queues, to keep traces proportional to activity).
    QueueSample {
        t: SimTime,
        link: u64,
        depth_pkts: u64,
        buffered_bytes: u64,
    },
    /// Sampler: bytes served by one plane since the previous sample, and the
    /// implied utilization of the plane's aggregate link capacity.
    PlaneSample {
        t: SimTime,
        plane: u64,
        bytes_delta: u64,
        utilization: f64,
    },
    /// Sampler: one live subflow's congestion state.
    SubflowSample {
        t: SimTime,
        conn: u64,
        subflow: u64,
        cwnd: f64,
        srtt_ps: f64,
        in_flight: u64,
    },
}

impl TraceRecord {
    /// The category bit of this record.
    pub fn category(&self) -> EventMask {
        match self {
            TraceRecord::FlowStart { .. } => EventMask::FLOW_START,
            TraceRecord::FlowFinish { .. } => EventMask::FLOW_FINISH,
            TraceRecord::Retransmit { .. } => EventMask::RETRANSMIT,
            TraceRecord::Timeout { .. } => EventMask::TIMEOUT,
            TraceRecord::SubflowDead { .. } => EventMask::SUBFLOW_DEAD,
            TraceRecord::EcnMark { .. } => EventMask::ECN_MARK,
            TraceRecord::LinkDown { .. } | TraceRecord::LinkUp { .. } => EventMask::LINK_STATE,
            TraceRecord::QueueSample { .. } => EventMask::QUEUE_SAMPLE,
            TraceRecord::PlaneSample { .. } => EventMask::PLANE_SAMPLE,
            TraceRecord::SubflowSample { .. } => EventMask::SUBFLOW_SAMPLE,
        }
    }

    /// The record's timestamp.
    pub fn time(&self) -> SimTime {
        match *self {
            TraceRecord::FlowStart { t, .. }
            | TraceRecord::FlowFinish { t, .. }
            | TraceRecord::Retransmit { t, .. }
            | TraceRecord::Timeout { t, .. }
            | TraceRecord::SubflowDead { t, .. }
            | TraceRecord::EcnMark { t, .. }
            | TraceRecord::LinkDown { t, .. }
            | TraceRecord::LinkUp { t, .. }
            | TraceRecord::QueueSample { t, .. }
            | TraceRecord::PlaneSample { t, .. }
            | TraceRecord::SubflowSample { t, .. } => t,
        }
    }

    /// One JSON object, fixed field order, no trailing newline. Floats use
    /// Rust's shortest round-trip formatting, which is deterministic.
    pub fn to_json(&self) -> String {
        match *self {
            TraceRecord::FlowStart {
                t,
                conn,
                src,
                dst,
                size_bytes,
                n_subflows,
            } => format!(
                "{{\"t_ps\":{},\"event\":\"flow_start\",\"conn\":{conn},\"src\":{src},\
                 \"dst\":{dst},\"size_bytes\":{size_bytes},\"n_subflows\":{n_subflows}}}",
                t.as_ps()
            ),
            TraceRecord::FlowFinish {
                t,
                conn,
                fct_ps,
                retransmits,
                timeouts,
            } => format!(
                "{{\"t_ps\":{},\"event\":\"flow_finish\",\"conn\":{conn},\"fct_ps\":{fct_ps},\
                 \"retransmits\":{retransmits},\"timeouts\":{timeouts}}}",
                t.as_ps()
            ),
            TraceRecord::Retransmit {
                t,
                conn,
                subflow,
                seq,
            } => format!(
                "{{\"t_ps\":{},\"event\":\"retransmit\",\"conn\":{conn},\
                 \"subflow\":{subflow},\"seq\":{seq}}}",
                t.as_ps()
            ),
            TraceRecord::Timeout {
                t,
                conn,
                subflow,
                backoff,
            } => format!(
                "{{\"t_ps\":{},\"event\":\"timeout\",\"conn\":{conn},\
                 \"subflow\":{subflow},\"backoff\":{backoff}}}",
                t.as_ps()
            ),
            TraceRecord::SubflowDead {
                t,
                conn,
                subflow,
                reclaimed,
            } => format!(
                "{{\"t_ps\":{},\"event\":\"subflow_dead\",\"conn\":{conn},\
                 \"subflow\":{subflow},\"reclaimed\":{reclaimed}}}",
                t.as_ps()
            ),
            TraceRecord::EcnMark {
                t,
                link,
                buffered_bytes,
            } => format!(
                "{{\"t_ps\":{},\"event\":\"ecn_mark\",\"link\":{link},\
                 \"buffered_bytes\":{buffered_bytes}}}",
                t.as_ps()
            ),
            TraceRecord::LinkDown { t, link } => format!(
                "{{\"t_ps\":{},\"event\":\"link_down\",\"link\":{link}}}",
                t.as_ps()
            ),
            TraceRecord::LinkUp { t, link } => format!(
                "{{\"t_ps\":{},\"event\":\"link_up\",\"link\":{link}}}",
                t.as_ps()
            ),
            TraceRecord::QueueSample {
                t,
                link,
                depth_pkts,
                buffered_bytes,
            } => format!(
                "{{\"t_ps\":{},\"event\":\"queue_sample\",\"link\":{link},\
                 \"depth_pkts\":{depth_pkts},\"buffered_bytes\":{buffered_bytes}}}",
                t.as_ps()
            ),
            TraceRecord::PlaneSample {
                t,
                plane,
                bytes_delta,
                utilization,
            } => format!(
                "{{\"t_ps\":{},\"event\":\"plane_sample\",\"plane\":{plane},\
                 \"bytes_delta\":{bytes_delta},\"utilization\":{utilization}}}",
                t.as_ps()
            ),
            TraceRecord::SubflowSample {
                t,
                conn,
                subflow,
                cwnd,
                srtt_ps,
                in_flight,
            } => format!(
                "{{\"t_ps\":{},\"event\":\"subflow_sample\",\"conn\":{conn},\
                 \"subflow\":{subflow},\"cwnd\":{cwnd},\"srtt_ps\":{srtt_ps},\
                 \"in_flight\":{in_flight}}}",
                t.as_ps()
            ),
        }
    }

    /// One CSV row under [`Telemetry::CSV_HEADER`]. Inapplicable columns are
    /// left empty; the `v0..v3` legend is in [`Telemetry::csv_legend`].
    pub fn to_csv_row(&self) -> String {
        let row = |t: SimTime,
                   event: &str,
                   conn: &str,
                   subflow: &str,
                   link: &str,
                   plane: &str,
                   v: [String; 4]| {
            format!(
                "{},{event},{conn},{subflow},{link},{plane},{},{},{},{}",
                t.as_ps(),
                v[0],
                v[1],
                v[2],
                v[3]
            )
        };
        let s = |x: u64| x.to_string();
        let f = |x: f64| x.to_string();
        let none = String::new();
        match *self {
            TraceRecord::FlowStart {
                t,
                conn,
                src,
                dst,
                size_bytes,
                n_subflows,
            } => row(
                t,
                "flow_start",
                &s(conn),
                "",
                "",
                "",
                [s(src), s(dst), s(size_bytes), s(n_subflows)],
            ),
            TraceRecord::FlowFinish {
                t,
                conn,
                fct_ps,
                retransmits,
                timeouts,
            } => row(
                t,
                "flow_finish",
                &s(conn),
                "",
                "",
                "",
                [s(fct_ps), s(retransmits), s(timeouts), none.clone()],
            ),
            TraceRecord::Retransmit {
                t,
                conn,
                subflow,
                seq,
            } => row(
                t,
                "retransmit",
                &s(conn),
                &s(subflow),
                "",
                "",
                [s(seq), none.clone(), none.clone(), none.clone()],
            ),
            TraceRecord::Timeout {
                t,
                conn,
                subflow,
                backoff,
            } => row(
                t,
                "timeout",
                &s(conn),
                &s(subflow),
                "",
                "",
                [s(backoff), none.clone(), none.clone(), none.clone()],
            ),
            TraceRecord::SubflowDead {
                t,
                conn,
                subflow,
                reclaimed,
            } => row(
                t,
                "subflow_dead",
                &s(conn),
                &s(subflow),
                "",
                "",
                [s(reclaimed), none.clone(), none.clone(), none.clone()],
            ),
            TraceRecord::EcnMark {
                t,
                link,
                buffered_bytes,
            } => row(
                t,
                "ecn_mark",
                "",
                "",
                &s(link),
                "",
                [s(buffered_bytes), none.clone(), none.clone(), none.clone()],
            ),
            TraceRecord::LinkDown { t, link } => row(
                t,
                "link_down",
                "",
                "",
                &s(link),
                "",
                [none.clone(), none.clone(), none.clone(), none.clone()],
            ),
            TraceRecord::LinkUp { t, link } => row(
                t,
                "link_up",
                "",
                "",
                &s(link),
                "",
                [none.clone(), none.clone(), none.clone(), none.clone()],
            ),
            TraceRecord::QueueSample {
                t,
                link,
                depth_pkts,
                buffered_bytes,
            } => row(
                t,
                "queue_sample",
                "",
                "",
                &s(link),
                "",
                [s(depth_pkts), s(buffered_bytes), none.clone(), none.clone()],
            ),
            TraceRecord::PlaneSample {
                t,
                plane,
                bytes_delta,
                utilization,
            } => row(
                t,
                "plane_sample",
                "",
                "",
                "",
                &s(plane),
                [s(bytes_delta), f(utilization), none.clone(), none.clone()],
            ),
            TraceRecord::SubflowSample {
                t,
                conn,
                subflow,
                cwnd,
                srtt_ps,
                in_flight,
            } => row(
                t,
                "subflow_sample",
                &s(conn),
                &s(subflow),
                "",
                "",
                [f(cwnd), f(srtt_ps), s(in_flight), none],
            ),
        }
    }
}

/// The in-simulator trace buffer plus the static per-link metadata the
/// samplers need (plane membership and aggregate plane capacity, captured
/// from the [`Network`] at construction).
#[derive(Debug)]
pub struct Telemetry {
    pub(crate) cfg: TelemetryConfig,
    records: Vec<TraceRecord>,
    /// Plane of each directed link, indexed like the simulator's queues.
    pub(crate) link_planes: Vec<PlaneId>,
    /// Aggregate directed-link capacity per plane (bps), the utilization
    /// denominator.
    pub(crate) plane_capacity_bps: Vec<u64>,
    /// Per-plane cumulative bytes served as of the previous sample.
    pub(crate) last_plane_bytes: Vec<u64>,
    /// Time of the previous sample (utilization window start).
    pub(crate) last_sample_at: SimTime,
    /// True while a `TelemetrySample` event is pending in the event queue.
    pub(crate) sampler_armed: bool,
}

impl Telemetry {
    /// Capture link/plane metadata from `net` under configuration `cfg`.
    ///
    /// A `Some(0)` sampler interval is normalized to `None` (samplers off):
    /// a zero-delta sampler would re-arm itself at its own timestamp and the
    /// event loop's batched same-time dispatch would pop it forever — an
    /// infinite loop that never advances the clock. Every arm site
    /// (`Simulator::new`, `start_flow`, the tick itself) reads the interval
    /// from this config, so normalizing here covers them all.
    pub fn new(net: &Network, mut cfg: TelemetryConfig) -> Telemetry {
        if cfg.sample_interval == Some(SimTime::ZERO) {
            cfg.sample_interval = None;
        }
        let link_planes: Vec<PlaneId> = net.links().map(|(_, l)| l.plane).collect();
        let mut plane_capacity_bps = vec![0u64; usize::from(net.n_planes())];
        for (_, l) in net.links() {
            plane_capacity_bps[l.plane.index()] += l.capacity_bps;
        }
        Telemetry {
            cfg,
            records: Vec::new(),
            link_planes,
            last_plane_bytes: vec![0; plane_capacity_bps.len()],
            plane_capacity_bps,
            last_sample_at: SimTime::ZERO,
            sampler_armed: false,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// True when `cat` is enabled.
    #[inline]
    pub fn wants(&self, cat: EventMask) -> bool {
        self.cfg.events.contains(cat)
    }

    /// Append a record (the caller has already checked the category).
    #[inline]
    pub(crate) fn record(&mut self, rec: TraceRecord) {
        self.records.push(rec);
    }

    /// All records, in event-dispatch order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records captured.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialize every record as JSON Lines (one object per line, trailing
    /// newline). Byte-identical across runs of the same scenario.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }

    /// The fixed CSV column set (see [`Telemetry::csv_legend`] for `v0..v3`).
    pub const CSV_HEADER: &'static str = "t_ps,event,conn,subflow,link,plane,v0,v1,v2,v3";

    /// The per-event meaning of the generic `v0..v3` CSV columns, emitted as
    /// leading comment lines by [`Telemetry::to_csv`].
    pub fn csv_legend() -> &'static str {
        "# flow_start: v0=src v1=dst v2=size_bytes v3=n_subflows\n\
         # flow_finish: v0=fct_ps v1=retransmits v2=timeouts\n\
         # retransmit: v0=seq\n\
         # timeout: v0=backoff\n\
         # subflow_dead: v0=reclaimed\n\
         # ecn_mark: v0=buffered_bytes\n\
         # queue_sample: v0=depth_pkts v1=buffered_bytes\n\
         # plane_sample: v0=bytes_delta v1=utilization\n\
         # subflow_sample: v0=cwnd v1=srtt_ps v2=in_flight\n"
    }

    /// Serialize every record as CSV with a fixed header and a per-event
    /// legend in leading `#` comments. Byte-identical across runs.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::csv_legend());
        out.push_str(Self::CSV_HEADER);
        out.push('\n');
        for r in &self.records {
            out.push_str(&r.to_csv_row());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_contains_and_union() {
        assert!(EventMask::ALL.contains(EventMask::ECN_MARK));
        assert!(EventMask::TRACE.contains(EventMask::FLOW_START));
        assert!(!EventMask::TRACE.contains(EventMask::QUEUE_SAMPLE));
        assert!(!EventMask::NONE.contains(EventMask::FLOW_START));
        let m = EventMask::TIMEOUT.union(EventMask::RETRANSMIT);
        assert!(m.contains(EventMask::TIMEOUT));
        assert!(m.contains(EventMask::RETRANSMIT));
        assert!(!m.contains(EventMask::FLOW_FINISH));
    }

    #[test]
    fn mask_parses_names() {
        let m = EventMask::from_names("flow, ecn,samples").unwrap();
        assert!(m.contains(EventMask::FLOW_START));
        assert!(m.contains(EventMask::FLOW_FINISH));
        assert!(m.contains(EventMask::ECN_MARK));
        assert!(m.contains(EventMask::PLANE_SAMPLE));
        assert!(!m.contains(EventMask::TIMEOUT));
        assert_eq!(EventMask::from_names("all").unwrap(), EventMask::ALL);
        assert!(EventMask::from_names("bogus").is_err());
        assert_eq!(EventMask::from_names("").unwrap(), EventMask::NONE);
    }

    #[test]
    fn default_config_is_disabled() {
        let cfg = TelemetryConfig::default();
        assert!(!cfg.enabled());
        assert!(TelemetryConfig::all(SimTime::from_us(10)).enabled());
        assert!(TelemetryConfig::trace_only().enabled());
    }

    #[test]
    fn json_field_order_is_stable() {
        let r = TraceRecord::FlowStart {
            t: SimTime::from_us(3),
            conn: 1,
            src: 0,
            dst: 15,
            size_bytes: 1000,
            n_subflows: 2,
        };
        assert_eq!(
            r.to_json(),
            "{\"t_ps\":3000000,\"event\":\"flow_start\",\"conn\":1,\"src\":0,\
             \"dst\":15,\"size_bytes\":1000,\"n_subflows\":2}"
        );
        let q = TraceRecord::PlaneSample {
            t: SimTime::from_ns(5),
            plane: 1,
            bytes_delta: 3000,
            utilization: 0.5,
        };
        assert_eq!(
            q.to_json(),
            "{\"t_ps\":5000,\"event\":\"plane_sample\",\"plane\":1,\
             \"bytes_delta\":3000,\"utilization\":0.5}"
        );
    }

    #[test]
    fn csv_rows_match_header_arity() {
        let cols = Telemetry::CSV_HEADER.split(',').count();
        let recs = [
            TraceRecord::FlowStart {
                t: SimTime::ZERO,
                conn: 0,
                src: 1,
                dst: 2,
                size_bytes: 3,
                n_subflows: 1,
            },
            TraceRecord::LinkDown {
                t: SimTime::ZERO,
                link: 9,
            },
            TraceRecord::SubflowSample {
                t: SimTime::ZERO,
                conn: 0,
                subflow: 0,
                cwnd: 10.0,
                srtt_ps: 0.0,
                in_flight: 4,
            },
        ];
        for r in recs {
            assert_eq!(r.to_csv_row().split(',').count(), cols, "{r:?}");
        }
    }

    #[test]
    fn record_category_roundtrip() {
        let r = TraceRecord::EcnMark {
            t: SimTime::ZERO,
            link: 0,
            buffered_bytes: 0,
        };
        assert_eq!(r.category(), EventMask::ECN_MARK);
        assert_eq!(r.time(), SimTime::ZERO);
    }
}
