//! Simulation time: a picosecond-resolution clock.
//!
//! Picoseconds in a `u64` cover ~213 days of simulated time — far beyond any
//! experiment here — while keeping every serialization delay exact (one MTU
//! at 400 Gb/s is 30 ns = 30,000 ps).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute simulation timestamp in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// From nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// From microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// From milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// From seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// As picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// As fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating difference.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl std::str::FromStr for SimTime {
    type Err = String;

    /// Parse a duration with an optional unit suffix: `ps`, `ns`, `us`,
    /// `ms`, or `s` (bare digits mean picoseconds). E.g. `"100us"`, `"1ms"`.
    fn from_str(s: &str) -> Result<SimTime, String> {
        let s = s.trim();
        let (digits, make): (&str, fn(u64) -> SimTime) = if let Some(d) = s.strip_suffix("ps") {
            (d, SimTime::from_ps)
        } else if let Some(d) = s.strip_suffix("ns") {
            (d, SimTime::from_ns)
        } else if let Some(d) = s.strip_suffix("us") {
            (d, SimTime::from_us)
        } else if let Some(d) = s.strip_suffix("ms") {
            (d, SimTime::from_ms)
        } else if let Some(d) = s.strip_suffix('s') {
            (d, SimTime::from_secs)
        } else {
            (s, SimTime::from_ps)
        };
        digits
            .trim()
            .parse::<u64>()
            .map(make)
            .map_err(|e| format!("bad duration {s:?}: {e}"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// Ideal transfer time of `bytes` at `rate_bps` in fractional microseconds —
/// exact float math (unlike [`serialization_ps`], which rounds up to whole
/// picoseconds), for use as an FCT/slowdown denominator.
#[inline]
pub fn transfer_us_f64(bytes: u64, rate_bps: u64) -> f64 {
    bytes as f64 * 8.0 / rate_bps as f64 * 1e6
}

/// Serialization time of `bytes` at `rate_bps`, in picoseconds (rounded up —
/// a partial picosecond still occupies the wire).
#[inline]
pub fn serialization_ps(bytes: u32, rate_bps: u64) -> u64 {
    let bits = bytes as u64 * 8;
    // bits / rate seconds = bits * 1e12 / rate ps. Any frame under ~2.3 MB
    // keeps the numerator within u64, so the common case (MTU-bounded
    // packets) avoids a 128-bit division; the wide path gives the same
    // answer for anything larger.
    match bits.checked_mul(1_000_000_000_000) {
        Some(ps) => ps.div_ceil(rate_bps),
        None => (bits as u128 * 1_000_000_000_000u128).div_ceil(rate_bps as u128) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_ns(5).as_ps(), 5_000);
        assert_eq!(SimTime::from_us(3).as_ps(), 3_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn mtu_serialization_at_100g_is_120ns() {
        // 1500 B * 8 / 100 Gb/s = 120 ns (paper, section 5.2.1).
        assert_eq!(serialization_ps(1500, 100_000_000_000), 120_000);
    }

    #[test]
    fn mtu_serialization_at_400g_is_30ns() {
        assert_eq!(serialization_ps(1500, 400_000_000_000), 30_000);
    }

    #[test]
    fn serialization_rounds_up() {
        // 1 byte at 1 Tb/s = 8 ps exactly; 1 byte at 3 Tb/s = 2.66 -> 3 ps.
        assert_eq!(serialization_ps(1, 1_000_000_000_000), 8);
        assert_eq!(serialization_ps(1, 3_000_000_000_000), 3);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(2);
        let b = SimTime::from_us(1);
        assert_eq!(a + b, SimTime::from_us(3));
        assert_eq!(a - b, SimTime::from_us(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn parses_duration_suffixes() {
        assert_eq!("42".parse::<SimTime>().unwrap(), SimTime::from_ps(42));
        assert_eq!("42ps".parse::<SimTime>().unwrap(), SimTime::from_ps(42));
        assert_eq!("30ns".parse::<SimTime>().unwrap(), SimTime::from_ns(30));
        assert_eq!("100us".parse::<SimTime>().unwrap(), SimTime::from_us(100));
        assert_eq!("1ms".parse::<SimTime>().unwrap(), SimTime::from_ms(1));
        assert_eq!("2s".parse::<SimTime>().unwrap(), SimTime::from_secs(2));
        assert_eq!(" 5 us ".parse::<SimTime>().unwrap(), SimTime::from_us(5));
        assert!("".parse::<SimTime>().is_err());
        assert!("5xs".parse::<SimTime>().is_err());
        assert!("-3us".parse::<SimTime>().is_err());
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_ms(2).to_string(), "2.000ms");
        assert_eq!(SimTime::from_us(7).to_string(), "7.000us");
        assert_eq!(SimTime::from_ps(42).to_string(), "42ps");
    }
}
