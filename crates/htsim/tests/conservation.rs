//! Packet-conservation ledger (feature `strict-invariants`): every packet
//! injected at a host must end up delivered, dropped at a full buffer,
//! discarded at a dark link, or still in flight — and nothing may be counted
//! twice. `run()` asserts this at every return; these tests additionally
//! inspect the books directly, including across a mid-flight link failure.
#![cfg(feature = "strict-invariants")]

use pnet_htsim::{
    run, run_to_completion, CcAlgo, FlowSpec, NullDriver, SimConfig, SimTime, Simulator,
};
use pnet_routing::{host_route, RouteAlgo, Router};
use pnet_topology::{assemble_homogeneous, FatTree, HostId, LinkId, LinkProfile, Network, PlaneId};

fn net2() -> Network {
    assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default())
}

fn route_for(net: &Network, src: HostId, dst: HostId, plane: u16) -> Vec<LinkId> {
    let router = Router::new(net, RouteAlgo::Ksp { k: 1 });
    let (ra, rb) = (net.rack_of_host(src), net.rack_of_host(dst));
    let p = router
        .paths_in_plane(PlaneId(plane), ra, rb)
        .first()
        .cloned()
        .expect("inter-rack pair must have a path");
    host_route(net, src, dst, &p).expect("route must assemble")
}

#[test]
fn books_balance_after_a_clean_run() {
    let n = net2();
    let mut sim = Simulator::new(&n, SimConfig::default());
    for h in 0..4u32 {
        let (src, dst) = (HostId(h), HostId(15 - h));
        sim.start_flow(FlowSpec {
            src,
            dst,
            size_bytes: 500_000,
            routes: vec![route_for(&n, src, dst, (h % 2) as u16)],
            cc: CcAlgo::Reno,
            owner_tag: h as u64,
        });
    }
    run_to_completion(&mut sim);
    let l = sim.conservation();
    assert!(l.balanced(), "{l:?}");
    assert_eq!(l.in_flight, 0, "drained run must leave nothing in flight");
    assert!(l.injected > 0);
    assert_eq!(
        l.injected,
        l.delivered + l.dropped_congestion + l.dropped_link_down
    );
}

#[test]
fn books_balance_at_a_mid_run_stop() {
    // Stopping at `until` leaves packets buffered and on the wire; the
    // in_flight column must absorb exactly the difference.
    let n = net2();
    let mut sim = Simulator::new(&n, SimConfig::default());
    sim.start_flow(FlowSpec {
        src: HostId(0),
        dst: HostId(15),
        size_bytes: 50_000_000,
        routes: vec![route_for(&n, HostId(0), HostId(15), 0)],
        cc: CcAlgo::Reno,
        owner_tag: 0,
    });
    run(&mut sim, &mut NullDriver, Some(SimTime::from_us(100)));
    let l = sim.conservation();
    assert!(l.balanced(), "{l:?}");
    assert!(l.in_flight > 0, "a 50 MB flow must still be in flight");
}

#[test]
fn books_balance_across_a_link_failure() {
    // MPTCP over both planes, then plane 0's uplink goes dark mid-flight:
    // blackholed packets move to the link-down column, the dead subflow's
    // data is re-injected on plane 1, and the books must still balance once
    // the flow completes and the network drains.
    let n = net2();
    let mut cfg = SimConfig::default();
    cfg.tcp.min_rto = SimTime::from_ms(1); // fast failure detection
    let mut sim = Simulator::new(&n, cfg);
    let r0 = route_for(&n, HostId(0), HostId(15), 0);
    let plane0_uplink = r0[0];
    let id = sim.start_flow(FlowSpec {
        src: HostId(0),
        dst: HostId(15),
        size_bytes: 20_000_000,
        routes: vec![r0, route_for(&n, HostId(0), HostId(15), 1)],
        cc: CcAlgo::Lia,
        owner_tag: 0,
    });

    run(&mut sim, &mut NullDriver, Some(SimTime::from_us(200)));
    assert!(
        sim.conn(id).finish.is_none(),
        "flow finished before failure"
    );
    assert!(sim.conservation().balanced(), "{:?}", sim.conservation());

    sim.fail_link(plane0_uplink);
    run(&mut sim, &mut NullDriver, None);

    assert!(
        sim.conn(id).finish.is_some(),
        "MPTCP flow never completed after losing one plane"
    );
    let l = sim.conservation();
    assert!(l.balanced(), "{l:?}");
    assert_eq!(l.in_flight, 0);
    assert!(
        l.dropped_link_down > 0,
        "dark uplink should have discarded in-flight packets"
    );
    assert_eq!(l.dropped_link_down, sim.dropped_link_down_packets);
    assert_eq!(l.dropped_congestion, sim.dropped_packets);
}

#[test]
fn books_balance_with_samplers_active() {
    // Full telemetry (every trace category + periodic samplers) across a
    // mid-run link failure and restore: the sampler observes but must not
    // touch the ledger, and `run()`'s per-return conservation assert stays
    // quiet throughout.
    use pnet_htsim::{TelemetryConfig, TraceRecord};
    let n = net2();
    let mut cfg = SimConfig {
        telemetry: TelemetryConfig::all(SimTime::from_us(5)),
        ..SimConfig::default()
    };
    cfg.tcp.min_rto = SimTime::from_ms(1);
    let mut sim = Simulator::new(&n, cfg);
    let r0 = route_for(&n, HostId(0), HostId(15), 0);
    let plane0_uplink = r0[0];
    sim.start_flow(FlowSpec {
        src: HostId(0),
        dst: HostId(15),
        size_bytes: 20_000_000,
        routes: vec![r0, route_for(&n, HostId(0), HostId(15), 1)],
        cc: CcAlgo::Lia,
        owner_tag: 0,
    });
    for h in 1..4u32 {
        let (src, dst) = (HostId(h), HostId(15 - h));
        sim.start_flow(FlowSpec {
            src,
            dst,
            size_bytes: 1_000_000,
            routes: vec![route_for(&n, src, dst, (h % 2) as u16)],
            cc: CcAlgo::Reno,
            owner_tag: h as u64,
        });
    }

    run(&mut sim, &mut NullDriver, Some(SimTime::from_us(200)));
    assert!(sim.conservation().balanced(), "{:?}", sim.conservation());
    sim.fail_link(plane0_uplink);
    run(&mut sim, &mut NullDriver, Some(SimTime::from_ms(1)));
    assert!(sim.conservation().balanced(), "{:?}", sim.conservation());
    sim.restore_link(plane0_uplink);
    run(&mut sim, &mut NullDriver, None);

    let l = sim.conservation();
    assert!(l.balanced(), "{l:?}");
    assert_eq!(l.in_flight, 0);
    assert_eq!(sim.records.len(), 4, "all flows must complete");

    // The trace saw the failure and the samplers ran.
    let tl = sim.telemetry().expect("telemetry was enabled");
    let mut saw_down = false;
    let mut saw_up = false;
    let mut samples = 0usize;
    for rec in tl.records() {
        match rec {
            TraceRecord::LinkDown { .. } => saw_down = true,
            TraceRecord::LinkUp { .. } => saw_up = true,
            TraceRecord::QueueSample { .. }
            | TraceRecord::PlaneSample { .. }
            | TraceRecord::SubflowSample { .. } => samples += 1,
            _ => {}
        }
    }
    assert!(saw_down && saw_up, "link failure/restore must be traced");
    assert!(samples > 0, "samplers must have run");
}
