//! Reusable, epoch-stamped traversal scratch.
//!
//! Every BFS/Yen/disjoint-path call needs a distance array, a parent array,
//! and banned-node/banned-link sets. Allocating those per call (`vec![u32::MAX;
//! n]`, a fresh `HashSet` per spur) dominates the all-pairs KSP hot path, so a
//! [`RouteScratch`] keeps them alive and invalidates by bumping a generation
//! counter: an entry is only meaningful when its stamp equals the current
//! epoch, so "clearing" an array is a single integer increment instead of an
//! `O(n)` fill.
//!
//! A scratch is plain mutable state owned by one worker. The bulk entry
//! points ([`crate::router::Router::precompute`], the batched KSP functions)
//! reach it through [`with_thread_scratch`], which hands out one scratch per
//! OS thread — the per-index closures of
//! [`crate::exec::Parallelism::map_indexed`] stay pure in their *outputs*
//! (scratch contents never influence results, only allocation reuse), so
//! serial and parallel runs remain bit-identical.

use pnet_topology::LinkId;
use std::cell::RefCell;

/// Per-worker traversal scratch. All arrays are epoch-stamped; `begin_*`
/// methods start a fresh logical state in O(1).
#[derive(Debug, Default)]
pub struct RouteScratch {
    // --- BFS state (dist/parent), valid where `stamp[i] == epoch`. --------
    epoch: u32,
    stamp: Vec<u32>,
    dist: Vec<u32>,
    parent: Vec<(u32, LinkId)>,
    // --- Banned switches, banned iff `node_ban[i] == node_ban_epoch`. -----
    node_ban_epoch: u32,
    node_ban: Vec<u32>,
    // --- Banned links (indexed by link id), same scheme. ------------------
    link_ban_epoch: u32,
    link_ban: Vec<u32>,
    // --- FIFO queue storage reused across BFS calls. ----------------------
    pub(crate) queue: Vec<u32>,
}

impl RouteScratch {
    /// New empty scratch (arrays grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Make sure the arrays cover `n_nodes` switches and link ids below
    /// `link_bound`. Growing resets the epochs (stamps in the fresh region
    /// are zeroed, so epoch 0 must never be a live generation — counters
    /// start at 0 and are bumped *before* first use).
    pub fn ensure(&mut self, n_nodes: usize, link_bound: usize) {
        if self.stamp.len() < n_nodes {
            self.stamp.resize(n_nodes, 0);
            self.dist.resize(n_nodes, 0);
            self.parent.resize(n_nodes, (0, LinkId(0)));
            self.node_ban.resize(n_nodes, 0);
        }
        if self.link_ban.len() < link_bound {
            self.link_ban.resize(link_bound, 0);
        }
    }

    /// Start a fresh BFS generation: all distances become "unset".
    #[inline]
    pub fn begin_search(&mut self) {
        self.epoch = bump(&mut self.epoch, &mut self.stamp);
    }

    /// Distance of `u` in the current generation, `u32::MAX` if unset.
    #[inline]
    pub fn dist(&self, u: usize) -> u32 {
        if self.stamp[u] == self.epoch {
            self.dist[u]
        } else {
            u32::MAX
        }
    }

    /// Set distance and parent edge of `u` in the current generation.
    #[inline]
    pub fn visit(&mut self, u: usize, d: u32, parent: (u32, LinkId)) {
        self.stamp[u] = self.epoch;
        self.dist[u] = d;
        self.parent[u] = parent;
    }

    /// Parent edge `(predecessor, link)` of `u`; only meaningful for visited
    /// nodes at distance > 0.
    #[inline]
    pub fn parent(&self, u: usize) -> (u32, LinkId) {
        debug_assert_eq!(self.stamp[u], self.epoch, "parent of unvisited node");
        self.parent[u]
    }

    /// Start a fresh banned-switch set.
    #[inline]
    pub fn begin_node_bans(&mut self) {
        self.node_ban_epoch = bump(&mut self.node_ban_epoch, &mut self.node_ban);
    }

    /// Ban switch `u` until the next [`RouteScratch::begin_node_bans`].
    #[inline]
    pub fn ban_node(&mut self, u: usize) {
        self.node_ban[u] = self.node_ban_epoch;
    }

    /// Is switch `u` banned?
    #[inline]
    pub fn node_banned(&self, u: usize) -> bool {
        self.node_ban[u] == self.node_ban_epoch
    }

    /// Start a fresh banned-link set.
    #[inline]
    pub fn begin_link_bans(&mut self) {
        self.link_ban_epoch = bump(&mut self.link_ban_epoch, &mut self.link_ban);
    }

    /// Ban `slot` (a link id, or any caller-chosen index below `link_bound`,
    /// e.g. cable ids) until the next [`RouteScratch::begin_link_bans`].
    #[inline]
    pub fn ban_link_slot(&mut self, slot: usize) {
        self.link_ban[slot] = self.link_ban_epoch;
    }

    /// Is `slot` banned?
    #[inline]
    pub fn link_slot_banned(&self, slot: usize) -> bool {
        self.link_ban[slot] == self.link_ban_epoch
    }
}

/// Advance an epoch counter, clearing `stamps` on (rare) wrap-around so a
/// stale stamp can never alias a live generation.
#[inline]
fn bump(epoch: &mut u32, stamps: &mut [u32]) -> u32 {
    if *epoch == u32::MAX {
        stamps.fill(0);
        *epoch = 1;
    } else {
        *epoch += 1;
    }
    *epoch
}

thread_local! {
    static SCRATCH: RefCell<RouteScratch> = RefCell::new(RouteScratch::new());
}

/// Run `f` with this thread's [`RouteScratch`]. Public routing entry points
/// use this so callers get allocation reuse without threading a scratch
/// through their own signatures; nested calls must pass the borrowed scratch
/// down instead of re-entering.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut RouteScratch) -> R) -> R {
    // pnet-tidy: allow(S1) -- the sanctioned per-thread scratch: the RefCell is thread_local (never shared across threads) and `f` is the caller's own work, not foreign code
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_invalidate_without_clearing() {
        let mut s = RouteScratch::new();
        s.ensure(4, 8);
        s.begin_search();
        s.visit(2, 7, (0, LinkId(3)));
        assert_eq!(s.dist(2), 7);
        assert_eq!(s.dist(1), u32::MAX);
        s.begin_search();
        assert_eq!(s.dist(2), u32::MAX, "stale entry leaked across epochs");
    }

    #[test]
    fn bans_are_generation_scoped() {
        let mut s = RouteScratch::new();
        s.ensure(4, 8);
        s.begin_node_bans();
        s.ban_node(1);
        assert!(s.node_banned(1));
        assert!(!s.node_banned(0));
        s.begin_node_bans();
        assert!(!s.node_banned(1));

        s.begin_link_bans();
        s.ban_link_slot(5);
        assert!(s.link_slot_banned(5));
        s.begin_link_bans();
        assert!(!s.link_slot_banned(5));
    }

    #[test]
    fn ensure_grows_preserving_soundness() {
        let mut s = RouteScratch::new();
        s.ensure(2, 2);
        s.begin_search();
        s.visit(0, 1, (0, LinkId(0)));
        s.ensure(10, 10);
        // Freshly grown region is unset in the current generation.
        assert_eq!(s.dist(9), u32::MAX);
        assert_eq!(s.dist(0), 1);
    }

    #[test]
    fn wraparound_resets_stamps() {
        let mut s = RouteScratch::new();
        s.ensure(2, 2);
        s.epoch = u32::MAX - 1;
        s.stamp.fill(u32::MAX - 1);
        s.begin_search(); // -> MAX
        s.visit(0, 3, (0, LinkId(0)));
        s.begin_search(); // wraps -> 1, stamps cleared
        assert_eq!(s.dist(0), u32::MAX);
    }

    #[test]
    fn thread_scratch_is_reusable() {
        let a = with_thread_scratch(|s| {
            s.ensure(8, 8);
            s.begin_search();
            s.visit(3, 9, (0, LinkId(1)));
            s.dist(3)
        });
        assert_eq!(a, 9);
        let b = with_thread_scratch(|s| s.dist(3));
        // Same generation persists across with_thread_scratch calls on the
        // same thread until someone begins a new search.
        assert_eq!(b, 9);
    }
}
