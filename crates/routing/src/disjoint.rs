//! Edge-disjoint path sets.
//!
//! MPTCP subflows that share links also share fate (one congested or failed
//! cable degrades several subflows at once). For resilience-sensitive
//! placement it is useful to trade path length for *edge-disjointness*:
//! compute up to `k` pairwise edge-disjoint paths, shortest first, by
//! repeated shortest-path extraction with used links removed (the standard
//! greedy approximation; within a plane of a P-Net, min-cut many disjoint
//! paths exist by construction of the regular topologies used here).
//!
//! The greedy loop stages its banned-cable set in the epoch-stamped
//! [`RouteScratch`] (cable id = link id / 2, always below the plane's link
//! bound), so successive extractions reuse the same arrays and the ban set
//! grows incrementally instead of rehashing per BFS.

use crate::path::Path;
use crate::plane_graph::PlaneGraph;
use crate::scratch::{with_thread_scratch, RouteScratch};
use pnet_topology::{LinkId, RackId};
use std::collections::BTreeSet;

/// Up to `k` pairwise edge-disjoint ToR-to-ToR paths within one plane,
/// shortest first. Disjointness is over *undirected* cables (a pair of
/// paths may not use the same cable in either direction). Same-rack queries
/// return the single intra-rack path.
pub fn edge_disjoint_paths(pg: &PlaneGraph, src: RackId, dst: RackId, k: usize) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    if src == dst {
        return vec![Path::intra_rack(pg.plane)];
    }
    let s = pg.tor(src);
    let t = pg.tor(dst);
    with_thread_scratch(|scratch| {
        scratch.ensure(pg.n_switches(), pg.link_bound());
        scratch.begin_node_bans();
        // One ban generation for the whole greedy loop: each extracted
        // path's cables are added, never removed.
        scratch.begin_link_bans();
        let mut out = Vec::new();
        while out.len() < k {
            let Some(links) = bfs_avoiding(pg, s, t, scratch) else {
                break;
            };
            for &l in &links {
                scratch.ban_link_slot((l.0 / 2) as usize * 2);
            }
            out.push(Path {
                plane: pg.plane,
                links,
            });
        }
        out
    })
}

/// BFS shortest path avoiding the cables banned in `scratch` (slot = cable
/// id * 2, i.e. the even link of the duplex pair); deterministic (lowest
/// link id first).
fn bfs_avoiding(
    pg: &PlaneGraph,
    s: usize,
    t: usize,
    scratch: &mut RouteScratch,
) -> Option<Vec<LinkId>> {
    scratch.begin_search();
    let mut queue = std::mem::take(&mut scratch.queue);
    queue.clear();
    scratch.visit(s, 0, (0, LinkId(0)));
    queue.push(s as u32);
    let mut head = 0;
    'search: while head < queue.len() {
        let u = queue[head] as usize;
        head += 1;
        if u == t {
            break;
        }
        let du = scratch.dist(u);
        for &(v, l) in pg.neighbors(u) {
            let v = v as usize;
            if scratch.link_slot_banned((l.0 / 2) as usize * 2) || scratch.dist(v) != u32::MAX {
                continue;
            }
            scratch.visit(v, du + 1, (u as u32, l));
            if v == t {
                break 'search;
            }
            queue.push(v as u32);
        }
    }
    scratch.queue = queue;
    let d = scratch.dist(t);
    if d == u32::MAX {
        return None;
    }
    let mut links = vec![LinkId(0); d as usize];
    let mut cur = t;
    for i in (0..d as usize).rev() {
        let (p, l) = scratch.parent(cur);
        links[i] = l;
        cur = p as usize;
    }
    Some(links)
}

/// Check (for tests and callers) that a path set is pairwise edge-disjoint
/// over undirected cables.
pub fn are_edge_disjoint(paths: &[Path]) -> bool {
    let mut seen = BTreeSet::new();
    for p in paths {
        for l in &p.links {
            if !seen.insert(l.0 / 2) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_topology::{assemble_homogeneous, FatTree, Jellyfish, LinkProfile, PlaneId};

    #[test]
    fn fat_tree_cross_pod_disjoint_count() {
        // k=4 fat tree: a ToR has 2 agg uplinks, so at most 2 edge-disjoint
        // paths to another pod.
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let paths = edge_disjoint_paths(&pg, RackId(0), RackId(7), 8);
        assert_eq!(paths.len(), 2);
        assert!(are_edge_disjoint(&paths));
        assert_eq!(paths[0].links.len(), 4);
        for p in &paths {
            p.validate(&net).unwrap();
        }
    }

    #[test]
    fn jellyfish_disjoint_paths_bounded_by_degree() {
        let net = assemble_homogeneous(
            &Jellyfish::new(16, 4, 1, 5),
            1,
            &LinkProfile::paper_default(),
        );
        let pg = PlaneGraph::build(&net, PlaneId(0));
        for b in 1..16u32 {
            let paths = edge_disjoint_paths(&pg, RackId(0), RackId(b), 16);
            assert!(are_edge_disjoint(&paths), "overlap toward rack {b}");
            assert!(paths.len() <= 4, "more disjoint paths than the ToR degree");
            assert!(!paths.is_empty());
            // Shortest first.
            for w in paths.windows(2) {
                assert!(w[0].links.len() <= w[1].links.len());
            }
        }
    }

    #[test]
    fn greedy_first_path_is_shortest() {
        let net = assemble_homogeneous(
            &Jellyfish::new(14, 4, 1, 2),
            1,
            &LinkProfile::paper_default(),
        );
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let d = edge_disjoint_paths(&pg, RackId(1), RackId(9), 4);
        let sp = crate::bfs::shortest_path(&pg, RackId(1), RackId(9)).unwrap();
        assert_eq!(d[0].links.len(), sp.links.len());
    }

    #[test]
    fn same_rack_and_k_zero() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let pg = PlaneGraph::build(&net, PlaneId(0));
        assert!(edge_disjoint_paths(&pg, RackId(0), RackId(7), 0).is_empty());
        let same = edge_disjoint_paths(&pg, RackId(2), RackId(2), 3);
        assert_eq!(same.len(), 1);
        assert!(same[0].links.is_empty());
    }
}
