//! Edge-disjoint path sets.
//!
//! MPTCP subflows that share links also share fate (one congested or failed
//! cable degrades several subflows at once). For resilience-sensitive
//! placement it is useful to trade path length for *edge-disjointness*:
//! compute up to `k` pairwise edge-disjoint paths, shortest first, by
//! repeated shortest-path extraction with used links removed (the standard
//! greedy approximation; within a plane of a P-Net, min-cut many disjoint
//! paths exist by construction of the regular topologies used here).

use crate::path::Path;
use crate::plane_graph::PlaneGraph;
use pnet_topology::{LinkId, RackId};
use std::collections::{HashSet, VecDeque};

/// Up to `k` pairwise edge-disjoint ToR-to-ToR paths within one plane,
/// shortest first. Disjointness is over *undirected* cables (a pair of
/// paths may not use the same cable in either direction). Same-rack queries
/// return the single intra-rack path.
pub fn edge_disjoint_paths(pg: &PlaneGraph, src: RackId, dst: RackId, k: usize) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    if src == dst {
        return vec![Path::intra_rack(pg.plane)];
    }
    let s = pg.tor(src);
    let t = pg.tor(dst);
    let mut banned: HashSet<u32> = HashSet::new(); // cable ids (link id / 2)
    let mut out = Vec::new();
    while out.len() < k {
        let Some(links) = bfs_avoiding(pg, s, t, &banned) else {
            break;
        };
        for &l in &links {
            banned.insert(l.0 / 2);
        }
        out.push(Path {
            plane: pg.plane,
            links,
        });
    }
    out
}

/// BFS shortest path avoiding banned cables; deterministic (lowest link id
/// first).
fn bfs_avoiding(pg: &PlaneGraph, s: usize, t: usize, banned: &HashSet<u32>) -> Option<Vec<LinkId>> {
    let n = pg.n_switches();
    let mut parent: Vec<Option<(usize, LinkId)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[s] = true;
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        if u == t {
            break;
        }
        for &(v, l) in pg.neighbors(u) {
            if seen[v] || banned.contains(&(l.0 / 2)) {
                continue;
            }
            seen[v] = true;
            parent[v] = Some((u, l));
            queue.push_back(v);
        }
    }
    if !seen[t] {
        return None;
    }
    let mut links = Vec::new();
    let mut cur = t;
    while let Some((p, l)) = parent[cur] {
        links.push(l);
        cur = p;
    }
    links.reverse();
    Some(links)
}

/// Check (for tests and callers) that a path set is pairwise edge-disjoint
/// over undirected cables.
pub fn are_edge_disjoint(paths: &[Path]) -> bool {
    let mut seen = HashSet::new();
    for p in paths {
        for l in &p.links {
            if !seen.insert(l.0 / 2) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_topology::{assemble_homogeneous, FatTree, Jellyfish, LinkProfile, PlaneId};

    #[test]
    fn fat_tree_cross_pod_disjoint_count() {
        // k=4 fat tree: a ToR has 2 agg uplinks, so at most 2 edge-disjoint
        // paths to another pod.
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let paths = edge_disjoint_paths(&pg, RackId(0), RackId(7), 8);
        assert_eq!(paths.len(), 2);
        assert!(are_edge_disjoint(&paths));
        assert_eq!(paths[0].links.len(), 4);
        for p in &paths {
            p.validate(&net).unwrap();
        }
    }

    #[test]
    fn jellyfish_disjoint_paths_bounded_by_degree() {
        let net = assemble_homogeneous(
            &Jellyfish::new(16, 4, 1, 5),
            1,
            &LinkProfile::paper_default(),
        );
        let pg = PlaneGraph::build(&net, PlaneId(0));
        for b in 1..16u32 {
            let paths = edge_disjoint_paths(&pg, RackId(0), RackId(b), 16);
            assert!(are_edge_disjoint(&paths), "overlap toward rack {b}");
            assert!(paths.len() <= 4, "more disjoint paths than the ToR degree");
            assert!(!paths.is_empty());
            // Shortest first.
            for w in paths.windows(2) {
                assert!(w[0].links.len() <= w[1].links.len());
            }
        }
    }

    #[test]
    fn greedy_first_path_is_shortest() {
        let net = assemble_homogeneous(
            &Jellyfish::new(14, 4, 1, 2),
            1,
            &LinkProfile::paper_default(),
        );
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let d = edge_disjoint_paths(&pg, RackId(1), RackId(9), 4);
        let sp = crate::bfs::shortest_path(&pg, RackId(1), RackId(9)).unwrap();
        assert_eq!(d[0].links.len(), sp.links.len());
    }

    #[test]
    fn same_rack_and_k_zero() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let pg = PlaneGraph::build(&net, PlaneId(0));
        assert!(edge_disjoint_paths(&pg, RackId(0), RackId(7), 0).is_empty());
        let same = edge_disjoint_paths(&pg, RackId(2), RackId(2), 3);
        assert_eq!(same.len(), 1);
        assert!(same[0].links.is_empty());
    }
}
