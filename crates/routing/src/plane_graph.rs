//! Compact per-plane switch graphs in CSR (compressed sparse row) form.
//!
//! All routing algorithms run on a [`PlaneGraph`]: the switches of one plane
//! with dense indices and a flat adjacency array that remembers the
//! underlying [`LinkId`]s. The CSR layout — one offsets vector plus one
//! packed `(neighbor, link)` array — keeps every traversal cache-linear and
//! allocation-free: a BFS touches two contiguous arrays instead of chasing
//! one heap-allocated `Vec` per node, and node lookup is a dense vector
//! index instead of a `HashMap` probe (node ids are arena-dense in
//! `pnet_topology`). Building it once per plane avoids filtering the full
//! multi-plane [`Network`] adjacency on every traversal.

use pnet_topology::{LinkId, Network, NodeId, NodeKind, PlaneId, RackId};

/// Switch-level graph of a single plane. Only *up* links are included, so a
/// graph built after failure injection reflects the failures (rebuild after
/// changing link state).
#[derive(Debug, Clone)]
pub struct PlaneGraph {
    /// Which plane this graph describes.
    pub plane: PlaneId,
    /// Node id of each switch, indexed by dense switch index.
    nodes: Vec<NodeId>,
    /// Dense switch index of each network node (`u32::MAX` for nodes not in
    /// this plane), indexed by `NodeId`. Node ids are arena-dense, so a flat
    /// vector replaces the former `HashMap<NodeId, usize>`.
    dense_of: Vec<u32>,
    /// CSR offsets: neighbors of dense switch `u` live at
    /// `packed[offsets[u]..offsets[u + 1]]`.
    offsets: Vec<u32>,
    /// Packed adjacency: `(dense neighbor, link id)` pairs, per-node runs
    /// sorted by link id for deterministic traversal order.
    packed: Vec<(u32, LinkId)>,
    /// Dense switch index of each rack's ToR.
    tor_of_rack: Vec<u32>,
    /// Exclusive upper bound on the link ids appearing in this plane graph
    /// (sizes the per-link scratch arrays of [`crate::scratch::RouteScratch`]).
    link_bound: u32,
}

impl PlaneGraph {
    /// Extract the switch graph of `plane` from `net`.
    ///
    /// One pass over the nodes assigns dense indices; one pass over the link
    /// arena counts per-switch degrees and a second fills the packed CSR
    /// rows — no per-node `out_links_in_plane` scans. Links are visited in
    /// `LinkId` order, so each CSR row comes out sorted by link id without an
    /// explicit sort.
    pub fn build(net: &Network, plane: PlaneId) -> Self {
        let mut nodes = Vec::new();
        let mut dense_of = vec![u32::MAX; net.n_nodes()];
        let mut tor_of_rack = vec![u32::MAX; net.n_racks()];
        for (id, node) in net.nodes() {
            if node.kind.is_switch() && node.plane == Some(plane) {
                let dense = nodes.len() as u32;
                dense_of[id.index()] = dense;
                if let NodeKind::Tor { rack } = node.kind {
                    tor_of_rack[rack.index()] = dense;
                }
                nodes.push(id);
            }
        }
        let n = nodes.len();
        // Degree-counting pass, then prefix-sum, then fill.
        let mut offsets = vec![0u32; n + 1];
        let in_plane = |link: &pnet_topology::Link| {
            link.up
                && link.plane == plane
                && dense_of[link.src.index()] != u32::MAX
                && dense_of[link.dst.index()] != u32::MAX
        };
        let mut link_bound = 0u32;
        for (id, link) in net.links() {
            if in_plane(link) {
                offsets[dense_of[link.src.index()] as usize + 1] += 1;
                link_bound = link_bound.max(id.0 + 1);
            }
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut packed = vec![(0u32, LinkId(0)); offsets[n] as usize];
        for (id, link) in net.links() {
            if in_plane(link) {
                let u = dense_of[link.src.index()] as usize;
                packed[cursor[u] as usize] = (dense_of[link.dst.index()], id);
                cursor[u] += 1;
            }
        }
        PlaneGraph {
            plane,
            nodes,
            dense_of,
            offsets,
            packed,
            tor_of_rack,
            link_bound,
        }
    }

    /// Build all plane graphs of a network, fanning out across planes.
    pub fn build_all(net: &Network) -> Vec<PlaneGraph> {
        Self::build_all_with(net, crate::exec::Parallelism::default())
    }

    /// [`PlaneGraph::build_all`] with an explicit execution strategy. Planes
    /// are independent, so extraction parallelizes trivially; results are
    /// collected in plane-index order.
    pub fn build_all_with(net: &Network, par: crate::exec::Parallelism) -> Vec<PlaneGraph> {
        let planes: Vec<PlaneId> = net.planes().collect();
        par.map_indexed(planes.len(), |i| PlaneGraph::build(net, planes[i]))
    }

    /// Number of switches in the plane.
    #[inline]
    pub fn n_switches(&self) -> usize {
        self.nodes.len()
    }

    /// Number of racks served.
    #[inline]
    pub fn n_racks(&self) -> usize {
        self.tor_of_rack.len()
    }

    /// Dense switch index of a rack's ToR.
    ///
    /// # Panics
    /// If the rack has no ToR in this plane.
    #[inline]
    pub fn tor(&self, rack: RackId) -> usize {
        let t = self.tor_of_rack[rack.index()];
        assert!(t != u32::MAX, "rack {rack} has no ToR in {}", self.plane);
        t as usize
    }

    /// Node id of a dense switch index.
    #[inline]
    pub fn node(&self, dense: usize) -> NodeId {
        self.nodes[dense]
    }

    /// Dense index of a switch node, if it is in this plane.
    #[inline]
    pub fn dense(&self, node: NodeId) -> Option<usize> {
        match self.dense_of.get(node.index()) {
            Some(&d) if d != u32::MAX => Some(d as usize),
            _ => None,
        }
    }

    /// Neighbors of a dense switch index: `(dense neighbor, link)` pairs in
    /// link-id order, as one contiguous CSR slice.
    #[inline]
    pub fn neighbors(&self, dense: usize) -> &[(u32, LinkId)] {
        &self.packed[self.offsets[dense] as usize..self.offsets[dense + 1] as usize]
    }

    /// Offset of `dense`'s first CSR entry: `neighbors(dense)[j]` sits at
    /// flat position `row_start(dense) + j` in any array laid out in packed
    /// CSR order (e.g. a weight array built by
    /// [`PlaneGraph::gather_weights`]).
    #[inline]
    pub fn row_start(&self, dense: usize) -> usize {
        self.offsets[dense] as usize
    }

    /// Gather per-link weights into packed CSR order: `out[i]` becomes the
    /// weight of the `i`-th packed adjacency entry's link. Weighted
    /// traversals that would otherwise chase `weight[link.index()]` per
    /// relaxation can instead stream the row they are already walking; the
    /// values are copied verbatim, so results are bit-identical.
    pub fn gather_weights(&self, weight: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.packed.iter().map(|&(_, l)| weight[l.index()]));
    }

    /// Total directed fabric links in the plane graph.
    #[inline]
    pub fn n_directed_links(&self) -> usize {
        self.packed.len()
    }

    /// Exclusive upper bound on link ids used by this plane (for sizing
    /// per-link scratch arrays).
    #[inline]
    pub fn link_bound(&self) -> usize {
        self.link_bound as usize
    }

    /// Every directed fabric link in the plane graph, in packed CSR order
    /// (each duplex cable appears once per direction). Used to diff link
    /// membership against a mutated [`Network`].
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.packed.iter().map(|&(_, l)| l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_topology::{assemble_homogeneous, failures, FatTree, Jellyfish, LinkProfile};

    #[test]
    fn fat_tree_plane_graph_counts() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let pg = PlaneGraph::build(&net, PlaneId(0));
        assert_eq!(pg.n_switches(), 20);
        assert_eq!(pg.n_racks(), 8);
        // 32 duplex fabric cables -> 64 directed links.
        assert_eq!(pg.n_directed_links(), 64);
        // Every rack has a ToR.
        for r in 0..8 {
            let t = pg.tor(RackId(r));
            assert!(t < pg.n_switches());
        }
    }

    #[test]
    fn failed_links_excluded() {
        let mut net =
            assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let before = PlaneGraph::build(&net, PlaneId(0)).n_directed_links();
        let cables = failures::fabric_cables(&net, None);
        failures::fail_cable(&mut net, cables[0]);
        let after = PlaneGraph::build(&net, PlaneId(0)).n_directed_links();
        assert_eq!(after, before - 2);
    }

    #[test]
    fn planes_have_disjoint_switches() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let pg0 = PlaneGraph::build(&net, PlaneId(0));
        let pg1 = PlaneGraph::build(&net, PlaneId(1));
        for i in 0..pg0.n_switches() {
            assert!(pg1.dense(pg0.node(i)).is_none());
        }
    }

    #[test]
    fn jellyfish_plane_graph() {
        let net = assemble_homogeneous(
            &Jellyfish::new(10, 3, 1, 4),
            1,
            &LinkProfile::paper_default(),
        );
        let pg = PlaneGraph::build(&net, PlaneId(0));
        assert_eq!(pg.n_switches(), 10);
        assert_eq!(pg.n_directed_links(), 30);
        // 3-regular.
        for u in 0..10 {
            assert_eq!(pg.neighbors(u).len(), 3);
        }
    }

    #[test]
    fn csr_rows_sorted_by_link_id() {
        let net = assemble_homogeneous(
            &Jellyfish::new(16, 4, 1, 9),
            2,
            &LinkProfile::paper_default(),
        );
        for plane in [PlaneId(0), PlaneId(1)] {
            let pg = PlaneGraph::build(&net, plane);
            for u in 0..pg.n_switches() {
                let row = pg.neighbors(u);
                for w in row.windows(2) {
                    assert!(w[0].1 < w[1].1, "row of {u} not sorted by link id");
                }
                for &(_, l) in row {
                    assert!(l.index() < pg.link_bound());
                }
            }
        }
    }

    #[test]
    fn dense_and_node_are_inverse() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let pg = PlaneGraph::build(&net, PlaneId(1));
        for u in 0..pg.n_switches() {
            assert_eq!(pg.dense(pg.node(u)), Some(u));
        }
    }
}
