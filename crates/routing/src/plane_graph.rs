//! Compact per-plane switch graphs.
//!
//! All routing algorithms run on a [`PlaneGraph`]: the switches of one plane
//! with dense indices and an adjacency list that remembers the underlying
//! [`LinkId`]s. Building it once per plane avoids filtering the full
//! multi-plane [`Network`] adjacency on every traversal.

use pnet_topology::{LinkId, Network, NodeId, NodeKind, PlaneId, RackId};
use std::collections::HashMap;

/// Switch-level graph of a single plane. Only *up* links are included, so a
/// graph built after failure injection reflects the failures (rebuild after
/// changing link state).
#[derive(Debug, Clone)]
pub struct PlaneGraph {
    /// Which plane this graph describes.
    pub plane: PlaneId,
    /// Node id of each switch, indexed by dense switch index.
    nodes: Vec<NodeId>,
    /// Dense index of each switch node.
    index: HashMap<NodeId, usize>,
    /// adjacency\[u\] = (dense neighbor, link id) pairs, sorted by link id for
    /// deterministic traversal order.
    adjacency: Vec<Vec<(usize, LinkId)>>,
    /// Dense switch index of each rack's ToR.
    tor_of_rack: Vec<usize>,
}

impl PlaneGraph {
    /// Extract the switch graph of `plane` from `net`.
    pub fn build(net: &Network, plane: PlaneId) -> Self {
        let mut nodes = Vec::new();
        let mut index = HashMap::new();
        let mut tor_of_rack = vec![usize::MAX; net.n_racks()];
        for (id, node) in net.nodes() {
            if node.kind.is_switch() && node.plane == Some(plane) {
                let dense = nodes.len();
                index.insert(id, dense);
                if let NodeKind::Tor { rack } = node.kind {
                    tor_of_rack[rack.index()] = dense;
                }
                nodes.push(id);
            }
        }
        let mut adjacency = vec![Vec::new(); nodes.len()];
        for (u, &nid) in nodes.iter().enumerate() {
            for l in net.out_links_in_plane(nid, plane) {
                let link = net.link(l);
                if let Some(&v) = index.get(&link.dst) {
                    adjacency[u].push((v, l));
                }
            }
            adjacency[u].sort_by_key(|&(_, l)| l);
        }
        PlaneGraph {
            plane,
            nodes,
            index,
            adjacency,
            tor_of_rack,
        }
    }

    /// Build all plane graphs of a network, fanning out across planes.
    pub fn build_all(net: &Network) -> Vec<PlaneGraph> {
        Self::build_all_with(net, crate::exec::Parallelism::default())
    }

    /// [`PlaneGraph::build_all`] with an explicit execution strategy. Planes
    /// are independent, so extraction parallelizes trivially; results are
    /// collected in plane-index order.
    pub fn build_all_with(net: &Network, par: crate::exec::Parallelism) -> Vec<PlaneGraph> {
        let planes: Vec<PlaneId> = net.planes().collect();
        par.map_indexed(planes.len(), |i| PlaneGraph::build(net, planes[i]))
    }

    /// Number of switches in the plane.
    #[inline]
    pub fn n_switches(&self) -> usize {
        self.nodes.len()
    }

    /// Number of racks served.
    #[inline]
    pub fn n_racks(&self) -> usize {
        self.tor_of_rack.len()
    }

    /// Dense switch index of a rack's ToR.
    ///
    /// # Panics
    /// If the rack has no ToR in this plane.
    #[inline]
    pub fn tor(&self, rack: RackId) -> usize {
        let t = self.tor_of_rack[rack.index()];
        assert!(t != usize::MAX, "rack {rack} has no ToR in {}", self.plane);
        t
    }

    /// Node id of a dense switch index.
    #[inline]
    pub fn node(&self, dense: usize) -> NodeId {
        self.nodes[dense]
    }

    /// Dense index of a switch node, if it is in this plane.
    #[inline]
    pub fn dense(&self, node: NodeId) -> Option<usize> {
        self.index.get(&node).copied()
    }

    /// Neighbors of a dense switch index.
    #[inline]
    pub fn neighbors(&self, dense: usize) -> &[(usize, LinkId)] {
        &self.adjacency[dense]
    }

    /// Total directed fabric links in the plane graph.
    pub fn n_directed_links(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_topology::{assemble_homogeneous, failures, FatTree, Jellyfish, LinkProfile};

    #[test]
    fn fat_tree_plane_graph_counts() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let pg = PlaneGraph::build(&net, PlaneId(0));
        assert_eq!(pg.n_switches(), 20);
        assert_eq!(pg.n_racks(), 8);
        // 32 duplex fabric cables -> 64 directed links.
        assert_eq!(pg.n_directed_links(), 64);
        // Every rack has a ToR.
        for r in 0..8 {
            let t = pg.tor(RackId(r));
            assert!(t < pg.n_switches());
        }
    }

    #[test]
    fn failed_links_excluded() {
        let mut net =
            assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let before = PlaneGraph::build(&net, PlaneId(0)).n_directed_links();
        let cables = failures::fabric_cables(&net, None);
        failures::fail_cable(&mut net, cables[0]);
        let after = PlaneGraph::build(&net, PlaneId(0)).n_directed_links();
        assert_eq!(after, before - 2);
    }

    #[test]
    fn planes_have_disjoint_switches() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let pg0 = PlaneGraph::build(&net, PlaneId(0));
        let pg1 = PlaneGraph::build(&net, PlaneId(1));
        for i in 0..pg0.n_switches() {
            assert!(pg1.dense(pg0.node(i)).is_none());
        }
    }

    #[test]
    fn jellyfish_plane_graph() {
        let net = assemble_homogeneous(
            &Jellyfish::new(10, 3, 1, 4),
            1,
            &LinkProfile::paper_default(),
        );
        let pg = PlaneGraph::build(&net, PlaneId(0));
        assert_eq!(pg.n_switches(), 10);
        assert_eq!(pg.n_directed_links(), 30);
        // 3-regular.
        for u in 0..10 {
            assert_eq!(pg.neighbors(u).len(), 3);
        }
    }
}
