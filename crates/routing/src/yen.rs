//! Yen's K-shortest-loopless-paths algorithm (Yen 1971 \[45\]) on plane graphs.
//!
//! The paper pairs KSP routing with MPTCP as the forwarding scheme that can
//! actually exploit P-Net capacity (section 4), following Jellyfish \[38\].
//! Paths are ranked by fabric-link count with deterministic tie-breaking, so
//! route tables are reproducible across runs.

use crate::path::Path;
use crate::plane_graph::PlaneGraph;
use pnet_topology::{LinkId, RackId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Dijkstra from `src` to `dst` with unit weights, honoring banned links and
/// banned switches. Returns the link sequence, deterministic under ties
/// (lexicographically smallest link-id sequence among shortest).
fn constrained_shortest(
    pg: &PlaneGraph,
    src: usize,
    dst: usize,
    banned_links: &HashSet<LinkId>,
    banned_nodes: &[bool],
) -> Option<Vec<LinkId>> {
    // Unit weights: BFS suffices and is deterministic because neighbor lists
    // are sorted by link id.
    let n = pg.n_switches();
    let mut dist = vec![u32::MAX; n];
    let mut parent: Vec<Option<(usize, LinkId)>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    if banned_nodes[src] {
        return None;
    }
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        if u == dst {
            break;
        }
        for &(v, l) in pg.neighbors(u) {
            if banned_nodes[v] || banned_links.contains(&l) {
                continue;
            }
            if dist[v] == u32::MAX {
                dist[v] = dist[u] + 1;
                parent[v] = Some((u, l));
                queue.push_back(v);
            }
        }
    }
    if dist[dst] == u32::MAX {
        return None;
    }
    let mut links = Vec::with_capacity(dist[dst] as usize);
    let mut cur = dst;
    while let Some((p, l)) = parent[cur] {
        links.push(l);
        cur = p;
    }
    links.reverse();
    Some(links)
}

/// Candidate path in Yen's B-heap, ordered shortest-first with
/// deterministic ties.
#[derive(PartialEq, Eq)]
struct Candidate(Vec<LinkId>);

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .len()
            .cmp(&other.0.len())
            .then_with(|| self.0.cmp(&other.0))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// K shortest loopless ToR-to-ToR paths within one plane, shortest first.
/// Returns fewer than `k` paths when the graph does not contain `k` simple
/// paths. Same-rack queries return the single intra-rack path.
pub fn ksp(pg: &PlaneGraph, src: RackId, dst: RackId, k: usize) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    if src == dst {
        return vec![Path::intra_rack(pg.plane)];
    }
    let s = pg.tor(src);
    let t = pg.tor(dst);

    let mut accepted: Vec<Vec<LinkId>> = Vec::with_capacity(k);
    let mut heap: BinaryHeap<Reverse<Candidate>> = BinaryHeap::new();
    let mut in_heap: HashSet<Vec<LinkId>> = HashSet::new();

    let no_ban_links = HashSet::new();
    let no_ban_nodes = vec![false; pg.n_switches()];
    match constrained_shortest(pg, s, t, &no_ban_links, &no_ban_nodes) {
        Some(p) => accepted.push(p),
        None => return Vec::new(),
    }

    while accepted.len() < k {
        let prev = accepted.last().unwrap().clone();
        // Nodes along prev, in order: s, then dst of each link.
        let mut prev_nodes = Vec::with_capacity(prev.len() + 1);
        prev_nodes.push(s);
        for &l in &prev {
            // Neighbor index lookup: find dense dst via plane graph scan of
            // the source's adjacency (cheap: adjacency lists are short).
            let u = *prev_nodes.last().unwrap();
            let v = pg
                .neighbors(u)
                .iter()
                .find(|&&(_, ll)| ll == l)
                .map(|&(v, _)| v)
                .expect("accepted path uses a link absent from the graph");
            prev_nodes.push(v);
        }

        for spur_idx in 0..prev.len() {
            let spur_node = prev_nodes[spur_idx];
            let root = &prev[..spur_idx];

            // Ban links that would recreate an already-accepted path with
            // the same root.
            let mut banned_links = HashSet::new();
            for acc in &accepted {
                if acc.len() > spur_idx && &acc[..spur_idx] == root {
                    banned_links.insert(acc[spur_idx]);
                }
            }
            // Ban the root's nodes (except the spur node) to keep paths
            // simple.
            let mut banned_nodes = vec![false; pg.n_switches()];
            for &n in &prev_nodes[..spur_idx] {
                banned_nodes[n] = true;
            }

            if let Some(spur) = constrained_shortest(pg, spur_node, t, &banned_links, &banned_nodes)
            {
                let mut total = root.to_vec();
                total.extend_from_slice(&spur);
                if in_heap.insert(total.clone()) {
                    heap.push(Reverse(Candidate(total)));
                }
            }
        }

        match heap.pop() {
            Some(Reverse(Candidate(p))) => accepted.push(p),
            None => break,
        }
    }

    accepted
        .into_iter()
        .map(|links| Path {
            plane: pg.plane,
            links,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_topology::{assemble_homogeneous, FatTree, Jellyfish, LinkProfile, Network, PlaneId};

    fn ft_net() -> Network {
        assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default())
    }

    #[test]
    fn first_path_is_shortest() {
        let net = ft_net();
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let paths = ksp(&pg, RackId(0), RackId(7), 8);
        assert_eq!(paths[0].links.len(), 4);
        for w in paths.windows(2) {
            assert!(w[0].links.len() <= w[1].links.len(), "not sorted by length");
        }
    }

    #[test]
    fn paths_are_simple_and_distinct() {
        let net = ft_net();
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let paths = ksp(&pg, RackId(0), RackId(7), 16);
        let set: HashSet<_> = paths.iter().map(|p| p.links.clone()).collect();
        assert_eq!(set.len(), paths.len(), "duplicate path");
        for p in &paths {
            p.validate(&net).expect("non-simple or broken path");
        }
    }

    #[test]
    fn matches_ecmp_count_for_equal_cost_prefix() {
        // In a k=4 fat tree there are exactly 4 shortest cross-pod paths;
        // KSP(4) must return exactly those 4 (all length 4).
        let net = ft_net();
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let paths = ksp(&pg, RackId(0), RackId(7), 4);
        assert_eq!(paths.len(), 4);
        assert!(paths.iter().all(|p| p.links.len() == 4));
    }

    #[test]
    fn longer_paths_appear_after_shortest_exhausted() {
        let net = ft_net();
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let paths = ksp(&pg, RackId(0), RackId(7), 6);
        assert_eq!(paths.len(), 6);
        assert!(paths[4].links.len() > 4);
    }

    #[test]
    fn jellyfish_ksp_is_deterministic() {
        let net = assemble_homogeneous(
            &Jellyfish::new(16, 4, 1, 3),
            1,
            &LinkProfile::paper_default(),
        );
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let a = ksp(&pg, RackId(0), RackId(9), 8);
        let b = ksp(&pg, RackId(0), RackId(9), 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn k_zero_and_same_rack() {
        let net = ft_net();
        let pg = PlaneGraph::build(&net, PlaneId(0));
        assert!(ksp(&pg, RackId(0), RackId(7), 0).is_empty());
        let same = ksp(&pg, RackId(3), RackId(3), 5);
        assert_eq!(same.len(), 1);
        assert!(same[0].links.is_empty());
    }

    #[test]
    fn ksp_prefix_stability() {
        // ksp(k) is a prefix of ksp(k') for k < k' — required for the
        // multipath sweeps of Figures 6c and 8c to be monotone.
        let net = assemble_homogeneous(
            &Jellyfish::new(14, 4, 1, 8),
            1,
            &LinkProfile::paper_default(),
        );
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let small = ksp(&pg, RackId(1), RackId(12), 4);
        let big = ksp(&pg, RackId(1), RackId(12), 8);
        assert_eq!(&big[..4], &small[..]);
    }

    #[test]
    fn brute_force_agreement_on_small_graph() {
        // Compare against exhaustive enumeration of simple paths on a small
        // Jellyfish.
        let net = assemble_homogeneous(
            &Jellyfish::new(8, 3, 1, 5),
            1,
            &LinkProfile::paper_default(),
        );
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let k = 12;
        let yen_paths = ksp(&pg, RackId(0), RackId(5), k);

        // Brute force: DFS all simple ToR paths, sort by (len, links).
        fn dfs(
            pg: &PlaneGraph,
            u: usize,
            t: usize,
            seen: &mut Vec<bool>,
            stack: &mut Vec<LinkId>,
            out: &mut Vec<Vec<LinkId>>,
        ) {
            if u == t {
                out.push(stack.clone());
                return;
            }
            for &(v, l) in pg.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(l);
                    dfs(pg, v, t, seen, stack, out);
                    stack.pop();
                    seen[v] = false;
                }
            }
        }
        let s = pg.tor(RackId(0));
        let t = pg.tor(RackId(5));
        let mut seen = vec![false; pg.n_switches()];
        seen[s] = true;
        let mut all = Vec::new();
        dfs(&pg, s, t, &mut seen, &mut Vec::new(), &mut all);
        all.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));

        // Lengths must agree for the first k (the exact path sets can differ
        // within an equal-length tier only if tie-breaks differ — Yen's with
        // our deterministic BFS yields the lexicographically-first spur, but
        // candidate insertion order makes full lexicographic agreement
        // across tiers non-guaranteed; lengths are the spec).
        let yen_lens: Vec<usize> = yen_paths.iter().map(|p| p.links.len()).collect();
        let brute_lens: Vec<usize> = all.iter().take(k).map(Vec::len).collect();
        assert_eq!(yen_lens, brute_lens);
    }
}
