//! Serial/parallel execution strategy for bulk computations.
//!
//! Every parallel fan-out in the workspace routes through
//! [`Parallelism::map_indexed`]: results are computed per index and collected
//! in index order, so `Serial` and `Rayon` produce *identical* outputs for
//! any pure per-index function. That property is what the determinism
//! regression tests pin down (serial vs parallel route tables and MCF
//! solutions must match bit-for-bit).
//!
//! Thread count under [`Parallelism::Rayon`] follows `RAYON_NUM_THREADS`
//! (else the machine's available parallelism); `RAYON_NUM_THREADS=1`
//! degenerates to the serial loop.

use rayon::prelude::*;

/// How a bulk computation fans out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Plain sequential loop (reference semantics).
    Serial,
    /// Fan out across threads via rayon, collecting in index order.
    #[default]
    Rayon,
}

impl Parallelism {
    /// Worker threads this strategy will use.
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Rayon => rayon::current_num_threads(),
        }
    }

    /// Map `f` over `0..n`, collecting results in index order. `Serial` and
    /// `Rayon` return identical vectors for pure `f`.
    pub fn map_indexed<R, F>(self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        match self {
            Parallelism::Serial => (0..n).map(f).collect(),
            Parallelism::Rayon => (0..n).into_par_iter().map(f).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_rayon_agree() {
        let f = |i: usize| (i * 31) ^ 7;
        assert_eq!(
            Parallelism::Serial.map_indexed(100, f),
            Parallelism::Rayon.map_indexed(100, f)
        );
    }

    #[test]
    fn thread_counts() {
        assert_eq!(Parallelism::Serial.threads(), 1);
        assert!(Parallelism::Rayon.threads() >= 1);
    }
}
