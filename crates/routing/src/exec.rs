//! Serial/parallel execution strategy for bulk computations.
//!
//! Every parallel fan-out in the workspace routes through
//! [`Parallelism::map_indexed`]: results are computed per index and collected
//! in index order, so `Serial` and `Rayon` produce *identical* outputs for
//! any pure per-index function. That property is what the determinism
//! regression tests pin down (serial vs parallel route tables and MCF
//! solutions must match bit-for-bit).
//!
//! Thread count under [`Parallelism::Rayon`] follows `RAYON_NUM_THREADS`
//! (else the machine's available parallelism); `RAYON_NUM_THREADS=1`
//! degenerates to the serial loop.

use rayon::prelude::*;

/// How a bulk computation fans out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Plain sequential loop (reference semantics).
    Serial,
    /// Fan out across threads via rayon, collecting in index order.
    #[default]
    Rayon,
}

impl Parallelism {
    /// Worker threads this strategy will use.
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Rayon => rayon::current_num_threads(),
        }
    }

    /// Map `f` over `0..n`, collecting results in index order. `Serial` and
    /// `Rayon` return identical vectors for pure `f`.
    pub fn map_indexed<R, F>(self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        match self {
            Parallelism::Serial => (0..n).map(f).collect(),
            Parallelism::Rayon => (0..n).into_par_iter().map(f).collect(),
        }
    }

    /// Update every slot of `items` in place via `f(index, &mut item)`. Each
    /// index is touched exactly once, so for per-index-pure `f` the result is
    /// independent of the strategy — this is the in-place sibling of
    /// [`Parallelism::map_indexed`] for recomputing persistent per-worker
    /// state (e.g. the GK phase trees) without reallocating it.
    pub fn update_indexed<T, F>(self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        match self {
            Parallelism::Serial => {
                for (i, item) in items.iter_mut().enumerate() {
                    f(i, item);
                }
            }
            Parallelism::Rayon => rayon::par_update_index(items, f),
        }
    }
}

/// Sum floats in slice order, always. Float addition does not associate, so
/// any reduction whose operand order can vary (tree reductions, rayon `sum`)
/// is a determinism hazard; this left fold is the blessed way to consume
/// parallel-produced values (`map_indexed` output arrives in index order, and
/// this keeps it that way). pnet-tidy's O1 rule points here.
pub fn ordered_sum_f64(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, &x| acc + x)
}

/// Left fold over floats in slice order — [`ordered_sum_f64`] generalized to
/// any accumulator (min/max trackers, Kahan compensation, weighted sums).
pub fn ordered_fold_f64<A>(xs: &[f64], init: A, mut f: impl FnMut(A, f64) -> A) -> A {
    let mut acc = init;
    for &x in xs {
        acc = f(acc, x);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_rayon_agree() {
        let f = |i: usize| (i * 31) ^ 7;
        assert_eq!(
            Parallelism::Serial.map_indexed(100, f),
            Parallelism::Rayon.map_indexed(100, f)
        );
    }

    #[test]
    fn update_indexed_serial_and_rayon_agree() {
        let mut a: Vec<usize> = (0..64).collect();
        let mut b = a.clone();
        let f = |i: usize, x: &mut usize| *x = *x * 3 + i;
        Parallelism::Serial.update_indexed(&mut a, f);
        Parallelism::Rayon.update_indexed(&mut b, f);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_counts() {
        assert_eq!(Parallelism::Serial.threads(), 1);
        assert!(Parallelism::Rayon.threads() >= 1);
    }

    #[test]
    fn ordered_sum_is_the_left_fold() {
        // Values chosen so order matters: (big + tiny) - big loses the tiny,
        // while (big - big) + tiny keeps it. A reassociating sum would differ.
        let xs = [1e16, 1.0, -1e16];
        assert_eq!(ordered_sum_f64(&xs), 0.0 + 1e16 + 1.0 + -1e16);
        assert_eq!(
            ordered_fold_f64(&xs, 0.0, |a, x| a + x).to_bits(),
            ordered_sum_f64(&xs).to_bits()
        );
    }
}
