//! ECMP-style hash-based path selection (section 4 of the paper).
//!
//! In a P-Net running plain ECMP, "each end host selects, for each flow, one
//! of the N parallel dataplanes using a hashing algorithm", and the flow then
//! takes one of the equal-cost shortest paths inside that plane, again by
//! hash. Hashing is per-flow (5-tuple-like): all packets of a flow stay on
//! one path, which is exactly why sparse traffic cannot use more than 1/N of
//! a P-Net's capacity with single-path ECMP (Figure 6b).

use pnet_topology::{HostId, PlaneId};

/// A deterministic 64-bit flow hash (splitmix64 over src/dst/flow id).
/// Plays the role of the switch/NIC 5-tuple hash.
pub fn flow_hash(src: HostId, dst: HostId, flow: u64) -> u64 {
    let mut x = (src.0 as u64) << 40 ^ (dst.0 as u64) << 16 ^ flow;
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Pick one item by hash. Panics on an empty slice.
pub fn hash_select<T>(items: &[T], hash: u64) -> &T {
    assert!(!items.is_empty(), "hash_select on empty path set");
    &items[(hash % items.len() as u64) as usize]
}

/// ECMP plane choice for a flow in an `n_planes`-way P-Net.
pub fn hash_plane(n_planes: u16, hash: u64) -> PlaneId {
    // Use high bits for the plane so plane and path choices decorrelate.
    PlaneId((hash >> 48) as u16 % n_planes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        let a = flow_hash(HostId(1), HostId(2), 3);
        let b = flow_hash(HostId(1), HostId(2), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn hash_separates_flows() {
        let a = flow_hash(HostId(1), HostId(2), 3);
        let b = flow_hash(HostId(1), HostId(2), 4);
        let c = flow_hash(HostId(2), HostId(1), 3);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn selection_in_range() {
        let items = vec![10, 20, 30];
        for f in 0..100 {
            let h = flow_hash(HostId(0), HostId(1), f);
            let v = *hash_select(&items, h);
            assert!(items.contains(&v));
        }
    }

    #[test]
    fn plane_choice_covers_all_planes() {
        let mut seen = [false; 4];
        for f in 0..256 {
            let h = flow_hash(HostId(5), HostId(9), f);
            seen[hash_plane(4, h).index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "hash never chose some plane");
    }

    #[test]
    fn plane_choice_roughly_uniform() {
        let mut counts = [0usize; 4];
        let n = 4000;
        for f in 0..n {
            let h = flow_hash(HostId(3), HostId(7), f);
            counts[hash_plane(4, h).index()] += 1;
        }
        for &c in &counts {
            let expect = n as f64 / 4.0;
            assert!(
                (c as f64 - expect).abs() < expect * 0.2,
                "plane imbalance: {counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_selection_panics() {
        hash_select::<u32>(&[], 7);
    }
}
