//! The caching multi-plane router.
//!
//! A [`Router`] wraps the per-plane graphs of a network and serves path sets
//! on demand, memoizing per (plane, src rack, dst rack). Two algorithms are
//! supported, matching the paper's two routing regimes:
//!
//! * [`RouteAlgo::Ecmp`] — all equal-cost shortest paths (capped), the
//!   fat-tree default;
//! * [`RouteAlgo::Ksp`] — Yen K-shortest-paths, the expander default and the
//!   multipath substrate for MPTCP.
//!
//! Cross-plane queries ([`Router::k_best_across_planes`]) merge the per-plane
//! path sets shortest-first — this is how a P-Net host builds its bounded set
//! of subflow paths spanning all dataplanes.

use crate::bfs;
use crate::path::{sort_paths, Path};
use crate::plane_graph::PlaneGraph;
use crate::yen;
use pnet_topology::{Network, PlaneId, RackId};
use std::collections::HashMap;
use std::sync::Arc;

/// Which path computation the router serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteAlgo {
    /// All equal-cost shortest paths, up to `cap` per plane.
    Ecmp { cap: usize },
    /// Yen K-shortest-paths, `k` per plane.
    Ksp { k: usize },
}

impl RouteAlgo {
    /// Paths this algorithm yields per plane at most.
    pub fn per_plane_limit(self) -> usize {
        match self {
            RouteAlgo::Ecmp { cap } => cap,
            RouteAlgo::Ksp { k } => k,
        }
    }
}

/// Caching path provider over all planes of one network.
pub struct Router {
    planes: Vec<PlaneGraph>,
    algo: RouteAlgo,
    cache: HashMap<(PlaneId, RackId, RackId), Arc<Vec<Path>>>,
}

impl Router {
    /// Build a router for `net` (captures the current link up/down state;
    /// rebuild after failure injection).
    pub fn new(net: &Network, algo: RouteAlgo) -> Self {
        Router {
            planes: PlaneGraph::build_all(net),
            algo,
            cache: HashMap::new(),
        }
    }

    /// The algorithm in use.
    pub fn algo(&self) -> RouteAlgo {
        self.algo
    }

    /// Number of planes.
    pub fn n_planes(&self) -> usize {
        self.planes.len()
    }

    /// The plane graphs (e.g. for custom analyses).
    pub fn plane_graphs(&self) -> &[PlaneGraph] {
        &self.planes
    }

    /// Path set between two racks within one plane (cached, shared).
    pub fn paths_in_plane(&mut self, plane: PlaneId, src: RackId, dst: RackId) -> Arc<Vec<Path>> {
        let key = (plane, src, dst);
        if let Some(p) = self.cache.get(&key) {
            return Arc::clone(p);
        }
        let pg = &self.planes[plane.index()];
        let mut paths = match self.algo {
            RouteAlgo::Ecmp { cap } => bfs::all_shortest_paths(pg, src, dst, cap),
            RouteAlgo::Ksp { k } => yen::ksp(pg, src, dst, k),
        };
        sort_paths(&mut paths);
        let arc = Arc::new(paths);
        self.cache.insert(key, Arc::clone(&arc));
        arc
    }

    /// The `k` globally best paths between two racks across *all* planes,
    /// shortest first. Within an equal-length tier the planes are
    /// *interleaved* (plane 0's first tie, plane 1's first tie, ...), so a
    /// truncated prefix spreads over as many planes as possible — which is
    /// what an MPTCP path manager wants from its subflow set.
    pub fn k_best_across_planes(&mut self, src: RackId, dst: RackId, k: usize) -> Vec<Path> {
        let mut all: Vec<Path> = Vec::new();
        for plane in 0..self.planes.len() {
            let paths = self.paths_in_plane(PlaneId(plane as u16), src, dst);
            all.extend(paths.iter().cloned());
        }
        sort_paths(&mut all);
        // Re-order each equal-length tier: round-robin over planes.
        let mut out: Vec<Path> = Vec::with_capacity(all.len());
        let mut start = 0;
        while start < all.len() {
            let len = all[start].links.len();
            let mut end = start + 1;
            while end < all.len() && all[end].links.len() == len {
                end += 1;
            }
            // The tier is sorted by (plane, links); split per plane
            // preserving order, then interleave.
            let tier: Vec<Path> = all[start..end].to_vec();
            let mut per_plane: Vec<Vec<Path>> = vec![Vec::new(); self.planes.len()];
            for p in tier {
                per_plane[p.plane.index()].push(p);
            }
            let mut idx = 0;
            loop {
                let mut any = false;
                for plane_paths in &mut per_plane {
                    if idx < plane_paths.len() {
                        out.push(plane_paths[idx].clone());
                        any = true;
                    }
                }
                if !any {
                    break;
                }
                idx += 1;
            }
            start = end;
        }
        out.truncate(k);
        out
    }

    /// The plane offering the shortest path between two racks (the paper's
    /// "low-latency" interface selects this plane for small RPCs). Ties go
    /// to the lowest plane id. `None` if no plane connects the racks.
    pub fn shortest_plane(&mut self, src: RackId, dst: RackId) -> Option<(PlaneId, usize)> {
        let mut best: Option<(PlaneId, usize)> = None;
        for plane in 0..self.planes.len() {
            let paths = self.paths_in_plane(PlaneId(plane as u16), src, dst);
            if let Some(p) = paths.first() {
                let hops = p.switch_hops();
                if best.is_none_or(|(_, b)| hops < b) {
                    best = Some((PlaneId(plane as u16), hops));
                }
            }
        }
        best
    }

    /// Invalidate the cache and re-extract the plane graphs (after failures).
    pub fn refresh(&mut self, net: &Network) {
        self.planes = PlaneGraph::build_all(net);
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_topology::{
        assemble_homogeneous, failures, parallel, FatTree, Jellyfish, LinkProfile,
        NetworkClass,
    };

    #[test]
    fn ecmp_router_caches() {
        let net =
            assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let mut r = Router::new(&net, RouteAlgo::Ecmp { cap: 16 });
        let a = r.paths_in_plane(PlaneId(0), RackId(0), RackId(7));
        let b = r.paths_in_plane(PlaneId(0), RackId(0), RackId(7));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn cross_plane_merge_respects_k() {
        let net =
            assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let mut r = Router::new(&net, RouteAlgo::Ksp { k: 4 });
        let merged = r.k_best_across_planes(RackId(0), RackId(7), 6);
        assert_eq!(merged.len(), 6);
        // With two identical planes, the 4+4 candidates interleave; the
        // merged set must be sorted by length.
        for w in merged.windows(2) {
            assert!(w[0].links.len() <= w[1].links.len());
        }
        // Both planes should be represented (homogeneous planes tie, sort
        // breaks ties by plane, so first 4 come from plane 0 then plane 1).
        assert!(merged.iter().any(|p| p.plane == PlaneId(1)));
    }

    #[test]
    fn shortest_plane_prefers_shorter_heterogeneous_plane() {
        let proto = Jellyfish::new(16, 4, 2, 0);
        let net = parallel::jellyfish_network(
            NetworkClass::ParallelHeterogeneous,
            proto,
            4,
            77,
            &LinkProfile::paper_default(),
        );
        let mut r = Router::new(&net, RouteAlgo::Ksp { k: 1 });
        // For every pair, the chosen plane must not be beaten by any other.
        for a in 0..4u32 {
            for b in 4..8u32 {
                let (plane, hops) = r.shortest_plane(RackId(a), RackId(b)).unwrap();
                for p in 0..4u16 {
                    let paths = r.paths_in_plane(PlaneId(p), RackId(a), RackId(b));
                    if let Some(best) = paths.first() {
                        assert!(
                            hops <= best.switch_hops(),
                            "plane {plane} not minimal for ({a},{b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn refresh_picks_up_failures() {
        let mut net =
            assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let mut r = Router::new(&net, RouteAlgo::Ecmp { cap: 16 });
        assert_eq!(r.paths_in_plane(PlaneId(0), RackId(0), RackId(7)).len(), 4);
        // Fail one agg-core cable on a path and refresh.
        let cables = failures::fabric_cables(&net, None);
        failures::fail_cable(&mut net, cables[0]);
        r.refresh(&net);
        let after = r.paths_in_plane(PlaneId(0), RackId(0), RackId(7)).len();
        assert!(after <= 4);
    }
}
