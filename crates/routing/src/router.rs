//! The multi-plane router with a thread-shareable route table.
//!
//! A [`Router`] wraps the per-plane graphs of a network and serves path sets
//! per (plane, src rack, dst rack). Two algorithms are supported, matching
//! the paper's two routing regimes:
//!
//! * [`RouteAlgo::Ecmp`] — all equal-cost shortest paths (capped), the
//!   fat-tree default;
//! * [`RouteAlgo::Ksp`] — Yen K-shortest-paths, the expander default and the
//!   multipath substrate for MPTCP.
//!
//! Path computation is a pure function of the plane-graph snapshot, so the
//! route table is filled either lazily behind an `RwLock` (concurrent
//! readers, `&self` throughout) or in bulk by [`Router::precompute`], which
//! fans the per-(plane, src, dst) Yen/ECMP computations across threads and
//! commits results in deterministic index order. Serial and parallel
//! precomputation produce identical tables — see `tests/determinism.rs`.
//!
//! Cross-plane queries ([`Router::k_best_across_planes`]) merge the
//! per-plane path sets shortest-first — this is how a P-Net host builds its
//! bounded set of subflow paths spanning all dataplanes.
//!
//! ## Link churn and incremental repair
//!
//! Under link churn the router does not start over: [`Router::apply_delta`]
//! repairs exactly the cached entries a link delta can affect, and
//! [`Router::refresh`] diffs the network against the current snapshot to
//! synthesize that delta (falling back to a full rebuild only when the
//! change is not expressible as a link delta). Every applied change bumps
//! the router *epoch*; the plane-graph snapshot is swapped atomically, so
//! concurrent lazy lookups either see the old consistent snapshot or the
//! new one, never a mix (they re-run if the epoch moved under them).

use crate::bfs;
use crate::exec::Parallelism;
use crate::path::{sort_paths, Path};
use crate::plane_graph::PlaneGraph;
pub use crate::repair::DeltaStats;
use crate::repair::{bfs_hop_dists, Fnv, LinkIndex, RouteKey};
use crate::yen;
use pnet_topology::{LinkDelta, Network, PlaneId, RackId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Which path computation the router serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteAlgo {
    /// All equal-cost shortest paths, up to `cap` per plane.
    Ecmp { cap: usize },
    /// Yen K-shortest-paths, `k` per plane.
    Ksp { k: usize },
}

impl RouteAlgo {
    /// Paths this algorithm yields per plane at most.
    pub fn per_plane_limit(self) -> usize {
        match self {
            RouteAlgo::Ecmp { cap } => cap,
            RouteAlgo::Ksp { k } => k,
        }
    }
}

/// Route table plus its inverted cable → entry index, kept consistent under
/// one lock: every commit notes the entry's cables in the same critical
/// section that inserts the paths.
struct TableState {
    table: BTreeMap<RouteKey, Arc<Vec<Path>>>,
    index: LinkIndex,
}

/// Path provider over all planes of one network. All lookups take `&self`;
/// the router is `Sync` and can be shared across threads (e.g. behind an
/// `Arc`) once built.
pub struct Router {
    planes: RwLock<Arc<Vec<PlaneGraph>>>,
    algo: RouteAlgo,
    state: RwLock<TableState>,
    /// Bumped once per applied topology change. Lazy computations snapshot
    /// the epoch before computing and re-run if it moved by commit time, so
    /// a stale path set computed against a pre-delta snapshot can never
    /// land in a post-delta table.
    epoch: AtomicU64,
}

impl Router {
    /// Build a router for `net` (captures the current link up/down state;
    /// [`Router::refresh`] after failure injection). Plane graph extraction
    /// fans out across planes.
    pub fn new(net: &Network, algo: RouteAlgo) -> Self {
        Self::with_parallelism(net, algo, Parallelism::default())
    }

    /// [`Router::new`] with an explicit execution strategy.
    pub fn with_parallelism(net: &Network, algo: RouteAlgo, par: Parallelism) -> Self {
        Router {
            planes: RwLock::new(Arc::new(PlaneGraph::build_all_with(net, par))),
            algo,
            state: RwLock::new(TableState {
                table: BTreeMap::new(),
                index: LinkIndex::new(),
            }),
            epoch: AtomicU64::new(0),
        }
    }

    /// The algorithm in use.
    pub fn algo(&self) -> RouteAlgo {
        self.algo
    }

    /// Number of planes.
    pub fn n_planes(&self) -> usize {
        self.plane_graphs().len()
    }

    /// Racks served by the network.
    pub fn n_racks(&self) -> usize {
        self.plane_graphs().first().map_or(0, |pg| pg.n_racks())
    }

    /// The current plane-graph snapshot (e.g. for custom analyses). The
    /// returned `Arc` stays internally consistent even if a delta swaps the
    /// router to a newer snapshot concurrently.
    pub fn plane_graphs(&self) -> Arc<Vec<PlaneGraph>> {
        Arc::clone(
            &self
                .planes
                .read()
                .expect("invariant: plane-snapshot lock is never poisoned"),
        )
    }

    /// The current epoch: 0 at construction, +1 per applied delta/refresh.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Route-table entries currently materialized.
    pub fn cached_entries(&self) -> usize {
        self.state
            .read()
            .expect("invariant: route-table lock is never poisoned")
            .table
            .len()
    }

    /// FNV-1a fingerprint of the materialized route table, in canonical
    /// (plane, src, dst) order: entry count, every key, every path's plane
    /// and exact link sequence. Two routers over the same topology with the
    /// same entries materialized fingerprint equal iff their tables are
    /// byte-identical — the equivalence check for incremental repair.
    pub fn table_fingerprint(&self) -> u64 {
        let st = self
            .state
            .read()
            .expect("invariant: route-table lock is never poisoned");
        let mut h = Fnv::new();
        h.u64(st.table.len() as u64);
        for (&(p, s, d), paths) in &st.table {
            h.u64(u64::from(p.0));
            h.u64(u64::from(s.0));
            h.u64(u64::from(d.0));
            h.u64(paths.len() as u64);
            for path in paths.iter() {
                h.u64(u64::from(path.plane.0));
                h.u64(path.links.len() as u64);
                for l in &path.links {
                    h.u64(u64::from(l.0));
                }
            }
        }
        h.0
    }

    /// Pure per-key path computation (the function the table memoizes).
    fn compute(
        planes: &[PlaneGraph],
        algo: RouteAlgo,
        plane: PlaneId,
        src: RackId,
        dst: RackId,
    ) -> Vec<Path> {
        let pg = &planes[plane.index()];
        let mut paths = match algo {
            RouteAlgo::Ecmp { cap } => bfs::all_shortest_paths(pg, src, dst, cap),
            RouteAlgo::Ksp { k } => yen::ksp(pg, src, dst, k),
        };
        sort_paths(&mut paths);
        paths
    }

    /// Batched per-(plane, src) computation: identical per-destination output
    /// to [`Router::compute`], but the first shortest-path BFS (KSP) or the
    /// whole distance field (ECMP) is shared across the destination list.
    fn compute_batch(
        planes: &[PlaneGraph],
        algo: RouteAlgo,
        plane: PlaneId,
        src: RackId,
        dsts: &[RackId],
    ) -> Vec<Vec<Path>> {
        let pg = &planes[plane.index()];
        let mut per_dst = match algo {
            RouteAlgo::Ecmp { cap } => bfs::ecmp_destinations(pg, src, dsts, cap),
            RouteAlgo::Ksp { k } => yen::ksp_destinations(pg, src, dsts, k),
        };
        for paths in &mut per_dst {
            sort_paths(paths);
        }
        per_dst
    }

    /// Path set between two racks within one plane (memoized, shared).
    pub fn paths_in_plane(&self, plane: PlaneId, src: RackId, dst: RackId) -> Arc<Vec<Path>> {
        let key = (plane, src, dst);
        if let Some(p) = self
            .state
            .read()
            .expect("invariant: route-table lock is never poisoned")
            .table
            .get(&key)
        {
            return Arc::clone(p);
        }
        loop {
            let epoch = self.epoch();
            let planes = self.plane_graphs();
            let paths = Self::compute(&planes, self.algo, plane, src, dst);
            let mut st = self
                .state
                .write()
                .expect("invariant: route-table lock is never poisoned");
            if self.epoch() != epoch {
                continue; // a delta landed mid-compute; redo on the new snapshot
            }
            // First writer wins so repeat lookups keep returning the same Arc.
            if let Some(p) = st.table.get(&key) {
                return Arc::clone(p);
            }
            let arc = Arc::new(paths);
            st.index.note(key, &arc);
            st.table.insert(key, Arc::clone(&arc));
            return arc;
        }
    }

    /// Bulk-fill the route table for every (plane, src, dst) combination of
    /// the given rack pairs, fanning the independent Yen/ECMP computations
    /// across threads. Results are committed in deterministic index order;
    /// the resulting table is identical to serially computing each entry.
    pub fn precompute(&self, pairs: &[(RackId, RackId)]) {
        self.precompute_with(pairs, Parallelism::default());
    }

    /// [`Router::precompute`] with an explicit execution strategy.
    pub fn precompute_with(&self, pairs: &[(RackId, RackId)], par: Parallelism) {
        loop {
            let epoch = self.epoch();
            let planes = self.plane_graphs();
            let n_planes = planes.len();
            // Skip keys that are already materialized (precompute after lazy
            // use must not replace Arcs callers may have compared by
            // pointer), then group the remainder by (plane, src): one
            // batched computation per group shares the source-side BFS work
            // across destinations.
            let mut groups: Vec<((PlaneId, RackId), Vec<RackId>)> = Vec::new();
            {
                let st = self
                    .state
                    .read()
                    .expect("invariant: route-table lock is never poisoned");
                let mut group_of: BTreeMap<(PlaneId, RackId), usize> = BTreeMap::new();
                let mut seen: BTreeSet<RouteKey> = BTreeSet::new();
                for &(src, dst) in pairs {
                    for p in 0..n_planes {
                        let key = (PlaneId(p as u16), src, dst);
                        if st.table.contains_key(&key) || !seen.insert(key) {
                            continue;
                        }
                        let g = *group_of.entry((key.0, src)).or_insert_with(|| {
                            groups.push(((key.0, src), Vec::new()));
                            groups.len() - 1
                        });
                        groups[g].1.push(dst);
                    }
                }
            }
            // Fan out per group; per-destination results are identical to
            // per-key `compute`, and commit order does not affect the table.
            let computed: Vec<Vec<Vec<Path>>> = par.map_indexed(groups.len(), |i| {
                let ((plane, src), dsts) = &groups[i];
                Self::compute_batch(&planes, self.algo, *plane, *src, dsts)
            });
            let mut st = self
                .state
                .write()
                .expect("invariant: route-table lock is never poisoned");
            if self.epoch() != epoch {
                continue; // results are stale against the new snapshot
            }
            for (((plane, src), dsts), per_dst) in groups.into_iter().zip(computed) {
                for (dst, paths) in dsts.into_iter().zip(per_dst) {
                    let key = (plane, src, dst);
                    if !st.table.contains_key(&key) {
                        let arc = Arc::new(paths);
                        st.index.note(key, &arc);
                        st.table.insert(key, arc);
                    }
                }
            }
            return;
        }
    }

    /// [`Router::precompute`] over all ordered rack pairs (src != dst) —
    /// the all-pairs route tables every experiment sweep starts from.
    pub fn precompute_all_pairs(&self) {
        self.precompute_all_pairs_with(Parallelism::default());
    }

    /// [`Router::precompute_all_pairs`] with an explicit execution strategy.
    pub fn precompute_all_pairs_with(&self, par: Parallelism) {
        let n = self.n_racks();
        let pairs: Vec<(RackId, RackId)> = (0..n)
            .flat_map(|a| {
                (0..n)
                    .filter(move |&b| b != a)
                    .map(move |b| (RackId(a as u32), RackId(b as u32)))
            })
            .collect();
        self.precompute_with(&pairs, par);
    }

    /// The `k` globally best paths between two racks across *all* planes,
    /// shortest first. Within an equal-length tier the planes are
    /// *interleaved* (plane 0's first tie, plane 1's first tie, ...), so a
    /// truncated prefix spreads over as many planes as possible — which is
    /// what an MPTCP path manager wants from its subflow set.
    pub fn k_best_across_planes(&self, src: RackId, dst: RackId, k: usize) -> Vec<Path> {
        let n_planes = self.n_planes();
        let mut all: Vec<Path> = Vec::new();
        for plane in 0..n_planes {
            let paths = self.paths_in_plane(PlaneId(plane as u16), src, dst);
            all.extend(paths.iter().cloned());
        }
        sort_paths(&mut all);
        // Re-order each equal-length tier: round-robin over planes.
        let mut out: Vec<Path> = Vec::with_capacity(all.len());
        let mut start = 0;
        while start < all.len() {
            let len = all[start].links.len();
            let mut end = start + 1;
            while end < all.len() && all[end].links.len() == len {
                end += 1;
            }
            // The tier is sorted by (plane, links); split per plane
            // preserving order, then interleave.
            let tier: Vec<Path> = all[start..end].to_vec();
            let mut per_plane: Vec<Vec<Path>> = vec![Vec::new(); n_planes];
            for p in tier {
                per_plane[p.plane.index()].push(p);
            }
            let mut idx = 0;
            loop {
                let mut any = false;
                for plane_paths in &per_plane {
                    if idx < plane_paths.len() {
                        out.push(plane_paths[idx].clone());
                        any = true;
                    }
                }
                if !any {
                    break;
                }
                idx += 1;
            }
            start = end;
        }
        out.truncate(k);
        out
    }

    /// The plane offering the shortest path between two racks (the paper's
    /// "low-latency" interface selects this plane for small RPCs). Ties go
    /// to the lowest plane id. `None` if no plane connects the racks.
    pub fn shortest_plane(&self, src: RackId, dst: RackId) -> Option<(PlaneId, usize)> {
        let mut best: Option<(PlaneId, usize)> = None;
        for plane in 0..self.n_planes() {
            let paths = self.paths_in_plane(PlaneId(plane as u16), src, dst);
            if let Some(p) = paths.first() {
                let hops = p.switch_hops();
                if best.is_none_or(|(_, b)| hops < b) {
                    best = Some((PlaneId(plane as u16), hops));
                }
            }
        }
        best
    }

    /// Repair the route table for a link delta: `net` must already reflect
    /// the delta's link states. Only the planes touched by the delta are
    /// re-extracted, and only the cached entries the delta can affect are
    /// recomputed:
    ///
    /// * a *down* cable can only remove paths, so exactly the entries whose
    ///   committed path set traverses it (inverted-index lookup) change;
    /// * an *up* cable can only add paths through itself, so an entry can
    ///   change only if the best possible new path — bounded below by
    ///   `min(d(s,u) + 1 + d(v, t), d(s,v) + 1 + d(u, t))` from two hop-BFS
    ///   runs off the cable's endpoints — is at most the entry's current
    ///   k-th (KSP) or first (ECMP) path length (ties included: an
    ///   equal-length path can displace by the canonical order), or the
    ///   entry holds fewer than its limit of paths.
    ///
    /// Every other entry keeps its exact `Arc` — byte- and pointer-
    /// identical. Recomputation reuses the batched Yen/ECMP machinery, so
    /// the repaired table equals a from-scratch rebuild of the new topology
    /// (see `tests/props.rs`). Bumps the epoch once.
    pub fn apply_delta(&self, net: &Network, delta: &LinkDelta) -> DeltaStats {
        self.apply_delta_with(net, delta, Parallelism::default())
    }

    /// [`Router::apply_delta`] with an explicit execution strategy for the
    /// recomputation fan-out.
    pub fn apply_delta_with(
        &self,
        net: &Network,
        delta: &LinkDelta,
        par: Parallelism,
    ) -> DeltaStats {
        let canon = |cables: &[pnet_topology::LinkId]| -> Vec<pnet_topology::LinkId> {
            let mut v: Vec<pnet_topology::LinkId> = cables
                .iter()
                .map(|l| pnet_topology::LinkId(l.0 & !1))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let down = canon(&delta.down);
        let up = canon(&delta.up);

        // Swap in a snapshot with the touched planes re-extracted, then bump
        // the epoch: readers that grab the epoch before the bump cannot have
        // seen the new snapshot (swap happens first), so their commit check
        // catches them.
        let old_planes = self.plane_graphs();
        let touched: BTreeSet<PlaneId> =
            down.iter().chain(&up).map(|&c| net.link(c).plane).collect();
        let mut rebuilt: Vec<PlaneGraph> = (*old_planes).clone();
        for &p in &touched {
            rebuilt[p.index()] = PlaneGraph::build(net, p);
        }
        let new_planes = Arc::new(rebuilt);
        *self
            .planes
            .write()
            .expect("invariant: plane-snapshot lock is never poisoned") = Arc::clone(&new_planes);
        self.epoch.fetch_add(1, Ordering::AcqRel);

        // Affected entries. Down cables: inverted-index rows. Up cables: the
        // BFS lower bound over every cached entry of the cable's plane.
        let mut affected: BTreeSet<RouteKey> = BTreeSet::new();
        let cached_total;
        {
            let mut st = self
                .state
                .write()
                .expect("invariant: route-table lock is never poisoned");
            cached_total = st.table.len();
            st.index.compact();
            for &c in &down {
                affected.extend(st.index.entries_for(c));
            }
            for &c in &up {
                let link = net.link(c);
                let plane = link.plane;
                let pg = &new_planes[plane.index()];
                let (Some(du), Some(dv)) = (pg.dense(link.src), pg.dense(link.dst)) else {
                    continue; // host attachment cable: rack-level routing unaffected
                };
                let dist_u = bfs_hop_dists(pg, du);
                let dist_v = bfs_hop_dists(pg, dv);
                let limit = self.algo.per_plane_limit();
                let lo = (plane, RackId(0), RackId(0));
                let hi = (plane, RackId(u32::MAX), RackId(u32::MAX));
                for (&key, paths) in st.table.range(lo..=hi) {
                    let (_, s, d) = key;
                    let (ts, td) = (pg.tor(s), pg.tor(d));
                    let via = |a: &[u32], b: &[u32]| -> u64 {
                        if a[ts] == u32::MAX || b[td] == u32::MAX {
                            u64::MAX
                        } else {
                            u64::from(a[ts]) + 1 + u64::from(b[td])
                        }
                    };
                    let lb = via(&dist_u, &dist_v).min(via(&dist_v, &dist_u));
                    let threshold = match self.algo {
                        _ if paths.len() < limit => u64::MAX,
                        RouteAlgo::Ksp { .. } => {
                            paths.last().map_or(u64::MAX, |p| p.links.len() as u64)
                        }
                        RouteAlgo::Ecmp { .. } => {
                            paths.first().map_or(u64::MAX, |p| p.links.len() as u64)
                        }
                    };
                    if lb <= threshold {
                        affected.insert(key);
                    }
                }
            }
        }

        // Recompute the affected entries against the new snapshot, grouped
        // by (plane, src) exactly like precompute, and overwrite.
        let mut groups: Vec<((PlaneId, RackId), Vec<RackId>)> = Vec::new();
        let mut group_of: BTreeMap<(PlaneId, RackId), usize> = BTreeMap::new();
        for &(plane, src, dst) in &affected {
            let g = *group_of.entry((plane, src)).or_insert_with(|| {
                groups.push(((plane, src), Vec::new()));
                groups.len() - 1
            });
            groups[g].1.push(dst);
        }
        let computed: Vec<Vec<Vec<Path>>> = par.map_indexed(groups.len(), |i| {
            let ((plane, src), dsts) = &groups[i];
            Self::compute_batch(&new_planes, self.algo, *plane, *src, dsts)
        });
        {
            let mut st = self
                .state
                .write()
                .expect("invariant: route-table lock is never poisoned");
            for (((plane, src), dsts), per_dst) in groups.into_iter().zip(computed) {
                for (dst, paths) in dsts.into_iter().zip(per_dst) {
                    let key = (plane, src, dst);
                    let arc = Arc::new(paths);
                    st.index.note(key, &arc);
                    st.table.insert(key, arc);
                }
            }
        }
        DeltaStats {
            epoch: self.epoch(),
            planes_rebuilt: touched.len(),
            entries_repaired: affected.len(),
            entries_reused: cached_total - affected.len(),
            full_rebuild: false,
        }
    }

    /// Bring the router up to date with `net` after link state changed.
    ///
    /// When the change is expressible as a link delta against the current
    /// snapshot — same planes, same switch rosters, only link up/down
    /// membership differs — the diff is routed through
    /// [`Router::apply_delta`], repairing only the affected entries and
    /// keeping every other cached `Arc` intact. Otherwise (plane count or
    /// switch roster changed, i.e. the router was handed a structurally
    /// different network) it falls back to the historical behaviour: drop
    /// the whole table and re-extract every plane graph. The returned
    /// [`DeltaStats`] says which route was taken (`full_rebuild`).
    pub fn refresh(&self, net: &Network) -> DeltaStats {
        if let Some(delta) = self.diff_links(net) {
            if delta.is_empty() {
                return DeltaStats {
                    epoch: self.epoch(),
                    planes_rebuilt: 0,
                    entries_repaired: 0,
                    entries_reused: self.cached_entries(),
                    full_rebuild: false,
                };
            }
            return self.apply_delta(net, &delta);
        }
        // Full-rebuild fallback: nothing cached survives a structural change.
        *self
            .planes
            .write()
            .expect("invariant: plane-snapshot lock is never poisoned") =
            Arc::new(PlaneGraph::build_all(net));
        self.epoch.fetch_add(1, Ordering::AcqRel);
        let mut st = self
            .state
            .write()
            .expect("invariant: route-table lock is never poisoned");
        st.table.clear();
        st.index.clear();
        DeltaStats {
            epoch: self.epoch(),
            planes_rebuilt: self.n_planes(),
            entries_repaired: 0,
            entries_reused: 0,
            full_rebuild: true,
        }
    }

    /// Diff `net`'s fabric-link membership against the current snapshot.
    /// `Some(delta)` when the network has the same plane count and switch
    /// rosters and only link up/down state differs; `None` when the change
    /// is structural and needs a full rebuild.
    fn diff_links(&self, net: &Network) -> Option<LinkDelta> {
        let planes = self.plane_graphs();
        let net_planes: Vec<PlaneId> = net.planes().collect();
        if planes.len() != net_planes.len() {
            return None;
        }
        for (pg, &p) in planes.iter().zip(&net_planes) {
            if pg.plane != p {
                return None;
            }
            // Switch roster must match: every in-plane switch of `net` is in
            // the graph, and the graph has no extras.
            let mut n_switches = 0usize;
            for (id, node) in net.nodes() {
                if node.kind.is_switch() && node.plane == Some(p) {
                    n_switches += 1;
                    pg.dense(id)?;
                }
            }
            if n_switches != pg.n_switches() {
                return None;
            }
        }
        // Membership diff at cable granularity, per plane.
        let mut old_cables: BTreeSet<u32> = BTreeSet::new();
        for pg in planes.iter() {
            old_cables.extend(pg.link_ids().map(|l| l.0 & !1));
        }
        let mut new_cables: BTreeSet<u32> = BTreeSet::new();
        for (id, link) in net.links() {
            if link.up
                && net.node(link.src).kind.is_switch()
                && net.node(link.dst).kind.is_switch()
                && planes[link.plane.index()].dense(link.src).is_some()
                && planes[link.plane.index()].dense(link.dst).is_some()
            {
                new_cables.insert(id.0 & !1);
            }
        }
        Some(LinkDelta {
            down: old_cables
                .difference(&new_cables)
                .map(|&c| pnet_topology::LinkId(c))
                .collect(),
            up: new_cables
                .difference(&old_cables)
                .map(|&c| pnet_topology::LinkId(c))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_topology::{
        assemble_homogeneous, failures, parallel, ChurnSchedule, FatTree, Jellyfish, LinkProfile,
        NetworkClass,
    };

    #[test]
    fn ecmp_router_caches() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let r = Router::new(&net, RouteAlgo::Ecmp { cap: 16 });
        let a = r.paths_in_plane(PlaneId(0), RackId(0), RackId(7));
        let b = r.paths_in_plane(PlaneId(0), RackId(0), RackId(7));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn cross_plane_merge_respects_k() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let r = Router::new(&net, RouteAlgo::Ksp { k: 4 });
        let merged = r.k_best_across_planes(RackId(0), RackId(7), 6);
        assert_eq!(merged.len(), 6);
        // With two identical planes, the 4+4 candidates interleave; the
        // merged set must be sorted by length.
        for w in merged.windows(2) {
            assert!(w[0].links.len() <= w[1].links.len());
        }
        // Both planes should be represented (homogeneous planes tie, sort
        // breaks ties by plane, so first 4 come from plane 0 then plane 1).
        assert!(merged.iter().any(|p| p.plane == PlaneId(1)));
    }

    #[test]
    fn shortest_plane_prefers_shorter_heterogeneous_plane() {
        let proto = Jellyfish::new(16, 4, 2, 0);
        let net = parallel::jellyfish_network(
            NetworkClass::ParallelHeterogeneous,
            proto,
            4,
            77,
            &LinkProfile::paper_default(),
        );
        let r = Router::new(&net, RouteAlgo::Ksp { k: 1 });
        // For every pair, the chosen plane must not be beaten by any other.
        for a in 0..4u32 {
            for b in 4..8u32 {
                let (plane, hops) = r.shortest_plane(RackId(a), RackId(b)).unwrap();
                for p in 0..4u16 {
                    let paths = r.paths_in_plane(PlaneId(p), RackId(a), RackId(b));
                    if let Some(best) = paths.first() {
                        assert!(
                            hops <= best.switch_hops(),
                            "plane {plane} not minimal for ({a},{b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn refresh_picks_up_failures() {
        let mut net =
            assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let r = Router::new(&net, RouteAlgo::Ecmp { cap: 16 });
        assert_eq!(r.paths_in_plane(PlaneId(0), RackId(0), RackId(7)).len(), 4);
        // Fail one agg-core cable on a path and refresh.
        let cables = failures::fabric_cables(&net, None);
        failures::fail_cable(&mut net, cables[0]);
        let stats = r.refresh(&net);
        assert!(
            !stats.full_rebuild,
            "pure link delta must not drop the table"
        );
        assert_eq!(stats.epoch, 1);
        let after = r.paths_in_plane(PlaneId(0), RackId(0), RackId(7)).len();
        assert!(after <= 4);
    }

    /// Incremental repair vs from-scratch rebuild on the same final topology:
    /// the tables must be byte-identical under any fail/restore sequence.
    fn assert_matches_rebuild(net: &Network, r: &Router) {
        let fresh = Router::new(net, r.algo());
        fresh.precompute_all_pairs();
        assert_eq!(
            r.table_fingerprint(),
            fresh.table_fingerprint(),
            "incremental table diverged from a from-scratch rebuild"
        );
    }

    #[test]
    fn apply_delta_repairs_single_cable_down_and_up() {
        let mut net = assemble_homogeneous(
            &Jellyfish::new(12, 3, 1, 4),
            2,
            &LinkProfile::paper_default(),
        );
        let r = Router::new(&net, RouteAlgo::Ksp { k: 4 });
        r.precompute_all_pairs();
        let total = r.cached_entries();
        let cables = failures::fabric_cables(&net, None);

        failures::fail_cable(&mut net, cables[3]);
        let down = LinkDelta {
            down: vec![cables[3]],
            up: vec![],
        };
        let stats = r.apply_delta(&net, &down);
        assert_eq!(stats.planes_rebuilt, 1);
        assert!(stats.entries_repaired > 0, "some entry used the cable");
        assert!(stats.entries_repaired < total, "repair must be partial");
        assert_eq!(stats.entries_reused + stats.entries_repaired, total);
        assert_matches_rebuild(&net, &r);

        failures::restore_cable(&mut net, cables[3]);
        let up = LinkDelta {
            down: vec![],
            up: vec![cables[3]],
        };
        let stats = r.apply_delta(&net, &up);
        assert!(stats.entries_repaired > 0);
        assert_eq!(stats.epoch, 2);
        assert_matches_rebuild(&net, &r);
    }

    #[test]
    fn apply_delta_preserves_untouched_arcs() {
        let mut net = assemble_homogeneous(
            &Jellyfish::new(12, 3, 1, 4),
            2,
            &LinkProfile::paper_default(),
        );
        let r = Router::new(&net, RouteAlgo::Ksp { k: 4 });
        r.precompute_all_pairs();
        // Fail a plane-0 cable: every plane-1 entry must keep its exact Arc.
        let c = failures::fabric_cables(&net, Some(PlaneId(0)))[0];
        let before: Vec<_> = (1..12u32)
            .map(|b| r.paths_in_plane(PlaneId(1), RackId(0), RackId(b)))
            .collect();
        failures::fail_cable(&mut net, c);
        r.apply_delta(
            &net,
            &LinkDelta {
                down: vec![c],
                up: vec![],
            },
        );
        for (b, arc) in (1..12u32).zip(before) {
            let after = r.paths_in_plane(PlaneId(1), RackId(0), RackId(b));
            assert!(
                Arc::ptr_eq(&arc, &after),
                "plane-1 entry (0,{b}) was replaced by a plane-0 delta"
            );
        }
    }

    #[test]
    fn churn_walk_refresh_matches_rebuild() {
        let mut net = assemble_homogeneous(
            &Jellyfish::new(12, 3, 1, 9),
            2,
            &LinkProfile::paper_default(),
        );
        let r = Router::new(&net, RouteAlgo::Ksp { k: 4 });
        r.precompute_all_pairs();
        let sched = ChurnSchedule::random_walk(&net, 12, 0.2, 21);
        assert!(!sched.events.is_empty());
        for &ev in &sched.events {
            ev.apply(&mut net);
            let stats = r.refresh(&net);
            assert!(!stats.full_rebuild);
        }
        assert_eq!(r.epoch(), sched.events.len() as u64);
        assert_matches_rebuild(&net, &r);
    }

    #[test]
    fn refresh_falls_back_on_structural_change() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let r = Router::new(&net, RouteAlgo::Ksp { k: 2 });
        r.precompute_all_pairs();
        // A structurally different network (3 planes): full rebuild.
        let other = assemble_homogeneous(&FatTree::three_tier(4), 3, &LinkProfile::paper_default());
        let stats = r.refresh(&other);
        assert!(stats.full_rebuild);
        assert_eq!(r.cached_entries(), 0);
        assert_eq!(r.n_planes(), 3);
    }

    #[test]
    fn ecmp_delta_matches_rebuild() {
        let mut net =
            assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let r = Router::new(&net, RouteAlgo::Ecmp { cap: 16 });
        r.precompute_all_pairs();
        let cables = failures::fabric_cables(&net, None);
        failures::fail_cable(&mut net, cables[1]);
        failures::fail_cable(&mut net, cables[7]);
        r.refresh(&net);
        assert_matches_rebuild(&net, &r);
        failures::restore_cable(&mut net, cables[7]);
        r.refresh(&net);
        assert_matches_rebuild(&net, &r);
    }

    #[test]
    fn precompute_matches_lazy_lookups() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let warm = Router::new(&net, RouteAlgo::Ksp { k: 6 });
        warm.precompute_all_pairs();
        let lazy = Router::new(&net, RouteAlgo::Ksp { k: 6 });
        for a in 0..8u32 {
            for b in 0..8u32 {
                if a == b {
                    continue;
                }
                for p in 0..2u16 {
                    assert_eq!(
                        *warm.paths_in_plane(PlaneId(p), RackId(a), RackId(b)),
                        *lazy.paths_in_plane(PlaneId(p), RackId(a), RackId(b)),
                        "mismatch at plane {p} pair ({a},{b})"
                    );
                }
            }
        }
        // 8 racks, 56 ordered pairs, 2 planes.
        assert_eq!(warm.cached_entries(), 112);
    }

    #[test]
    fn serial_and_parallel_precompute_agree() {
        let net = assemble_homogeneous(
            &Jellyfish::new(12, 3, 1, 4),
            2,
            &LinkProfile::paper_default(),
        );
        let a = Router::new(&net, RouteAlgo::Ksp { k: 8 });
        a.precompute_all_pairs_with(Parallelism::Serial);
        let b = Router::new(&net, RouteAlgo::Ksp { k: 8 });
        b.precompute_all_pairs_with(Parallelism::Rayon);
        assert_eq!(a.table_fingerprint(), b.table_fingerprint());
        for x in 0..12u32 {
            for y in 0..12u32 {
                if x == y {
                    continue;
                }
                for p in 0..2u16 {
                    assert_eq!(
                        *a.paths_in_plane(PlaneId(p), RackId(x), RackId(y)),
                        *b.paths_in_plane(PlaneId(p), RackId(x), RackId(y)),
                    );
                }
            }
        }
    }

    #[test]
    fn precompute_keeps_existing_arcs() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let r = Router::new(&net, RouteAlgo::Ecmp { cap: 8 });
        let before = r.paths_in_plane(PlaneId(0), RackId(0), RackId(7));
        r.precompute_all_pairs();
        let after = r.paths_in_plane(PlaneId(0), RackId(0), RackId(7));
        assert!(
            Arc::ptr_eq(&before, &after),
            "precompute replaced a live Arc"
        );
    }

    #[test]
    fn router_is_shareable_across_threads() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let r = Arc::new(Router::new(&net, RouteAlgo::Ksp { k: 4 }));
        r.precompute_all_pairs();
        let reference = r.k_best_across_planes(RackId(0), RackId(7), 8);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                let want = reference.clone();
                // pnet-tidy: allow(D2) -- this test exists to prove the router is shareable across real OS threads
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(r.k_best_across_planes(RackId(0), RackId(7), 8), want);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
