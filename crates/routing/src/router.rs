//! The multi-plane router with a thread-shareable route table.
//!
//! A [`Router`] wraps the per-plane graphs of a network and serves path sets
//! per (plane, src rack, dst rack). Two algorithms are supported, matching
//! the paper's two routing regimes:
//!
//! * [`RouteAlgo::Ecmp`] — all equal-cost shortest paths (capped), the
//!   fat-tree default;
//! * [`RouteAlgo::Ksp`] — Yen K-shortest-paths, the expander default and the
//!   multipath substrate for MPTCP.
//!
//! Path computation is a pure function of the (frozen) plane graphs, so the
//! route table is filled either lazily behind an `RwLock` (concurrent
//! readers, `&self` throughout) or in bulk by [`Router::precompute`], which
//! fans the per-(plane, src, dst) Yen/ECMP computations across threads and
//! commits results in deterministic index order. Serial and parallel
//! precomputation produce identical tables — see `tests/determinism.rs`.
//!
//! Cross-plane queries ([`Router::k_best_across_planes`]) merge the
//! per-plane path sets shortest-first — this is how a P-Net host builds its
//! bounded set of subflow paths spanning all dataplanes.

use crate::bfs;
use crate::exec::Parallelism;
use crate::path::{sort_paths, Path};
use crate::plane_graph::PlaneGraph;
use crate::yen;
use pnet_topology::{Network, PlaneId, RackId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, RwLock};

/// Which path computation the router serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteAlgo {
    /// All equal-cost shortest paths, up to `cap` per plane.
    Ecmp { cap: usize },
    /// Yen K-shortest-paths, `k` per plane.
    Ksp { k: usize },
}

impl RouteAlgo {
    /// Paths this algorithm yields per plane at most.
    pub fn per_plane_limit(self) -> usize {
        match self {
            RouteAlgo::Ecmp { cap } => cap,
            RouteAlgo::Ksp { k } => k,
        }
    }
}

type RouteKey = (PlaneId, RackId, RackId);

/// Path provider over all planes of one network. All lookups take `&self`;
/// the router is `Sync` and can be shared across threads (e.g. behind an
/// `Arc`) once built.
pub struct Router {
    planes: Arc<Vec<PlaneGraph>>,
    algo: RouteAlgo,
    table: RwLock<BTreeMap<RouteKey, Arc<Vec<Path>>>>,
}

impl Router {
    /// Build a router for `net` (captures the current link up/down state;
    /// [`Router::refresh`] after failure injection). Plane graph extraction
    /// fans out across planes.
    pub fn new(net: &Network, algo: RouteAlgo) -> Self {
        Self::with_parallelism(net, algo, Parallelism::default())
    }

    /// [`Router::new`] with an explicit execution strategy.
    pub fn with_parallelism(net: &Network, algo: RouteAlgo, par: Parallelism) -> Self {
        Router {
            planes: Arc::new(PlaneGraph::build_all_with(net, par)),
            algo,
            table: RwLock::new(BTreeMap::new()),
        }
    }

    /// The algorithm in use.
    pub fn algo(&self) -> RouteAlgo {
        self.algo
    }

    /// Number of planes.
    pub fn n_planes(&self) -> usize {
        self.planes.len()
    }

    /// Racks served by the network.
    pub fn n_racks(&self) -> usize {
        self.planes.first().map_or(0, |pg| pg.n_racks())
    }

    /// The plane graphs (e.g. for custom analyses).
    pub fn plane_graphs(&self) -> &[PlaneGraph] {
        &self.planes
    }

    /// Route-table entries currently materialized.
    pub fn cached_entries(&self) -> usize {
        self.table
            .read()
            .expect("invariant: route-table lock is never poisoned")
            .len()
    }

    /// Pure per-key path computation (the function the table memoizes).
    fn compute(&self, plane: PlaneId, src: RackId, dst: RackId) -> Vec<Path> {
        let pg = &self.planes[plane.index()];
        let mut paths = match self.algo {
            RouteAlgo::Ecmp { cap } => bfs::all_shortest_paths(pg, src, dst, cap),
            RouteAlgo::Ksp { k } => yen::ksp(pg, src, dst, k),
        };
        sort_paths(&mut paths);
        paths
    }

    /// Batched per-(plane, src) computation: identical per-destination output
    /// to [`Router::compute`], but the first shortest-path BFS (KSP) or the
    /// whole distance field (ECMP) is shared across the destination list.
    fn compute_batch(&self, plane: PlaneId, src: RackId, dsts: &[RackId]) -> Vec<Vec<Path>> {
        let pg = &self.planes[plane.index()];
        let mut per_dst = match self.algo {
            RouteAlgo::Ecmp { cap } => bfs::ecmp_destinations(pg, src, dsts, cap),
            RouteAlgo::Ksp { k } => yen::ksp_destinations(pg, src, dsts, k),
        };
        for paths in &mut per_dst {
            sort_paths(paths);
        }
        per_dst
    }

    /// Path set between two racks within one plane (memoized, shared).
    pub fn paths_in_plane(&self, plane: PlaneId, src: RackId, dst: RackId) -> Arc<Vec<Path>> {
        let key = (plane, src, dst);
        if let Some(p) = self
            .table
            .read()
            .expect("invariant: route-table lock is never poisoned")
            .get(&key)
        {
            return Arc::clone(p);
        }
        let paths = Arc::new(self.compute(plane, src, dst));
        // First writer wins so repeat lookups keep returning the same Arc.
        Arc::clone(
            self.table
                .write()
                .expect("invariant: route-table lock is never poisoned")
                .entry(key)
                .or_insert(paths),
        )
    }

    /// Bulk-fill the route table for every (plane, src, dst) combination of
    /// the given rack pairs, fanning the independent Yen/ECMP computations
    /// across threads. Results are committed in deterministic index order;
    /// the resulting table is identical to serially computing each entry.
    pub fn precompute(&self, pairs: &[(RackId, RackId)]) {
        self.precompute_with(pairs, Parallelism::default());
    }

    /// [`Router::precompute`] with an explicit execution strategy.
    pub fn precompute_with(&self, pairs: &[(RackId, RackId)], par: Parallelism) {
        let n_planes = self.planes.len();
        // Skip keys that are already materialized (precompute after lazy use
        // must not replace Arcs callers may have compared by pointer), then
        // group the remainder by (plane, src): one batched computation per
        // group shares the source-side BFS work across destinations.
        let mut groups: Vec<((PlaneId, RackId), Vec<RackId>)> = Vec::new();
        {
            let table = self
                .table
                .read()
                .expect("invariant: route-table lock is never poisoned");
            let mut group_of: BTreeMap<(PlaneId, RackId), usize> = BTreeMap::new();
            let mut seen: BTreeSet<RouteKey> = BTreeSet::new();
            for &(src, dst) in pairs {
                for p in 0..n_planes {
                    let key = (PlaneId(p as u16), src, dst);
                    if table.contains_key(&key) || !seen.insert(key) {
                        continue;
                    }
                    let g = *group_of.entry((key.0, src)).or_insert_with(|| {
                        groups.push(((key.0, src), Vec::new()));
                        groups.len() - 1
                    });
                    groups[g].1.push(dst);
                }
            }
        }
        // Fan out per group; per-destination results are identical to
        // per-key `compute`, and commit order does not affect the table.
        let computed: Vec<Vec<Vec<Path>>> = par.map_indexed(groups.len(), |i| {
            let ((plane, src), dsts) = &groups[i];
            self.compute_batch(*plane, *src, dsts)
        });
        let mut table = self
            .table
            .write()
            .expect("invariant: route-table lock is never poisoned");
        for (((plane, src), dsts), per_dst) in groups.into_iter().zip(computed) {
            for (dst, paths) in dsts.into_iter().zip(per_dst) {
                table
                    .entry((plane, src, dst))
                    .or_insert_with(|| Arc::new(paths));
            }
        }
    }

    /// [`Router::precompute`] over all ordered rack pairs (src != dst) —
    /// the all-pairs route tables every experiment sweep starts from.
    pub fn precompute_all_pairs(&self) {
        self.precompute_all_pairs_with(Parallelism::default());
    }

    /// [`Router::precompute_all_pairs`] with an explicit execution strategy.
    pub fn precompute_all_pairs_with(&self, par: Parallelism) {
        let n = self.n_racks();
        let pairs: Vec<(RackId, RackId)> = (0..n)
            .flat_map(|a| {
                (0..n)
                    .filter(move |&b| b != a)
                    .map(move |b| (RackId(a as u32), RackId(b as u32)))
            })
            .collect();
        self.precompute_with(&pairs, par);
    }

    /// The `k` globally best paths between two racks across *all* planes,
    /// shortest first. Within an equal-length tier the planes are
    /// *interleaved* (plane 0's first tie, plane 1's first tie, ...), so a
    /// truncated prefix spreads over as many planes as possible — which is
    /// what an MPTCP path manager wants from its subflow set.
    pub fn k_best_across_planes(&self, src: RackId, dst: RackId, k: usize) -> Vec<Path> {
        let mut all: Vec<Path> = Vec::new();
        for plane in 0..self.planes.len() {
            let paths = self.paths_in_plane(PlaneId(plane as u16), src, dst);
            all.extend(paths.iter().cloned());
        }
        sort_paths(&mut all);
        // Re-order each equal-length tier: round-robin over planes.
        let mut out: Vec<Path> = Vec::with_capacity(all.len());
        let mut start = 0;
        while start < all.len() {
            let len = all[start].links.len();
            let mut end = start + 1;
            while end < all.len() && all[end].links.len() == len {
                end += 1;
            }
            // The tier is sorted by (plane, links); split per plane
            // preserving order, then interleave.
            let tier: Vec<Path> = all[start..end].to_vec();
            let mut per_plane: Vec<Vec<Path>> = vec![Vec::new(); self.planes.len()];
            for p in tier {
                per_plane[p.plane.index()].push(p);
            }
            let mut idx = 0;
            loop {
                let mut any = false;
                for plane_paths in &per_plane {
                    if idx < plane_paths.len() {
                        out.push(plane_paths[idx].clone());
                        any = true;
                    }
                }
                if !any {
                    break;
                }
                idx += 1;
            }
            start = end;
        }
        out.truncate(k);
        out
    }

    /// The plane offering the shortest path between two racks (the paper's
    /// "low-latency" interface selects this plane for small RPCs). Ties go
    /// to the lowest plane id. `None` if no plane connects the racks.
    pub fn shortest_plane(&self, src: RackId, dst: RackId) -> Option<(PlaneId, usize)> {
        let mut best: Option<(PlaneId, usize)> = None;
        for plane in 0..self.planes.len() {
            let paths = self.paths_in_plane(PlaneId(plane as u16), src, dst);
            if let Some(p) = paths.first() {
                let hops = p.switch_hops();
                if best.is_none_or(|(_, b)| hops < b) {
                    best = Some((PlaneId(plane as u16), hops));
                }
            }
        }
        best
    }

    /// Invalidate the table and re-extract the plane graphs (after failures).
    pub fn refresh(&mut self, net: &Network) {
        self.planes = Arc::new(PlaneGraph::build_all(net));
        self.table
            .write()
            .expect("invariant: route-table lock is never poisoned")
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_topology::{
        assemble_homogeneous, failures, parallel, FatTree, Jellyfish, LinkProfile, NetworkClass,
    };

    #[test]
    fn ecmp_router_caches() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let r = Router::new(&net, RouteAlgo::Ecmp { cap: 16 });
        let a = r.paths_in_plane(PlaneId(0), RackId(0), RackId(7));
        let b = r.paths_in_plane(PlaneId(0), RackId(0), RackId(7));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn cross_plane_merge_respects_k() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let r = Router::new(&net, RouteAlgo::Ksp { k: 4 });
        let merged = r.k_best_across_planes(RackId(0), RackId(7), 6);
        assert_eq!(merged.len(), 6);
        // With two identical planes, the 4+4 candidates interleave; the
        // merged set must be sorted by length.
        for w in merged.windows(2) {
            assert!(w[0].links.len() <= w[1].links.len());
        }
        // Both planes should be represented (homogeneous planes tie, sort
        // breaks ties by plane, so first 4 come from plane 0 then plane 1).
        assert!(merged.iter().any(|p| p.plane == PlaneId(1)));
    }

    #[test]
    fn shortest_plane_prefers_shorter_heterogeneous_plane() {
        let proto = Jellyfish::new(16, 4, 2, 0);
        let net = parallel::jellyfish_network(
            NetworkClass::ParallelHeterogeneous,
            proto,
            4,
            77,
            &LinkProfile::paper_default(),
        );
        let r = Router::new(&net, RouteAlgo::Ksp { k: 1 });
        // For every pair, the chosen plane must not be beaten by any other.
        for a in 0..4u32 {
            for b in 4..8u32 {
                let (plane, hops) = r.shortest_plane(RackId(a), RackId(b)).unwrap();
                for p in 0..4u16 {
                    let paths = r.paths_in_plane(PlaneId(p), RackId(a), RackId(b));
                    if let Some(best) = paths.first() {
                        assert!(
                            hops <= best.switch_hops(),
                            "plane {plane} not minimal for ({a},{b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn refresh_picks_up_failures() {
        let mut net =
            assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let mut r = Router::new(&net, RouteAlgo::Ecmp { cap: 16 });
        assert_eq!(r.paths_in_plane(PlaneId(0), RackId(0), RackId(7)).len(), 4);
        // Fail one agg-core cable on a path and refresh.
        let cables = failures::fabric_cables(&net, None);
        failures::fail_cable(&mut net, cables[0]);
        r.refresh(&net);
        let after = r.paths_in_plane(PlaneId(0), RackId(0), RackId(7)).len();
        assert!(after <= 4);
    }

    #[test]
    fn precompute_matches_lazy_lookups() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let warm = Router::new(&net, RouteAlgo::Ksp { k: 6 });
        warm.precompute_all_pairs();
        let lazy = Router::new(&net, RouteAlgo::Ksp { k: 6 });
        for a in 0..8u32 {
            for b in 0..8u32 {
                if a == b {
                    continue;
                }
                for p in 0..2u16 {
                    assert_eq!(
                        *warm.paths_in_plane(PlaneId(p), RackId(a), RackId(b)),
                        *lazy.paths_in_plane(PlaneId(p), RackId(a), RackId(b)),
                        "mismatch at plane {p} pair ({a},{b})"
                    );
                }
            }
        }
        // 8 racks, 56 ordered pairs, 2 planes.
        assert_eq!(warm.cached_entries(), 112);
    }

    #[test]
    fn serial_and_parallel_precompute_agree() {
        let net = assemble_homogeneous(
            &Jellyfish::new(12, 3, 1, 4),
            2,
            &LinkProfile::paper_default(),
        );
        let a = Router::new(&net, RouteAlgo::Ksp { k: 8 });
        a.precompute_all_pairs_with(Parallelism::Serial);
        let b = Router::new(&net, RouteAlgo::Ksp { k: 8 });
        b.precompute_all_pairs_with(Parallelism::Rayon);
        for x in 0..12u32 {
            for y in 0..12u32 {
                if x == y {
                    continue;
                }
                for p in 0..2u16 {
                    assert_eq!(
                        *a.paths_in_plane(PlaneId(p), RackId(x), RackId(y)),
                        *b.paths_in_plane(PlaneId(p), RackId(x), RackId(y)),
                    );
                }
            }
        }
    }

    #[test]
    fn precompute_keeps_existing_arcs() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default());
        let r = Router::new(&net, RouteAlgo::Ecmp { cap: 8 });
        let before = r.paths_in_plane(PlaneId(0), RackId(0), RackId(7));
        r.precompute_all_pairs();
        let after = r.paths_in_plane(PlaneId(0), RackId(0), RackId(7));
        assert!(
            Arc::ptr_eq(&before, &after),
            "precompute replaced a live Arc"
        );
    }

    #[test]
    fn router_is_shareable_across_threads() {
        let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let r = Arc::new(Router::new(&net, RouteAlgo::Ksp { k: 4 }));
        r.precompute_all_pairs();
        let reference = r.k_best_across_planes(RackId(0), RackId(7), 8);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                let want = reference.clone();
                // pnet-tidy: allow(D2) -- this test exists to prove the router is shareable across real OS threads
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(r.k_best_across_planes(RackId(0), RackId(7), 8), want);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
