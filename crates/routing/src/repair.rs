//! Incremental route repair support: the inverted cable → route-entry index
//! and delta bookkeeping behind [`crate::Router::apply_delta`].
//!
//! The index answers "which cached (plane, src, dst) entries have a path
//! through this cable?" in one CSR row scan. Entries are *noted* whenever a
//! path set is committed to the route table; notes append to a staged list
//! and are compacted into CSR form (counting sort by cable) lazily, at the
//! start of each delta application. Re-noting an entry bumps its generation,
//! which invalidates every older posting for that entry — stale postings are
//! filtered on query and dropped at the next compaction, so the index never
//! needs a scatter-delete.

use crate::path::Path;
use crate::plane_graph::PlaneGraph;
use pnet_topology::{LinkId, PlaneId, RackId};

/// Route-table key: one path set per (plane, source rack, destination rack).
pub(crate) type RouteKey = (PlaneId, RackId, RackId);

/// Outcome of one [`crate::Router::apply_delta`] or [`crate::Router::refresh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaStats {
    /// Router epoch after the operation (bumped once per applied change).
    pub epoch: u64,
    /// Plane graphs rebuilt (only the planes touched by the delta).
    pub planes_rebuilt: usize,
    /// Cached entries invalidated and recomputed.
    pub entries_repaired: usize,
    /// Cached entries left untouched (their `Arc`s are byte-identical and
    /// pointer-identical to before the delta).
    pub entries_reused: usize,
    /// True when the change was not expressible as a link delta and the
    /// whole table was dropped instead (see [`crate::Router::refresh`]).
    pub full_rebuild: bool,
}

/// 64-bit FNV-1a over `u64` words — the workspace's golden-fingerprint
/// hash. The router uses it for route-table fingerprints; the planner
/// reuses it for topology / commodity-set / solution cache keys so that
/// every fingerprint in the system is the same deterministic function.
pub struct Fnv(pub u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

impl Fnv {
    /// The FNV-1a 64-bit offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Fold one `u64` word into the digest, byte by byte (little-endian).
    pub fn u64(&mut self, x: u64) {
        for byte in x.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Inverted index: fabric cable (duplex pair, even-direction representative)
/// → cached route-table entries whose committed path set traverses it.
pub(crate) struct LinkIndex {
    /// CSR offsets over cable index (`LinkId.0 >> 1`): compacted postings of
    /// cable `c` live at `postings[offsets[c]..offsets[c + 1]]`.
    offsets: Vec<u32>,
    /// Compacted postings: `(entry key, generation at noting)`.
    postings: Vec<(RouteKey, u32)>,
    /// Postings noted since the last compaction: `(cable index, key, gen)`.
    staged: Vec<(u32, RouteKey, u32)>,
    /// Current generation of each noted entry, densely keyed by
    /// `(plane, src, dst)` (see [`LinkIndex::dense`], grown on demand).
    /// 0 means never noted; generations start at 1 and skip 0 on wrap.
    /// Compaction touches every posting, so an O(1) array read here versus
    /// an ordered-map lookup is the difference between a few milliseconds
    /// and tens of milliseconds per applied delta at benchmark scale.
    gen: Vec<u32>,
    /// Dense-key strides: `racks` per source, `racks²` per plane.
    racks: usize,
    /// Exclusive upper bound on cable indices seen.
    cable_bound: usize,
}

impl LinkIndex {
    pub(crate) fn new() -> LinkIndex {
        LinkIndex {
            offsets: vec![0],
            postings: Vec::new(),
            staged: Vec::new(),
            gen: Vec::new(),
            racks: 0,
            cable_bound: 0,
        }
    }

    /// Forget everything (full-rebuild fallback drops the table too).
    pub(crate) fn clear(&mut self) {
        self.offsets = vec![0];
        self.postings.clear();
        self.staged.clear();
        self.gen.clear();
        self.racks = 0;
        self.cable_bound = 0;
    }

    /// Dense generation slot of `key`. Strides grow monotonically with the
    /// largest rack id seen; growing `racks` remaps previously-issued dense
    /// keys, so it only happens through [`LinkIndex::note`], which rewrites
    /// the stored generation under the new layout before use.
    fn dense(&self, key: RouteKey) -> usize {
        let (p, s, d) = key;
        (p.index() * self.racks + s.0 as usize) * self.racks + d.0 as usize
    }

    /// Current generation of `key` (0 = never noted).
    fn gen_of(&self, key: RouteKey) -> u32 {
        let i = self.dense(key);
        self.gen.get(i).copied().unwrap_or(0)
    }

    /// Record that `key`'s committed path set is `paths`, superseding any
    /// previous note for the same key.
    pub(crate) fn note(&mut self, key: RouteKey, paths: &[Path]) {
        let (p, s, d) = key;
        let need_racks = (s.0.max(d.0) as usize + 1).max(self.racks);
        if need_racks > self.racks {
            // Re-stride the dense table. Only reachable while new rack ids
            // keep appearing (first precompute); steady-state notes are O(1).
            let old: Vec<(RouteKey, u32)> = self
                .gen
                .iter()
                .enumerate()
                .filter(|&(_, &g)| g > 0)
                .map(|(i, &g)| {
                    let d = i % self.racks;
                    let rest = i / self.racks;
                    (
                        (
                            PlaneId((rest / self.racks) as u16),
                            RackId((rest % self.racks) as u32),
                            RackId(d as u32),
                        ),
                        g,
                    )
                })
                .collect();
            self.racks = need_racks;
            self.gen.clear();
            for (k, g) in old {
                let i = self.dense(k);
                if i >= self.gen.len() {
                    self.gen.resize(i + 1, 0);
                }
                self.gen[i] = g;
            }
        }
        let i = (p.index() * self.racks + s.0 as usize) * self.racks + d.0 as usize;
        if i >= self.gen.len() {
            self.gen.resize(i + 1, 0);
        }
        let g = match self.gen[i].wrapping_add(1) {
            0 => 1,
            g => g,
        };
        self.gen[i] = g;
        let mut cables: Vec<u32> = paths
            .iter()
            .flat_map(|p| p.links.iter().map(|l| l.0 >> 1))
            .collect();
        cables.sort_unstable();
        cables.dedup();
        for c in cables {
            self.cable_bound = self.cable_bound.max(c as usize + 1);
            self.staged.push((c, key, g));
        }
    }

    /// Fold staged postings into the CSR rows, dropping stale generations.
    pub(crate) fn compact(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        // Survivors of the old rows first (in row order), then the staged
        // notes (in noting order): a stable counting sort by cable.
        let mut merged: Vec<(u32, RouteKey, u32)> = Vec::new();
        for c in 0..self.offsets.len() - 1 {
            for &(key, g) in &self.postings[self.offsets[c] as usize..self.offsets[c + 1] as usize]
            {
                if self.gen_of(key) == g {
                    merged.push((c as u32, key, g));
                }
            }
        }
        let staged = std::mem::take(&mut self.staged);
        merged.extend(
            staged
                .into_iter()
                .filter(|&(_, key, g)| self.gen_of(key) == g),
        );
        let mut counts = vec![0u32; self.cable_bound + 1];
        for &(c, _, _) in &merged {
            counts[c as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut postings = vec![((PlaneId(0), RackId(0), RackId(0)), 0u32); merged.len()];
        let mut cursor = counts.clone();
        for (c, key, g) in merged {
            postings[cursor[c as usize] as usize] = (key, g);
            cursor[c as usize] += 1;
        }
        self.offsets = counts;
        self.postings = postings;
    }

    /// Cached entries whose committed path set traverses `cable`. Call
    /// [`LinkIndex::compact`] first; staged postings are not consulted.
    pub(crate) fn entries_for(&self, cable: LinkId) -> impl Iterator<Item = RouteKey> + '_ {
        let c = (cable.0 >> 1) as usize;
        let row = if c + 1 < self.offsets.len() {
            &self.postings[self.offsets[c] as usize..self.offsets[c + 1] as usize]
        } else {
            &[]
        };
        row.iter()
            .filter(|&&(key, g)| self.gen_of(key) == g)
            .map(|&(key, _)| key)
    }
}

/// Hop distances from `src` (dense index) to every switch of the plane —
/// the link-up repair bound runs two of these per restored cable.
pub(crate) fn bfs_hop_dists(pg: &PlaneGraph, src: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; pg.n_switches()];
    let mut queue = std::collections::VecDeque::with_capacity(pg.n_switches());
    dist[src] = 0;
    queue.push_back(src as u32);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &(v, _) in pg.neighbors(u as usize) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u16, s: u32, d: u32) -> RouteKey {
        (PlaneId(p), RackId(s), RackId(d))
    }

    fn path(plane: u16, links: &[u32]) -> Path {
        Path {
            plane: PlaneId(plane),
            links: links.iter().map(|&l| LinkId(l)).collect(),
        }
    }

    #[test]
    fn index_round_trip_and_dedup() {
        let mut idx = LinkIndex::new();
        // Two paths sharing cable 2 (links 4 and 5): one posting, not two.
        idx.note(key(0, 0, 1), &[path(0, &[0, 4]), path(0, &[5, 8])]);
        idx.note(key(0, 0, 2), &[path(0, &[8])]);
        idx.compact();
        let hits: Vec<_> = idx.entries_for(LinkId(4)).collect();
        assert_eq!(hits, vec![key(0, 0, 1)]);
        let hits: Vec<_> = idx.entries_for(LinkId(5)).collect();
        assert_eq!(hits, vec![key(0, 0, 1)], "both directions hit one cable");
        let hits: Vec<_> = idx.entries_for(LinkId(8)).collect();
        assert_eq!(hits, vec![key(0, 0, 1), key(0, 0, 2)]);
    }

    #[test]
    fn renoting_invalidates_old_postings() {
        let mut idx = LinkIndex::new();
        idx.note(key(0, 0, 1), &[path(0, &[4])]);
        idx.compact();
        // Entry recomputed: its paths no longer touch cable 2.
        idx.note(key(0, 0, 1), &[path(0, &[6])]);
        assert_eq!(idx.entries_for(LinkId(4)).count(), 0, "stale posting read");
        idx.compact();
        assert_eq!(idx.entries_for(LinkId(4)).count(), 0);
        assert_eq!(idx.entries_for(LinkId(6)).count(), 1);
    }

    #[test]
    fn query_out_of_range_cable_is_empty() {
        let mut idx = LinkIndex::new();
        idx.note(key(0, 0, 1), &[path(0, &[0])]);
        idx.compact();
        assert_eq!(idx.entries_for(LinkId(1 << 20)).count(), 0);
    }
}
