//! Path types shared by all routing algorithms.
//!
//! Routing operates at *rack level*: a [`Path`] is a sequence of fabric links
//! from the source rack's ToR to the destination rack's ToR, entirely within
//! one plane (the P-Net forwarding constraint). Host-level source routes for
//! the packet simulator are derived with [`host_route`], which prepends the
//! source host's uplink and appends the destination host's downlink.

use pnet_topology::{HostId, LinkId, Network, PlaneId};

/// A rack-to-rack path inside one plane.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    /// The plane the path lives in.
    pub plane: PlaneId,
    /// Fabric links from the source ToR to the destination ToR. Empty when
    /// source and destination racks coincide.
    pub links: Vec<LinkId>,
}

impl Path {
    /// An intra-rack path (source and destination behind the same ToR).
    pub fn intra_rack(plane: PlaneId) -> Self {
        Path {
            plane,
            links: Vec::new(),
        }
    }

    /// Number of switch hops a packet traverses end to end (ToRs included).
    /// An intra-rack path crosses one switch; each fabric link adds one.
    #[inline]
    pub fn switch_hops(&self) -> usize {
        self.links.len() + 1
    }

    /// Sum of propagation delays along the fabric links, picoseconds.
    pub fn fabric_delay_ps(&self, net: &Network) -> u64 {
        self.links.iter().map(|&l| net.link(l).delay_ps).sum()
    }

    /// Check the path is well-formed in `net`: consecutive links share
    /// endpoints, all links are up and in the declared plane, and no switch
    /// repeats (simple path).
    pub fn validate(&self, net: &Network) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        for (i, &l) in self.links.iter().enumerate() {
            let link = net.link(l);
            if link.plane != self.plane {
                return Err(format!("link {l} not in plane {}", self.plane));
            }
            if !link.up {
                return Err(format!("link {l} is down"));
            }
            if i > 0 {
                let prev = net.link(self.links[i - 1]);
                if prev.dst != link.src {
                    return Err(format!("links {} -> {l} do not chain", self.links[i - 1]));
                }
            }
            if !seen.insert(link.src) {
                return Err(format!("switch {} repeats", link.src));
            }
        }
        if let Some(&last) = self.links.last() {
            let dst = net.link(last).dst;
            if seen.contains(&dst) {
                return Err(format!("switch {dst} repeats at path end"));
            }
        }
        Ok(())
    }
}

/// Build the full host-to-host source route for the packet simulator:
/// `src` uplink into the plane, the rack path, then `dst`'s downlink.
///
/// Returns `None` if either host lacks an up link into the path's plane.
pub fn host_route(net: &Network, src: HostId, dst: HostId, path: &Path) -> Option<Vec<LinkId>> {
    let up = net.host_uplink(src, path.plane)?;
    let down = net.host_uplink(dst, path.plane)?.reverse();
    if !net.link(down).up {
        return None;
    }
    let mut route = Vec::with_capacity(path.links.len() + 2);
    route.push(up);
    route.extend_from_slice(&path.links);
    route.push(down);
    // The rack path must start at src's ToR and end at dst's ToR.
    debug_assert_eq!(
        net.link(route[0]).dst,
        net.link(route[1]).src,
        "rack path does not start at the source ToR"
    );
    Some(route)
}

/// Reverse a host route (for ACKs): reverse link order and flip each link.
pub fn reverse_route(route: &[LinkId]) -> Vec<LinkId> {
    route.iter().rev().map(|l| l.reverse()).collect()
}

/// Rotate each equal-length tier of a sorted path list by `hash`, so that
/// different flows pick *different* (but still shortest-first) path subsets.
/// Without this, deterministic KSP ordering funnels every flow between the
/// same racks through the same lexicographically-first paths — the opposite
/// of what a hashing path manager (ECMP, MPTCP subflow setup) does.
pub fn rotate_ties(paths: &mut [Path], hash: u64) {
    let mut start = 0;
    while start < paths.len() {
        let len = paths[start].links.len();
        let mut end = start + 1;
        while end < paths.len() && paths[end].links.len() == len {
            end += 1;
        }
        let group = &mut paths[start..end];
        let n = group.len();
        if n > 1 {
            group.rotate_left((hash % n as u64) as usize);
        }
        start = end;
    }
}

/// Order paths the way every selector in this workspace expects: shortest
/// first, ties broken by plane then by link ids (deterministic).
pub fn sort_paths(paths: &mut [Path]) {
    paths.sort_by(|a, b| {
        a.links
            .len()
            .cmp(&b.links.len())
            .then(a.plane.cmp(&b.plane))
            .then_with(|| a.links.cmp(&b.links))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_topology::{assemble_homogeneous, FatTree, HostId, LinkProfile, PlaneId};

    fn net() -> Network {
        assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default())
    }

    #[test]
    fn intra_rack_path_hops() {
        let p = Path::intra_rack(PlaneId(0));
        assert_eq!(p.switch_hops(), 1);
        assert!(p.links.is_empty());
    }

    #[test]
    fn host_route_shape_intra_rack() {
        let n = net();
        // Hosts 0 and 1 share rack 0 in a k=4 fat tree.
        let p = Path::intra_rack(PlaneId(0));
        let r = host_route(&n, HostId(0), HostId(1), &p).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(n.link(r[0]).src, n.host_node(HostId(0)));
        assert_eq!(n.link(r[1]).dst, n.host_node(HostId(1)));
    }

    #[test]
    fn reverse_route_mirrors() {
        let n = net();
        let p = Path::intra_rack(PlaneId(1));
        let r = host_route(&n, HostId(0), HostId(1), &p).unwrap();
        let rev = reverse_route(&r);
        assert_eq!(rev.len(), r.len());
        assert_eq!(n.link(rev[0]).src, n.host_node(HostId(1)));
        assert_eq!(n.link(*rev.last().unwrap()).dst, n.host_node(HostId(0)));
    }

    #[test]
    fn sort_orders_by_len_then_plane() {
        let mut paths = vec![
            Path {
                plane: PlaneId(1),
                links: vec![LinkId(0), LinkId(2)],
            },
            Path {
                plane: PlaneId(0),
                links: vec![LinkId(4), LinkId(6)],
            },
            Path {
                plane: PlaneId(1),
                links: vec![LinkId(8)],
            },
        ];
        sort_paths(&mut paths);
        assert_eq!(paths[0].links.len(), 1);
        assert_eq!(paths[1].plane, PlaneId(0));
        assert_eq!(paths[2].plane, PlaneId(1));
    }

    #[test]
    fn validate_rejects_cross_plane() {
        let n = net();
        // Take a plane-1 uplink but declare plane 0.
        let up = n.host_uplink(HostId(0), PlaneId(1)).unwrap();
        let p = Path {
            plane: PlaneId(0),
            links: vec![up],
        };
        assert!(p.validate(&n).is_err());
    }
}
