//! # pnet-routing
//!
//! Path computation for P-Nets: per-plane shortest paths (BFS), equal-cost
//! multipath enumeration, Yen K-shortest-paths, hash-based ECMP selection,
//! and a caching [`Router`] that merges path sets across dataplanes.
//!
//! The forwarding model follows the paper exactly: a path lives entirely in
//! one plane (packets never cross planes mid-flight), hosts choose the
//! plane(s) and path(s) per flow, and multipath transport spreads subflows
//! over the K globally shortest paths across all planes.
//!
//! ## Example
//!
//! ```
//! use pnet_routing::{Router, RouteAlgo};
//! use pnet_topology::{assemble_homogeneous, FatTree, LinkProfile, RackId};
//!
//! let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
//! let router = Router::new(&net, RouteAlgo::Ksp { k: 4 });
//! let paths = router.k_best_across_planes(RackId(0), RackId(7), 8);
//! assert_eq!(paths.len(), 8);
//! assert!(paths.iter().all(|p| p.switch_hops() == 5)); // 4+4 equal-cost across 2 planes
//! ```

pub mod bfs;
pub mod disjoint;
pub mod ecmp;
pub mod exec;
pub mod path;
pub mod plane_graph;
pub mod repair;
pub mod router;
pub mod scratch;
pub mod yen;

pub use disjoint::{are_edge_disjoint, edge_disjoint_paths};
pub use ecmp::{flow_hash, hash_plane, hash_select};
pub use exec::{ordered_fold_f64, ordered_sum_f64, Parallelism};
pub use path::{host_route, reverse_route, rotate_ties, sort_paths, Path};
pub use plane_graph::PlaneGraph;
pub use repair::{DeltaStats, Fnv};
pub use router::{RouteAlgo, Router};
pub use scratch::RouteScratch;
pub use yen::{ksp, ksp_all_destinations, ksp_destinations, ksp_reference};
