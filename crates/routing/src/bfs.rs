//! Breadth-first shortest paths on plane graphs: distances, deterministic
//! single paths, equal-cost path enumeration, and hop-count matrices.
//!
//! Traversals run on the CSR adjacency of [`PlaneGraph`] with their state in
//! an epoch-stamped [`RouteScratch`], so a bulk caller (the router's
//! precompute, the hop-matrix sweeps) pays no per-query allocation beyond
//! the paths it actually returns. [`ecmp_destinations`] batches the
//! equal-cost enumeration of one `(plane, src)` over many destinations on a
//! single BFS distance field.

use crate::path::Path;
use crate::plane_graph::PlaneGraph;
use crate::scratch::{with_thread_scratch, RouteScratch};
use pnet_topology::{LinkId, RackId};

/// BFS over the whole plane from dense index `src`, leaving distances and
/// first-discovery parents in the current search generation of `scratch`.
/// No bans are honored — this is the plain distance field.
fn bfs_fill(pg: &PlaneGraph, src: usize, scratch: &mut RouteScratch) {
    scratch.ensure(pg.n_switches(), pg.link_bound());
    scratch.begin_search();
    let mut queue = std::mem::take(&mut scratch.queue);
    queue.clear();
    scratch.visit(src, 0, (0, LinkId(0)));
    queue.push(src as u32);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head] as usize;
        head += 1;
        let du = scratch.dist(u);
        for &(v, l) in pg.neighbors(u) {
            let v = v as usize;
            if scratch.dist(v) == u32::MAX {
                scratch.visit(v, du + 1, (u as u32, l));
                queue.push(v as u32);
            }
        }
    }
    scratch.queue = queue;
}

/// Distance (in fabric links) from `src` to every switch; `u32::MAX` for
/// unreachable switches.
pub fn bfs_dist(pg: &PlaneGraph, src: usize) -> Vec<u32> {
    with_thread_scratch(|scratch| {
        bfs_fill(pg, src, scratch);
        (0..pg.n_switches()).map(|u| scratch.dist(u)).collect()
    })
}

/// One shortest ToR-to-ToR path, deterministic (prefers lowest link ids).
/// `None` if unreachable. Same-rack queries return the empty intra-rack path.
pub fn shortest_path(pg: &PlaneGraph, src: RackId, dst: RackId) -> Option<Path> {
    if src == dst {
        return Some(Path::intra_rack(pg.plane));
    }
    let s = pg.tor(src);
    let t = pg.tor(dst);
    // BFS storing the first (lowest-link-id) parent; neighbor lists are
    // sorted by link id, so first discovery is the deterministic choice.
    with_thread_scratch(|scratch| {
        bfs_fill(pg, s, scratch);
        let d = scratch.dist(t);
        if d == u32::MAX {
            return None;
        }
        let mut links = vec![LinkId(0); d as usize];
        let mut cur = t;
        for i in (0..d as usize).rev() {
            let (p, l) = scratch.parent(cur);
            links[i] = l;
            cur = p as usize;
        }
        Some(Path {
            plane: pg.plane,
            links,
        })
    })
}

/// All equal-cost shortest paths between two racks, up to `cap` of them,
/// in deterministic (lowest-link-id-first) order.
pub fn all_shortest_paths(pg: &PlaneGraph, src: RackId, dst: RackId, cap: usize) -> Vec<Path> {
    if src == dst {
        return vec![Path::intra_rack(pg.plane)];
    }
    let s = pg.tor(src);
    let t = pg.tor(dst);
    with_thread_scratch(|scratch| {
        bfs_fill(pg, s, scratch);
        enumerate_to(pg, scratch, s, t, cap)
    })
}

/// Equal-cost path sets from `src` toward each rack in `dsts`, sharing one
/// BFS distance field. Entry `i` is identical to
/// `all_shortest_paths(pg, src, dsts[i], cap)`.
pub fn ecmp_destinations(
    pg: &PlaneGraph,
    src: RackId,
    dsts: &[RackId],
    cap: usize,
) -> Vec<Vec<Path>> {
    with_thread_scratch(|scratch| {
        let s = pg.tor(src);
        bfs_fill(pg, s, scratch);
        dsts.iter()
            .map(|&dst| {
                if dst == src {
                    vec![Path::intra_rack(pg.plane)]
                } else {
                    enumerate_to(pg, scratch, s, pg.tor(dst), cap)
                }
            })
            .collect()
    })
}

/// Enumerate up to `cap` shortest paths from the BFS root `s` of the current
/// search generation toward dense index `t`.
fn enumerate_to(
    pg: &PlaneGraph,
    scratch: &RouteScratch,
    s: usize,
    t: usize,
    cap: usize,
) -> Vec<Path> {
    if scratch.dist(t) == u32::MAX || cap == 0 {
        return Vec::new();
    }
    // DFS forward along the shortest-path DAG (dist strictly increasing).
    let mut out = Vec::new();
    let mut stack: Vec<LinkId> = Vec::new();
    dfs_enumerate(pg, scratch, s, t, cap, &mut stack, &mut out);
    out
}

fn dfs_enumerate(
    pg: &PlaneGraph,
    scratch: &RouteScratch,
    u: usize,
    t: usize,
    cap: usize,
    stack: &mut Vec<LinkId>,
    out: &mut Vec<Path>,
) {
    if out.len() >= cap {
        return;
    }
    if u == t {
        out.push(Path {
            plane: pg.plane,
            links: stack.clone(),
        });
        return;
    }
    let du = scratch.dist(u);
    let dt = scratch.dist(t);
    for &(v, l) in pg.neighbors(u) {
        let v = v as usize;
        let dv = scratch.dist(v);
        if dv == du + 1 && dv <= dt {
            stack.push(l);
            dfs_enumerate(pg, scratch, v, t, cap, stack, out);
            stack.pop();
            if out.len() >= cap {
                return;
            }
        }
    }
}

/// Rack-to-rack fabric-link distances for one plane: `matrix[a][b]` is the
/// number of ToR-to-ToR links on the shortest path (0 on the diagonal,
/// `u32::MAX` if disconnected).
pub fn rack_hop_matrix(pg: &PlaneGraph) -> Vec<Vec<u32>> {
    with_thread_scratch(|scratch| {
        (0..pg.n_racks())
            .map(|r| {
                bfs_fill(pg, pg.tor(RackId(r as u32)), scratch);
                (0..pg.n_racks())
                    .map(|q| scratch.dist(pg.tor(RackId(q as u32))))
                    .collect()
            })
            .collect()
    })
}

/// Element-wise minimum of per-plane hop matrices: the hop count an end host
/// sees when it may pick the best plane per destination (the heterogeneous
/// P-Net advantage of sections 5.2.1 and 5.4).
pub fn min_hops_across_planes(matrices: &[Vec<Vec<u32>>]) -> Vec<Vec<u32>> {
    assert!(!matrices.is_empty());
    let n = matrices[0].len();
    let mut min = matrices[0].clone();
    for m in &matrices[1..] {
        assert_eq!(m.len(), n);
        for (row_min, row) in min.iter_mut().zip(m) {
            for (cell_min, &cell) in row_min.iter_mut().zip(row) {
                *cell_min = (*cell_min).min(cell);
            }
        }
    }
    min
}

/// Mean of the finite off-diagonal entries of a hop matrix, in *switch* hops
/// (fabric links + 1). Pairs that became disconnected are excluded, matching
/// the paper's "average hop count across all src/dst pairs" metric.
pub fn mean_switch_hops(matrix: &[Vec<u32>]) -> f64 {
    let mut sum = 0u64;
    let mut count = 0u64;
    for (a, row) in matrix.iter().enumerate() {
        for (b, &d) in row.iter().enumerate() {
            if a != b && d != u32::MAX {
                sum += d as u64 + 1;
                count += 1;
            }
        }
    }
    if count == 0 {
        return f64::NAN;
    }
    sum as f64 / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnet_topology::{assemble_homogeneous, FatTree, Jellyfish, LinkProfile, Network, PlaneId};

    fn ft_net() -> Network {
        assemble_homogeneous(&FatTree::three_tier(4), 1, &LinkProfile::paper_default())
    }

    #[test]
    fn same_pod_distance_is_two_links() {
        let net = ft_net();
        let pg = PlaneGraph::build(&net, PlaneId(0));
        // Racks 0 and 1 share pod 0: ToR-agg-ToR = 2 links = 3 switch hops.
        let p = shortest_path(&pg, RackId(0), RackId(1)).unwrap();
        assert_eq!(p.links.len(), 2);
        assert_eq!(p.switch_hops(), 3);
        p.validate(&net).unwrap();
    }

    #[test]
    fn cross_pod_distance_is_four_links() {
        let net = ft_net();
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let p = shortest_path(&pg, RackId(0), RackId(7)).unwrap();
        assert_eq!(p.links.len(), 4); // ToR-agg-core-agg-ToR
        assert_eq!(p.switch_hops(), 5);
        p.validate(&net).unwrap();
    }

    #[test]
    fn ecmp_path_count_in_fat_tree() {
        let net = ft_net();
        let pg = PlaneGraph::build(&net, PlaneId(0));
        // k=4 fat tree: (k/2)^2 = 4 shortest cross-pod paths.
        let paths = all_shortest_paths(&pg, RackId(0), RackId(7), 64);
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert_eq!(p.links.len(), 4);
            p.validate(&net).unwrap();
        }
        // Same-pod: k/2 = 2 paths.
        let paths = all_shortest_paths(&pg, RackId(0), RackId(1), 64);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn enumeration_respects_cap() {
        let net = ft_net();
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let paths = all_shortest_paths(&pg, RackId(0), RackId(7), 3);
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn paths_are_distinct() {
        let net = ft_net();
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let paths = all_shortest_paths(&pg, RackId(0), RackId(7), 64);
        let set: std::collections::HashSet<_> = paths.iter().map(|p| p.links.clone()).collect();
        assert_eq!(set.len(), paths.len());
    }

    #[test]
    fn batched_ecmp_matches_per_pair() {
        let net = ft_net();
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let dsts: Vec<RackId> = (0..8).map(RackId).collect();
        let batched = ecmp_destinations(&pg, RackId(0), &dsts, 64);
        for (i, dst) in dsts.iter().enumerate() {
            assert_eq!(
                batched[i],
                all_shortest_paths(&pg, RackId(0), *dst, 64),
                "batched ECMP diverged for destination {dst}"
            );
        }
    }

    #[test]
    fn hop_matrix_symmetry_and_diagonal() {
        let net = assemble_homogeneous(
            &Jellyfish::new(12, 3, 1, 9),
            1,
            &LinkProfile::paper_default(),
        );
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let m = rack_hop_matrix(&pg);
        #[allow(clippy::needless_range_loop)]
        for a in 0..12 {
            assert_eq!(m[a][a], 0);
            for b in 0..12 {
                assert_eq!(m[a][b], m[b][a]);
            }
        }
    }

    #[test]
    fn min_across_planes_never_worse() {
        let net = assemble_homogeneous(
            &Jellyfish::new(12, 3, 1, 9),
            1,
            &LinkProfile::paper_default(),
        );
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let m = rack_hop_matrix(&pg);
        let min = min_hops_across_planes(&[m.clone(), m.clone()]);
        assert_eq!(min, m);
    }

    #[test]
    fn mean_switch_hops_small_case() {
        // Two racks at distance 1 link: mean switch hops = 2.
        let matrix = vec![vec![0, 1], vec![1, 0]];
        assert!((mean_switch_hops(&matrix) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_pairs_excluded_from_mean() {
        let matrix = vec![vec![0, u32::MAX], vec![u32::MAX, 0]];
        assert!(mean_switch_hops(&matrix).is_nan());
    }

    #[test]
    fn deterministic_shortest_path() {
        let net = ft_net();
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let a = shortest_path(&pg, RackId(0), RackId(7)).unwrap();
        let b = shortest_path(&pg, RackId(0), RackId(7)).unwrap();
        assert_eq!(a, b);
    }
}
