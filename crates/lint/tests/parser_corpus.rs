//! Parser corpus + snapshot tests.
//!
//! The corpus test is the parser's ground-truth contract: every `.rs` file
//! in this workspace must parse with zero errors, otherwise the semantic
//! rules (P1/M1/U1/F1) silently lose coverage of that file. (`pnet-tidy
//! check` enforces the same at lint time via rule E1 — this test catches a
//! parser regression in `cargo test` even if the fixture suite misses it.)
//!
//! The snapshot tests pin the AST shape for syntax that has historically
//! broken hand-written Rust parsers: `>>` closing nested generics, nested
//! closures, raw strings, string literals whose contents look like
//! operators, and cfg-gated items/fields.

use pnet_lint::ast::{dump, parse};
use pnet_lint::lexer::lex;
use std::fs;
use std::path::{Path, PathBuf};

/// Same exclusions as the scanner: build outputs, vendored code, and the
/// intentionally-broken lint fixtures.
const EXCLUDED_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

fn workspace_root() -> PathBuf {
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    pnet_lint::find_workspace_root(&here).expect("workspace root above crates/lint")
}

fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<PathBuf> = fs::read_dir(root)
        .expect("readable dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if !EXCLUDED_DIRS.contains(&name) {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_workspace_file_parses_without_errors() {
    let root = workspace_root();
    let mut paths = Vec::new();
    collect_rs_files(&root, &mut paths);
    assert!(
        paths.len() > 50,
        "suspiciously small corpus ({} files) — walker broken?",
        paths.len()
    );
    let mut failures = Vec::new();
    for path in &paths {
        let src = fs::read_to_string(path).expect("readable source");
        let ast = parse(&lex(&src).tokens);
        for e in &ast.errors {
            failures.push(format!(
                "{}:{}:{}: {}",
                path.strip_prefix(&root).unwrap_or(path).display(),
                e.line,
                e.col,
                e.message
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} parse error(s) across the workspace:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

fn snap(src: &str) -> String {
    let ast = parse(&lex(src).tokens);
    assert!(
        ast.errors.is_empty(),
        "parse errors for {src:?}: {:?}",
        ast.errors
    );
    dump(&ast)
}

#[test]
fn snapshot_nested_generics_with_double_close() {
    let d = snap("fn f(m: BTreeMap<u32, Vec<Vec<u64>>>) -> Vec<Vec<u32>> { m.values().flatten().map(|v| v.len() as u32).collect::<Vec<Vec<u32>>>() }");
    assert_eq!(
        d,
        "(fn f (params m:BTreeMap::u32::Vec::Vec::u64) (block \
         (. (. (. (. m values) flatten) map (closure [v] (as (. v len) u32))) collect)))"
    );
}

#[test]
fn snapshot_nested_closures() {
    let d = snap("fn f() { let add = |a: u32| move |b: u32| a + b; let g = add(1); g(2); }");
    // Two closure nodes, the inner one inside the outer one's body.
    let outer = d.find("(closure").expect("outer closure");
    assert!(
        d[outer + 1..].contains("(closure"),
        "inner closure missing: {d}"
    );
    assert!(d.contains("(+ a b)"), "{d}");
}

#[test]
fn snapshot_raw_strings_and_operator_contents() {
    // Raw strings and string literals whose contents are operator tokens
    // must land as literals, never as operators.
    let d = snap(
        "fn f(s: &str) -> &str { let pat = r#\"a \"quoted\" \\ thing\"#; match s { \"*\" => pat, \"&&\" => \"..\", _ => \"\" } }",
    );
    assert!(d.contains("(match s"), "{d}");
    // Three arms, all literal patterns/bodies — no unary/deref nodes.
    assert!(!d.contains("(* "), "string contents parsed as deref: {d}");
}

#[test]
fn snapshot_cfg_gated_items_and_fields() {
    let d = snap(
        "#[cfg(feature = \"strict-invariants\")]\npub fn gated() {}\n\npub fn build() -> S {\n    S {\n        a: 1,\n        #[cfg(feature = \"strict-invariants\")]\n        ledger: 0,\n        b: 2,\n    }\n}\n",
    );
    assert!(d.contains("(fn gated pub"), "{d}");
    assert!(d.contains("(struct-lit S a ledger b)"), "{d}");
}

#[test]
fn snapshot_match_over_enum_with_wildcard() {
    let d = snap("fn f(k: Kind) -> u32 { match k { Kind::A => 1, Kind::B { x } => x, _ => 0 } }");
    assert_eq!(
        d,
        "(fn f (params k:Kind) (block (match k (arm Kind::A lit) (arm (Kind::B{} x) x) (arm _ lit))))"
    );
}

#[test]
fn snapshot_if_let_chains_and_ranges() {
    let d =
        snap("fn f(v: &[u32]) { if let Some(x) = v.first() { for i in 0..*x { let _ = i; } } }");
    assert_eq!(
        d,
        "(fn f (params v:u32) (block (if (let-cond (Some x) (. v first)) \
         (block (for i (range lit (* x)) (block (let _ i)))))))"
    );
}

#[test]
fn snapshot_raw_pointer_casts_in_call_args() {
    // `expr as *const T` / `as *mut T` inside call args: the pointer sigil
    // must be consumed by the cast-type scan, not parsed as multiplication
    // (which previously broke the enclosing call's argument list).
    let d = snap("fn f(p: &u8) { g(p as *const i8, 0); let q = p as *const u8 as *mut u8; h(q); }");
    assert!(d.contains("(call g"), "{d}");
    assert!(d.contains("(call h"), "{d}");
    assert!(!d.contains("error"), "{d}");
}
