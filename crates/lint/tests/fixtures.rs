//! End-to-end scan of the rule-violating fixture workspace under
//! `fixtures/ws/`: one deliberate violation per rule, a waived and an
//! allowlisted variant, a dead waiver, and a stale allowlist entry. The
//! fixture tree is excluded from real workspace scans (`fixtures` is in the
//! linter's excluded-dirs list), so these violations never gate CI — they
//! exist to pin the scanner's exact output.

use pnet_lint::rules::{Finding, Suppression};
use pnet_lint::scan;
use std::path::Path;

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn scan_fixtures() -> pnet_lint::ScanReport {
    let root = fixture_root();
    scan(&root, &root.join("lint-allowlist.toml")).expect("fixture scan must succeed")
}

/// 1-based column of `needle` on 1-based `line` of the fixture file.
fn col_of(rel: &str, line: u32, needle: &str) -> u32 {
    let src = std::fs::read_to_string(fixture_root().join(rel)).expect("fixture file readable");
    let l = src.lines().nth(line as usize - 1).expect("line exists");
    l.find(needle).expect("needle on line") as u32 + 1
}

fn brief(f: &Finding) -> (String, &'static str, u32, u32, Option<Suppression>) {
    (f.file.clone(), f.rule, f.line, f.col, f.suppressed)
}

#[test]
fn fixture_scan_reports_exact_rule_ids_and_spans() {
    let report = scan_fixtures();
    assert_eq!(report.files_scanned, 16, "sixteen fixture .rs files");
    let got: Vec<_> = report.findings.iter().map(brief).collect();
    let expected = vec![
        // core: wildcard arm over a workspace enum, active then waived.
        (
            "crates/core/src/lib.rs".to_string(),
            "M1",
            12,
            col_of("crates/core/src/lib.rs", 12, "_"),
            None,
        ),
        (
            "crates/core/src/lib.rs".to_string(),
            "M1",
            20,
            col_of("crates/core/src/lib.rs", 20, "_"),
            Some(Suppression::Waiver),
        ),
        // flowsim/f1: partial_cmp-based float ordering, active then waived.
        (
            "crates/flowsim/src/f1.rs".to_string(),
            "F1",
            5,
            col_of("crates/flowsim/src/f1.rs", 5, "partial_cmp"),
            None,
        ),
        (
            "crates/flowsim/src/f1.rs".to_string(),
            "F1",
            12,
            col_of("crates/flowsim/src/f1.rs", 12, "partial_cmp"),
            Some(Suppression::Waiver),
        ),
        // flowsim: active float ==, waived sentinel ==, dead waiver.
        (
            "crates/flowsim/src/lib.rs".to_string(),
            "D3",
            4,
            col_of("crates/flowsim/src/lib.rs", 4, "=="),
            None,
        ),
        (
            "crates/flowsim/src/lib.rs".to_string(),
            "D3",
            9,
            col_of("crates/flowsim/src/lib.rs", 9, "=="),
            Some(Suppression::Waiver),
        ),
        ("crates/flowsim/src/lib.rs".to_string(), "W1", 12, 1, None),
        // flowsim/o1: float fold through `.rev()` over a map_indexed
        // binding — active, waived, allowlisted. (`ordered` is clean.)
        (
            "crates/flowsim/src/o1.rs".to_string(),
            "O1",
            15,
            col_of("crates/flowsim/src/o1.rs", 15, "rev"),
            None,
        ),
        (
            "crates/flowsim/src/o1.rs".to_string(),
            "O1",
            21,
            col_of("crates/flowsim/src/o1.rs", 21, "rev"),
            Some(Suppression::Waiver),
        ),
        (
            "crates/flowsim/src/o1.rs".to_string(),
            "O1",
            26,
            col_of("crates/flowsim/src/o1.rs", 26, "rev"),
            Some(Suppression::Allowlist),
        ),
        // htsim: active unwrap, active narrowing cast, allowlisted panic.
        // (The `expect("invariant: ...")` on line 8 is sanctioned: no finding.)
        (
            "crates/htsim/src/lib.rs".to_string(),
            "C1",
            4,
            col_of("crates/htsim/src/lib.rs", 4, "unwrap"),
            None,
        ),
        (
            "crates/htsim/src/lib.rs".to_string(),
            "C2",
            12,
            col_of("crates/htsim/src/lib.rs", 12, "as u32"),
            None,
        ),
        (
            "crates/htsim/src/lib.rs".to_string(),
            "C1",
            16,
            col_of("crates/htsim/src/lib.rs", 16, "panic"),
            Some(Suppression::Allowlist),
        ),
        // htsim/telemetry: observation-impure exporters (T1 anchors at the
        // fn name; the waiver sits at the effect origin inside the body).
        (
            "crates/htsim/src/telemetry.rs".to_string(),
            "T1",
            4,
            col_of("crates/htsim/src/telemetry.rs", 4, "export_now"),
            None,
        ),
        (
            "crates/htsim/src/telemetry.rs".to_string(),
            "T1",
            9,
            col_of("crates/htsim/src/telemetry.rs", 9, "export_waived"),
            Some(Suppression::Waiver),
        ),
        (
            "crates/htsim/src/telemetry.rs".to_string(),
            "T1",
            15,
            col_of("crates/htsim/src/telemetry.rs", 15, "export_allowlisted"),
            Some(Suppression::Allowlist),
        ),
        // htsim/units: raw SimTime ctor, inline /1e6 conversion, waived twin.
        (
            "crates/htsim/src/units.rs".to_string(),
            "U1",
            4,
            col_of("crates/htsim/src/units.rs", 4, "SimTime"),
            None,
        ),
        (
            "crates/htsim/src/units.rs".to_string(),
            "U1",
            8,
            col_of("crates/htsim/src/units.rs", 8, "1e6"),
            None,
        ),
        (
            "crates/htsim/src/units.rs".to_string(),
            "U1",
            13,
            col_of("crates/htsim/src/units.rs", 13, "1e6"),
            Some(Suppression::Waiver),
        ),
        // htsim/y4: undocumented `unsafe` blocks — active and waived. (The
        // `// SAFETY:`-documented block is clean.)
        (
            "crates/htsim/src/y4.rs".to_string(),
            "Y4",
            5,
            col_of("crates/htsim/src/y4.rs", 5, "unsafe"),
            None,
        ),
        (
            "crates/htsim/src/y4.rs".to_string(),
            "Y4",
            15,
            col_of("crates/htsim/src/y4.rs", 15, "unsafe"),
            Some(Suppression::Waiver),
        ),
        // routing: active HashMap, waived HashSet, active wall-clock read.
        (
            "crates/routing/src/lib.rs".to_string(),
            "D1",
            3,
            col_of("crates/routing/src/lib.rs", 3, "HashMap"),
            None,
        ),
        (
            "crates/routing/src/lib.rs".to_string(),
            "D1",
            6,
            col_of("crates/routing/src/lib.rs", 6, "HashSet"),
            Some(Suppression::Waiver),
        ),
        (
            "crates/routing/src/lib.rs".to_string(),
            "D2",
            8,
            col_of("crates/routing/src/lib.rs", 8, "Instant"),
            None,
        ),
        // routing/p1: a private panicking helper (C1) taints `pub fn head`
        // (P1, with origin); one variant waived at the public surface, one
        // at the panic site itself (origin waiver also silences C1 there).
        (
            "crates/routing/src/p1.rs".to_string(),
            "C1",
            5,
            col_of("crates/routing/src/p1.rs", 5, "unwrap"),
            None,
        ),
        (
            "crates/routing/src/p1.rs".to_string(),
            "P1",
            8,
            col_of("crates/routing/src/p1.rs", 8, "head"),
            None,
        ),
        (
            "crates/routing/src/p1.rs".to_string(),
            "P1",
            13,
            col_of("crates/routing/src/p1.rs", 13, "head_waived"),
            Some(Suppression::Waiver),
        ),
        (
            "crates/routing/src/p1.rs".to_string(),
            "C1",
            19,
            col_of("crates/routing/src/p1.rs", 19, "unwrap"),
            Some(Suppression::Waiver),
        ),
        (
            "crates/routing/src/p1.rs".to_string(),
            "P1",
            22,
            col_of("crates/routing/src/p1.rs", 22, "quiet"),
            Some(Suppression::Waiver),
        ),
        // routing/q1: duplicate-prone sort keys — active, waived,
        // allowlisted. (Whole-element and tie-broken sorts are clean.)
        (
            "crates/routing/src/q1.rs".to_string(),
            "Q1",
            5,
            col_of("crates/routing/src/q1.rs", 5, "sort_unstable_by_key"),
            None,
        ),
        (
            "crates/routing/src/q1.rs".to_string(),
            "Q1",
            11,
            col_of("crates/routing/src/q1.rs", 11, "sort_unstable_by_key"),
            Some(Suppression::Waiver),
        ),
        (
            "crates/routing/src/q1.rs".to_string(),
            "Q1",
            16,
            col_of("crates/routing/src/q1.rs", 16, "sort_unstable_by_key"),
            Some(Suppression::Allowlist),
        ),
        // routing/s1: captured-state mutation inside a `map_indexed`
        // closure — active, waived, allowlisted. (`clean` is clean.)
        (
            "crates/routing/src/s1.rs".to_string(),
            "S1",
            16,
            col_of("crates/routing/src/s1.rs", 16, "+="),
            None,
        ),
        (
            "crates/routing/src/s1.rs".to_string(),
            "S1",
            25,
            col_of("crates/routing/src/s1.rs", 25, "+="),
            Some(Suppression::Waiver),
        ),
        (
            "crates/routing/src/s1.rs".to_string(),
            "S1",
            33,
            col_of("crates/routing/src/s1.rs", 33, "+="),
            Some(Suppression::Allowlist),
        ),
        // routing/y1: Relaxed accesses on publication atomics (anchored at
        // the load/store method name) — active, waived, allowlisted. (The
        // all-Relaxed `Stats` counter is clean.)
        (
            "crates/routing/src/y1.rs".to_string(),
            "Y1",
            16,
            col_of("crates/routing/src/y1.rs", 16, "load"),
            None,
        ),
        (
            "crates/routing/src/y1.rs".to_string(),
            "Y1",
            30,
            col_of("crates/routing/src/y1.rs", 30, "load"),
            Some(Suppression::Waiver),
        ),
        (
            "crates/routing/src/y1.rs".to_string(),
            "Y1",
            46,
            col_of("crates/routing/src/y1.rs", 46, "store"),
            Some(Suppression::Allowlist),
        ),
        // routing/y2: fetch_add ticket used as an index in a map_indexed
        // closure (anchored at the index expression) — active, then waived
        // at the RMW origin. (`clean`'s index-derived probe is clean.)
        (
            "crates/routing/src/y2.rs".to_string(),
            "Y2",
            17,
            col_of("crates/routing/src/y2.rs", 17, "(seed"),
            None,
        ),
        (
            "crates/routing/src/y2.rs".to_string(),
            "Y2",
            23,
            col_of("crates/routing/src/y2.rs", 23, "(seed"),
            Some(Suppression::Waiver),
        ),
        // routing/y3: spawned closure calling a workspace fn whose inferred
        // effect mutates the capture — active, then waived at the effect
        // origin inside the callee. (`clean`'s read-only observer is clean.)
        (
            "crates/routing/src/y3.rs".to_string(),
            "Y3",
            34,
            col_of("crates/routing/src/y3.rs", 34, "record"),
            None,
        ),
        (
            "crates/routing/src/y3.rs".to_string(),
            "Y3",
            38,
            col_of("crates/routing/src/y3.rs", 38, "record_waived"),
            Some(Suppression::Waiver),
        ),
        // The stale allowlist entry is itself a finding, anchored at its
        // `[[allow]]` header line.
        ("lint-allowlist.toml".to_string(), "A1", 31, 1, None),
    ];
    assert_eq!(got, expected);
}

#[test]
fn fixture_scan_fails_the_check_gate() {
    let report = scan_fixtures();
    let active: Vec<_> = report.active().map(|f| f.rule).collect();
    // Every enforceable rule trips at least once, and the two meta-rules
    // (dead waiver, stale allowlist entry) are active findings too.
    for rule in [
        "D1", "D2", "D3", "C1", "C2", "W1", "A1", "P1", "M1", "U1", "F1", "T1", "S1", "O1", "Q1",
        "Y1", "Y2", "Y3", "Y4",
    ] {
        assert!(
            active.contains(&rule),
            "rule {rule} missing from {active:?}"
        );
    }
    assert_eq!(active.len(), 21);
}

#[test]
fn fixture_p1_finding_carries_its_panic_origin() {
    let report = scan_fixtures();
    let p1 = report
        .findings
        .iter()
        .find(|f| f.rule == "P1" && f.suppressed.is_none())
        .expect("one active P1 finding");
    assert_eq!(
        p1.origin,
        Some(("crates/routing/src/p1.rs".to_string(), 5)),
        "P1 must point at the transitive panic site"
    );
}

#[test]
fn fixture_suppressions_carry_their_mechanism() {
    let report = scan_fixtures();
    let suppressed: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.suppressed.is_some())
        .map(|f| (f.rule, f.suppressed))
        .collect();
    assert_eq!(
        suppressed,
        vec![
            ("M1", Some(Suppression::Waiver)),
            ("F1", Some(Suppression::Waiver)),
            ("D3", Some(Suppression::Waiver)),
            ("O1", Some(Suppression::Waiver)),
            ("O1", Some(Suppression::Allowlist)),
            ("C1", Some(Suppression::Allowlist)),
            ("T1", Some(Suppression::Waiver)),
            ("T1", Some(Suppression::Allowlist)),
            ("U1", Some(Suppression::Waiver)),
            ("Y4", Some(Suppression::Waiver)),
            ("D1", Some(Suppression::Waiver)),
            ("P1", Some(Suppression::Waiver)),
            ("C1", Some(Suppression::Waiver)),
            ("P1", Some(Suppression::Waiver)),
            ("Q1", Some(Suppression::Waiver)),
            ("Q1", Some(Suppression::Allowlist)),
            ("S1", Some(Suppression::Waiver)),
            ("S1", Some(Suppression::Allowlist)),
            ("Y1", Some(Suppression::Waiver)),
            ("Y1", Some(Suppression::Allowlist)),
            ("Y2", Some(Suppression::Waiver)),
            ("Y3", Some(Suppression::Waiver)),
        ]
    );
}

/// Y1 pairs each Relaxed access with the opposite-direction non-Relaxed
/// site that makes the atomic a publication atomic; Y2 carries the RMW
/// site; Y3 carries the *callee's* interior-mutation witness — one waiver
/// at that origin line is what silences the call-site finding.
#[test]
fn fixture_concurrency_findings_carry_their_origins() {
    let report = scan_fixtures();
    let origins: Vec<_> = report
        .findings
        .iter()
        .filter(|f| matches!(f.rule, "Y1" | "Y2" | "Y3"))
        .map(|f| (f.rule, f.suppressed, f.origin.clone()))
        .collect();
    let y1 = "crates/routing/src/y1.rs".to_string();
    let y2 = "crates/routing/src/y2.rs".to_string();
    let y3 = "crates/routing/src/y3.rs".to_string();
    assert_eq!(
        origins,
        vec![
            ("Y1", None, Some((y1.clone(), 19))),
            ("Y1", Some(Suppression::Waiver), Some((y1.clone(), 33))),
            ("Y1", Some(Suppression::Allowlist), Some((y1, 43))),
            ("Y2", None, Some((y2.clone(), 16))),
            ("Y2", Some(Suppression::Waiver), Some((y2, 22))),
            ("Y3", None, Some((y3.clone(), 22))),
            ("Y3", Some(Suppression::Waiver), Some((y3, 26))),
        ]
    );
}

/// T1 anchors at the telemetry fn's name but carries the concrete effect
/// site as its origin — that is what lets a single waiver at the effect
/// line (`export_waived`'s `println!`) silence the fn-level finding.
#[test]
fn fixture_t1_findings_carry_their_effect_origins() {
    let report = scan_fixtures();
    let t1: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "T1")
        .map(|f| (f.suppressed, f.origin.clone()))
        .collect();
    let tel = "crates/htsim/src/telemetry.rs".to_string();
    assert_eq!(
        t1,
        vec![
            (None, Some((tel.clone(), 5))),
            (Some(Suppression::Waiver), Some((tel.clone(), 11))),
            (Some(Suppression::Allowlist), Some((tel, 16))),
        ]
    );
}
