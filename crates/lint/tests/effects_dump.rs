//! Snapshot of the effect-inference dump (`pnet-tidy effects`) over the
//! fixture workspace. One S-expression per fn, sorted by (file, definition
//! order) — this pins the whole surface at once: the lattice points
//! (mut-recv / mut-args / interior / io / higher-order), transitive
//! touched-type propagation across exact path calls (`feed` inherits
//! `Queue` from `Queue::push_item`), and the precision cases that must NOT
//! widen (a call to a body-local closure is first-order; read-side
//! `borrow`/`len` stay pure).

use pnet_lint::effects_dump_root;
use std::path::Path;

#[test]
fn fixture_effect_dump_snapshot() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws");
    let dump = effects_dump_root(&root).expect("fixture dump must succeed");
    let expected = "\
(fn crates/core/src/fx.rs:10 Queue::push_item (local mut-recv) (trans mut-recv) (touched Queue))
(fn crates/core/src/fx.rs:14 Queue::len pure)
(fn crates/core/src/fx.rs:19 drain_into (local mut-args) (trans mut-args) (touched Queue Vec))
(fn crates/core/src/fx.rs:25 tally (local interior) (trans interior) (touched))
(fn crates/core/src/fx.rs:30 apply_twice (local higher-order) (trans higher-order) (touched))
(fn crates/core/src/fx.rs:34 feed (local mut-args) (trans mut-args) (touched Queue))
(fn crates/core/src/fx.rs:38 local_closure_stays_first_order pure)
(fn crates/core/src/lib.rs:9 code pure)
(fn crates/core/src/lib.rs:16 code_waived pure)
(fn crates/flowsim/src/f1.rs:3 best pure)
(fn crates/flowsim/src/f1.rs:9 best_waived pure)
(fn crates/flowsim/src/lib.rs:3 converged pure)
(fn crates/flowsim/src/lib.rs:7 is_sentinel pure)
(fn crates/flowsim/src/lib.rs:13 noop pure)
(fn crates/flowsim/src/o1.rs:8 Par::map_indexed pure)
(fn crates/flowsim/src/o1.rs:13 skewed pure)
(fn crates/flowsim/src/o1.rs:18 skewed_waived pure)
(fn crates/flowsim/src/o1.rs:24 skewed_allowlisted pure)
(fn crates/flowsim/src/o1.rs:29 ordered pure)
(fn crates/htsim/src/lib.rs:3 first pure)
(fn crates/htsim/src/lib.rs:7 checked_first pure)
(fn crates/htsim/src/lib.rs:11 narrow pure)
(fn crates/htsim/src/lib.rs:15 boom pure)
(fn crates/htsim/src/telemetry.rs:4 export_now (local io) (trans io) (touched))
(fn crates/htsim/src/telemetry.rs:9 export_waived (local io) (trans io) (touched))
(fn crates/htsim/src/telemetry.rs:15 export_allowlisted (local io) (trans io) (touched))
(fn crates/htsim/src/telemetry.rs:20 pure_formatter pure)
(fn crates/htsim/src/units.rs:3 raw_ctor pure)
(fn crates/htsim/src/units.rs:7 fct_to_us pure)
(fn crates/htsim/src/units.rs:11 fct_to_us_waived pure)
(fn crates/htsim/src/y4.rs:4 naked pure)
(fn crates/htsim/src/y4.rs:8 documented pure)
(fn crates/htsim/src/y4.rs:13 waived pure)
(fn crates/routing/src/lib.rs:8 elapsed_ns pure)
(fn crates/routing/src/p1.rs:4 helper_unchecked pure)
(fn crates/routing/src/p1.rs:8 head pure)
(fn crates/routing/src/p1.rs:13 head_waived pure)
(fn crates/routing/src/p1.rs:17 helper_waived pure)
(fn crates/routing/src/p1.rs:22 quiet pure)
(fn crates/routing/src/q1.rs:4 ranked pure)
(fn crates/routing/src/q1.rs:9 ranked_waived pure)
(fn crates/routing/src/q1.rs:15 ranked_allowlisted pure)
(fn crates/routing/src/q1.rs:20 whole_element pure)
(fn crates/routing/src/q1.rs:25 tie_broken pure)
(fn crates/routing/src/s1.rs:8 Par::map_indexed pure)
(fn crates/routing/src/s1.rs:13 racy pure)
(fn crates/routing/src/s1.rs:21 racy_waived pure)
(fn crates/routing/src/s1.rs:30 racy_allowlisted pure)
(fn crates/routing/src/s1.rs:38 clean pure)
(fn crates/routing/src/y1.rs:12 Seq::snapshot pure)
(fn crates/routing/src/y1.rs:15 Seq::frontier pure)
(fn crates/routing/src/y1.rs:18 Seq::publish (local interior) (trans interior) (touched))
(fn crates/routing/src/y1.rs:28 SeqWaived::frontier_waived pure)
(fn crates/routing/src/y1.rs:32 SeqWaived::publish_waived (local interior) (trans interior) (touched))
(fn crates/routing/src/y1.rs:42 SeqAllowed::snapshot_allowed pure)
(fn crates/routing/src/y1.rs:45 SeqAllowed::publish_allowed (local interior) (trans interior) (touched))
(fn crates/routing/src/y1.rs:55 Stats::bump (local interior) (trans interior) (touched))
(fn crates/routing/src/y1.rs:58 Stats::total pure)
(fn crates/routing/src/y2.rs:10 Par::map_indexed pure)
(fn crates/routing/src/y2.rs:15 racy (local interior) (trans interior) (touched))
(fn crates/routing/src/y2.rs:20 racy_waived (local interior) (trans interior) (touched))
(fn crates/routing/src/y2.rs:26 clean pure)
(fn crates/routing/src/y3.rs:11 Scope::spawn (local higher-order) (trans higher-order) (touched))
(fn crates/routing/src/y3.rs:21 Shared::record (local interior) (trans interior) (touched))
(fn crates/routing/src/y3.rs:24 Shared::record_waived (local interior) (trans interior) (touched))
(fn crates/routing/src/y3.rs:28 Shared::peek pure)
(fn crates/routing/src/y3.rs:33 racy (local) (trans interior higher-order) (touched))
(fn crates/routing/src/y3.rs:37 racy_waived (local) (trans interior higher-order) (touched))
(fn crates/routing/src/y3.rs:41 clean (local) (trans higher-order) (touched))
";
    assert_eq!(dump, expected);
}
