//! Workspace-wide semantic rules over the [`crate::ast`] trees: a symbol
//! table (fns, enums, `use` aliases), an intra-workspace call graph with
//! name-resolution-lite, and the four semantic rules:
//!
//! * **P1** — panic-path propagation: a `pub` fn in a library crate that
//!   *transitively* reaches `panic!` / `.unwrap()` / a non-invariant
//!   `.expect(..)`. (The direct site itself is C1's finding; P1 reports the
//!   public surface that inherits it, with the witness chain and the origin
//!   so a single waiver at the panic site quiets the whole call tree.)
//! * **M1** — match exhaustiveness: wildcard `_ =>` arms in matches that
//!   name workspace-defined enum variants, inside the simulator/solver
//!   crates. A new `EventKind` variant must fail compilation loudly, not
//!   vanish into a wildcard.
//! * **U1** — unit safety: raw `SimTime(..)` tuple construction outside the
//!   newtype's home module, and `*`/`/` arithmetic against bare conversion
//!   constants (1e6, 1e9, 1e12, ...) in statements that handle unit-bearing
//!   quantities — use the checked `from_*`/`as_*`/`gbps()` helpers instead.
//! * **F1** — float-ordering taint: `partial_cmp().unwrap()/expect()` and
//!   `partial_cmp` inside `sort_by`/`min_by`/`max_by`-style comparator
//!   closures. One NaN panics or reorders a sweep; `total_cmp` is total.
//!
//! Name resolution is deliberately "lite": free fns resolve by name within
//! their crate, `Type::method` paths and method calls resolve to every
//! workspace impl method with that name, and cross-crate calls resolve
//! through `pnet_*` path prefixes and `use` aliases. That over-approximates
//! the call graph — safe for P1, whose job is to keep the set of reachable
//! panic sites at zero.

use crate::ast::{
    self, Arm, Ast, Block, Expr, ExprKind, Item, ItemKind, PatKind, Stmt, UseBinding,
};
use crate::lexer::{Token, TokenKind};
use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// One file's worth of context for the workspace pass.
pub struct SemFile<'a> {
    pub rel_path: &'a str,
    pub tokens: &'a [Token],
    pub in_test: &'a [bool],
    pub lines: &'a [&'a str],
    pub ast: &'a Ast,
}

impl SemFile<'_> {
    pub(crate) fn finding(&self, rule: &'static str, tok: usize, message: String) -> Finding {
        let t = &self.tokens[tok.min(self.tokens.len().saturating_sub(1))];
        Finding {
            rule,
            file: self.rel_path.to_string(),
            line: t.line,
            col: t.col,
            message,
            snippet: self
                .lines
                .get(t.line as usize - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
            suppressed: None,
            origin: None,
        }
    }
}

/// Crate key of a workspace-relative path: `crates/<x>/...` → `x`, anything
/// else (root `src/`, `tests/`, `examples/`) → the root package.
pub(crate) fn crate_key(p: &str) -> &str {
    p.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("pnet")
}

/// Is this file part of a crate's library source (as opposed to an example,
/// integration test, bench, or bin target)? Only library fns join the call
/// graph: the others are leaves no library code can call back into.
pub(crate) fn lib_file(p: &str) -> bool {
    !p.contains("/examples/")
        && !p.starts_with("examples/")
        && !p.contains("/tests/")
        && !p.starts_with("tests/")
        && !p.contains("/benches/")
        && !p.contains("/src/bin/")
}

/// May this file's fns appear as *callees* in the call graph? The linter and
/// the bench harness sit at the top of the dependency DAG — no sim/solver
/// crate links against them — so their methods must never satisfy by-name
/// resolution for sim code (`Json::parse`, `Parser::peek`, `Args::get`, ...
/// alias ubiquitous method names and would fabricate panic/effect chains).
pub(crate) fn graph_callee_file(p: &str) -> bool {
    lib_file(p)
        && !p.starts_with("crates/lint/")
        && !p.starts_with("crates/bench/")
        // The model checker's `MAtomic::load`/`store`/`MMutex::lock` would
        // alias the std atomic/lock method names at every by-name call site
        // in sim code and fabricate effect chains.
        && !p.starts_with("crates/modelcheck/")
}

/// The library crates whose public surface P1 guards (same set C1 scans).
fn p1_scope(p: &str) -> bool {
    [
        "crates/topology/src/",
        "crates/routing/src/",
        "crates/flowsim/src/",
        "crates/htsim/src/",
        "crates/workloads/src/",
        "crates/core/src/",
        "crates/planner/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre))
}

/// Crates whose matches M1 audits for wildcard arms.
fn m1_scope(p: &str) -> bool {
    [
        "crates/htsim/src/",
        "crates/routing/src/",
        "crates/flowsim/src/",
        "crates/core/src/",
        "crates/planner/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre))
}

/// Files U1 audits. The `SimTime` home module is exempt: it *is* the checked
/// helper layer the rule points everyone else at.
fn u1_scope(p: &str) -> bool {
    (p.starts_with("crates/htsim/src/") || p.starts_with("crates/core/src/"))
        && p != "crates/htsim/src/time.rs"
}

/// One function definition in the workspace.
pub(crate) struct FnDef<'a> {
    pub(crate) file: usize,
    pub(crate) crate_key: &'a str,
    pub(crate) name: &'a str,
    pub(crate) name_tok: usize,
    pub(crate) is_pub: bool,
    /// `Some(Type)` for `impl Type { .. }` methods and trait default
    /// methods (keyed by the trait name).
    pub(crate) self_ty: Option<&'a str>,
    pub(crate) params: &'a [ast::Param],
    pub(crate) body: Option<&'a Block>,
    pub(crate) in_test: bool,
}

impl FnDef<'_> {
    /// `Type::name` for methods, bare `name` for free fns — display form.
    pub(crate) fn qual_name(&self) -> String {
        match self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.to_string(),
        }
    }
}

/// What a function body does, as far as the call graph cares.
#[derive(Default)]
pub(crate) struct FnFacts {
    /// Token index of the first direct panic source, if any.
    pub(crate) panic_tok: Option<usize>,
    /// All resolved callee fn indices (deduped, sorted — deterministic BFS).
    pub(crate) callees: Vec<usize>,
    /// Subset of `callees` resolved *exactly*: path calls (`free_fn(..)`,
    /// `Type::method(..)`, `Self::method(..)`). Effect inference propagates
    /// mutated-type sets only across these edges.
    pub(crate) path_callees: Vec<usize>,
}

/// The workspace symbol tables plus the resolved call graph — built once and
/// shared by the semantic rules (P1/M1/U1/F1) and by effect inference
/// ([`crate::effects`]).
pub(crate) struct Workspace<'a> {
    pub(crate) fns: Vec<FnDef<'a>>,
    pub(crate) enums: BTreeMap<&'a str, BTreeSet<&'a str>>,
    /// Per-file `use` aliases: local name -> full path.
    pub(crate) aliases: Vec<BTreeMap<&'a str, &'a [String]>>,
    pub(crate) free_fns: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    pub(crate) methods: BTreeMap<&'a str, Vec<usize>>,
    pub(crate) typed_methods: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    pub(crate) facts: Vec<FnFacts>,
}

impl<'a> Workspace<'a> {
    /// Resolve a path-call `a::b::f(..)` seen in `caller` to candidate fn
    /// indices (the same name-resolution-lite the call graph uses).
    pub(crate) fn resolve_path(&self, segs: &[String], caller: &FnDef, out: &mut BTreeSet<usize>) {
        resolve_path_call(
            segs,
            caller,
            &self.aliases[caller.file],
            &self.free_fns,
            &self.typed_methods,
            out,
        );
    }
}

/// Build the symbol tables and the per-fn call-graph facts.
pub(crate) fn build_workspace<'a>(files: &'a [SemFile<'a>]) -> Workspace<'a> {
    // ---- symbol tables -------------------------------------------------
    let mut fns: Vec<FnDef> = Vec::new();
    let mut enums: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut aliases: Vec<BTreeMap<&str, &[String]>> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let mut file_aliases: BTreeMap<&str, &[String]> = BTreeMap::new();
        collect_items(
            &f.ast.items,
            fi,
            crate_key(f.rel_path),
            None,
            f.in_test,
            &mut fns,
            &mut enums,
            &mut file_aliases,
        );
        aliases.push(file_aliases);
    }

    // Lookup tables for name-resolution-lite.
    let mut free_fns: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut typed_methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (i, d) in fns.iter().enumerate() {
        // Only library source participates in the call graph: a panicking
        // `fn launch` in an example or test binary is not reachable from
        // library code and must not taint a library `pub fn` via the
        // name-based method over-approximation. Dev-tool crates (lint,
        // bench) are likewise unreachable from sim code.
        if !graph_callee_file(files[d.file].rel_path) {
            continue;
        }
        match d.self_ty {
            None => free_fns.entry((d.crate_key, d.name)).or_default().push(i),
            Some(ty) => {
                methods.entry(d.name).or_default().push(i);
                typed_methods.entry((ty, d.name)).or_default().push(i);
            }
        }
    }

    // ---- per-fn facts: panic sources + resolved call edges -------------
    let facts: Vec<FnFacts> = fns
        .iter()
        .map(|d| {
            let Some(body) = d.body else {
                return FnFacts::default();
            };
            let f = &files[d.file];
            let mut facts = FnFacts::default();
            let mut callees: BTreeSet<usize> = BTreeSet::new();
            let mut path_callees: BTreeSet<usize> = BTreeSet::new();
            ast::walk_block(body, &mut |e| match &e.kind {
                ExprKind::MethodCall {
                    name,
                    name_tok,
                    args,
                    ..
                } => {
                    if is_panic_method(f, name, *name_tok, args) {
                        if facts.panic_tok.is_none_or(|p| *name_tok < p) {
                            facts.panic_tok = Some(*name_tok);
                        }
                    } else {
                        for &c in methods.get(name.as_str()).map_or(&[][..], |v| v) {
                            callees.insert(c);
                        }
                    }
                }
                ExprKind::Call { callee, .. } => {
                    if let ExprKind::Path(segs) = &callee.kind {
                        resolve_path_call(
                            segs,
                            d,
                            &aliases[d.file],
                            &free_fns,
                            &typed_methods,
                            &mut path_callees,
                        );
                    }
                }
                ExprKind::Macro { path, .. }
                    if path.last().is_some_and(|s| s == "panic")
                        && facts.panic_tok.is_none_or(|p| e.lo < p) =>
                {
                    facts.panic_tok = Some(e.lo);
                }
                _ => {}
            });
            callees.extend(path_callees.iter().copied());
            facts.callees = callees.into_iter().collect();
            facts.path_callees = path_callees.into_iter().collect();
            facts
        })
        .collect();

    Workspace {
        fns,
        enums,
        aliases,
        free_fns,
        methods,
        typed_methods,
        facts,
    }
}

/// Run the semantic rules over the whole workspace.
pub fn check_workspace(files: &[SemFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    let ws = build_workspace(files);
    let Workspace {
        ref fns,
        ref enums,
        ref facts,
        ..
    } = ws;

    // ---- P1: panic-path propagation ------------------------------------
    // `reach[i]`: for fn i, the (via, source_fn) pair of the shortest chain
    // from a *callee* of i to a panic source — computed per pub fn by BFS so
    // the witness chain is minimal and deterministic.
    for (i, d) in fns.iter().enumerate() {
        if !d.is_pub || d.in_test || !p1_scope(files[d.file].rel_path) {
            continue;
        }
        let Some((chain, src)) = shortest_panic_chain(i, facts) else {
            continue;
        };
        let sf = &fns[src];
        let sfile = &files[sf.file];
        let panic_tok = facts[src].panic_tok.expect("source has a panic site");
        let panic_line = sfile.tokens[panic_tok].line;
        let via: Vec<&str> = chain.iter().map(|&c| fns[c].name).collect();
        let f = &files[d.file];
        let mut finding = f.finding(
            "P1",
            d.name_tok,
            format!(
                "pub fn `{}` can transitively panic via {} ({}:{}); return a \
                 typed error, make the callee infallible, or waive P1 at the \
                 panic site",
                d.name,
                via.join(" -> "),
                sfile.rel_path,
                panic_line
            ),
        );
        finding.origin = Some((sfile.rel_path.to_string(), panic_line));
        out.push(finding);
    }

    // ---- M1 / U1 / F1: per-file walks ----------------------------------
    for d in fns {
        let f = &files[d.file];
        let Some(body) = d.body else { continue };
        if d.in_test {
            continue;
        }
        if m1_scope(f.rel_path) {
            rule_m1(f, body, enums, &mut out);
        }
        if u1_scope(f.rel_path) {
            rule_u1(f, body, &mut out);
        }
        rule_f1(f, body, &mut out);
    }

    // ---- T1 / S1 / O1 / Q1: effect-inference rules ---------------------
    out.extend(crate::effects::check(&ws, files));

    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    out.dedup();
    out
}

/// Surface each file's parse errors as E1 findings: a file the parser cannot
/// structure is a file the semantic rules silently skip, and silence is how
/// analyzers rot.
pub fn parse_error_findings(f: &SemFile) -> Vec<Finding> {
    f.ast
        .errors
        .iter()
        .map(|e| Finding {
            rule: "E1",
            file: f.rel_path.to_string(),
            line: e.line,
            col: e.col,
            message: format!(
                "parse error: {} — semantic rules cannot see this file",
                e.message
            ),
            snippet: f
                .lines
                .get(e.line as usize - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
            suppressed: None,
            origin: None,
        })
        .collect()
}

/// Is this method call a direct panic source? `.unwrap()` with no args, or
/// `.expect(..)` whose message is not an `invariant: ...` string (the same
/// escape hatch C1 sanctions).
fn is_panic_method(f: &SemFile, name: &str, name_tok: usize, args: &[Expr]) -> bool {
    match name {
        "unwrap" => args.is_empty() && f.in_test.get(name_tok) != Some(&true),
        "expect" => {
            if f.in_test.get(name_tok) == Some(&true) {
                return false;
            }
            let sanctioned = args.first().is_some_and(|a| {
                matches!(a.kind, ExprKind::Lit)
                    && f.tokens.get(a.lo).is_some_and(|t| {
                        t.kind == TokenKind::Str && t.text.trim_start().starts_with("invariant")
                    })
            });
            !sanctioned
        }
        _ => false,
    }
}

#[allow(clippy::too_many_arguments)]
fn collect_items<'a>(
    items: &'a [Item],
    file: usize,
    ck: &'a str,
    self_ty: Option<&'a str>,
    in_test: &[bool],
    fns: &mut Vec<FnDef<'a>>,
    enums: &mut BTreeMap<&'a str, BTreeSet<&'a str>>,
    aliases: &mut BTreeMap<&'a str, &'a [String]>,
) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(func) => {
                // Fn-body `use` statements (the idiom for one-off imports,
                // `use pnet_routing::flow_hash;`) register their aliases
                // file-wide: slightly over-scoped, but without them a bare
                // `flow_hash(..)` reads as a call through unknown code.
                if let Some(body) = &func.body {
                    for st in &body.stmts {
                        if let Stmt::Item(it) = st {
                            if let ItemKind::Use { bindings } = &it.kind {
                                for UseBinding { path, alias } in bindings {
                                    if alias != "*" && !path.is_empty() {
                                        aliases.insert(alias, path);
                                    }
                                }
                            }
                        }
                    }
                }
                fns.push(FnDef {
                    file,
                    crate_key: ck,
                    name: &func.name,
                    name_tok: func.name_tok,
                    is_pub: func.is_pub,
                    self_ty,
                    params: &func.params,
                    body: func.body.as_ref(),
                    in_test: in_test.get(func.name_tok) == Some(&true),
                });
            }
            ItemKind::Enum { name, variants } => {
                enums
                    .entry(name)
                    .or_default()
                    .extend(variants.iter().map(|v| v.as_str()));
            }
            ItemKind::Impl(imp) => collect_items(
                &imp.items,
                file,
                ck,
                Some(&imp.self_ty),
                in_test,
                fns,
                enums,
                aliases,
            ),
            ItemKind::Trait { name, items } => {
                collect_items(items, file, ck, Some(name), in_test, fns, enums, aliases)
            }
            ItemKind::Mod {
                items: Some(sub), ..
            } => collect_items(sub, file, ck, self_ty, in_test, fns, enums, aliases),
            ItemKind::Use { bindings } => {
                for UseBinding { path, alias } in bindings {
                    if alias != "*" && !path.is_empty() {
                        aliases.insert(alias, path);
                    }
                }
            }
            _ => {}
        }
    }
}

/// A `pnet_foo` crate ident (or `pnet` itself) → its crate key.
fn crate_of_ident(seg: &str) -> Option<&str> {
    if seg == "pnet" {
        Some("pnet")
    } else {
        seg.strip_prefix("pnet_")
    }
}

fn is_type_like(seg: &str) -> bool {
    seg.chars().next().is_some_and(|c| c.is_uppercase())
}

/// Resolve a path-call `a::b::f(..)` to candidate fn indices.
fn resolve_path_call(
    segs: &[String],
    caller: &FnDef,
    aliases: &BTreeMap<&str, &[String]>,
    free_fns: &BTreeMap<(&str, &str), Vec<usize>>,
    typed_methods: &BTreeMap<(&str, &str), Vec<usize>>,
    callees: &mut BTreeSet<usize>,
) {
    if segs.is_empty() {
        return;
    }
    // Expand a leading `use` alias (`use pnet_topology::graph::gbps;` makes
    // a bare `gbps(..)` resolvable; `use pnet_htsim::time::SimTime` makes
    // `SimTime::from_ps(..)` carry its crate).
    let expanded: Vec<&str> = match aliases.get(segs[0].as_str()) {
        Some(full) if segs.len() == 1 || full.last() == Some(&segs[0]) => full
            .iter()
            .map(|s| s.as_str())
            .chain(segs.iter().skip(1).map(|s| s.as_str()))
            .collect(),
        _ => segs.iter().map(|s| s.as_str()).collect(),
    };
    let name = *expanded.last().expect("non-empty path");
    // `Type::method` / `Self::method` / `<trait>::method`.
    if expanded.len() >= 2 {
        let qual = expanded[expanded.len() - 2];
        if qual == "Self" {
            if let Some(ty) = caller.self_ty {
                if let Some(v) = typed_methods.get(&(ty, name)) {
                    callees.extend(v.iter().copied());
                }
            }
            return;
        }
        if is_type_like(qual) {
            if let Some(v) = typed_methods.get(&(qual, name)) {
                callees.extend(v.iter().copied());
            }
            return;
        }
    }
    // Crate-qualified free fn (`pnet_topology::graph::gbps`).
    if let Some(ck) = crate_of_ident(expanded[0]) {
        if let Some(v) = free_fns.get(&(ck, name)) {
            callees.extend(v.iter().copied());
        }
        return;
    }
    // std/external roots never hit workspace fns.
    if matches!(expanded[0], "std" | "core" | "alloc") {
        return;
    }
    // Same-crate: bare name, `crate::..`, `self::..`, `super::..`, or a
    // local module path — all match free fns of the caller's crate by name.
    if let Some(v) = free_fns.get(&(caller.crate_key, name)) {
        callees.extend(v.iter().copied());
    }
}

/// BFS from `start`'s callees to the nearest fn with a direct panic source.
/// Returns the chain of fn indices (callee-first, source-last) — length >= 1,
/// so a fn's *own* panic site never trips P1 (that is C1's finding).
fn shortest_panic_chain(start: usize, facts: &[FnFacts]) -> Option<(Vec<usize>, usize)> {
    let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<usize> =
        facts[start].callees.iter().copied().collect();
    let mut seen: BTreeSet<usize> = queue.iter().copied().collect();
    let rebuild = |pred: &BTreeMap<usize, usize>, mut at: usize| {
        let mut chain = vec![at];
        while let Some(&p) = pred.get(&at) {
            at = p;
            chain.push(at);
        }
        chain.reverse();
        chain
    };
    while let Some(cur) = queue.pop_front() {
        if facts[cur].panic_tok.is_some() {
            return Some((rebuild(&pred, cur), cur));
        }
        for &next in &facts[cur].callees {
            if next != start && seen.insert(next) {
                pred.insert(next, cur);
                queue.push_back(next);
            }
        }
    }
    None
}

/// M1: flag top-level unguarded `_ =>` arms in matches whose other arms
/// name workspace enum variants. Nested wildcards (`EventKind::B(_)`) and
/// guarded wildcards are left alone; matches over std enums (Option/Result)
/// never name a workspace variant, so they never trip.
fn rule_m1(
    f: &SemFile,
    body: &Block,
    enums: &BTreeMap<&str, BTreeSet<&str>>,
    out: &mut Vec<Finding>,
) {
    ast::walk_block(body, &mut |e| {
        let ExprKind::Match { arms, .. } = &e.kind else {
            return;
        };
        let Some(enum_name) = matched_workspace_enum(arms, enums) else {
            return;
        };
        for arm in arms {
            if matches!(arm.pat.kind, PatKind::Wild) && arm.guard.is_none() {
                if f.in_test.get(arm.pat.lo) == Some(&true) {
                    continue;
                }
                out.push(f.finding(
                    "M1",
                    arm.pat.lo,
                    format!(
                        "wildcard `_ =>` in a match over workspace enum `{enum_name}`: \
                         a new variant would be silently swallowed; list the variants \
                         so the compiler flags additions"
                    ),
                ));
            }
        }
    });
}

/// The workspace enum this match's arms name, if any: an arm pattern path
/// `E::V` (possibly nested) where `E` is a workspace enum defining `V`.
fn matched_workspace_enum<'e>(
    arms: &[Arm],
    enums: &BTreeMap<&'e str, BTreeSet<&'e str>>,
) -> Option<&'e str> {
    let mut found: Option<&str> = None;
    for arm in arms {
        ast::walk_pat(&arm.pat, &mut |p| {
            if found.is_some() {
                return;
            }
            let segs = match &p.kind {
                PatKind::Path(segs) | PatKind::TupleStruct(segs, _) | PatKind::Struct(segs, _) => {
                    segs
                }
                _ => return,
            };
            if segs.len() < 2 {
                return;
            }
            let (variant, enum_seg) = (&segs[segs.len() - 1], &segs[segs.len() - 2]);
            if let Some((name, variants)) = enums.get_key_value(enum_seg.as_str()) {
                if variants.contains(variant.as_str()) {
                    found = Some(name);
                }
            }
        });
    }
    found
}

/// Conversion constants U1 refuses to see multiplied/divided inline next to
/// unit-bearing values: the SI steps between ps/ns/us/ms/s and k/M/G.
fn is_conversion_constant(text: &str) -> bool {
    let stripped: String = text
        .chars()
        .filter(|&c| c != '_')
        .collect::<String>()
        .to_ascii_lowercase();
    let stripped = stripped
        .trim_end_matches("u64")
        .trim_end_matches("u32")
        .trim_end_matches("usize")
        .trim_end_matches("i64")
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches(".0");
    matches!(
        stripped,
        "1000" | "1000000" | "1000000000" | "1000000000000" | "1e3" | "1e6" | "1e9" | "1e12"
    )
}

/// Identifier words that mark a statement as handling unit-bearing values.
fn has_unit_ident(tokens: &[Token]) -> bool {
    const UNIT_WORDS: &[&str] = &[
        "ps",
        "ns",
        "us",
        "ms",
        "sec",
        "secs",
        "bytes",
        "byte",
        "bits",
        "bit",
        "bps",
        "gbps",
        "mbps",
        "rate",
        "time",
        "bandwidth",
        "capacity",
        "duration",
        "elapsed",
        "fct",
        "rtt",
        "rto",
        "srtt",
        "delay",
    ];
    tokens.iter().any(|t| {
        t.kind == TokenKind::Ident
            && t.text
                .split('_')
                .any(|w| UNIT_WORDS.contains(&w.to_ascii_lowercase().as_str()))
    })
}

/// U1: raw `SimTime(..)` construction, and inline `* / 1e6`-style unit
/// conversions in statements that mention unit-bearing identifiers.
fn rule_u1(f: &SemFile, body: &Block, out: &mut Vec<Finding>) {
    // Statement spans (nested blocks included) — the context window for the
    // "does this statement handle units?" question.
    let mut stmt_spans: Vec<(usize, usize)> = Vec::new();
    collect_stmt_spans(body, &mut stmt_spans);
    let context_of = |tok: usize| -> Option<(usize, usize)> {
        stmt_spans
            .iter()
            .filter(|&&(lo, hi)| lo <= tok && tok <= hi)
            .min_by_key(|&&(lo, hi)| hi - lo)
            .copied()
    };
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    ast::walk_block(body, &mut |e| match &e.kind {
        ExprKind::Call { callee, .. } => {
            if let ExprKind::Path(segs) = &callee.kind {
                if segs.len() == 1 && segs[0] == "SimTime" && flagged.insert(callee.lo) {
                    out.push(
                        f.finding(
                            "U1",
                            callee.lo,
                            "raw SimTime(..) constructor: the argument's unit is invisible \
                         at the call site; use SimTime::from_ps/from_ns/from_us/from_ms"
                                .to_string(),
                        ),
                    );
                }
            }
        }
        ExprKind::Binary {
            op,
            op_tok,
            lhs,
            rhs,
        } if op == "*" || op == "/" => {
            for side in [lhs.as_ref(), rhs.as_ref()] {
                let mut lit_tok = None;
                ast::walk_expr(side, &mut |x| {
                    if lit_tok.is_none()
                        && matches!(x.kind, ExprKind::Lit)
                        && f.tokens
                            .get(x.lo)
                            .is_some_and(|t| is_conversion_constant(&t.text))
                    {
                        lit_tok = Some(x.lo);
                    }
                });
                let Some(lit_tok) = lit_tok else { continue };
                let Some((lo, hi)) = context_of(*op_tok) else {
                    continue;
                };
                if has_unit_ident(&f.tokens[lo..=hi.min(f.tokens.len() - 1)])
                    && flagged.insert(lit_tok)
                {
                    out.push(f.finding(
                        "U1",
                        lit_tok,
                        format!(
                            "inline unit conversion `{op} {}` on a unit-bearing value: \
                             use the checked helpers (SimTime::from_*/as_*_f64, \
                             gbps()/micros_ps()) so the unit is named once",
                            f.tokens[lit_tok].text
                        ),
                    ));
                }
            }
        }
        _ => {}
    });
}

/// Token spans of every statement, nested blocks included (match arms and
/// closure bodies that are blocks contribute their inner statements too).
fn collect_stmt_spans(b: &Block, out: &mut Vec<(usize, usize)>) {
    for s in &b.stmts {
        let span = match s {
            Stmt::Let { pat, init, els, .. } => {
                let hi = els
                    .as_ref()
                    .map(|b| b.hi)
                    .or(init.as_ref().map(|e| e.hi))
                    .unwrap_or(pat.hi);
                Some((pat.lo.saturating_sub(1), hi))
            }
            Stmt::Expr(e) => Some((e.lo, e.hi)),
            _ => None,
        };
        if let Some(span) = span {
            out.push(span);
        }
        ast::walk_stmt(s, &mut |e| {
            if let ExprKind::Block(inner) = &e.kind {
                for s in &inner.stmts {
                    let span = match s {
                        Stmt::Let { pat, init, els, .. } => {
                            let hi = els
                                .as_ref()
                                .map(|b| b.hi)
                                .or(init.as_ref().map(|e| e.hi))
                                .unwrap_or(pat.hi);
                            Some((pat.lo.saturating_sub(1), hi))
                        }
                        Stmt::Expr(e) => Some((e.lo, e.hi)),
                        _ => None,
                    };
                    if let Some(span) = span {
                        out.push(span);
                    }
                }
            }
        });
    }
}

/// Comparator combinators whose closures F1 inspects.
fn is_order_combinator(name: &str) -> bool {
    matches!(
        name,
        "sort_by"
            | "sort_unstable_by"
            | "min_by"
            | "max_by"
            | "binary_search_by"
            | "partition_point"
            | "select_nth_unstable_by"
    )
}

/// F1: `partial_cmp` immediately unwrapped, or used inside an ordering
/// combinator's comparator closure. Both panic (or lie) on NaN; `total_cmp`
/// gives the IEEE 754 total order and never fails.
fn rule_f1(f: &SemFile, body: &Block, out: &mut Vec<Finding>) {
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    let mut flag = |out: &mut Vec<Finding>, tok: usize, how: &str| {
        if flagged.insert(tok) {
            out.push(f.finding(
                "F1",
                tok,
                format!(
                    "partial_cmp {how}: one NaN panics or derails the ordering; \
                     use f64::total_cmp (or Ord::cmp when a total order exists)"
                ),
            ));
        }
    };
    ast::walk_block(body, &mut |e| match &e.kind {
        ExprKind::MethodCall { recv, name, .. } if name == "unwrap" || name == "expect" => {
            if let ExprKind::MethodCall {
                name: inner,
                name_tok,
                ..
            } = &recv.kind
            {
                if inner == "partial_cmp" && f.in_test.get(*name_tok) != Some(&true) {
                    flag(out, *name_tok, &format!("`.{name}()`-ed"));
                }
            }
        }
        ExprKind::MethodCall { name, args, .. } if is_order_combinator(name) => {
            for a in args {
                ast::walk_expr(a, &mut |x| {
                    if let ExprKind::MethodCall {
                        name: inner,
                        name_tok,
                        ..
                    } = &x.kind
                    {
                        if inner == "partial_cmp" && f.in_test.get(*name_tok) != Some(&true) {
                            flag(out, *name_tok, &format!("inside a `{name}` comparator"));
                        }
                    }
                });
            }
        }
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    struct Owned {
        rel: String,
        src: String,
    }

    fn run(files: &[Owned]) -> Vec<Finding> {
        let lexed: Vec<_> = files.iter().map(|f| lex(&f.src)).collect();
        let asts: Vec<_> = lexed.iter().map(|l| ast::parse(&l.tokens)).collect();
        let masks: Vec<_> = lexed.iter().map(|l| test_mask(&l.tokens)).collect();
        let lines: Vec<Vec<&str>> = files.iter().map(|f| f.src.lines().collect()).collect();
        let sem_files: Vec<SemFile> = files
            .iter()
            .enumerate()
            .map(|(i, f)| SemFile {
                rel_path: &f.rel,
                tokens: &lexed[i].tokens,
                in_test: &masks[i],
                lines: &lines[i],
                ast: &asts[i],
            })
            .collect();
        for sf in &sem_files {
            assert!(sf.ast.errors.is_empty(), "{:?}", sf.ast.errors);
        }
        check_workspace(&sem_files)
    }

    fn one(rel: &str, src: &str) -> Vec<Finding> {
        run(&[Owned {
            rel: rel.to_string(),
            src: src.to_string(),
        }])
    }

    #[test]
    fn p1_reports_transitive_not_direct() {
        let fs = one(
            "crates/routing/src/x.rs",
            "fn helper(v: &[u32]) -> u32 { *v.first().unwrap() }\n\
             pub fn direct(v: &[u32]) -> u32 { *v.first().unwrap() }\n\
             pub fn indirect(v: &[u32]) -> u32 { helper(v) }\n",
        );
        let p1: Vec<_> = fs.iter().filter(|f| f.rule == "P1").collect();
        assert_eq!(p1.len(), 1, "{fs:?}");
        assert!(p1[0].message.contains("indirect"));
        assert!(p1[0].message.contains("helper"));
        assert_eq!(
            p1[0].origin,
            Some(("crates/routing/src/x.rs".to_string(), 1))
        );
    }

    #[test]
    fn p1_crosses_crates_via_use_alias() {
        let fs = run(&[
            Owned {
                rel: "crates/topology/src/lib.rs".to_string(),
                src: "pub fn build(n: usize) -> usize { n.checked_mul(2).unwrap() }\n".to_string(),
            },
            Owned {
                rel: "crates/core/src/lib.rs".to_string(),
                src: "use pnet_topology::build;\npub fn plan(n: usize) -> usize { build(n) }\n"
                    .to_string(),
            },
        ]);
        let p1: Vec<_> = fs.iter().filter(|f| f.rule == "P1").collect();
        assert_eq!(p1.len(), 1, "{fs:?}");
        assert!(p1[0].file.ends_with("core/src/lib.rs"));
        assert!(p1[0].message.contains("build"));
    }

    #[test]
    fn p1_ignores_invariant_expect_and_tests() {
        let fs = one(
            "crates/htsim/src/x.rs",
            "fn helper(v: &[u32]) -> u32 { *v.first().expect(\"invariant: non-empty by construction\") }\n\
             pub fn fine(v: &[u32]) -> u32 { helper(v) }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n    pub fn u() { t(); }\n}\n",
        );
        assert!(fs.iter().all(|f| f.rule != "P1"), "{fs:?}");
    }

    #[test]
    fn p1_ignores_panic_sources_in_examples_and_tests_dirs() {
        // `launch` in an example file must not taint the library's
        // `pub fn run` through the name-based method over-approximation.
        let fs = run(&[
            Owned {
                rel: "crates/htsim/examples/demo.rs".to_string(),
                src: "struct D;\nimpl D {\n    fn launch(&self) { None::<u32>.unwrap(); }\n}\n"
                    .to_string(),
            },
            Owned {
                rel: "crates/htsim/src/x.rs".to_string(),
                src: "pub fn run(d: &dyn Driver) { d.launch(); }\n".to_string(),
            },
        ]);
        assert!(fs.iter().all(|f| f.rule != "P1"), "{fs:?}");
    }

    #[test]
    fn m1_flags_wildcard_over_workspace_enum_only() {
        let fs = one(
            "crates/htsim/src/x.rs",
            "pub enum Kind { A, B, C }\n\
             fn classify(k: Kind) -> u32 { match k { Kind::A => 0, _ => 1 } }\n\
             fn options(o: Option<u32>) -> u32 { match o { Some(x) => x, _ => 0 } }\n",
        );
        let m1: Vec<_> = fs.iter().filter(|f| f.rule == "M1").collect();
        assert_eq!(m1.len(), 1, "{fs:?}");
        assert_eq!(m1[0].line, 2);
        assert!(m1[0].message.contains("Kind"));
    }

    #[test]
    fn u1_flags_raw_ctor_and_inline_conversion() {
        let fs = one(
            "crates/htsim/src/x.rs",
            "pub struct SimTime(pub u64);\n\
             fn f(delay_ps: u64) -> SimTime { SimTime(delay_ps) }\n\
             fn g(rtt_ps: u64) -> f64 { rtt_ps as f64 / 1e6 }\n\
             fn h(n: u64) -> u64 { n * 1000 }\n",
        );
        let u1: Vec<_> = fs.iter().filter(|f| f.rule == "U1").collect();
        assert_eq!(u1.len(), 2, "{fs:?}");
        assert_eq!(u1[0].line, 2); // raw ctor
        assert_eq!(u1[1].line, 3); // inline / 1e6 next to rtt_ps
                                   // Line 4: `n * 1000` has no unit-bearing ident — not flagged.
    }

    #[test]
    fn f1_flags_unwrapped_and_comparator_partial_cmp() {
        let fs = one(
            "crates/bench/src/x.rs",
            "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap() }\n\
             fn g(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).expect(\"cmp\")); }\n\
             fn ok(v: &mut [f64]) { v.sort_by(f64::total_cmp); }\n",
        );
        let f1: Vec<_> = fs.iter().filter(|f| f.rule == "F1").collect();
        assert_eq!(f1.len(), 2, "{fs:?}");
        assert_eq!((f1[0].line, f1[1].line), (1, 2));
    }
}
