//! Interprocedural effect inference over the [`crate::sem`] call graph, and
//! the four determinism-contract rules built on top of it.
//!
//! Every workspace function gets an *effect signature* — a point in a small
//! product lattice:
//!
//! * `mut-recv` / `mut-args` — the signature declares `&mut` access (to the
//!   receiver, or to one or more parameters);
//! * `interior` — the body touches interior mutability (`RefCell::borrow_mut`,
//!   `Mutex::lock`, atomic RMW/stores): mutation that a `&self` signature
//!   cannot disclose;
//! * `io` — the body performs IO or reads ambient state (`println!`,
//!   `std::fs`/`env`/`process`, `Instant::now`): either observable outside
//!   the simulation or a source of nondeterminism inside it;
//! * `higher-order` — the body calls through a function value (a closure or
//!   fn-pointer parameter), so its effects include *unknown code*;
//! * `touched` — the set of type names the function can reach mutably,
//!   transitively.
//!
//! Local effects are read off each body in one pass; transitive effects are
//! the least fixed point of propagation along call edges. The propagation is
//! deliberately asymmetric: the boolean flags flow across *every* resolved
//! edge (including the by-name method over-approximation), while `touched`
//! flows only across exactly-resolved path calls (`free_fn(..)`,
//! `Type::method(..)`). A by-name edge like `.push(..)` resolving to every
//! workspace `push` would otherwise smear `EventQueue` into the signature of
//! any function that pushes onto a local `Vec`; and soundness does not need
//! it — mutating caller-visible state through a method call requires `&mut`
//! access that already shows up in the caller's own signature, except via
//! interior mutability, which the flags do track.
//!
//! The rules:
//!
//! * **T1** — telemetry purity: every fn defined in a `telemetry.rs` module
//!   must be observation-pure w.r.t. simulator state — no `&mut` reach into
//!   [`SIM_STATE_TYPES`], no interior mutability, no IO, no unknown code.
//! * **S1** — parallel-safe closures: closures handed to
//!   `Parallelism::map_indexed`/`update_indexed` must not assign to, mutably
//!   borrow, or call mutating methods on captured places, must not use
//!   interior mutability, and must not call functions whose transitive
//!   effect is `interior`/`io`/`higher-order`.
//! * **O1** — ordered reductions: float `sum`/`product`/`fold` over a
//!   parallel-produced collection must reach the reduction through
//!   order-preserving adapters only (or use the `ordered_sum_f64`/
//!   `ordered_fold_f64` helpers).
//! * **Q1** — total sort keys: `sort_unstable*`/`select_nth_unstable*` in
//!   the sim/solver crates must sort whole elements, or carry a comparator
//!   that is provably total and duplicate-free (whole-element
//!   `cmp`/`total_cmp`, or an explicit `.then(..)` tie-break).
//!
//! T1 and S1 findings carry an `origin` at the underlying effect site, so a
//! single waiver at (say) the thread-local scratch `borrow_mut` quiets every
//! closure that reaches it — same mechanics as P1's panic origin.

use crate::ast::{self, Block, Expr, ExprKind, Pat, PatKind, Stmt};
use crate::lexer::TokenKind;
use crate::rules::Finding;
use crate::sem::{FnDef, SemFile, Workspace};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Simulator-state types T1 refuses to see mutably reachable from telemetry.
pub(crate) const SIM_STATE_TYPES: &[&str] = &[
    "Simulator",
    "EventQueue",
    "Queue",
    "Connection",
    "Subflow",
    "PacketArena",
    "Network",
];

/// Method names that are interior-mutability writes. Read-side accessors
/// (`borrow`, atomic `load`) are deliberately absent: observation is not
/// mutation, and `Cell`/`RefCell` are `!Sync` anyway — the compiler already
/// keeps them out of parallel closures. What survives into threaded code is
/// atomics and locks, and those are exactly this list.
pub(crate) const INTERIOR_METHODS: &[&str] = &[
    "borrow_mut",
    "with_borrow_mut",
    "lock",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Macros that write to stdout/stderr.
const IO_MACROS: &[&str] = &["print", "println", "eprint", "eprintln", "dbg"];

/// std module roots whose free fns do IO or read ambient state.
const IO_ROOTS: &[&str] = &["fs", "env", "process", "net"];

/// Prelude free fns a bare lowercase call can hit without being a call
/// through a function value.
const PRELUDE_FNS: &[&str] = &["drop"];

/// `&mut self` methods from std containers: calling one of these on a
/// *captured* place inside a parallel closure is a shared-state mutation
/// even though no `&mut` token appears at the call site.
pub(crate) const STD_MUTATORS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "clear",
    "extend",
    "append",
    "truncate",
    "resize",
    "retain",
    "drain",
    "dedup",
    "reverse",
    "rotate_left",
    "rotate_right",
    "fill",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "set",
    "replace",
    "take",
    "get_or_insert",
    "get_or_insert_with",
    "swap",
];

/// One function's effect signature (a lattice point; `Default` is ⊥ = pure).
#[derive(Default, Clone, PartialEq, Eq)]
pub(crate) struct Effect {
    pub(crate) mut_recv: bool,
    pub(crate) mut_args: bool,
    pub(crate) interior: bool,
    pub(crate) io: bool,
    pub(crate) higher_order: bool,
    /// Type names mutably reachable (own `&mut` signature ∪ path callees').
    pub(crate) touched: BTreeSet<String>,
}

impl Effect {
    fn is_pure(&self) -> bool {
        *self == Effect::default()
    }
}

/// Per-fn local facts: the effect read off the body alone, plus witness
/// tokens for the flags (span anchors for findings and waiver origins).
#[derive(Default)]
pub(crate) struct Local {
    eff: Effect,
    pub(crate) interior_tok: Option<usize>,
    io_tok: Option<usize>,
    higher_order_tok: Option<usize>,
}

impl Local {
    /// The first flag witness in this body, with a human-readable reason.
    fn witness(&self) -> Option<(usize, &'static str)> {
        [
            (self.interior_tok, "uses interior mutability"),
            (self.io_tok, "performs IO or reads ambient state"),
            (
                self.higher_order_tok,
                "calls through a function value (unknown code)",
            ),
        ]
        .into_iter()
        .filter_map(|(t, why)| t.map(|t| (t, why)))
        .min_by_key(|&(t, _)| t)
    }
}

pub(crate) struct Effects {
    pub(crate) locals: Vec<Local>,
    /// Transitive (fixed-point) effect per fn, indexed like `Workspace::fns`.
    pub(crate) trans: Vec<Effect>,
}

/// Infer local effects and run propagation to the least fixed point.
pub(crate) fn infer(ws: &Workspace, files: &[SemFile]) -> Effects {
    let locals: Vec<Local> = ws
        .fns
        .iter()
        .map(|d| local_effect(d, &ws.aliases[d.file], ws))
        .collect();

    let mut trans: Vec<Effect> = locals.iter().map(|l| l.eff.clone()).collect();
    // Flags and touched sets only ever grow, over a finite lattice — the
    // loop terminates. Workspace call graphs are shallow; this converges in
    // a handful of rounds.
    loop {
        let mut changed = false;
        for i in 0..ws.fns.len() {
            let mut interior = trans[i].interior;
            let mut io = trans[i].io;
            let mut higher_order = trans[i].higher_order;
            let mut add_touched: Vec<String> = Vec::new();
            for &c in &ws.facts[i].callees {
                interior |= trans[c].interior;
                io |= trans[c].io;
                higher_order |= trans[c].higher_order;
            }
            for &c in &ws.facts[i].path_callees {
                for t in &trans[c].touched {
                    if !trans[i].touched.contains(t) {
                        add_touched.push(t.clone());
                    }
                }
            }
            let e = &mut trans[i];
            if interior != e.interior || io != e.io || higher_order != e.higher_order {
                e.interior = interior;
                e.io = io;
                e.higher_order = higher_order;
                changed = true;
            }
            if !add_touched.is_empty() {
                e.touched.extend(add_touched);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let _ = files;
    Effects { locals, trans }
}

/// Read one function's local effect off its signature and body.
fn local_effect(d: &FnDef, aliases: &BTreeMap<&str, &[String]>, ws: &Workspace) -> Local {
    let mut l = Local::default();

    // ---- signature: declared &mut access -------------------------------
    for p in d.params {
        if p.name.as_deref() == Some("self") {
            if p.ref_mut {
                l.eff.mut_recv = true;
                if let Some(ty) = d.self_ty {
                    l.eff.touched.insert(ty.to_string());
                }
            }
            continue;
        }
        let Some(ty) = &p.ty else { continue };
        if ty.idents.iter().any(|i| i == "mut") {
            l.eff.mut_args = true;
            for i in &ty.idents {
                if i.chars().next().is_some_and(|c| c.is_uppercase()) {
                    let name = if i == "Self" {
                        d.self_ty.unwrap_or(i).to_string()
                    } else {
                        i.clone()
                    };
                    l.eff.touched.insert(name);
                }
            }
        }
    }

    // ---- body: interior mutability, IO, higher-order calls -------------
    let Some(body) = d.body else { return l };
    // Names `let`-bound to closure literals at the top of the body
    // (`let row = |..| ..; row(..)`): calling one is NOT a call through
    // unknown code — the closure's body is part of this very walk, so its
    // effects are already accounted for. Nested-block closure lets stay
    // conservative (higher-order).
    let mut closure_lets: BTreeSet<String> = BTreeSet::new();
    for st in &body.stmts {
        if let ast::Stmt::Let {
            pat,
            init: Some(init),
            ..
        } = st
        {
            if matches!(init.kind, ExprKind::Closure { .. }) {
                pat_bindings(pat, &mut closure_lets);
            }
        }
    }
    ast::walk_block(body, &mut |e| match &e.kind {
        ExprKind::MethodCall { name, name_tok, .. }
            if INTERIOR_METHODS.contains(&name.as_str())
                && l.interior_tok.is_none_or(|t| *name_tok < t) =>
        {
            l.interior_tok = Some(*name_tok);
        }
        ExprKind::Macro { path, .. }
            if path.last().is_some_and(|s| IO_MACROS.contains(&s.as_str()))
                && l.io_tok.is_none_or(|t| e.lo < t) =>
        {
            l.io_tok = Some(e.lo);
        }
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Path(segs) => {
                let expanded = expand_alias(segs, aliases);
                if path_is_io(&expanded) && l.io_tok.is_none_or(|t| callee.lo < t) {
                    l.io_tok = Some(callee.lo);
                }
                if path_is_higher_order(segs, &expanded, d, ws)
                    && !(segs.len() == 1 && closure_lets.contains(segs[0].as_str()))
                    && l.higher_order_tok.is_none_or(|t| callee.lo < t)
                {
                    l.higher_order_tok = Some(callee.lo);
                }
            }
            // `(self.hook)(..)`, `table[i](..)`, `make_fn()(..)` — calling a
            // value, not a name: unknown code by construction.
            ExprKind::Field { .. } | ExprKind::Index { .. } | ExprKind::MethodCall { .. }
                if l.higher_order_tok.is_none_or(|t| callee.lo < t) =>
            {
                l.higher_order_tok = Some(callee.lo);
            }
            _ => {}
        },
        _ => {}
    });
    l.eff.interior |= l.interior_tok.is_some();
    l.eff.io |= l.io_tok.is_some();
    l.eff.higher_order |= l.higher_order_tok.is_some();
    l
}

/// Expand a leading `use` alias, same policy as the call-graph resolver.
fn expand_alias<'s>(segs: &'s [String], aliases: &BTreeMap<&str, &'s [String]>) -> Vec<&'s str> {
    match aliases.get(segs[0].as_str()) {
        Some(full) if segs.len() == 1 || full.last() == Some(&segs[0]) => full
            .iter()
            .map(|s| s.as_str())
            .chain(segs.iter().skip(1).map(|s| s.as_str()))
            .collect(),
        _ => segs.iter().map(|s| s.as_str()).collect(),
    }
}

/// Does this (alias-expanded) call path perform IO / read ambient state?
fn path_is_io(expanded: &[&str]) -> bool {
    if expanded.is_empty() {
        return false;
    }
    let root = if matches!(expanded[0], "std" | "core" | "alloc") {
        expanded.get(1).copied().unwrap_or("")
    } else {
        expanded[0]
    };
    if IO_ROOTS.contains(&root) {
        return true;
    }
    if expanded
        .iter()
        .any(|s| matches!(*s, "stdout" | "stdin" | "stderr"))
    {
        return true;
    }
    // Wall-clock reads are ambient nondeterminism, the worst kind for a
    // reproducible simulator.
    expanded.len() >= 2
        && matches!(expanded[expanded.len() - 2], "Instant" | "SystemTime")
        && expanded[expanded.len() - 1] == "now"
}

/// Is a bare lowercase call unresolvable as a workspace or prelude fn — i.e.
/// (conservatively) a call through a closure / fn-pointer parameter or local?
fn path_is_higher_order(segs: &[String], expanded: &[&str], d: &FnDef, ws: &Workspace) -> bool {
    if segs.len() != 1 || expanded.len() != 1 {
        return false; // qualified paths name real items
    }
    let name = segs[0].as_str();
    if !name.chars().next().is_some_and(|c| c.is_lowercase()) {
        return false; // tuple-struct / variant constructors are pure
    }
    if PRELUDE_FNS.contains(&name) {
        return false;
    }
    !ws.free_fns.contains_key(&(d.crate_key, name))
}

// ---------------------------------------------------------------------------
// S-expression dump (snapshot surface + `pnet-tidy effects`)
// ---------------------------------------------------------------------------

/// Dump every function's effect signature, one S-expression per line, sorted
/// by (file, definition order). `pure` fns print compactly; the rest show the
/// local effect, the transitive effect, and the touched-type set.
pub(crate) fn dump(ws: &Workspace, files: &[SemFile], fx: &Effects) -> String {
    let mut order: Vec<usize> = (0..ws.fns.len()).collect();
    order.sort_by_key(|&i| (files[ws.fns[i].file].rel_path, ws.fns[i].name_tok));
    let mut s = String::new();
    for i in order {
        let d = &ws.fns[i];
        let f = &files[d.file];
        let line = f.tokens.get(d.name_tok).map(|t| t.line).unwrap_or_default();
        s.push_str(&format!("(fn {}:{} {}", f.rel_path, line, d.qual_name()));
        if fx.trans[i].is_pure() {
            s.push_str(" pure)\n");
            continue;
        }
        s.push_str(&format!(
            " (local{}) (trans{}) (touched{}))\n",
            effect_tags(&fx.locals[i].eff),
            effect_tags(&fx.trans[i]),
            fx.trans[i]
                .touched
                .iter()
                .map(|t| format!(" {t}"))
                .collect::<String>(),
        ));
    }
    s
}

fn effect_tags(e: &Effect) -> String {
    let mut s = String::new();
    for (on, tag) in [
        (e.mut_recv, "mut-recv"),
        (e.mut_args, "mut-args"),
        (e.interior, "interior"),
        (e.io, "io"),
        (e.higher_order, "higher-order"),
    ] {
        if on {
            s.push(' ');
            s.push_str(tag);
        }
    }
    s
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Run T1/S1/O1/Q1 over the workspace. Called from
/// [`crate::sem::check_workspace`] so all rules share one symbol table.
pub(crate) fn check(ws: &Workspace, files: &[SemFile]) -> Vec<Finding> {
    let fx = infer(ws, files);
    // Names of workspace methods taking `&mut self` — by-name evidence that
    // `.name(..)` on a captured place mutates it.
    let ws_mutators: BTreeSet<&str> = ws
        .fns
        .iter()
        .filter(|d| d.self_ty.is_some() && d.params.first().is_some_and(|p| p.ref_mut))
        .map(|d| d.name)
        .collect();
    let mut out = Vec::new();
    rule_t1(ws, files, &fx, &mut out);
    for (i, d) in ws.fns.iter().enumerate() {
        let f = &files[d.file];
        let Some(body) = d.body else { continue };
        if d.in_test {
            continue;
        }
        rule_s1(ws, files, &fx, &ws_mutators, i, body, &mut out);
        if o1_scope(f.rel_path) {
            rule_o1(f, body, &mut out);
        }
        if q1_scope(f.rel_path) {
            rule_q1(f, body, &mut out);
        }
    }
    crate::conc::check(ws, files, &fx, &ws_mutators, &mut out);
    out
}

/// Telemetry modules: the T1 root set.
fn t1_scope(p: &str) -> bool {
    p.contains("/src/") && (p.ends_with("/telemetry.rs") || p.contains("/telemetry/"))
}

/// Crates whose float reductions O1 audits.
fn o1_scope(p: &str) -> bool {
    [
        "crates/routing/src/",
        "crates/flowsim/src/",
        "crates/htsim/src/",
        "crates/core/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre))
}

/// Sim/solver crates whose unstable sorts Q1 audits.
fn q1_scope(p: &str) -> bool {
    [
        "crates/routing/src/",
        "crates/flowsim/src/",
        "crates/htsim/src/",
        "crates/topology/src/",
        "crates/core/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre))
}

// ---- T1: telemetry observation-purity -------------------------------------

fn rule_t1(ws: &Workspace, files: &[SemFile], fx: &Effects, out: &mut Vec<Finding>) {
    for (i, d) in ws.fns.iter().enumerate() {
        let f = &files[d.file];
        if !t1_scope(f.rel_path) || d.in_test || d.body.is_none() {
            continue;
        }
        // Purity check on the *transitive* effect; the chain below recovers
        // a concrete witness for the message and the waiver origin.
        let touched_deny: Vec<&String> = fx.trans[i]
            .touched
            .iter()
            .filter(|t| SIM_STATE_TYPES.contains(&t.as_str()))
            .collect();
        let flags = &fx.trans[i];
        if touched_deny.is_empty() && !flags.interior && !flags.io && !flags.higher_order {
            continue;
        }
        let (chain, witness_fn, witness_tok, reason) = match t1_witness(ws, fx, i) {
            Some(w) => w,
            // Transitive violation with no local witness can only be a
            // denied type reached through the signature lattice; anchor on
            // the fn itself.
            None => {
                let ty = touched_deny
                    .first()
                    .map(|s| s.as_str())
                    .unwrap_or("sim state");
                (Vec::new(), i, d.name_tok, format!("reaches `{ty}` mutably"))
            }
        };
        let wf = &ws.fns[witness_fn];
        let wfile = &files[wf.file];
        let wline = wfile.tokens[witness_tok].line;
        let via = if chain.is_empty() {
            String::new()
        } else {
            format!(
                "via {} ",
                chain
                    .iter()
                    .map(|&c| ws.fns[c].qual_name())
                    .collect::<Vec<_>>()
                    .join(" -> ")
            )
        };
        let mut finding = f.finding(
            "T1",
            d.name_tok,
            format!(
                "telemetry fn `{}` is not observation-pure: {via}{reason} ({}:{wline}); \
                 telemetry must only read simulator state — or waive T1 at the effect site",
                d.qual_name(),
                wfile.rel_path,
            ),
        );
        finding.origin = Some((wfile.rel_path.to_string(), wline));
        out.push(finding);
    }
}

/// BFS from fn `start` (itself first) to the nearest fn with a local effect
/// witness — a flag site, or a denied type in its *own* `&mut` signature.
#[allow(clippy::type_complexity)]
fn t1_witness(
    ws: &Workspace,
    fx: &Effects,
    start: usize,
) -> Option<(Vec<usize>, usize, usize, String)> {
    let local_hit = |j: usize| -> Option<(usize, String)> {
        let l = &fx.locals[j];
        if let Some(ty) = l
            .eff
            .touched
            .iter()
            .find(|t| SIM_STATE_TYPES.contains(&t.as_str()))
        {
            return Some((ws.fns[j].name_tok, format!("takes `&mut {ty}`")));
        }
        l.witness().map(|(t, why)| (t, why.to_string()))
    };
    let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::from([start]);
    let mut seen: BTreeSet<usize> = BTreeSet::from([start]);
    while let Some(cur) = queue.pop_front() {
        if let Some((tok, reason)) = local_hit(cur) {
            let mut chain = Vec::new();
            let mut at = cur;
            while at != start {
                chain.push(at);
                at = pred[&at];
            }
            chain.reverse();
            return Some((chain, cur, tok, reason));
        }
        for &next in &ws.facts[cur].callees {
            if seen.insert(next) {
                pred.insert(next, cur);
                queue.push_back(next);
            }
        }
    }
    None
}

// ---- S1: parallel-safe closures -------------------------------------------

/// Closure-taking combinators whose closures run under `Parallelism`.
pub(crate) fn is_parallel_combinator(name: &str) -> bool {
    matches!(name, "map_indexed" | "update_indexed")
}

#[allow(clippy::too_many_arguments)]
fn rule_s1(
    ws: &Workspace,
    files: &[SemFile],
    fx: &Effects,
    ws_mutators: &BTreeSet<&str>,
    fn_idx: usize,
    body: &Block,
    out: &mut Vec<Finding>,
) {
    let d = &ws.fns[fn_idx];
    let f = &files[d.file];
    ast::walk_block(body, &mut |e| {
        let ExprKind::MethodCall {
            name,
            name_tok,
            args,
            ..
        } = &e.kind
        else {
            return;
        };
        if !is_parallel_combinator(name) || f.in_test.get(*name_tok) == Some(&true) {
            return;
        }
        for a in args {
            if let ExprKind::Closure { params, body } = &a.kind {
                check_parallel_closure(ws, files, fx, ws_mutators, d, name, params, body, out);
            }
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn check_parallel_closure(
    ws: &Workspace,
    files: &[SemFile],
    fx: &Effects,
    ws_mutators: &BTreeSet<&str>,
    d: &FnDef,
    comb: &str,
    params: &[Pat],
    body: &Expr,
    out: &mut Vec<Finding>,
) {
    let f = &files[d.file];
    // Everything bound *inside* the closure; any other place root is a
    // capture from the enclosing scope.
    let mut locals: BTreeSet<String> = BTreeSet::new();
    for p in params {
        pat_bindings(p, &mut locals);
    }
    collect_bindings(body, &mut locals);

    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    let mut flag =
        |out: &mut Vec<Finding>, tok: usize, detail: String, origin: Option<(String, u32)>| {
            if !flagged.insert(tok) {
                return;
            }
            let mut finding = f.finding(
                "S1",
                tok,
                format!(
                    "closure passed to `{comb}` is not parallel-safe: {detail}; parallel \
                 closures must be pure over their index — move shared state behind a \
                 per-thread scratch, or waive S1 at the effect origin"
                ),
            );
            finding.origin = origin;
            out.push(finding);
        };

    ast::walk_expr(body, &mut |x| match &x.kind {
        ExprKind::Binary {
            op, op_tok, lhs, ..
        } if is_assign_op(op) => {
            if let Some(root) = place_root(lhs) {
                if !locals.contains(root) {
                    flag(out, *op_tok, format!("assigns to captured `{root}`"), None);
                }
            }
        }
        ExprKind::Ref { is_mut: true, expr } => {
            if let Some(root) = place_root(expr) {
                if !locals.contains(root) {
                    flag(
                        out,
                        expr.lo,
                        format!("takes `&mut` of captured `{root}`"),
                        None,
                    );
                }
            }
        }
        ExprKind::MethodCall {
            recv,
            name,
            name_tok,
            ..
        } => {
            if INTERIOR_METHODS.contains(&name.as_str()) {
                flag(
                    out,
                    *name_tok,
                    format!("uses interior mutability (`.{name}(..)`)"),
                    None,
                );
            } else if STD_MUTATORS.contains(&name.as_str()) || ws_mutators.contains(name.as_str()) {
                if let Some(root) = place_root(recv) {
                    if !locals.contains(root) {
                        flag(
                            out,
                            *name_tok,
                            format!("calls mutating `.{name}(..)` on captured `{root}`"),
                            None,
                        );
                    }
                }
            } else if let Some(cands) = ws.methods.get(name.as_str()) {
                if let Some((j, tok, why)) = effectful_callee(ws, fx, cands) {
                    let wf = &ws.fns[j];
                    let wfile = &files[wf.file];
                    let wline = wfile.tokens[tok].line;
                    flag(
                        out,
                        *name_tok,
                        format!(
                            "calls `{}` which transitively {why} ({}:{wline})",
                            wf.qual_name(),
                            wfile.rel_path
                        ),
                        Some((wfile.rel_path.to_string(), wline)),
                    );
                }
            }
        }
        ExprKind::Call { callee, .. } => {
            if let ExprKind::Path(segs) = &callee.kind {
                let mut cands: BTreeSet<usize> = BTreeSet::new();
                ws.resolve_path(segs, d, &mut cands);
                let cands: Vec<usize> = cands.into_iter().collect();
                if let Some((j, tok, why)) = effectful_callee(ws, fx, &cands) {
                    let wf = &ws.fns[j];
                    let wfile = &files[wf.file];
                    let wline = wfile.tokens[tok].line;
                    flag(
                        out,
                        callee.lo,
                        format!(
                            "calls `{}` which transitively {why} ({}:{wline})",
                            wf.qual_name(),
                            wfile.rel_path
                        ),
                        Some((wfile.rel_path.to_string(), wline)),
                    );
                } else if cands.is_empty() {
                    // A call to a *captured* callable is unknown code.
                    let expanded = expand_alias(segs, &ws.aliases[d.file]);
                    if segs.len() == 1
                        && expanded.len() == 1
                        && segs[0].chars().next().is_some_and(|c| c.is_lowercase())
                        && !PRELUDE_FNS.contains(&segs[0].as_str())
                        && !locals.contains(segs[0].as_str())
                        && !ws.free_fns.contains_key(&(d.crate_key, segs[0].as_str()))
                    {
                        flag(
                            out,
                            callee.lo,
                            format!("calls captured callable `{}` (unknown code)", segs[0]),
                            None,
                        );
                    }
                }
            }
        }
        _ => {}
    });
}

/// If any candidate's transitive effect has a flag set, BFS to the nearest
/// local witness so the finding can carry a concrete origin.
pub(crate) fn effectful_callee(
    ws: &Workspace,
    fx: &Effects,
    cands: &[usize],
) -> Option<(usize, usize, &'static str)> {
    if !cands.iter().any(|&c| {
        let t = &fx.trans[c];
        t.interior || t.io || t.higher_order
    }) {
        return None;
    }
    let mut queue: VecDeque<usize> = cands.iter().copied().collect();
    let mut seen: BTreeSet<usize> = queue.iter().copied().collect();
    while let Some(cur) = queue.pop_front() {
        if let Some((tok, why)) = fx.locals[cur].witness() {
            return Some((cur, tok, why));
        }
        for &next in &ws.facts[cur].callees {
            if seen.insert(next) {
                queue.push_back(next);
            }
        }
    }
    None
}

pub(crate) fn is_assign_op(op: &str) -> bool {
    matches!(
        op,
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>="
    )
}

/// The base identifier of a place expression: `self.buf[i].x` → `self`.
pub(crate) fn place_root(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Path(segs) => segs.first().map(|s| s.as_str()),
        ExprKind::Field { recv, .. }
        | ExprKind::Index { recv, .. }
        | ExprKind::MethodCall { recv, .. } => place_root(recv),
        ExprKind::Unary { expr, .. }
        | ExprKind::Ref { expr, .. }
        | ExprKind::Try { expr }
        | ExprKind::Cast { expr, .. } => place_root(expr),
        _ => None,
    }
}

pub(crate) fn pat_bindings(p: &Pat, out: &mut BTreeSet<String>) {
    ast::walk_pat(p, &mut |q| {
        if let PatKind::Binding(name, _) = &q.kind {
            out.insert(name.clone());
        }
    });
}

/// All names bound anywhere inside an expression: `let`s in every block
/// position, `for`/`if let`/`match` patterns, nested closure params.
pub(crate) fn collect_bindings(e: &Expr, out: &mut BTreeSet<String>) {
    let lets_of = |b: &Block, out: &mut BTreeSet<String>| {
        for s in &b.stmts {
            if let Stmt::Let { pat, .. } = s {
                pat_bindings(pat, out);
            }
        }
    };
    ast::walk_expr(e, &mut |x| match &x.kind {
        ExprKind::Block(b) => lets_of(b, out),
        ExprKind::For { pat, body, .. } => {
            pat_bindings(pat, out);
            lets_of(body, out);
        }
        ExprKind::While { body, .. } | ExprKind::Loop { body } => lets_of(body, out),
        ExprKind::If { then, .. } => lets_of(then, out),
        ExprKind::CondLet { pat, .. } => pat_bindings(pat, out),
        ExprKind::Match { arms, .. } => {
            for a in arms {
                pat_bindings(&a.pat, out);
            }
        }
        ExprKind::Closure { params, .. } => {
            for p in params {
                pat_bindings(p, out);
            }
        }
        _ => {}
    });
    // The closure body itself may be a bare block whose lets the walk above
    // already caught via ExprKind::Block — nothing more to do.
}

// ---- O1: ordered float reductions -----------------------------------------

/// Iterator adapters that provably preserve element order (index order in,
/// index order out — possibly a subsequence).
const ORDER_PRESERVING: &[&str] = &[
    "iter",
    "into_iter",
    "map",
    "enumerate",
    "zip",
    "copied",
    "cloned",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "take",
    "skip",
    "take_while",
    "skip_while",
    "step_by",
    "chain",
    "by_ref",
    "as_slice",
    "as_ref",
    "windows",
    "chunks",
    "inspect",
    "peekable",
    "fuse",
];

fn is_float_reduction(name: &str) -> bool {
    matches!(name, "sum" | "product" | "fold")
}

fn rule_o1(f: &SemFile, body: &Block, out: &mut Vec<Finding>) {
    // Names bound to the result of a `map_indexed` call anywhere in this fn.
    let mut parallel: BTreeSet<String> = BTreeSet::new();
    collect_parallel_lets(body, &mut parallel);

    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    ast::walk_block(body, &mut |e| {
        let ExprKind::MethodCall {
            recv,
            name,
            name_tok,
            ..
        } = &e.kind
        else {
            return;
        };
        if !is_float_reduction(name) || f.in_test.get(*name_tok) == Some(&true) {
            return;
        }
        // Walk the receiver chain down to its root, recording each adapter.
        let mut chain: Vec<(&str, usize)> = Vec::new();
        let mut cur = recv.as_ref();
        loop {
            match &cur.kind {
                ExprKind::MethodCall {
                    recv,
                    name,
                    name_tok,
                    ..
                } => {
                    chain.push((name.as_str(), *name_tok));
                    cur = recv;
                }
                ExprKind::Field { recv, .. } | ExprKind::Index { recv, .. } => cur = recv,
                ExprKind::Ref { expr, .. }
                | ExprKind::Try { expr }
                | ExprKind::Unary { expr, .. }
                | ExprKind::Cast { expr, .. } => cur = expr,
                _ => break,
            }
        }
        let rooted_parallel = match &cur.kind {
            ExprKind::Path(segs) => segs.len() == 1 && parallel.contains(&segs[0]),
            _ => false,
        } || chain.iter().any(|(n, _)| is_parallel_combinator(n));
        if !rooted_parallel {
            return;
        }
        // Float evidence anywhere in the reduction expression's span
        // (`0.0f64` seeds, `sum::<f64>()` turbofish, `as f64` casts).
        let hi = e.hi.min(f.tokens.len().saturating_sub(1));
        let floaty = f.tokens[e.lo..=hi]
            .iter()
            .any(|t| t.kind == TokenKind::Float || t.text == "f64" || t.text == "f32");
        if !floaty {
            return;
        }
        let offender = chain
            .iter()
            .rev()
            .find(|(n, _)| !ORDER_PRESERVING.contains(n) && !is_parallel_combinator(n));
        if let Some(&(adapter, tok)) = offender {
            if flagged.insert(tok) {
                out.push(f.finding(
                    "O1",
                    tok,
                    format!(
                        "float `{name}` over a parallel-produced collection goes through \
                         `.{adapter}(..)`, which is not provably index-ordered; consume in \
                         index order or use ordered_sum_f64/ordered_fold_f64 \
                         (pnet_routing::exec)"
                    ),
                ));
            }
        }
    });
}

/// Record `let` bindings whose initializer contains a `map_indexed` call —
/// in every nested block position.
fn collect_parallel_lets(body: &Block, out: &mut BTreeSet<String>) {
    let grab = |b: &Block, out: &mut BTreeSet<String>| {
        for s in &b.stmts {
            let Stmt::Let {
                pat,
                init: Some(init),
                ..
            } = s
            else {
                continue;
            };
            let mut has_par = false;
            ast::walk_expr(init, &mut |x| {
                if let ExprKind::MethodCall { name, .. } = &x.kind {
                    has_par |= is_parallel_combinator(name);
                }
            });
            if has_par {
                pat_bindings(pat, out);
            }
        }
    };
    grab(body, out);
    ast::walk_block(body, &mut |e| match &e.kind {
        ExprKind::Block(b) => grab(b, out),
        ExprKind::For { body, .. } | ExprKind::While { body, .. } | ExprKind::Loop { body } => {
            grab(body, out)
        }
        ExprKind::If { then, .. } => grab(then, out),
        _ => {}
    });
}

// ---- Q1: total, duplicate-free unstable-sort keys -------------------------

fn rule_q1(f: &SemFile, body: &Block, out: &mut Vec<Finding>) {
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    ast::walk_block(body, &mut |e| {
        let ExprKind::MethodCall {
            name,
            name_tok,
            args,
            ..
        } = &e.kind
        else {
            return;
        };
        if f.in_test.get(*name_tok) == Some(&true) {
            return;
        }
        let verdict = match name.as_str() {
            // Whole-element `Ord` sorts: equal elements are structurally
            // identical, so instability cannot reorder observably.
            "sort_unstable" | "select_nth_unstable" => return,
            "sort_unstable_by" | "select_nth_unstable_by" => {
                if args.last().is_some_and(comparator_is_total) {
                    return;
                }
                "comparator is not provably total and duplicate-free — compare whole \
                 elements with `cmp`/`total_cmp`, or add an explicit `.then(..)` tie-break"
            }
            "sort_unstable_by_key" | "select_nth_unstable_by_key" => {
                "key projection cannot be proven duplicate-free: equal keys leave element \
                 order unspecified under an unstable sort — sort whole elements, add a \
                 tie-break via sort_unstable_by, or waive Q1 with a uniqueness proof"
            }
            _ => return,
        };
        if flagged.insert(*name_tok) {
            out.push(f.finding("Q1", *name_tok, format!("`{name}`: {verdict}")));
        }
    });
}

/// A comparator we can prove total and duplicate-free: a fn path ending in
/// `cmp`/`total_cmp`, or a two-param closure whose body is a whole-element
/// `a.cmp(&b)` / `b.total_cmp(&a)` (optionally `.reverse()`d), or any
/// comparison carrying an explicit `.then(..)`/`.then_with(..)` tie-break.
fn comparator_is_total(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Path(segs) => segs.last().is_some_and(|s| s == "cmp" || s == "total_cmp"),
        ExprKind::Closure { params, body } => {
            let mut names: Vec<&str> = Vec::new();
            for p in params {
                match &p.kind {
                    PatKind::Binding(n, None) => names.push(n.as_str()),
                    PatKind::Ref(inner) => {
                        if let PatKind::Binding(n, None) = &inner.kind {
                            names.push(n.as_str());
                        } else {
                            return false;
                        }
                    }
                    _ => return false,
                }
            }
            if names.len() != 2 {
                return false;
            }
            let mut b = body.as_ref();
            // `.reverse()` preserves totality; strip it.
            while let ExprKind::MethodCall {
                recv, name, args, ..
            } = &b.kind
            {
                if name == "reverse" && args.is_empty() {
                    b = recv;
                } else {
                    break;
                }
            }
            match &b.kind {
                // An explicit tie-break chain: the author has addressed
                // duplicate keys; take their word for it.
                ExprKind::MethodCall { name, .. } if name == "then" || name == "then_with" => true,
                ExprKind::MethodCall {
                    recv, name, args, ..
                } if name == "cmp" || name == "total_cmp" => {
                    if args.len() != 1 {
                        return false;
                    }
                    let (Some(l), Some(r)) = (bare_ident(recv), bare_ident(&args[0])) else {
                        return false;
                    };
                    (l == names[0] && r == names[1]) || (l == names[1] && r == names[0])
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// Strip `&`/`*`/parens off a place and return the bare identifier, if any.
fn bare_ident(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Path(segs) if segs.len() == 1 => Some(segs[0].as_str()),
        ExprKind::Ref { expr, .. } | ExprKind::Unary { expr, .. } => bare_ident(expr),
        _ => None,
    }
}
