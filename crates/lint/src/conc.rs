//! Phase-4 concurrency-safety rules over the [`crate::sem`] call graph and
//! the [`crate::effects`] signatures — the static half of the gate in front
//! of the multi-threaded per-plane event wheels (ROADMAP item 1). The
//! dynamic half is the `pnet-modelcheck` crate's exhaustive-interleaving
//! checker; see DESIGN.md §"Static analysis Phase 4".
//!
//! * **Y1** — publication-protocol check: every atomic field is classified
//!   as a *publication* atomic (some access site uses an Acquire/Release
//!   class ordering, i.e. its value orders access to non-atomic shared
//!   data) or a *counter* (every site is Relaxed; the value is only ever
//!   aggregated). Relaxed loads/stores on publication atomics are flagged,
//!   carrying the paired non-Relaxed site as the finding origin — a waiver
//!   at either end quiets the pair. Counters stay legal: Relaxed statistics
//!   are exactly what Relaxed is for.
//! * **Y2** — nondeterminism hazard: a value derived from an atomic RMW
//!   (`fetch_add` and friends return the *previous* value, whose sequence
//!   across threads is scheduler-dependent) flowing into indexing, output
//!   ordering (`push`/`insert`), or float accumulation inside a closure
//!   handed to a parallel driver. S1 sees captured-state *mutation* and O1
//!   sees reduction *order*; neither sees a racy index.
//! * **Y3** — interprocedural shared-capture mutation: a closure crossing
//!   `thread::scope`-style `.spawn(..)` that mutates a capture directly, or
//!   calls a workspace fn whose *inferred* effect signature mutates it
//!   (`&mut self` receiver, or transitive interior mutability) — S1's
//!   capture discipline extended from syntactic to call-graph depth, and
//!   from the `Parallelism` combinators to raw scoped threads.
//!
//! Y1/Y2/Y3 findings carry origins (the paired ordering site, the RMW
//! site, the effect witness) with the same waiver mechanics as P1/T1/S1.

use crate::ast::{self, Block, Expr, ExprKind};
use crate::effects::{
    collect_bindings, effectful_callee, is_assign_op, is_parallel_combinator, pat_bindings,
    place_root, Effects, STD_MUTATORS,
};
use crate::lexer::TokenKind;
use crate::rules::Finding;
use crate::sem::{lib_file, FnDef, SemFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose atomics Y1 audits: the sim/solver/planner crates where an
/// atomic's loaded value can guard non-atomic shared data.
fn y1_scope(p: &str) -> bool {
    [
        "crates/core/src/",
        "crates/routing/src/",
        "crates/flowsim/src/",
        "crates/htsim/src/",
        "crates/topology/src/",
        "crates/planner/src/",
        "crates/workloads/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre))
}

/// Files whose spawned closures Y3 audits: library sources minus the two
/// sanctioned thread hosts (`routing::exec` owns the order-preserving
/// primitive; bench is measurement harness) and the dev-tool crates.
fn y3_scope(p: &str) -> bool {
    lib_file(p)
        && p != "crates/routing/src/exec.rs"
        && !p.starts_with("crates/bench/")
        && !p.starts_with("crates/lint/")
        && !p.starts_with("crates/modelcheck/")
}

/// Atomic method names whose call sites Y1 classifies, split by direction.
const ATOMIC_LOADS: &[&str] = &["load"];
const ATOMIC_WRITES: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// RMW methods whose *returned previous value* is scheduler-ordered (Y2).
const RMW_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Output-ordering sinks for Y2: appending a value at an RMW-derived slot
/// or position makes the collection's layout scheduler-dependent.
const ORDER_SINKS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "append",
];

const ORDERING_NAMES: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Run Y1/Y2/Y3 over the workspace (called from [`crate::effects::check`]
/// so all effect-built rules share one inference pass).
pub(crate) fn check(
    ws: &Workspace,
    files: &[SemFile],
    fx: &Effects,
    ws_mutators: &BTreeSet<&str>,
    out: &mut Vec<Finding>,
) {
    rule_y1(ws, files, out);
    for (i, d) in ws.fns.iter().enumerate() {
        let Some(body) = d.body else { continue };
        if d.in_test {
            continue;
        }
        rule_y2(files, d, body, out);
        if y3_scope(files[d.file].rel_path) {
            rule_y3(ws, files, fx, ws_mutators, i, body, out);
        }
        let _ = i;
    }
}

// ---- Y1: publication-protocol orderings -----------------------------------

/// One atomic access site: which declared atomic field, in which direction,
/// with which (success) ordering.
struct AtomicSite {
    field: String,
    is_load: bool,
    name_tok: usize,
    line: u32,
    ordering: &'static str,
}

fn rule_y1(ws: &Workspace, files: &[SemFile], out: &mut Vec<Finding>) {
    // Group fn bodies per file so classification is per (file, field name).
    let mut by_file: BTreeMap<usize, Vec<&FnDef>> = BTreeMap::new();
    for d in &ws.fns {
        if d.body.is_some() {
            by_file.entry(d.file).or_default().push(d);
        }
    }
    for (fi, fns) in by_file {
        let f = &files[fi];
        if !y1_scope(f.rel_path) {
            continue;
        }
        let fields = atomic_fields(f);
        if fields.is_empty() {
            continue;
        }
        let mut sites: Vec<AtomicSite> = Vec::new();
        for d in fns {
            let body = d.body.expect("filtered to fns with bodies above");
            ast::walk_block(body, &mut |e| {
                collect_atomic_site(f, &fields, e, &mut sites);
            });
        }
        sites.sort_by_key(|s| s.name_tok);
        // Classify per field: publication iff any site is non-Relaxed.
        let mut publication: BTreeSet<&str> = BTreeSet::new();
        for s in &sites {
            if s.ordering != "Relaxed" {
                publication.insert(&s.field);
            }
        }
        for s in &sites {
            if s.ordering != "Relaxed" || !publication.contains(s.field.as_str()) {
                continue;
            }
            // The paired site: the first non-Relaxed access in the opposite
            // direction (a Relaxed load pairs with the Release-class write
            // it races, and vice versa), falling back to any non-Relaxed
            // site on the same field.
            let paired = sites
                .iter()
                .find(|p| p.field == s.field && p.ordering != "Relaxed" && p.is_load != s.is_load)
                .or_else(|| {
                    sites
                        .iter()
                        .find(|p| p.field == s.field && p.ordering != "Relaxed")
                })
                .expect("invariant: publication classification implies a non-Relaxed site");
            let dir = if s.is_load { "load" } else { "store" };
            let pdir = if paired.is_load { "load" } else { "store" };
            let mut finding = f.finding(
                "Y1",
                s.name_tok,
                format!(
                    "Relaxed {dir} on publication atomic `{}`: the paired {} {pdir} at \
                     {}:{} means this value orders access to non-atomic shared data; \
                     use {} here, or waive Y1 stating the invariant (e.g. a \
                     single-writer lock) that makes Relaxed sound",
                    s.field,
                    paired.ordering,
                    f.rel_path,
                    paired.line,
                    if s.is_load { "Acquire" } else { "Release" },
                ),
            );
            finding.origin = Some((f.rel_path.to_string(), paired.line));
            out.push(finding);
        }
    }
}

/// Token-scan a file for declared atomic fields/statics/params: the names in
/// `name : [&] [path ::] AtomicXxx` position. The AST keeps struct bodies
/// opaque, so this is deliberately lexical; keying by (file, name) is the
/// documented precision bound.
fn atomic_fields(f: &SemFile) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let toks = f.tokens;
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident || toks.get(i + 1).is_none_or(|t| t.text != ":") {
            continue;
        }
        // Look a short window past the `:` for an `Atomic*` type name,
        // stopping at declaration boundaries.
        for j in i + 2..(i + 10).min(toks.len()) {
            let t = &toks[j];
            if matches!(t.text.as_str(), "," | ";" | ")" | "}" | "=" | "{") {
                break;
            }
            if t.kind == TokenKind::Ident
                && t.text.starts_with("Atomic")
                && t.text.len() > "Atomic".len()
            {
                out.insert(toks[i].text.clone());
                break;
            }
        }
    }
    out
}

/// If `e` is an atomic load/store/RMW on a declared atomic field (outside
/// test code) with a literal `Ordering::X` argument, record the site. The
/// ordering that classifies is the *success* ordering — the first
/// `Ordering::X` path among the arguments, which is the success slot for
/// `compare_exchange(cur, new, success, failure)` and `fetch_update(set,
/// fetch, f)` and the only slot for everything else.
fn collect_atomic_site(
    f: &SemFile,
    fields: &BTreeSet<String>,
    e: &Expr,
    sites: &mut Vec<AtomicSite>,
) {
    let ExprKind::MethodCall {
        recv,
        name,
        name_tok,
        args,
    } = &e.kind
    else {
        return;
    };
    let is_load = ATOMIC_LOADS.contains(&name.as_str());
    if !is_load && !ATOMIC_WRITES.contains(&name.as_str()) {
        return;
    }
    if f.in_test.get(*name_tok) == Some(&true) {
        return;
    }
    let Some(field) = atomic_place_name(recv) else {
        return;
    };
    if !fields.contains(field) {
        return;
    }
    let Some(ordering) = args.iter().find_map(ordering_of) else {
        return; // ordering behind a variable/fn: unclassifiable, skip
    };
    sites.push(AtomicSite {
        field: field.to_string(),
        is_load,
        name_tok: *name_tok,
        line: f.tokens[*name_tok].line,
        ordering,
    });
}

/// The field (or static) name an atomic method call is invoked on:
/// `self.inner.len.load(..)` → `len`, `COUNTER.load(..)` → `COUNTER`.
fn atomic_place_name(recv: &Expr) -> Option<&str> {
    match &recv.kind {
        ExprKind::Field { name, .. } => Some(name.as_str()),
        ExprKind::Path(segs) => segs.last().map(|s| s.as_str()),
        ExprKind::Ref { expr, .. } | ExprKind::Unary { expr, .. } => atomic_place_name(expr),
        _ => None,
    }
}

/// `Ordering::Relaxed`-style path argument → the ordering's name.
fn ordering_of(a: &Expr) -> Option<&'static str> {
    let ExprKind::Path(segs) = &a.kind else {
        return None;
    };
    if segs.len() < 2 || segs[segs.len() - 2] != "Ordering" {
        return None;
    }
    let last = segs.last().expect("len checked above");
    ORDERING_NAMES.iter().find(|n| *n == last).copied()
}

// ---- Y2: RMW-derived values in parallel closures --------------------------

fn rule_y2(files: &[SemFile], d: &FnDef, body: &Block, out: &mut Vec<Finding>) {
    let f = &files[d.file];
    // Names `let`-bound (anywhere in this fn) to an expression containing an
    // atomic RMW call — the taint set — mapped to the RMW site token.
    let mut tainted: BTreeMap<String, usize> = BTreeMap::new();
    collect_rmw_lets(body, &mut tainted);

    ast::walk_block(body, &mut |e| {
        let ExprKind::MethodCall {
            name,
            name_tok,
            args,
            ..
        } = &e.kind
        else {
            return;
        };
        if !is_parallel_combinator(name) || f.in_test.get(*name_tok) == Some(&true) {
            return;
        }
        for a in args {
            if let ExprKind::Closure { body, .. } = &a.kind {
                check_rmw_flow(f, name, &tainted, body, out);
            }
        }
    });
}

/// Record `let` bindings whose initializer contains an RMW call, in every
/// nested block position (same shape as O1's parallel-let collector).
fn collect_rmw_lets(body: &Block, out: &mut BTreeMap<String, usize>) {
    let grab = |b: &Block, out: &mut BTreeMap<String, usize>| {
        for s in &b.stmts {
            let ast::Stmt::Let {
                pat,
                init: Some(init),
                ..
            } = s
            else {
                continue;
            };
            let Some(tok) = first_rmw_tok(init) else {
                continue;
            };
            let mut names = BTreeSet::new();
            pat_bindings(pat, &mut names);
            for n in names {
                out.entry(n).or_insert(tok);
            }
        }
    };
    grab(body, out);
    ast::walk_block(body, &mut |e| match &e.kind {
        ExprKind::Block(b) => grab(b, out),
        ExprKind::For { body, .. } | ExprKind::While { body, .. } | ExprKind::Loop { body } => {
            grab(body, out)
        }
        ExprKind::If { then, .. } => grab(then, out),
        _ => {}
    });
}

/// Token of the first RMW method call inside `e`, if any.
fn first_rmw_tok(e: &Expr) -> Option<usize> {
    let mut tok = None;
    ast::walk_expr(e, &mut |x| {
        if let ExprKind::MethodCall { name, name_tok, .. } = &x.kind {
            if RMW_METHODS.contains(&name.as_str()) && tok.is_none_or(|t| *name_tok < t) {
                tok = Some(*name_tok);
            }
        }
    });
    tok
}

/// The first tainted identifier (or direct RMW call) inside `e`: returns
/// (display name, RMW origin token).
fn taint_in<'t>(e: &Expr, tainted: &'t BTreeMap<String, usize>) -> Option<(&'t str, usize)> {
    if let Some(tok) = first_rmw_tok(e) {
        // A direct RMW in flow position is its own origin; borrow a static
        // display name keyed off nothing in the map.
        return Some(("the RMW result", tok));
    }
    let mut hit: Option<(&str, usize)> = None;
    ast::walk_expr(e, &mut |x| {
        if hit.is_some() {
            return;
        }
        if let ExprKind::Path(segs) = &x.kind {
            if segs.len() == 1 {
                if let Some((k, &tok)) = tainted.get_key_value(segs[0].as_str()) {
                    hit = Some((k.as_str(), tok));
                }
            }
        }
    });
    hit
}

fn check_rmw_flow(
    f: &SemFile,
    comb: &str,
    enclosing_taint: &BTreeMap<String, usize>,
    body: &Expr,
    out: &mut Vec<Finding>,
) {
    // Closure-local RMW-derived lets extend the enclosing fn's taint.
    let mut tainted = enclosing_taint.clone();
    ast::walk_expr(body, &mut |x| {
        if let ExprKind::Block(b) = &x.kind {
            collect_rmw_lets(b, &mut tainted);
        }
    });

    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    let mut flag =
        |out: &mut Vec<Finding>, tok: usize, what: &str, name: &str, origin_tok: usize| {
            if !flagged.insert(tok) {
                return;
            }
            let oline = f.tokens[origin_tok].line;
            let mut finding = f.finding(
                "Y2",
                tok,
                format!(
                    "`{name}` is derived from an atomic RMW ({}:{oline}) and flows into \
                 {what} inside a `{comb}` closure: the RMW's cross-thread order is \
                 scheduler-dependent, so the output is not a function of the index; \
                 derive it from the index, or waive Y2 at the RMW site",
                    f.rel_path
                ),
            );
            finding.origin = Some((f.rel_path.to_string(), oline));
            out.push(finding);
        };

    ast::walk_expr(body, &mut |x| match &x.kind {
        ExprKind::Index { index, .. } => {
            if let Some((name, otok)) = taint_in(index, &tainted) {
                flag(out, index.lo, "an index expression", name, otok);
            }
        }
        ExprKind::MethodCall {
            name,
            name_tok,
            args,
            ..
        } if ORDER_SINKS.contains(&name.as_str()) => {
            for a in args {
                if let Some((tn, otok)) = taint_in(a, &tainted) {
                    flag(
                        out,
                        *name_tok,
                        &format!("output ordering (`.{name}(..)`)"),
                        tn,
                        otok,
                    );
                    break;
                }
            }
        }
        ExprKind::Binary {
            op, op_tok, rhs, ..
        } if is_assign_op(op) && op != "=" => {
            if let Some((name, otok)) = taint_in(rhs, &tainted) {
                // Float accumulation only: integer accumulation of RMW
                // values is order-independent under wrapping/commutative
                // ops; float rounding is not.
                let hi = x.hi.min(f.tokens.len().saturating_sub(1));
                let floaty = f.tokens[x.lo..=hi]
                    .iter()
                    .any(|t| t.kind == TokenKind::Float || t.text == "f64" || t.text == "f32");
                if floaty {
                    flag(out, *op_tok, "a float accumulation", name, otok);
                }
            }
        }
        _ => {}
    });
}

// ---- Y3: shared-capture mutation across spawned closures ------------------

fn rule_y3(
    ws: &Workspace,
    files: &[SemFile],
    fx: &Effects,
    ws_mutators: &BTreeSet<&str>,
    fn_idx: usize,
    body: &Block,
    out: &mut Vec<Finding>,
) {
    let d = &ws.fns[fn_idx];
    let f = &files[d.file];
    ast::walk_block(body, &mut |e| {
        let ExprKind::MethodCall {
            name,
            name_tok,
            args,
            ..
        } = &e.kind
        else {
            return;
        };
        if name != "spawn" || f.in_test.get(*name_tok) == Some(&true) {
            return;
        }
        for a in args {
            if let ExprKind::Closure { params, body } = &a.kind {
                check_spawned_closure(ws, files, fx, ws_mutators, d, params, body, out);
            }
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn check_spawned_closure(
    ws: &Workspace,
    files: &[SemFile],
    fx: &Effects,
    ws_mutators: &BTreeSet<&str>,
    d: &FnDef,
    params: &[ast::Pat],
    body: &Expr,
    out: &mut Vec<Finding>,
) {
    let f = &files[d.file];
    let mut locals: BTreeSet<String> = BTreeSet::new();
    for p in params {
        pat_bindings(p, &mut locals);
    }
    collect_bindings(body, &mut locals);

    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    let mut flag =
        |out: &mut Vec<Finding>, tok: usize, detail: String, origin: Option<(String, u32)>| {
            if !flagged.insert(tok) {
                return;
            }
            let mut finding = f.finding(
                "Y3",
                tok,
                format!(
                    "spawned closure {detail}; cross-thread mutation of a shared capture \
                     is a data race (or lock-order hazard) the spawning scope cannot \
                     see — route mutations through one owner, or waive Y3 at the \
                     effect origin"
                ),
            );
            finding.origin = origin;
            out.push(finding);
        };

    ast::walk_expr(body, &mut |x| match &x.kind {
        ExprKind::Binary {
            op, op_tok, lhs, ..
        } if is_assign_op(op) => {
            if let Some(root) = place_root(lhs) {
                if !locals.contains(root) {
                    flag(out, *op_tok, format!("assigns to captured `{root}`"), None);
                }
            }
        }
        ExprKind::Ref { is_mut: true, expr } => {
            if let Some(root) = place_root(expr) {
                if !locals.contains(root) {
                    flag(
                        out,
                        expr.lo,
                        format!("takes `&mut` of captured `{root}`"),
                        None,
                    );
                }
            }
        }
        ExprKind::MethodCall {
            recv,
            name,
            name_tok,
            ..
        } => {
            let Some(root) = place_root(recv) else { return };
            if locals.contains(root) {
                return;
            }
            if STD_MUTATORS.contains(&name.as_str()) || ws_mutators.contains(name.as_str()) {
                flag(
                    out,
                    *name_tok,
                    format!("calls mutating `.{name}(..)` on captured `{root}`"),
                    None,
                );
            } else if let Some(cands) = ws.methods.get(name.as_str()) {
                if let Some((j, tok, why)) = mutating_callee(ws, fx, cands) {
                    let wf = &ws.fns[j];
                    let wfile = &files[wf.file];
                    let wline = wfile.tokens[tok].line;
                    flag(
                        out,
                        *name_tok,
                        format!(
                            "calls `{}` on captured `{root}`, which {why} ({}:{wline})",
                            wf.qual_name(),
                            wfile.rel_path
                        ),
                        Some((wfile.rel_path.to_string(), wline)),
                    );
                }
            }
        }
        _ => {}
    });
}

/// A candidate callee whose inferred signature mutates its receiver: a
/// declared `&mut self`, or transitive interior mutability (BFS to the
/// concrete witness so the finding carries a real origin line). IO and
/// higher-order effects are S1's concern, not a capture *mutation* — Y3
/// stays narrow so spawned read-only observers stay legal.
fn mutating_callee(
    ws: &Workspace,
    fx: &Effects,
    cands: &[usize],
) -> Option<(usize, usize, &'static str)> {
    for &c in cands {
        if fx.trans[c].mut_recv {
            return Some((c, ws.fns[c].name_tok, "takes `&mut self`"));
        }
    }
    if !cands.iter().any(|&c| fx.trans[c].interior) {
        return None;
    }
    // Reuse the S1 witness walk, then re-verify the reason is interior
    // mutability (the shared walk also surfaces io/higher-order witnesses).
    let (j, tok, why) = effectful_callee(ws, fx, cands)?;
    if why != "uses interior mutability" {
        // The interior witness is deeper than the first io/higher-order
        // one; anchor on any candidate's own interior site if present.
        for &c in cands {
            if let Some(t) = fx.locals[c].interior_tok {
                return Some((c, t, "uses interior mutability"));
            }
        }
        return None;
    }
    Some((j, tok, why))
}
