//! Baseline diff mode: `pnet-tidy check --baseline <sarif>` fails only on
//! findings *not present* in a previously captured SARIF log.
//!
//! This is how a new rule lands before its triage completes: commit the rule,
//! snapshot the current findings with `pnet-tidy list --format sarif`, gate
//! CI against that snapshot, and burn the baseline down finding by finding.
//! Baseline entries are matched as a (ruleId, uri, message text) multiset —
//! deliberately *not* by line number, so unrelated edits that shift code
//! don't resurrect baselined findings (messages that embed `file:line`
//! origins still shift when the origin moves, which is the conservative
//! direction: a moved effect site deserves a fresh look).
//!
//! The parser below is a minimal recursive-descent JSON reader — enough for
//! SARIF logs we (or GitHub code scanning) produce, with no dependencies,
//! matching the rest of the linter.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// One baselined finding identity.
pub type BaselineKey = (String, String, String); // (rule, file, message)

/// Parse a SARIF 2.1.0 log and return the identity keys of every
/// *unsuppressed* result (suppressed results are already out of the gate;
/// keeping them in the baseline would let them silently reactivate).
pub fn parse_sarif_baseline(src: &str) -> Result<Vec<BaselineKey>, String> {
    let v = Json::parse(src)?;
    let mut out = Vec::new();
    let runs = v.get("runs").and_then(Json::as_array).ok_or("no runs[]")?;
    for run in runs {
        let Some(results) = run.get("results").and_then(Json::as_array) else {
            continue;
        };
        for r in results {
            if r.get("suppressions")
                .and_then(Json::as_array)
                .is_some_and(|s| !s.is_empty())
            {
                continue;
            }
            let rule = r
                .get("ruleId")
                .and_then(Json::as_str)
                .ok_or("result without ruleId")?;
            let msg = r
                .get("message")
                .and_then(|m| m.get("text"))
                .and_then(Json::as_str)
                .unwrap_or_default();
            let uri = r
                .get("locations")
                .and_then(Json::as_array)
                .and_then(|l| l.first())
                .and_then(|l| l.get("physicalLocation"))
                .and_then(|p| p.get("artifactLocation"))
                .and_then(|a| a.get("uri"))
                .and_then(Json::as_str)
                .unwrap_or_default();
            out.push((rule.to_string(), uri.to_string(), msg.to_string()));
        }
    }
    Ok(out)
}

/// Split `findings` into (new, baselined): each baseline key absorbs at most
/// as many findings as it occurs in the baseline (multiset semantics).
pub fn split_against_baseline<'a>(
    findings: &[&'a Finding],
    baseline: &[BaselineKey],
) -> (Vec<&'a Finding>, usize) {
    let mut budget: BTreeMap<&BaselineKey, usize> = BTreeMap::new();
    for k in baseline {
        *budget.entry(k).or_default() += 1;
    }
    let mut fresh = Vec::new();
    let mut absorbed = 0usize;
    for f in findings {
        let key = (f.rule.to_string(), f.file.clone(), f.message.clone());
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                absorbed += 1;
            }
            _ => fresh.push(*f),
        }
    }
    (fresh, absorbed)
}

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are kept as raw text — the baseline reader
/// never does arithmetic on them.
#[derive(Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut p = Parser { bytes, at: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.at));
        }
        Ok(v)
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.at,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.at)),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        if self.at == start {
            return Err(format!("empty number at byte {start}"));
        }
        Ok(Json::Num(
            String::from_utf8_lossy(&self.bytes[start..self.at]).into_owned(),
        ))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs don't occur in our own output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(out));
                }
                other => return Err(format!("expected , or ] found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(out));
                }
                other => return Err(format!("expected , or }} found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, message: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            col: 1,
            message: message.to_string(),
            snippet: String::new(),
            suppressed: None,
            origin: None,
        }
    }

    const SARIF: &str = r#"{
      "version": "2.1.0",
      "runs": [{
        "tool": {"driver": {"name": "pnet-tidy", "rules": []}},
        "results": [
          {"ruleId": "Q1", "level": "error",
           "message": {"text": "sort_unstable_by_key: no tie-break"},
           "locations": [{"physicalLocation": {"artifactLocation": {"uri": "crates/flowsim/src/mcf.rs"},
                          "region": {"startLine": 412, "startColumn": 11}}}]},
          {"ruleId": "Q1", "level": "error",
           "message": {"text": "sort_unstable_by_key: no tie-break"},
           "locations": [{"physicalLocation": {"artifactLocation": {"uri": "crates/flowsim/src/mcf.rs"},
                          "region": {"startLine": 634, "startColumn": 11}}}]},
          {"ruleId": "T1", "level": "error",
           "message": {"text": "waived thing"},
           "locations": [{"physicalLocation": {"artifactLocation": {"uri": "crates/htsim/src/telemetry.rs"},
                          "region": {"startLine": 9, "startColumn": 1}}}],
           "suppressions": [{"kind": "inSource", "justification": "inline waiver"}]}
        ]
      }]
    }"#;

    #[test]
    fn parses_sarif_and_skips_suppressed_results() {
        let keys = parse_sarif_baseline(SARIF).expect("valid sarif");
        // The suppressed T1 must not enter the baseline.
        assert_eq!(keys.len(), 2);
        assert!(keys
            .iter()
            .all(|(r, f, _)| r == "Q1" && f.ends_with("mcf.rs")));
    }

    #[test]
    fn multiset_diff_absorbs_each_key_once_per_occurrence() {
        let keys = parse_sarif_baseline(SARIF).expect("valid sarif");
        let a = finding(
            "Q1",
            "crates/flowsim/src/mcf.rs",
            "sort_unstable_by_key: no tie-break",
        );
        let b = finding(
            "Q1",
            "crates/flowsim/src/mcf.rs",
            "sort_unstable_by_key: no tie-break",
        );
        let c = finding(
            "Q1",
            "crates/flowsim/src/mcf.rs",
            "sort_unstable_by_key: no tie-break",
        );
        let d = finding("O1", "crates/routing/src/exec.rs", "unordered float fold");
        let all = [&a, &b, &c, &d];
        let (fresh, absorbed) = split_against_baseline(&all, &keys);
        // Two baseline slots absorb two of the three identical Q1s; the
        // third Q1 and the novel O1 stay fresh.
        assert_eq!(absorbed, 2);
        assert_eq!(fresh.len(), 2);
        assert!(fresh.iter().any(|f| f.rule == "O1"));
        assert!(fresh.iter().any(|f| f.rule == "Q1"));
    }

    #[test]
    fn empty_baseline_keeps_everything_fresh() {
        let a = finding("Q1", "x.rs", "m");
        let (fresh, absorbed) = split_against_baseline(&[&a], &[]);
        assert_eq!((fresh.len(), absorbed), (1, 0));
    }

    #[test]
    fn line_shifts_do_not_resurrect_baselined_findings() {
        // Same rule/file/message at a different line is still baselined —
        // identity excludes the line on purpose.
        let keys = parse_sarif_baseline(SARIF).expect("valid sarif");
        let mut moved = finding(
            "Q1",
            "crates/flowsim/src/mcf.rs",
            "sort_unstable_by_key: no tie-break",
        );
        moved.line = 999;
        let (fresh, absorbed) = split_against_baseline(&[&moved], &keys);
        assert_eq!((fresh.len(), absorbed), (0, 1));
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = Json::parse(r#"{"a": ["x\n\"y\"", {"b": -1.5e3}, null, true]}"#).expect("parses");
        let arr = v.get("a").and_then(Json::as_array).expect("array");
        assert_eq!(arr[0].as_str(), Some("x\n\"y\""));
        assert_eq!(arr[1].get("b"), Some(&Json::Num("-1.5e3".to_string())));
        assert_eq!(arr[2], Json::Null);
        assert_eq!(arr[3], Json::Bool(true));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }
}
