//! The checked-in allowlist (`lint-allowlist.toml`) and inline waivers.
//!
//! Two suppression mechanisms, by design:
//!
//! * **Inline waiver** — a comment of the form `allow(<RULE>[, <RULE>...])
//!   -- <reason>` after the `pnet-tidy` marker, on the flagged line or on a
//!   comment-only line directly above it. For sites whose justification
//!   belongs next to the code.
//! * **Allowlist entry** — a `[[allow]]` table in `lint-allowlist.toml` with
//!   `rule`, `file`, optional `contains` (substring of the flagged line) and
//!   a mandatory `reason`. For legacy sites grandfathered in bulk. An entry
//!   that suppresses nothing is *stale* and is itself reported (rule `A1`),
//!   so the allowlist can only shrink over time.
//!
//! The parser below covers exactly the TOML subset the allowlist needs
//! (`[[allow]]` table arrays of string keys) — the linter stays
//! dependency-free.

use crate::lexer::Comment;
use crate::rules::{Finding, RULE_IDS};

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub file: String,
    /// Substring the flagged source line must contain ("" matches any).
    pub contains: String,
    pub reason: String,
    /// 1-based line of the `[[allow]]` header in the TOML file.
    pub line: u32,
}

impl AllowEntry {
    /// Does this entry suppress `f`?
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule
            && self.file == f.file
            && (self.contains.is_empty() || f.snippet.contains(&self.contains))
    }
}

/// Parse the allowlist. Returns the entries plus parse-error findings
/// (reported under rule `A1` so a broken allowlist cannot silently
/// suppress anything).
pub fn parse_allowlist(src: &str, path: &str) -> (Vec<AllowEntry>, Vec<Finding>) {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut errors: Vec<Finding> = Vec::new();
    let mut current: Option<AllowEntry> = None;
    let mut error = |line: u32, message: String, snippet: &str| {
        errors.push(Finding {
            rule: "A1",
            file: path.to_string(),
            line,
            col: 1,
            message,
            snippet: snippet.trim().to_string(),
            suppressed: None,
            origin: None,
        });
    };
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = match raw.find('#') {
            // Strip comments, but not '#' inside quoted values.
            Some(pos) if raw[..pos].chars().filter(|&c| c == '"').count() % 2 == 1 => raw,
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            current = Some(AllowEntry {
                rule: String::new(),
                file: String::new(),
                contains: String::new(),
                reason: String::new(),
                line: lineno,
            });
            continue;
        }
        if let Some(eq) = line.find('=') {
            let key = line[..eq].trim();
            let val = line[eq + 1..].trim();
            let Some(val) = val
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .map(unescape)
            else {
                error(
                    lineno,
                    format!("allowlist value for `{key}` must be a double-quoted string"),
                    raw,
                );
                continue;
            };
            let Some(e) = current.as_mut() else {
                error(
                    lineno,
                    "allowlist key outside an [[allow]] entry".to_string(),
                    raw,
                );
                continue;
            };
            match key {
                "rule" => e.rule = val,
                "file" => e.file = val,
                "contains" => e.contains = val,
                "reason" => e.reason = val,
                other => error(lineno, format!("unknown allowlist key `{other}`"), raw),
            }
            continue;
        }
        error(lineno, format!("unparseable allowlist line: `{line}`"), raw);
    }
    if let Some(e) = current.take() {
        entries.push(e);
    }
    for e in &entries {
        if !RULE_IDS.contains(&e.rule.as_str()) {
            error(
                e.line,
                format!("allowlist entry names unknown rule `{}`", e.rule),
                "",
            );
        }
        if e.file.is_empty() {
            error(e.line, "allowlist entry is missing `file`".to_string(), "");
        }
        if e.reason.is_empty() {
            error(
                e.line,
                "allowlist entry is missing `reason`".to_string(),
                "",
            );
        }
    }
    (entries, errors)
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// A parsed inline waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub rules: Vec<String>,
    /// 1-based line the waiver comment sits on.
    pub line: u32,
}

/// Extract waivers from a file's comments. Malformed waiver comments (the
/// marker present but the shape wrong, or the reason missing) become `W1`
/// findings — a waiver that silently fails to parse must never silently
/// fail to suppress.
pub fn parse_waivers(
    comments: &[Comment],
    rel_path: &str,
    lines: &[&str],
) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("pnet-tidy:") else {
            continue;
        };
        let body = c.text[pos + "pnet-tidy:".len()..].trim();
        let snippet = lines
            .get(c.line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        let mut malformed = |message: String| {
            findings.push(Finding {
                rule: "W1",
                file: rel_path.to_string(),
                line: c.line,
                col: 1,
                message,
                snippet: snippet.clone(),
                suppressed: None,
                origin: None,
            });
        };
        let Some(args) = body
            .strip_prefix("allow(")
            .and_then(|rest| rest.split_once(')'))
        else {
            malformed("waiver must look like `pnet-tidy: allow(<RULE>) -- <reason>`".to_string());
            continue;
        };
        let (rule_list, rest) = args;
        let Some(reason) = rest.trim().strip_prefix("--").map(str::trim) else {
            malformed("waiver is missing the `-- <reason>` part".to_string());
            continue;
        };
        if reason.is_empty() {
            malformed("waiver reason must not be empty".to_string());
            continue;
        }
        let rules: Vec<String> = rule_list
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            malformed("waiver names no rules".to_string());
            continue;
        }
        if let Some(bad) = rules.iter().find(|r| !RULE_IDS.contains(&r.as_str())) {
            malformed(format!("waiver names unknown rule `{bad}`"));
            continue;
        }
        waivers.push(Waiver {
            rules,
            line: c.line,
        });
    }
    (waivers, findings)
}
