//! `pnet-tidy` CLI.
//!
//! Modes:
//! * `check` — human-readable diagnostics for every unsuppressed finding;
//!   exit 1 if any. This is the CI gate and what `tests/tidy.rs` shells to.
//!   With `--baseline <sarif>`, only findings *not* in the baseline fail the
//!   gate (rule-rollout mode: land the rule, burn the baseline down).
//! * `list`  — every finding (suppressed included) as a JSON array, or as a
//!   SARIF 2.1.0 log with `--format sarif` (GitHub code-scanning upload).
//! * `stats` — per-rule counts of active / waived / allowlisted findings.
//! * `effects` — every workspace fn's inferred effect signature, one
//!   S-expression per line (the T1/S1 substrate; see DESIGN.md).
//!
//! Flags: `--root <dir>` (default: walk up from cwd to the `[workspace]`
//! manifest), `--allowlist <file>` (default: `<root>/lint-allowlist.toml`),
//! `--format json|sarif` (list mode only), `--baseline <sarif>` (check mode
//! only).

use pnet_lint::baseline::{parse_sarif_baseline, split_against_baseline};
use pnet_lint::rules::{rule_summary, Finding, Suppression, RULE_IDS};
use pnet_lint::{effects_dump_root, find_workspace_root, scan};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut mode: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut allowlist: Option<PathBuf> = None;
    let mut format: Option<String> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--allowlist" => allowlist = args.next().map(PathBuf::from),
            "--format" => format = args.next(),
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            m if mode.is_none() && !m.starts_with('-') => mode = Some(m.to_string()),
            other => {
                eprintln!("pnet-tidy: unknown argument `{other}`");
                print_usage();
                return ExitCode::from(2);
            }
        }
    }
    let mode = mode.unwrap_or_else(|| "check".to_string());
    if !matches!(mode.as_str(), "check" | "list" | "stats" | "effects") {
        eprintln!("pnet-tidy: unknown mode `{mode}`");
        print_usage();
        return ExitCode::from(2);
    }
    let format = format.unwrap_or_else(|| "json".to_string());
    if !matches!(format.as_str(), "json" | "sarif") {
        eprintln!("pnet-tidy: unknown format `{format}` (expected json or sarif)");
        print_usage();
        return ExitCode::from(2);
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("pnet-tidy: cannot determine cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "pnet-tidy: no [workspace] Cargo.toml above {}; pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let allowlist = allowlist.unwrap_or_else(|| root.join("lint-allowlist.toml"));
    if mode == "effects" {
        return match effects_dump_root(&root) {
            Ok(s) => {
                print!("{s}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("pnet-tidy: effects dump failed: {e}");
                ExitCode::from(2)
            }
        };
    }
    let report = match scan(&root, &allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pnet-tidy: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    match mode.as_str() {
        "check" => run_check(&report, baseline.as_deref()),
        "list" => {
            if format == "sarif" {
                println!("{}", to_sarif(&report.findings));
            } else {
                println!("{}", to_json(&report.findings));
            }
            ExitCode::SUCCESS
        }
        "stats" => {
            run_stats(&report);
            ExitCode::SUCCESS
        }
        _ => unreachable!(),
    }
}

fn print_usage() {
    eprintln!(
        "usage: pnet-tidy [check|list|stats|effects] [--root <dir>] [--allowlist <file>] \
         [--format json|sarif] [--baseline <sarif>]\n\
         \n\
         check    exit 1 on any unwaived finding (default; the CI gate);\n\
         \x20        --baseline <sarif> fails only on findings not in the baseline\n\
         list     all findings, suppressed included, as JSON (or SARIF 2.1.0)\n\
         stats    per-rule active/waived/allowlisted counts\n\
         effects  inferred effect signature per workspace fn (S-expressions)"
    );
}

fn run_check(report: &pnet_lint::ScanReport, baseline: Option<&std::path::Path>) -> ExitCode {
    let active: Vec<&Finding> = report.active().collect();
    let (active, absorbed) = match baseline {
        None => (active, 0),
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("pnet-tidy: cannot read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match parse_sarif_baseline(&src) {
                Ok(keys) => split_against_baseline(&active, &keys),
                Err(e) => {
                    eprintln!("pnet-tidy: bad baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    for f in &active {
        println!(
            "{}:{}:{}: [{}] {}\n    {}",
            f.file, f.line, f.col, f.rule, f.message, f.snippet
        );
    }
    let suppressed = report.findings.len() - report.active().count();
    let baselined = if absorbed > 0 {
        format!(", {absorbed} baselined")
    } else {
        String::new()
    };
    if active.is_empty() {
        println!(
            "pnet-tidy: clean — {} files scanned, {} suppressed finding(s){baselined}",
            report.files_scanned, suppressed
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "pnet-tidy: {} finding(s) in {} files scanned ({} suppressed{baselined})",
            active.len(),
            report.files_scanned,
            suppressed
        );
        ExitCode::FAILURE
    }
}

fn run_stats(report: &pnet_lint::ScanReport) {
    // rule -> (active, waived, allowlisted)
    let mut by_rule: BTreeMap<&str, (usize, usize, usize)> = BTreeMap::new();
    for f in &report.findings {
        let e = by_rule.entry(f.rule).or_default();
        match f.suppressed {
            None => e.0 += 1,
            Some(Suppression::Waiver) => e.1 += 1,
            Some(Suppression::Allowlist) => e.2 += 1,
        }
    }
    println!("rule  active  waived  allowlisted  description");
    for (rule, (a, w, al)) in &by_rule {
        println!("{rule:<5} {a:>6}  {w:>6}  {al:>11}  {}", rule_summary(rule));
    }
    println!("files scanned: {}", report.files_scanned);
}

fn to_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n  {");
        s.push_str(&format!("\"rule\":{},", json_str(f.rule)));
        s.push_str(&format!("\"file\":{},", json_str(&f.file)));
        s.push_str(&format!("\"line\":{},", f.line));
        s.push_str(&format!("\"col\":{},", f.col));
        s.push_str(&format!("\"message\":{},", json_str(&f.message)));
        s.push_str(&format!("\"snippet\":{},", json_str(&f.snippet)));
        let sup = match f.suppressed {
            None => "null".to_string(),
            Some(Suppression::Waiver) => json_str("waiver"),
            Some(Suppression::Allowlist) => json_str("allowlist"),
        };
        s.push_str(&format!("\"suppressed\":{sup},"));
        let origin = match &f.origin {
            None => "null".to_string(),
            Some((file, line)) => json_str(&format!("{file}:{line}")),
        };
        s.push_str(&format!("\"origin\":{origin}"));
        s.push('}');
    }
    s.push_str("\n]");
    s
}

/// Minimal SARIF 2.1.0 log: one run, one rule descriptor per catalogue id,
/// one result per finding. Suppressed findings carry a `suppressions` array
/// so code scanning shows them as closed rather than open.
fn to_sarif(findings: &[Finding]) -> String {
    let mut s = String::from(
        "{\n  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [{\n    \"tool\": {\"driver\": {\"name\": \"pnet-tidy\", \"informationUri\": \"DESIGN.md\", \"rules\": [",
    );
    let all_rules: Vec<&str> = RULE_IDS.iter().copied().chain(["W1", "A1"]).collect();
    for (i, rule) in all_rules.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n      {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_str(rule),
            json_str(rule_summary(rule))
        ));
    }
    s.push_str("\n    ]}},\n    \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n      {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]",
            json_str(f.rule),
            json_str(&f.message),
            json_str(&f.file),
            f.line,
            f.col
        ));
        if let Some(sup) = f.suppressed {
            let kind = match sup {
                Suppression::Waiver => "inline waiver",
                Suppression::Allowlist => "allowlist entry",
            };
            s.push_str(&format!(
                ", \"suppressions\": [{{\"kind\": \"inSource\", \"justification\": {}}}]",
                json_str(kind)
            ));
        }
        s.push('}');
    }
    s.push_str("\n    ]\n  }]\n}");
    s
}

fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
